"""Legacy setup shim.

The offline environment ships setuptools without ``wheel``, so editable
installs must go through ``setup.py develop``.  All metadata lives in
``pyproject.toml``; this file only triggers the legacy code path.
"""

from setuptools import setup

setup()
