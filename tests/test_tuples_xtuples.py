"""Unit tests for flat tuples and x-tuples (repro.pdb.tuples / xtuples)."""

from __future__ import annotations

import pytest

from repro.pdb import (
    NULL,
    EmptyDistributionError,
    InvalidProbabilityError,
    ProbabilisticTuple,
    ProbabilisticValue,
    TupleAlternative,
    UnknownAttributeError,
    XTuple,
    has_null_support,
)


class TestProbabilisticTuple:
    def test_plain_values_become_certain(self):
        t = ProbabilisticTuple("t1", {"name": "Tim", "job": "pilot"})
        assert t["name"].is_certain
        assert t["name"].certain_value == "Tim"

    def test_mapping_values_become_distributions(self):
        t = ProbabilisticTuple("t1", {"name": {"Tim": 0.6, "Tom": 0.4}})
        assert t["name"].probability("Tom") == pytest.approx(0.4)

    def test_none_becomes_null(self):
        t = ProbabilisticTuple("t1", {"job": None})
        assert t["job"].is_null

    def test_probabilistic_value_passes_through(self):
        value = ProbabilisticValue({"a": 0.5, "b": 0.5})
        t = ProbabilisticTuple("t1", {"x": value})
        assert t["x"] is value

    def test_membership_probability_validated(self):
        with pytest.raises(InvalidProbabilityError):
            ProbabilisticTuple("t1", {"x": "a"}, probability=0.0)
        with pytest.raises(InvalidProbabilityError):
            ProbabilisticTuple("t1", {"x": "a"}, probability=1.5)

    def test_is_maybe(self):
        assert ProbabilisticTuple("t", {"x": "a"}, 0.6).is_maybe
        assert not ProbabilisticTuple("t", {"x": "a"}, 1.0).is_maybe

    def test_unknown_attribute_raises(self):
        t = ProbabilisticTuple("t1", {"x": "a"})
        with pytest.raises(UnknownAttributeError):
            t.value("y")

    def test_contains(self):
        t = ProbabilisticTuple("t1", {"x": "a"})
        assert "x" in t
        assert "y" not in t

    def test_possible_assignments_product(self):
        t = ProbabilisticTuple(
            "t1",
            {"a": {"x": 0.5, "y": 0.5}, "b": {"u": 0.25, "v": 0.75}},
        )
        assignments = list(t.possible_assignments())
        assert len(assignments) == 4
        total = sum(prob for _, prob in assignments)
        assert total == pytest.approx(1.0)

    def test_possible_assignments_includes_null(self):
        t = ProbabilisticTuple("t1", {"a": {"x": 0.5}})
        outcomes = {
            assignment["a"] for assignment, _ in t.possible_assignments()
        }
        assert outcomes == {"x", NULL}

    def test_assignment_count(self):
        t = ProbabilisticTuple(
            "t1", {"a": {"x": 0.5, "y": 0.5}, "b": {"u": 0.5}}
        )
        assert t.assignment_count() == 4  # (x,y) × (u,⊥)

    def test_most_probable_assignment(self):
        t = ProbabilisticTuple(
            "t1", {"a": {"x": 0.7, "y": 0.3}, "b": {"u": 0.2, "v": 0.8}}
        )
        assert t.most_probable_assignment() == {"a": "x", "b": "v"}

    def test_map_values(self):
        t = ProbabilisticTuple("t1", {"a": {"Tim": 0.6, "Tom": 0.4}})
        mapped = t.map_values("a", str.lower)
        assert mapped["a"].probability("tim") == pytest.approx(0.6)
        assert t["a"].probability("Tim") == pytest.approx(0.6)  # original

    def test_with_probability(self):
        t = ProbabilisticTuple("t1", {"a": "x"}, 1.0)
        assert t.with_probability(0.5).probability == 0.5

    def test_is_certain(self):
        assert ProbabilisticTuple("t", {"a": "x"}).is_certain
        assert not ProbabilisticTuple("t", {"a": {"x": 0.5}}).is_certain

    def test_has_null_support_helper(self):
        t = ProbabilisticTuple("t", {"a": {"x": 0.5}, "b": "y"})
        assert has_null_support(t, "a")
        assert not has_null_support(t, "b")

    def test_equality_and_hash(self):
        left = ProbabilisticTuple("t", {"a": "x"}, 0.5)
        right = ProbabilisticTuple("t", {"a": "x"}, 0.5)
        assert left == right
        assert hash(left) == hash(right)

    def test_pretty_contains_id(self):
        assert "t9" in ProbabilisticTuple("t9", {"a": "x"}).pretty()


class TestTupleAlternative:
    def test_probability_validated(self):
        with pytest.raises(InvalidProbabilityError):
            TupleAlternative({"a": "x"}, 0.0)
        with pytest.raises(InvalidProbabilityError):
            TupleAlternative({"a": "x"}, 1.2)

    def test_value_coercion(self):
        alt = TupleAlternative({"a": None, "b": "y"}, 0.5)
        assert alt.value("a").is_null
        assert alt.value("b").certain_value == "y"

    def test_is_certain(self):
        assert TupleAlternative({"a": "x"}, 1.0).is_certain
        assert not TupleAlternative({"a": {"x": 0.5}}, 1.0).is_certain

    def test_with_probability(self):
        alt = TupleAlternative({"a": "x"}, 0.4)
        assert alt.with_probability(0.8).probability == 0.8

    def test_map_values(self):
        alt = TupleAlternative({"a": "Tim"}, 1.0)
        assert alt.map_values("a", str.upper).value("a").certain_value == "TIM"

    def test_equality(self):
        assert TupleAlternative({"a": "x"}, 0.5) == TupleAlternative(
            {"a": "x"}, 0.5
        )


class TestXTuple:
    def build_t32(self) -> XTuple:
        return XTuple.build(
            "t32",
            [
                ({"name": "Tim", "job": "mechanic"}, 0.3),
                ({"name": "Jim", "job": "mechanic"}, 0.2),
                ({"name": "Jim", "job": "baker"}, 0.4),
            ],
        )

    def test_needs_alternatives(self):
        with pytest.raises(EmptyDistributionError):
            XTuple("t", [])

    def test_mass_cannot_exceed_one(self):
        with pytest.raises(InvalidProbabilityError):
            XTuple.build("t", [({"a": "x"}, 0.7), ({"a": "y"}, 0.5)])

    def test_probability_sums_alternatives(self):
        assert self.build_t32().probability == pytest.approx(0.9)

    def test_maybe_detection(self):
        assert self.build_t32().is_maybe
        assert not XTuple.certain("t", {"a": "x"}).is_maybe

    def test_absence_probability(self):
        assert self.build_t32().absence_probability == pytest.approx(0.1)

    def test_len_and_iter(self):
        t32 = self.build_t32()
        assert len(t32) == 3
        assert len(list(t32)) == 3

    def test_conditioned_alternatives_sum_to_one(self):
        conditioned = self.build_t32().conditioned_alternatives()
        assert sum(p for _, p in conditioned) == pytest.approx(1.0)
        assert [round(p, 6) for _, p in conditioned] == [
            pytest.approx(3 / 9, abs=1e-6),
            pytest.approx(2 / 9, abs=1e-6),
            pytest.approx(4 / 9, abs=1e-6),
        ]

    def test_conditioned_returns_full_mass_copy(self):
        conditioned = self.build_t32().conditioned()
        assert conditioned.probability == pytest.approx(1.0)
        assert not conditioned.is_maybe

    def test_certain_constructor(self):
        t = XTuple.certain("t", {"a": "x"})
        assert t.probability == 1.0
        assert len(t) == 1

    def test_from_flat_preserves_distributions(self):
        flat = ProbabilisticTuple(
            "t", {"a": {"x": 0.5, "y": 0.5}}, probability=0.8
        )
        xt = XTuple.from_flat(flat)
        assert len(xt) == 1
        assert xt.probability == pytest.approx(0.8)
        assert xt.alternatives[0].value("a").probability("x") == pytest.approx(
            0.5
        )

    def test_expand_multiplies_out_value_uncertainty(self):
        xt = XTuple.build(
            "t", [({"a": {"x": 0.5, "y": 0.5}, "b": "u"}, 0.8)]
        )
        expanded = xt.expand()
        assert len(expanded) == 2
        assert expanded.probability == pytest.approx(0.8)
        probabilities = sorted(
            alt.probability for alt in expanded.alternatives
        )
        assert probabilities == [pytest.approx(0.4), pytest.approx(0.4)]

    def test_expand_handles_null_outcomes(self):
        xt = XTuple.build("t", [({"a": {"x": 0.75}}, 1.0)])
        expanded = xt.expand()
        values = {
            alt.value("a").certain_value
            if not alt.value("a").is_null
            else NULL
            for alt in expanded.alternatives
        }
        assert values == {"x", NULL}

    def test_expand_patterns(self):
        from repro.pdb import PatternValue

        xt = XTuple.build(
            "t", [({"job": PatternValue("mu*")}, 1.0)]
        )
        expanded = xt.expand_patterns({"job": ["musician", "muralist"]})
        value = expanded.alternatives[0].value("job")
        assert value.probability("musician") == pytest.approx(0.5)

    def test_equality_and_hash(self):
        assert self.build_t32() == self.build_t32()
        assert hash(self.build_t32()) == hash(self.build_t32())

    def test_repr_marks_maybe(self):
        assert "?" in repr(self.build_t32())

    def test_pretty_multi_row(self):
        pretty = self.build_t32().pretty()
        assert pretty.count("\n") == 2
        assert "t32" in pretty
