"""Fault-tolerance golden suite: recovery is bitwise, failure is loud.

The contract under test (the PR-6 acceptance pin): with deterministic,
seeded fault injection — worker crashes, worker kills, stalled
dispatches, flipped segment bytes —

* whenever recovery succeeds (retry or in-process degradation), the
  run's decisions are **bitwise identical** to the clean serial
  pipeline's, across reducers and scheduling modes;
* whenever recovery is exhausted, the run resolves per ``on_error``:
  a structured ``PartitionFailure`` raised, or recorded in
  ``ExecutionReport.failures`` with the partitions dropped whole;
* **no recovery is silent** — every injected fault shows up in the
  report's counters and in the ``on_fault`` event stream (the property
  the chaos CI job asserts over its seed matrix);
* storage corruption is caught by checksums *mid-detect*, is
  attributable (segment path, byte offset, tuple ids), and quarantine
  leaves the surviving tuples servable — including one source of a
  ``detect_between`` consolidation.
"""

from __future__ import annotations

import os

import pytest

from repro.datagen import DatasetConfig, generate_dataset
from repro.experiments.quality import default_matcher, weighted_model
from repro.matching import DuplicateDetector, FullComparison
from repro.matching.executor import (
    ExecutionReport,
    ExecutionSettings,
    PartitionFailure,
    RetryPolicy,
    WorkerCrash,
    WorkerTimeout,
)
from repro.pdb.errors import SegmentCorruptionError
from repro.pdb.io import open_store
from repro.pdb.relations import XRelation
from repro.reduction import (
    CertainKeyBlocking,
    SortedNeighborhood,
    SubstringKey,
)
from repro.testing import (
    FaultInjector,
    InjectedWorkerCrash,
    compose,
    crash_on,
    installed,
    kill_on,
    stall_on,
)

BLOCK_KEY = SubstringKey([("name", 1)])
SORT_KEY = SubstringKey([("name", 3), ("job", 2)])

REDUCERS = {
    "blocking": lambda: CertainKeyBlocking(BLOCK_KEY),
    "snm": lambda: SortedNeighborhood(SORT_KEY, window=5),
    "full": lambda: FullComparison(),
}

#: The chaos job's fixed seed matrix: each seed picks different fault
#: targets, every run with one seed picks the same.
FAULT_SEEDS = (11, 29)

#: Generous next to the ~5ms dispatches here; keeps slow-CI wiggle room
#: while a stalled dispatch still times out quickly.
TIMEOUT = 0.4
STALL = 1.5


@pytest.fixture(scope="module")
def flat_relation():
    return generate_dataset(
        DatasetConfig(entity_count=40, seed=7), flat=True
    ).relation


def _detector(reducer):
    return DuplicateDetector(
        default_matcher(), weighted_model(), reducer=reducer
    )


def _triples(result):
    return [
        (d.left_id, d.right_id, d.status, d.similarity)
        for d in result.decisions
    ]


@pytest.fixture(scope="module")
def references(flat_relation):
    """Clean serial (striped) decisions per reducer: the golden runs."""
    return {
        name: _triples(
            _detector(make()).detect(flat_relation, scheduling="striped")
        )
        for name, make in REDUCERS.items()
    }


def _assert_observable(report: ExecutionReport, events) -> None:
    """No silent degradation: faults ⇒ counters ⇒ events, consistently."""
    faults = report.worker_crashes + report.worker_timeouts
    assert faults >= 1
    recoveries = (
        report.retried_dispatches
        + report.degraded_tasks
        + len(report.failures)
    )
    assert recoveries >= 1
    kinds = [event.kind for event in events]
    assert len([k for k in kinds if k == "retry"]) == (
        report.retried_dispatches
    )
    assert len([k for k in kinds if k == "degraded"]) == (
        report.degraded_tasks
    )
    for event in events:
        assert event.partitions
        assert event.attempt >= 1
        assert event.fault in ("crash", "timeout")


# ----------------------------------------------------------------------
# Retry-then-degrade stays bitwise golden: 3 reducers × both schedulings
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheduling", ["partitioned", "stealing"])
@pytest.mark.parametrize("name", sorted(REDUCERS))
def test_retry_then_degrade_bitwise_golden(
    name, scheduling, flat_relation, references
):
    """Crash every attempt: the budget is spent retrying, then the unit
    degrades to an in-process re-execution — decisions bitwise-equal to
    the clean serial pipeline, and every recovery step observable."""
    detector = _detector(REDUCERS[name]())
    plan = detector.plan(flat_relation)
    pair = FaultInjector(7).pick_pair(plan)
    events = []
    with installed(crash_on(pair, attempts=(1, 2))):
        result = detector.detect(
            flat_relation,
            n_jobs=2,
            chunk_size=16,
            scheduling=scheduling,
            split_pairs=16,
            retry=RetryPolicy(max_attempts=2),
            on_error="degrade",
            on_fault=events.append,
        )
    assert _triples(result) == references[name]
    report = detector.last_report
    assert report.retried_dispatches >= 1
    assert report.degraded_tasks >= 1
    assert not report.failures
    assert report.recovered
    _assert_observable(report, events)


@pytest.mark.parametrize("name", sorted(REDUCERS))
def test_first_attempt_crash_retry_recovers(
    name, flat_relation, references
):
    """A transient fault (first attempt only) needs no degradation."""
    detector = _detector(REDUCERS[name]())
    pair = FaultInjector(3).pick_pair(detector.plan(flat_relation))
    with installed(crash_on(pair, attempts=(1,))):
        result = detector.detect(
            flat_relation,
            n_jobs=2,
            chunk_size=16,
            retry=RetryPolicy(max_attempts=2),
        )
    assert _triples(result) == references[name]
    assert detector.last_report.retried_dispatches >= 1
    assert detector.last_report.degraded_tasks == 0


# ----------------------------------------------------------------------
# The chaos seed matrix: worker-kill and stall recover via deadlines
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", FAULT_SEEDS)
def test_worker_kill_recovered_by_deadline(
    seed, flat_relation, references
):
    """A killed worker never reports back: the task is lost, the pool
    respawns a replacement, and the dispatch deadline converts the loss
    into a retried WorkerTimeout — the retry lands on a live worker."""
    detector = _detector(REDUCERS["blocking"]())
    plan = detector.plan(flat_relation)
    events = []
    with installed(FaultInjector(seed).worker_kill(plan)):
        result = detector.detect(
            flat_relation,
            n_jobs=2,
            chunk_size=16,
            retry=RetryPolicy(max_attempts=2, timeout=TIMEOUT),
            on_error="degrade",
            on_fault=events.append,
        )
    assert _triples(result) == references["blocking"]
    report = detector.last_report
    assert report.worker_timeouts >= 1
    assert report.recovered
    _assert_observable(report, events)


@pytest.mark.parametrize("scheduling", ["partitioned", "stealing"])
@pytest.mark.parametrize("seed", FAULT_SEEDS)
def test_stall_recovered_by_deadline(
    seed, scheduling, flat_relation, references
):
    """A hung dispatch misses its deadline and is retried; the stalled
    attempt's late result is discarded as stale, not double-counted."""
    detector = _detector(REDUCERS["blocking"]())
    plan = detector.plan(flat_relation)
    events = []
    with installed(FaultInjector(seed).partition_stall(plan, STALL)):
        result = detector.detect(
            flat_relation,
            n_jobs=2,
            chunk_size=16,
            scheduling=scheduling,
            split_pairs=16,
            retry=RetryPolicy(max_attempts=2, timeout=TIMEOUT),
            on_fault=events.append,
        )
    assert _triples(result) == references["blocking"]
    report = detector.last_report
    assert report.worker_timeouts >= 1
    assert report.retried_dispatches >= 1
    assert report.recovered
    _assert_observable(report, events)


def test_composed_faults_recover(flat_relation, references):
    """Crash one dispatch and stall another in the same run."""
    detector = _detector(REDUCERS["blocking"]())
    plan = detector.plan(flat_relation)
    injector = FaultInjector(5)
    hook = compose(
        crash_on(injector.pick_pair(plan)),
        stall_on(injector.pick_pair(plan), STALL),
    )
    with installed(hook):
        result = detector.detect(
            flat_relation,
            n_jobs=2,
            chunk_size=16,
            retry=RetryPolicy(max_attempts=3, timeout=TIMEOUT),
            on_error="degrade",
        )
    assert _triples(result) == references["blocking"]
    assert detector.last_report.recovered


# ----------------------------------------------------------------------
# Exhausted budgets: on_error semantics
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheduling", ["partitioned", "stealing"])
def test_skip_drops_failed_partitions_whole(
    scheduling, flat_relation, references
):
    detector = _detector(REDUCERS["blocking"]())
    plan = detector.plan(flat_relation)
    pair = FaultInjector(7).pick_pair(plan)
    with installed(crash_on(pair, attempts=(1, 2, 3))):
        result = detector.detect(
            flat_relation,
            n_jobs=2,
            chunk_size=8,
            scheduling=scheduling,
            split_pairs=16,
            retry=RetryPolicy(max_attempts=2),
            on_error="skip",
        )
    report = detector.last_report
    assert report.failures
    failed_labels = {failure.partition for failure in report.failures}
    # skip(): the crash-degrade fallback ran in-process and crashed too?
    # No — skip never degrades; the partitions are dropped whole.
    reference = {(t[0], t[1]): t for t in references["blocking"]}
    decided = _triples(result)
    assert (pair[0], pair[1]) not in {(t[0], t[1]) for t in decided}
    # Every surviving decision is bitwise-equal to the clean run's.
    for triple in decided:
        assert reference[(triple[0], triple[1])] == triple
    assert len(decided) < len(references["blocking"])
    for failure in report.failures:
        assert isinstance(failure, PartitionFailure)
        assert failure.partition in failed_labels
        assert failure.attempt == 2


def test_raise_surfaces_structured_partition_failure(flat_relation):
    detector = _detector(REDUCERS["blocking"]())
    plan = detector.plan(flat_relation)
    pair = FaultInjector(7).pick_pair(plan)
    with installed(crash_on(pair, attempts=(1, 2))):
        with pytest.raises(PartitionFailure) as info:
            detector.detect(
                flat_relation,
                n_jobs=2,
                chunk_size=8,
                retry=RetryPolicy(max_attempts=2),
                on_error="raise",
            )
    failure = info.value
    assert failure.partition
    assert failure.attempt == 2
    assert isinstance(failure.__cause__, WorkerCrash)
    assert "attempt" in str(failure)


def test_degrade_failure_falls_back_to_recorded_failure(flat_relation):
    """When even the in-process degraded re-execution raises, the
    partition fails terminally — recorded, not silently dropped."""
    detector = _detector(REDUCERS["blocking"]())

    class Poison(Exception):
        pass

    original = detector.procedure.decide
    plan = detector.plan(flat_relation)
    pair = FaultInjector(7).pick_pair(plan)

    def poisoned(left, right, **kwargs):
        if {left.tuple_id, right.tuple_id} == set(pair):
            raise Poison("poison pair")
        return original(left, right, **kwargs)

    detector.procedure.decide = poisoned
    try:
        result = detector.detect(
            flat_relation,
            n_jobs=1,
            chunk_size=8,
            retry=RetryPolicy(max_attempts=2),
            on_error="degrade",
        )
    finally:
        detector.procedure.decide = original
    report = detector.last_report
    assert report.failures
    assert report.degraded_tasks == 0
    assert not report.recovered
    decided = {(t[0], t[1]) for t in _triples(result)}
    assert tuple(pair) not in decided


# ----------------------------------------------------------------------
# Serial supervision (n_jobs=1)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheduling", ["partitioned", "stealing"])
def test_serial_supervision_retries_and_degrades(
    scheduling, flat_relation, references
):
    detector = _detector(REDUCERS["blocking"]())
    plan = detector.plan(flat_relation)
    pair = FaultInjector(7).pick_pair(plan)
    events = []
    with installed(crash_on(pair, attempts=(1, 2))):
        result = detector.detect(
            flat_relation,
            n_jobs=1,
            scheduling=scheduling,
            split_pairs=16,
            retry=RetryPolicy(max_attempts=2),
            on_error="degrade",
            on_fault=events.append,
        )
    assert _triples(result) == references["blocking"]
    report = detector.last_report
    assert report.retried_dispatches >= 1
    assert report.degraded_tasks >= 1
    _assert_observable(report, events)


def test_serial_kill_degenerates_to_crash(flat_relation, references):
    """In-process there is no worker to kill: kill_on injects a crash
    instead of taking down the test process."""
    detector = _detector(REDUCERS["blocking"]())
    plan = detector.plan(flat_relation)
    with installed(FaultInjector(11).worker_kill(plan)):
        result = detector.detect(
            flat_relation,
            retry=RetryPolicy(max_attempts=2),
        )
    assert _triples(result) == references["blocking"]
    assert detector.last_report.worker_crashes >= 1


def test_unsupervised_default_never_consults_hook(flat_relation):
    """The compat pin: default settings take the unsupervised paths and
    worker exceptions propagate raw — not wrapped, not retried."""
    detector = _detector(REDUCERS["blocking"]())
    plan = detector.plan(flat_relation)
    pair = FaultInjector(7).pick_pair(plan)
    with installed(crash_on(pair)):
        # The hook is only consulted by supervised dispatch; a default
        # run never sees it at all.
        result = detector.detect(flat_relation, n_jobs=1)
    assert result.decisions
    assert detector.last_report.worker_crashes == 0


# ----------------------------------------------------------------------
# Policy validation and facade guards
# ----------------------------------------------------------------------


def test_retry_policy_validation():
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError, match="timeout"):
        RetryPolicy(timeout=0.0)
    with pytest.raises(ValueError, match="backoff"):
        RetryPolicy(backoff=-1.0)
    assert RetryPolicy().supervises is False
    assert RetryPolicy(max_attempts=2).supervises is True
    assert RetryPolicy(timeout=1.0).supervises is True
    policy = RetryPolicy(max_attempts=4, backoff=0.1)
    assert [policy.delay(k) for k in (1, 2, 3)] == [0.1, 0.2, 0.4]
    assert RetryPolicy(max_attempts=4).delay(3) == 0.0


def test_settings_reject_unknown_on_error():
    with pytest.raises(ValueError, match="on_error"):
        ExecutionSettings(on_error="retry-forever")


def test_striped_rejects_supervision(flat_relation):
    detector = _detector(REDUCERS["blocking"]())
    with pytest.raises(ValueError, match="plan-driven"):
        detector.detect(
            flat_relation,
            scheduling="striped",
            retry=RetryPolicy(max_attempts=2),
        )
    with pytest.raises(ValueError, match="plan-driven"):
        detector.detect(
            flat_relation, scheduling="striped", on_error="skip"
        )


def test_fault_taxonomy_carries_context():
    crash = WorkerCrash(
        "boom", partitions=("block:A",), sources=("left",), attempt=2
    )
    assert crash.partitions == ("block:A",)
    assert crash.sources == ("left",)
    assert crash.attempt == 2
    assert crash.kind == "crash"
    assert WorkerTimeout("slow").kind == "timeout"
    failure = PartitionFailure(
        "gone", partition="block:A", sources=("left",), attempt=3
    )
    assert failure.partition == "block:A"
    assert failure.kind == "failure"


def test_injector_is_deterministic(flat_relation):
    detector = _detector(REDUCERS["blocking"]())
    plan = detector.plan(flat_relation)
    for seed in FAULT_SEEDS:
        assert FaultInjector(seed).pick_pair(plan) == FaultInjector(
            seed
        ).pick_pair(plan)
        assert (
            FaultInjector(seed).pick_partition(plan).label
            == FaultInjector(seed).pick_partition(plan).label
        )


# ----------------------------------------------------------------------
# Storage: byte flips mid-detect, quarantine, partial consolidation
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", FAULT_SEEDS)
def test_byte_flip_detected_mid_detect(seed, tmp_path, flat_relation):
    """Corruption that lands *after* the store was opened is still
    caught by the lazy checksum before any damaged tuple is decoded."""
    store = flat_relation.spill(str(tmp_path / "store"), segment_size=16)
    detector = _detector(REDUCERS["blocking"]())
    flip = FaultInjector(seed).flip_byte(store)
    with pytest.raises(SegmentCorruptionError) as info:
        detector.detect(store)
    error = info.value
    assert error.segment_file == flip.path
    assert error.tuple_ids
    assert error.expected_crc != error.actual_crc
    # Restored bytes verify clean again and detection completes.
    flip.restore()
    fresh = open_store(str(tmp_path / "store"))
    assert fresh.verify().ok
    assert detector.detect(fresh).decisions


def test_tampered_manifest_checksum_detected_mid_detect(
    tmp_path, flat_relation
):
    """A manifest whose recorded checksum disagrees with healthy bytes
    is just as corrupt: open succeeds, first page load mid-detect does
    not."""
    import json

    path = str(tmp_path / "store")
    flat_relation.spill(path, segment_size=16).close()
    manifest_file = os.path.join(path, "manifest.json")
    with open(manifest_file, encoding="utf-8") as handle:
        manifest = json.load(handle)
    manifest["segments"][0]["crc32"] ^= 0xDEADBEEF
    with open(manifest_file, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)
    store = open_store(path)
    detector = _detector(REDUCERS["blocking"]())
    with pytest.raises(SegmentCorruptionError, match="integrity"):
        detector.detect(store)


def test_quarantine_keeps_rest_servable(tmp_path, flat_relation):
    store = flat_relation.spill(str(tmp_path / "store"), segment_size=16)
    flip = FaultInjector(11).flip_byte(store, segment=2)
    audit = store.verify()
    assert not audit.ok
    assert [bad.file for bad in audit.corrupt] == [
        os.path.basename(flip.path)
    ]
    receipt = store.quarantine(audit.corrupt[0].file)
    assert receipt.remaining == len(flat_relation) - len(
        receipt.tuple_ids
    )
    assert len(store) == receipt.remaining
    assert store.verify().ok
    assert os.path.exists(receipt.quarantined_path)
    assert not os.path.exists(flip.path)
    for tuple_id in receipt.tuple_ids:
        assert tuple_id not in store
    # Survivors decode identically to the original relation.
    survivor = next(iter(store.tuple_ids))
    assert store.get(survivor) == flat_relation.get(survivor)
    # The rewritten manifest is durable: a fresh open agrees.
    fresh = open_store(store.path)
    assert len(fresh) == receipt.remaining
    assert fresh.verify().ok


def test_detect_between_with_quarantined_source(tmp_path, flat_relation):
    """One source of a consolidation loses a segment: quarantine it and
    the partial run equals the clean run over the surviving tuples."""
    ids = flat_relation.tuple_ids
    half = len(ids) // 2
    left = XRelation(
        "left",
        flat_relation.schema,
        (flat_relation.get(i) for i in ids[:half]),
    )
    right = XRelation(
        "right",
        flat_relation.schema,
        (flat_relation.get(i) for i in ids[half:]),
    )
    left_store = left.spill(str(tmp_path / "left"), segment_size=8)
    right_store = right.spill(str(tmp_path / "right"), segment_size=8)
    detector = _detector(REDUCERS["blocking"]())

    FaultInjector(29).flip_byte(right_store, segment=1)
    with pytest.raises(SegmentCorruptionError) as info:
        detector.detect_between(left_store, right_store)
    receipt = right_store.quarantine(info.value.segment_file)
    assert receipt.tuple_ids

    partial = detector.detect_between(left_store, right_store)
    surviving_right = XRelation(
        "right",
        right.schema,
        (
            right.get(i)
            for i in right.tuple_ids
            if i not in receipt.tuple_ids
        ),
    )
    clean = detector.detect_between(left, surviving_right)
    assert _triples(partial) == _triples(clean)


def test_close_is_idempotent_and_fork_safe(tmp_path, flat_relation):
    import pickle

    store = flat_relation.spill(str(tmp_path / "store"), segment_size=8)
    some_id = store.tuple_ids[0]
    store.get(some_id)
    assert store.open_segments >= 1
    store.close()
    store.close()  # second close: no-op, no raise
    with store:
        assert store.get(some_id).tuple_id == some_id
    store.close()
    # A pickled copy (what a spawn pool would ship) has lazy handles
    # that were never opened; closing it must not raise either.
    clone = pickle.loads(pickle.dumps(store))
    clone.close()
    clone.close()
    assert clone.get(some_id).tuple_id == some_id


def test_kill_hook_degenerates_in_main_process():
    """kill_on must never ``os._exit`` the main (test) process."""
    hook = kill_on(("a", "b"))
    with pytest.raises(InjectedWorkerCrash, match="no worker to kill"):
        hook(1, [("a", "b")])
    # Non-matching dispatches and attempts pass through silently.
    hook(2, [("a", "b")])
    hook(1, [("x", "y")])


# ----------------------------------------------------------------------
# last_report publication (regression: raising runs must not lose it)
# ----------------------------------------------------------------------


class TestLastReportPublication:
    """A raising detect still publishes its partial report, and a
    raising striped run never destroys the previous run's counters."""

    def test_plan_driven_raise_publishes_partial_report(
        self, flat_relation
    ):
        detector = _detector(REDUCERS["blocking"]())
        detector.detect(flat_relation)
        previous = detector.last_report
        plan = detector.plan(flat_relation)
        pair = FaultInjector(7).pick_pair(plan)
        with installed(crash_on(pair, attempts=(1, 2))):
            with pytest.raises(PartitionFailure):
                detector.detect(
                    flat_relation,
                    n_jobs=2,
                    chunk_size=8,
                    retry=RetryPolicy(max_attempts=2),
                    on_error="raise",
                )
        report = detector.last_report
        assert report is not None
        assert report is not previous
        # The partial counters of the raising run are inspectable.
        assert report.worker_crashes >= 1
        assert report.retried_dispatches >= 1

    def test_striped_raise_preserves_previous_report(self, flat_relation):
        detector = _detector(REDUCERS["blocking"]())
        detector.detect(flat_relation)
        previous = detector.last_report
        assert previous is not None
        with pytest.raises(ValueError, match="chunk_size"):
            detector.detect(
                flat_relation, scheduling="striped", chunk_size=0
            )
        assert detector.last_report is previous

    def test_striped_success_clears_report(self, flat_relation):
        detector = _detector(REDUCERS["blocking"]())
        detector.detect(flat_relation)
        assert detector.last_report is not None
        detector.detect(flat_relation, scheduling="striped")
        assert detector.last_report is None


# ----------------------------------------------------------------------
# In-process deadlines: RetryPolicy.timeout honored without a pool
# ----------------------------------------------------------------------


def test_serial_timeout_retries_then_recovers(flat_relation, references):
    """A first-attempt stall past the deadline surfaces as a
    WorkerTimeout at the next chunk boundary — no pool involved — and
    the clean retry keeps the decisions bitwise golden."""
    detector = _detector(REDUCERS["blocking"]())
    pair = FaultInjector(5).pick_pair(detector.plan(flat_relation))
    events = []
    with installed(stall_on(pair, TIMEOUT * 2, attempts=(1,))):
        result = detector.detect(
            flat_relation,
            chunk_size=16,
            retry=RetryPolicy(max_attempts=2, timeout=TIMEOUT),
            on_error="degrade",
            on_fault=events.append,
        )
    assert _triples(result) == references["blocking"]
    report = detector.last_report
    assert report.worker_timeouts >= 1
    assert report.worker_crashes == 0
    assert report.retried_dispatches >= 1
    assert report.degraded_tasks == 0
    assert not report.failures
    assert report.recovered
    _assert_observable(report, events)


def test_serial_stealing_timeout_degrades_bitwise(
    flat_relation, references
):
    """Serial stealing (n_jobs=1): every attempt stalls, the budget is
    spent on timeouts, and the deadline-free degraded re-execution
    completes bitwise-identical — ``RetryPolicy.timeout`` is honored
    without a pool."""
    detector = _detector(REDUCERS["snm"]())
    pair = FaultInjector(5).pick_pair(detector.plan(flat_relation))
    events = []
    with installed(stall_on(pair, TIMEOUT * 2, attempts=(1, 2))):
        result = detector.detect(
            flat_relation,
            scheduling="stealing",
            split_pairs=16,
            chunk_size=16,
            retry=RetryPolicy(max_attempts=2, timeout=TIMEOUT),
            on_error="degrade",
            on_fault=events.append,
        )
    assert _triples(result) == references["snm"]
    report = detector.last_report
    assert report.worker_timeouts >= 2
    assert report.degraded_tasks >= 1
    assert not report.failures
    _assert_observable(report, events)


def test_in_process_timeout_skip_drops_partitions_whole(
    flat_relation, references
):
    """on_error="skip" under an in-process timeout drops exactly the
    stalled unit's partitions and records structured failures."""
    detector = _detector(REDUCERS["blocking"]())
    plan = detector.plan(flat_relation)
    pair = FaultInjector(5).pick_pair(plan)
    victims = {
        partition.label
        for partition in plan
        if pair in partition.pairs
    }
    with installed(stall_on(pair, TIMEOUT * 2, attempts=(1,))):
        result = detector.detect(
            flat_relation,
            chunk_size=16,
            retry=RetryPolicy(max_attempts=1, timeout=TIMEOUT),
            on_error="skip",
        )
    report = detector.last_report
    assert {failure.partition for failure in report.failures} == victims
    assert all(failure.attempt == 1 for failure in report.failures)
    assert report.worker_timeouts >= 1
    assert report.worker_crashes == 0
    reference = {(t[0], t[1]): t for t in references["blocking"]}
    decided = _triples(result)
    assert (pair[0], pair[1]) not in {(t[0], t[1]) for t in decided}
    for triple in decided:
        assert reference[(triple[0], triple[1])] == triple
    assert len(decided) < len(references["blocking"])
