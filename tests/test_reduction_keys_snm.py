"""Unit tests for key creation and the Sorted-Neighborhood family."""

from __future__ import annotations

import pytest

from repro.pdb import NULL, PatternValue, ProbabilisticValue, XRelation, XTuple
from repro.pdb.xtuples import TupleAlternative
from repro.reduction import (
    AlternativeSorting,
    MatchingMatrix,
    MultiPassSNM,
    SortedNeighborhood,
    SubstringKey,
    UncertainKeySNM,
    alternative_key_distribution,
    most_probable_key,
    window_pairs,
    xtuple_key_distribution,
)

KEY = SubstringKey([("name", 3), ("job", 2)])


class TestSubstringKey:
    def test_paper_key(self):
        assert KEY.for_assignment({"name": "John", "job": "pilot"}) == "Johpi"

    def test_short_values_truncate_gracefully(self):
        assert KEY.for_assignment({"name": "Al", "job": "x"}) == "Alx"

    def test_null_contributes_empty(self):
        """t43's (John, ⊥) keys to 'Joh' (Figures 9/13)."""
        assert KEY.for_assignment({"name": "John", "job": NULL}) == "Joh"

    def test_pattern_prefix_used_when_long_enough(self):
        """mu* under a 2-char job part keys to 'mu' (Figure 13's Johmu)."""
        assert (
            KEY.for_assignment(
                {"name": "Johan", "job": PatternValue("mu*")}
            )
            == "Johmu"
        )

    def test_pattern_prefix_too_short_raises(self):
        key = SubstringKey([("job", 5)])
        with pytest.raises(ValueError):
            key.for_assignment({"job": PatternValue("mu*")})

    def test_validation(self):
        with pytest.raises(ValueError):
            SubstringKey([])
        with pytest.raises(ValueError):
            SubstringKey([("name", 0)])

    def test_attributes_property(self):
        assert KEY.attributes == ("name", "job")


class TestKeyDistributions:
    def test_certain_alternative_single_key(self):
        alt = TupleAlternative({"name": "John", "job": "pilot"}, 0.7)
        assert alternative_key_distribution(alt, KEY) == [("Johpi", 1.0)]

    def test_uncertain_value_splits_key(self):
        alt = TupleAlternative(
            {"name": {"Tim": 0.6, "Tom": 0.4}, "job": "pilot"}, 1.0
        )
        distribution = dict(alternative_key_distribution(alt, KEY))
        assert distribution["Timpi"] == pytest.approx(0.6)
        assert distribution["Tompi"] == pytest.approx(0.4)

    def test_equal_keys_merge_within_alternative(self):
        alt = TupleAlternative(
            {"name": {"Timon": 0.5, "Timmy": 0.5}, "job": "pilot"}, 1.0
        )
        distribution = alternative_key_distribution(alt, KEY)
        assert distribution == [("Timpi", pytest.approx(1.0))]

    def test_xtuple_distribution_merges_across_alternatives(self):
        """t41: both alternatives key to Johpi ⇒ certain key."""
        t41 = XTuple.build(
            "t41",
            [
                ({"name": "John", "job": "pilot"}, 0.8),
                ({"name": "Johan", "job": "pianist"}, 0.2),
            ],
        )
        assert xtuple_key_distribution(t41, KEY) == [
            ("Johpi", pytest.approx(1.0))
        ]

    def test_unconditioned_distribution_keeps_raw_mass(self):
        maybe = XTuple.build("t", [({"name": "Tim", "job": "x"}, 0.5)])
        raw = xtuple_key_distribution(maybe, KEY, conditioned=False)
        assert raw == [("Timx", pytest.approx(0.5))]

    def test_most_probable_key(self):
        t32 = XTuple.build(
            "t32",
            [
                ({"name": "Tim", "job": "mechanic"}, 0.3),
                ({"name": "Jim", "job": "mechanic"}, 0.2),
                ({"name": "Jim", "job": "baker"}, 0.4),
            ],
        )
        assert most_probable_key(t32, KEY) == "Jimba"


class TestWindowPairs:
    def test_window_two_adjacent_pairs(self):
        pairs = list(window_pairs(["a", "b", "c"], 2))
        assert pairs == [("a", "b"), ("b", "c")]

    def test_window_three_reaches_two_ahead(self):
        pairs = set(window_pairs(["a", "b", "c"], 3))
        assert pairs == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_self_pairs_skipped(self):
        pairs = list(window_pairs(["a", "a", "b"], 2))
        assert pairs == [("a", "b")]

    def test_duplicate_pairs_suppressed(self):
        pairs = list(window_pairs(["a", "b", "a", "b"], 2))
        assert pairs == [("a", "b")]

    def test_duplicates_allowed_when_requested(self):
        pairs = list(
            window_pairs(["a", "b", "a"], 2, skip_duplicate_pairs=False)
        )
        assert pairs == [("a", "b"), ("a", "b")]

    def test_window_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            list(window_pairs(["a"], 1))

    def test_window_larger_than_sequence(self):
        pairs = set(window_pairs(["a", "b"], 10))
        assert pairs == {("a", "b")}


def r34() -> XRelation:
    from repro.experiments.paper_data import MU_JOBS, relation_r34

    return XRelation(
        "R34x",
        ("name", "job"),
        [
            xt.expand_patterns({"job": MU_JOBS}).expand()
            for xt in relation_r34()
        ],
    )


class TestSortedNeighborhood:
    def test_window_validated(self):
        with pytest.raises(ValueError):
            SortedNeighborhood(KEY, window=1)

    def test_sorted_ids_match_figure_10(self):
        snm = SortedNeighborhood(KEY, window=2)
        assert snm.sorted_ids(r34()) == ["t32", "t31", "t41", "t43", "t42"]

    def test_pairs_are_window_pairs_of_sorted_order(self):
        snm = SortedNeighborhood(KEY, window=2)
        assert list(snm.pairs(r34())) == [
            ("t31", "t32"),
            ("t31", "t41"),
            ("t41", "t43"),
            ("t42", "t43"),
        ]

    def test_custom_key_strategy(self):
        def first_alternative_key(xtuple, key):
            alternative = xtuple.alternatives[0]
            assignment = {
                a: alternative.value(a).most_probable()
                for a in alternative.attributes
            }
            return key.for_assignment(assignment)

        snm = SortedNeighborhood(
            KEY, window=2, key_strategy=first_alternative_key
        )
        ids = snm.sorted_ids(r34())
        assert set(ids) == {"t31", "t32", "t41", "t42", "t43"}


class TestMatchingMatrix:
    def test_record_and_seen(self):
        matrix = MatchingMatrix()
        assert matrix.record("a", "b")
        assert matrix.seen("b", "a")  # symmetric
        assert not matrix.record("b", "a")

    def test_len_and_contains(self):
        matrix = MatchingMatrix()
        matrix.record("x", "y")
        assert len(matrix) == 1
        assert ("y", "x") in matrix

    def test_pairs_snapshot(self):
        matrix = MatchingMatrix()
        matrix.record("a", "b")
        assert matrix.pairs() == frozenset({("a", "b")})


class TestAlternativeSorting:
    def test_entries_collapse_duplicate_keys_within_xtuple(self):
        sorting = AlternativeSorting(KEY, window=2)
        t41 = XTuple.build(
            "t41",
            [
                ({"name": "John", "job": "pilot"}, 0.8),
                ({"name": "Johan", "job": "pianist"}, 0.2),
            ],
        )
        entries = sorting.entries_for_xtuple(t41)
        assert entries == [("Johpi", "t41")]

    def test_most_probable_only_mode(self):
        sorting = AlternativeSorting(KEY, window=2, all_alternatives=False)
        t32 = r34().get("t32")
        entries = sorting.entries_for_xtuple(t32)
        assert entries == [("Jimba", "t32")]

    def test_neighbor_dedup_can_be_disabled(self):
        enabled = AlternativeSorting(KEY, window=2)
        disabled = AlternativeSorting(KEY, window=2, neighbor_dedup=False)
        relation = r34()
        assert len(disabled.sorted_entries(relation)) >= len(
            enabled.deduped_entries(relation)
        )

    def test_window_validated(self):
        with pytest.raises(ValueError):
            AlternativeSorting(KEY, window=0)


class TestUncertainKeySNM:
    def test_window_validated(self):
        with pytest.raises(ValueError):
            UncertainKeySNM(KEY, window=1)

    def test_ranked_pairs_cover_neighbors(self):
        from repro.experiments.paper_data import relation_r34

        snm = UncertainKeySNM(KEY, window=2)
        pairs = list(snm.pairs(relation_r34()))
        assert ("t31", "t32") in [tuple(sorted(p)) for p in pairs]

    def test_alternate_ranking_function(self):
        from repro.experiments.paper_data import relation_r34
        from repro.pdb import most_probable_key_order

        snm = UncertainKeySNM(KEY, window=2, ranking=most_probable_key_order)
        ids = snm.ranked_ids(relation_r34())
        assert ids == ["t32", "t31", "t41", "t43", "t42"]


class TestMultiPassSNM:
    def test_selection_validated(self):
        with pytest.raises(ValueError):
            MultiPassSNM(KEY, selection="bogus")
        with pytest.raises(ValueError):
            MultiPassSNM(KEY, window=1)
        with pytest.raises(ValueError):
            MultiPassSNM(KEY, world_count=0)

    def test_all_worlds_pass_counts(self):
        relation = r34()
        multipass = MultiPassSNM(KEY, window=2, selection="all")
        worlds = multipass.select_worlds(relation)
        # full worlds: t31(4 expanded alts since mu* → 3 jobs +1) ×
        # t32(3) × t41(2) × t42(1) × t43(2)
        assert len(worlds) == 4 * 3 * 2 * 1 * 2

    def test_most_probable_selection_size(self):
        multipass = MultiPassSNM(
            KEY, window=2, selection="most_probable", world_count=3
        )
        assert len(multipass.select_worlds(r34())) == 3

    def test_diverse_selection_size(self):
        multipass = MultiPassSNM(
            KEY, window=2, selection="diverse", world_count=3
        )
        assert len(multipass.select_worlds(r34())) == 3

    def test_union_of_passes_superset_of_single_pass(self):
        relation = r34()
        single = MultiPassSNM(
            KEY, window=2, selection="most_probable", world_count=1
        )
        multi = MultiPassSNM(KEY, window=2, selection="all")
        assert set(single.pairs(relation)) <= set(multi.pairs(relation))

    def test_certain_key_strategy_is_subset_of_multipass(self):
        """Section V-A.2: the most-probable-world matchings are always a
        subset of the all-worlds multi-pass matchings."""
        relation = r34()
        certain = SortedNeighborhood(KEY, window=2)
        multipass = MultiPassSNM(KEY, window=2, selection="all")
        assert set(certain.pairs(relation)) <= set(
            multipass.pairs(relation)
        )
