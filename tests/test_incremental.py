"""Incremental detection golden suite.

The contract under test (the PR-8 acceptance pin): a
:class:`~repro.service.DetectionSession` that ingests a delta produces
decisions **bitwise identical** to a from-scratch detection over the
materialized union of the base with that delta — for every reducer
family of Section V, for adds, modifies and deletes, over in-memory
and spilled bases, serially and with process fan-out — while executing
*only* the partitions the delta touched (the fingerprint property
pinned here by hypothesis: a delta plan never contains an untouched
partition).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import DatasetConfig, generate_dataset
from repro.experiments.quality import default_matcher, weighted_model
from repro.matching import DuplicateDetector, FullComparison
from repro.pdb.errors import SchemaMismatchError
from repro.pdb.io import encode_xtuple
from repro.pdb.relations import XRelation
from repro.pdb.storage import SessionStore
from repro.pdb.xtuples import TupleAlternative, XTuple
from repro.reduction import (
    AlternativeKeyBlocking,
    AlternativeSorting,
    CertainKeyBlocking,
    MultiPassBlocking,
    MultiPassSNM,
    PhoneticBlocking,
    SortedNeighborhood,
    SubstringKey,
    UncertainKeyClusteringBlocking,
    UncertainKeySNM,
    delta_plan,
    plan_candidates,
    plan_fingerprints,
)

SORT_KEY = SubstringKey([("name", 3), ("job", 2)])
BLOCK_KEY = SubstringKey([("name", 1), ("job", 1)])


def r34() -> XRelation:
    from repro.experiments.paper_data import MU_JOBS, relation_r34

    return XRelation(
        "R34x",
        ("name", "job"),
        [
            xt.expand_patterns({"job": MU_JOBS}).expand()
            for xt in relation_r34()
        ],
    )


@pytest.fixture(scope="module")
def flat_relation():
    return generate_dataset(
        DatasetConfig(entity_count=24, seed=91), flat=True
    ).relation


@pytest.fixture(scope="module")
def x_relation():
    return generate_dataset(DatasetConfig(entity_count=14, seed=93)).relation


#: Reducer factories and which fixture-backed relation they run on
#: (mirrors the execution-plan golden suite).
REDUCERS = {
    "full": (lambda: FullComparison(), "flat"),
    "certain_blocking": (lambda: CertainKeyBlocking(BLOCK_KEY), "x"),
    "alternative_blocking": (
        lambda: AlternativeKeyBlocking(BLOCK_KEY),
        "x",
    ),
    "snm": (lambda: SortedNeighborhood(SORT_KEY, window=5), "flat"),
    "alternative_sorting": (
        lambda: AlternativeSorting(SORT_KEY, window=4),
        "x",
    ),
    "uncertain_snm": (lambda: UncertainKeySNM(SORT_KEY, window=4), "x"),
    "uncertain_clustering": (
        lambda: UncertainKeyClusteringBlocking(BLOCK_KEY, radius=0.4),
        "x",
    ),
    "phonetic_blocking": (lambda: PhoneticBlocking(), "x"),
    "multipass_snm": (
        lambda: MultiPassSNM(
            SORT_KEY, window=3, selection="diverse", world_count=2
        ),
        "r34",
    ),
    "multipass_blocking": (
        lambda: MultiPassBlocking(
            BLOCK_KEY, selection="diverse", world_count=2
        ),
        "r34",
    ),
}


def _relation_for(kind, flat_relation, x_relation):
    if kind == "flat":
        return flat_relation
    if kind == "x":
        return x_relation
    return r34()


def _detector(reducer):
    return DuplicateDetector(
        default_matcher(), weighted_model(), reducer=reducer
    )


def _quads(result):
    return [
        (d.left_id, d.right_id, d.status, d.similarity)
        for d in result.decisions
    ]


def split_scenario(relation):
    """Carve one relation into a base plus a mixed delta batch.

    The delta exercises all three operation kinds: the tail of the
    relation re-appears as *adds* under fresh ids, the first base tuple
    is *modified* (it takes the last base tuple's alternatives), and the
    second base tuple is *deleted*.
    """
    rows = list(relation)
    keep = max(1, len(rows) // 6)
    base_rows, tail = rows[: len(rows) - keep], rows[len(rows) - keep :]
    adds = [
        XTuple(f"delta-{i}", xt.alternatives) for i, xt in enumerate(tail)
    ]
    modify = XTuple(base_rows[0].tuple_id, base_rows[-1].alternatives)
    deletes = [base_rows[1].tuple_id]
    base = XRelation(
        f"{relation.name}-base", relation.schema.attributes, base_rows
    )
    return base, [modify] + adds, deletes


def materialized_union(base, upserts, deletes):
    """The relation a from-scratch run over base ⊎ delta would see."""
    upsert_map = {xt.tuple_id: xt for xt in upserts}
    deleted = set(deletes)
    rows = []
    for xt in base:
        if xt.tuple_id in deleted:
            continue
        rows.append(upsert_map.pop(xt.tuple_id, xt))
    rows.extend(xt for xt in upserts if xt.tuple_id in upsert_map)
    return XRelation(
        f"{base.name}+delta", base.schema.attributes, rows
    )


def _assert_bitwise_equal(result, scratch):
    assert _quads(result) == _quads(scratch)
    assert result.compared_pairs == scratch.compared_pairs
    assert result.relation_size == scratch.relation_size


# ----------------------------------------------------------------------
# Golden equivalence: every reducer, adds + modify + delete
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(REDUCERS))
def test_ingest_matches_from_scratch(name, flat_relation, x_relation):
    factory, kind = REDUCERS[name]
    relation = _relation_for(kind, flat_relation, x_relation)
    base, upserts, deletes = split_scenario(relation)

    session = _detector(factory()).session(base)
    initial = session.detect()
    _assert_bitwise_equal(initial, _detector(factory()).detect(base))

    result = session.ingest(upserts, deletes=deletes)
    union = materialized_union(base, upserts, deletes)
    _assert_bitwise_equal(result, _detector(factory()).detect(union))


@pytest.mark.parametrize("name", ["certain_blocking", "snm"])
def test_ingest_matches_from_scratch_parallel(
    name, flat_relation, x_relation
):
    factory, kind = REDUCERS[name]
    relation = _relation_for(kind, flat_relation, x_relation)
    base, upserts, deletes = split_scenario(relation)
    session = _detector(factory()).session(base, n_jobs=2, chunk_size=8)
    session.detect()
    result = session.ingest(upserts, deletes=deletes)
    union = materialized_union(base, upserts, deletes)
    _assert_bitwise_equal(result, _detector(factory()).detect(union))


@pytest.mark.parametrize("name", ["certain_blocking", "snm"])
def test_ingest_matches_from_scratch_spilled(
    name, tmp_path, flat_relation, x_relation
):
    factory, kind = REDUCERS[name]
    relation = _relation_for(kind, flat_relation, x_relation)
    base, upserts, deletes = split_scenario(relation)
    store = base.spill(str(tmp_path / "base"))
    session = _detector(factory()).session(store)
    session.detect()
    result = session.ingest(upserts, deletes=deletes)
    union = materialized_union(base, upserts, deletes)
    _assert_bitwise_equal(result, _detector(factory()).detect(union))


def test_successive_ingests_stay_equal(flat_relation):
    """Three rounds — adds, then modify, then delete — each bitwise."""
    factory = REDUCERS["certain_blocking"][0]
    base, upserts, deletes = split_scenario(flat_relation)
    adds = [xt for xt in upserts if xt.tuple_id.startswith("delta-")]
    modify = [xt for xt in upserts if not xt.tuple_id.startswith("delta-")]
    session = _detector(factory()).session(base)
    session.detect()

    applied_upserts: list = []
    applied_deletes: list = []
    for batch_upserts, batch_deletes in (
        (adds, []),
        (modify, []),
        ([], deletes),
    ):
        applied_upserts.extend(batch_upserts)
        applied_deletes.extend(batch_deletes)
        result = session.ingest(batch_upserts, deletes=batch_deletes)
        union = materialized_union(base, applied_upserts, applied_deletes)
        _assert_bitwise_equal(result, _detector(factory()).detect(union))


# ----------------------------------------------------------------------
# Delta-only execution
# ----------------------------------------------------------------------


def test_untouched_partitions_are_not_re_executed(flat_relation):
    factory = REDUCERS["certain_blocking"][0]
    base, upserts, deletes = split_scenario(flat_relation)
    session = _detector(factory()).session(base)
    session.detect()
    executed_before = session.stats.partitions_executed
    planned_before = session.stats.partitions_planned
    session.ingest(upserts, deletes=deletes)
    executed = session.stats.partitions_executed - executed_before
    planned = session.stats.partitions_planned - planned_before
    # The delta touches a handful of blocks; the rest splice in.
    assert 0 < executed < planned
    assert session.stats.partitions_reused == planned - executed
    # The refresh's report covers the delta plan only.
    assert session.last_report.partitions == executed


def test_tombstones_record_retracted_pairs(flat_relation):
    factory = REDUCERS["certain_blocking"][0]
    base, _, _ = split_scenario(flat_relation)
    session = _detector(factory()).session(base)
    initial = session.detect()
    victim = next(iter(initial.compared_pairs))[0]
    result = session.ingest(deletes=[victim])
    gone = {
        pair for pair in initial.compared_pairs if victim in pair
    } - result.compared_pairs
    assert set(session.tombstones) == gone
    assert all(victim not in pair for pair in result.compared_pairs)


_CONTENT_REDUCER = CertainKeyBlocking(BLOCK_KEY)


def _partition_content(view, partition):
    """Semantic identity of a partition: its pairs + member documents."""
    working_set = view.fetch(partition.members)
    return (
        partition.pairs,
        tuple(
            json.dumps(
                encode_xtuple(working_set[member], exact=True),
                sort_keys=True,
            )
            for member in partition.members
        ),
    )


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_delta_plan_never_contains_an_untouched_partition(
    data, flat_relation
):
    """For random mixes of modifies/deletes/adds, every partition the
    delta plan re-executes differs from all pre-delta partitions, and
    every skipped partition exists untouched in the pre-delta plan."""
    rows = list(flat_relation)
    count = len(rows)
    view = SessionStore(flat_relation)
    before = plan_candidates(_CONTENT_REDUCER, view)
    memo: dict[str, str] = {}
    fps_before = plan_fingerprints(view, before, tuple_fingerprints=memo)
    retained = set(fps_before)
    before_keys = {
        _partition_content(view, partition)
        for partition in before.partitions
    }

    modified = data.draw(
        st.sets(st.integers(0, count - 1), max_size=4), label="modified"
    )
    deleted = (
        data.draw(
            st.sets(st.integers(0, count - 1), max_size=3), label="deleted"
        )
        - modified
    )
    added = data.draw(st.integers(0, 2), label="added")
    for index in sorted(modified):
        donor = rows[(index + 7) % count]
        view.upsert(XTuple(rows[index].tuple_id, donor.alternatives))
        memo.pop(rows[index].tuple_id, None)
    for index in sorted(deleted):
        view.delete(rows[index].tuple_id)
        memo.pop(rows[index].tuple_id, None)
    for extra in range(added):
        view.upsert(XTuple(f"added-{extra}", rows[extra].alternatives))

    after = plan_candidates(_CONTENT_REDUCER, view)
    fps_after = plan_fingerprints(view, after, tuple_fingerprints=memo)
    stale = delta_plan(after, fps_after, retained)

    stale_ids = {id(partition) for partition in stale.partitions}
    for partition, fingerprint in zip(after.partitions, fps_after):
        key = _partition_content(view, partition)
        if id(partition) in stale_ids:
            assert key not in before_keys  # touched: must re-execute
        else:
            assert fingerprint in retained
            assert key in before_keys  # untouched: spliced, not re-run


# ----------------------------------------------------------------------
# Persistence and session mechanics
# ----------------------------------------------------------------------


def test_journal_resume_reuses_all_partitions(tmp_path, flat_relation):
    factory = REDUCERS["certain_blocking"][0]
    base, upserts, deletes = split_scenario(flat_relation)
    journal = str(tmp_path / "session")

    first = _detector(factory()).session(
        base, journal=journal, keep_derivations=False
    )
    first.detect()
    ingested = first.ingest(upserts, deletes=deletes)

    resumed = _detector(factory()).session(
        base, journal=journal, keep_derivations=False
    )
    result = resumed.detect()
    assert _quads(result) == _quads(ingested)
    assert resumed.stats.partitions_executed == 0
    assert (
        resumed.stats.partitions_reused == resumed.stats.partitions_planned
    )
    assert resumed.last_report is None  # nothing ran

    union = materialized_union(base, upserts, deletes)
    scratch = _detector(factory()).detect(union, keep_derivations=False)
    _assert_bitwise_equal(result, scratch)


def test_journal_resume_with_derivations_replans(tmp_path, flat_relation):
    """With derivations kept, decisions are not portable: the resumed
    session replays the journal and recomputes, still bitwise."""
    factory = REDUCERS["certain_blocking"][0]
    base, upserts, deletes = split_scenario(flat_relation)
    journal = str(tmp_path / "session")
    first = _detector(factory()).session(base, journal=journal)
    first.detect()
    ingested = first.ingest(upserts, deletes=deletes)

    resumed = _detector(factory()).session(base, journal=journal)
    result = resumed.detect()
    assert _quads(result) == _quads(ingested)
    assert resumed.stats.partitions_executed > 0


def test_consolidation_session_restricts_to_cross_pairs(flat_relation):
    """within_sources=False answers the ℛ1/ℛ2 question with the session
    delta as the second source: base↔delta pairs only, in union order."""
    factory = REDUCERS["certain_blocking"][0]
    base, upserts, _ = split_scenario(flat_relation)
    adds = [xt for xt in upserts if xt.tuple_id.startswith("delta-")]
    session = _detector(factory()).session(base, within_sources=False)
    assert session.detect().decisions == ()  # single source: all pruned
    result = session.ingest(adds)

    union = materialized_union(base, adds, [])
    scratch = _detector(factory()).detect(union)
    added_ids = {xt.tuple_id for xt in adds}
    expected = [
        quad
        for quad in _quads(scratch)
        if (quad[0] in added_ids) != (quad[1] in added_ids)
    ]
    assert _quads(result) == expected


def test_session_rejects_striped_scheduling(flat_relation):
    base, _, _ = split_scenario(flat_relation)
    detector = _detector(REDUCERS["certain_blocking"][0]())
    with pytest.raises(ValueError, match="scheduling"):
        detector.session(base, scheduling="striped")


def test_ingest_validates_operations(flat_relation):
    base, _, _ = split_scenario(flat_relation)
    session = _detector(REDUCERS["certain_blocking"][0]()).session(base)
    with pytest.raises(KeyError):
        session.ingest(deletes=["no-such-id"])
    with pytest.raises(SchemaMismatchError):
        session.ingest(
            [XTuple("bad", (TupleAlternative({"wrong": "v"}, 1.0),))]
        )
