"""Golden suite for multi-source detection (ℛ1/ℛ2 consolidation).

The acceptance pin: for every Section-V reducer,
``detect_between(left, right)`` — planned over the
:class:`~repro.pdb.storage.MultiSourceStore` *view*, never a
materialized union — produces bitwise the decisions of
``detect(left.union(right))``, serial, fanned out (``n_jobs=2``),
streamed, and with both sources spilled to out-of-core stores.

On top of the pin: source tagging, cross-source pruning
(``within_sources=False`` equals the union run filtered to cross
pairs), per-source preparation hooks, and the view's store semantics
(multi-store working-set fetch, id collision / schema mismatch errors).
"""

from __future__ import annotations

import pytest

from repro.datagen import DatasetConfig, generate_dataset
from repro.experiments.quality import default_matcher, weighted_model
from repro.matching import DuplicateDetector, FullComparison
from repro.matching.executor import cross_source_plan, plan_sources
from repro.pdb.errors import DuplicateTupleIdError, SchemaMismatchError
from repro.pdb.io import open_store
from repro.pdb.relations import XRelation
from repro.pdb.storage import (
    MultiSourceStore,
    XTupleStore,
    combine_sources,
    fetch_tuples,
)
from repro.reduction import (
    AlternativeKeyBlocking,
    AlternativeSorting,
    CertainKeyBlocking,
    MultiPassBlocking,
    MultiPassSNM,
    PhoneticBlocking,
    SortedNeighborhood,
    SubstringKey,
    UncertainKeyClusteringBlocking,
    UncertainKeySNM,
    plan_candidates,
)

SORT_KEY = SubstringKey([("name", 3), ("job", 2)])
BLOCK_KEY = SubstringKey([("name", 1), ("job", 1)])


def r34() -> XRelation:
    """The paper's ℛ34 (5 x-tuples) — small enough for world passes."""
    from repro.experiments.paper_data import MU_JOBS, relation_r34

    return XRelation(
        "R34x",
        ("name", "job"),
        [
            xt.expand_patterns({"job": MU_JOBS}).expand()
            for xt in relation_r34()
        ],
    )


def _halves(relation: XRelation) -> tuple[XRelation, XRelation]:
    """Split one fixture relation into two autonomous 'sources'."""
    ids = relation.tuple_ids
    half = len(ids) // 2
    return (
        XRelation("Left", relation.schema, [relation.get(i) for i in ids[:half]]),
        XRelation("Right", relation.schema, [relation.get(i) for i in ids[half:]]),
    )


@pytest.fixture(scope="module")
def flat_halves():
    return _halves(
        generate_dataset(
            DatasetConfig(entity_count=20, seed=91), flat=True
        ).relation
    )


@pytest.fixture(scope="module")
def x_halves():
    return _halves(
        generate_dataset(DatasetConfig(entity_count=12, seed=93)).relation
    )


@pytest.fixture(scope="module")
def spilled_halves(tmp_path_factory, flat_halves, x_halves):
    """Every source spilled separately, with a tiny page cache."""
    root = tmp_path_factory.mktemp("sources")
    spilled = {}
    for kind, halves in (
        ("flat", flat_halves),
        ("x", x_halves),
        ("r34", _halves(r34())),
    ):
        paths = []
        for side, relation in zip(("left", "right"), halves):
            path = str(root / f"{kind}-{side}")
            relation.spill(path, segment_size=5, page_size=4, max_pages=3)
            paths.append(path)
        spilled[kind] = tuple(paths)
    return spilled


#: The same ten-reducer matrix the planner/storage/pushdown suites pin.
REDUCERS = {
    "full": (lambda: FullComparison(), "flat"),
    "certain_blocking": (lambda: CertainKeyBlocking(BLOCK_KEY), "x"),
    "alternative_blocking": (
        lambda: AlternativeKeyBlocking(BLOCK_KEY),
        "x",
    ),
    "snm": (lambda: SortedNeighborhood(SORT_KEY, window=5), "flat"),
    "alternative_sorting": (
        lambda: AlternativeSorting(SORT_KEY, window=4),
        "x",
    ),
    "uncertain_snm": (lambda: UncertainKeySNM(SORT_KEY, window=4), "x"),
    "uncertain_clustering": (
        lambda: UncertainKeyClusteringBlocking(BLOCK_KEY, radius=0.4),
        "x",
    ),
    "phonetic_blocking": (lambda: PhoneticBlocking(), "x"),
    "multipass_snm": (
        lambda: MultiPassSNM(
            SORT_KEY, window=3, selection="diverse", world_count=2
        ),
        "r34",
    ),
    "multipass_blocking": (
        lambda: MultiPassBlocking(
            BLOCK_KEY, selection="diverse", world_count=2
        ),
        "r34",
    ),
}


def _halves_for(kind, flat_halves, x_halves):
    if kind == "flat":
        return flat_halves
    if kind == "x":
        return x_halves
    return _halves(r34())


def _detector(factory):
    return DuplicateDetector(
        default_matcher(), weighted_model(), reducer=factory()
    )


def _triples(result):
    return [
        (d.left_id, d.right_id, d.status, d.similarity)
        for d in result.decisions
    ]


# ----------------------------------------------------------------------
# Golden equivalence: detect_between == detect(union), all reducers
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(REDUCERS))
def test_detect_between_is_bitwise_the_union_run(
    name, flat_halves, x_halves, spilled_halves
):
    """The acceptance pin: serial / n_jobs=2 / streamed / spilled."""
    factory, kind = REDUCERS[name]
    left, right = _halves_for(kind, flat_halves, x_halves)
    reference = _detector(factory).detect(left.union(right))

    serial = _detector(factory).detect_between(left, right)
    parallel = _detector(factory).detect_between(
        left, right, n_jobs=2, chunk_size=7
    )
    slices = list(
        _detector(factory).detect_between(
            left, right, stream=True, keep_compared_pairs=False
        )
    )

    assert _triples(serial) == _triples(reference)
    assert _triples(parallel) == _triples(reference)
    assert serial.compared_pairs == reference.compared_pairs
    assert serial.relation_size == reference.relation_size

    streamed = [t for piece in slices for t in _triples(piece)]
    assert streamed == _triples(reference)
    union_plan = plan_candidates(factory(), left.union(right))
    assert [piece.partition_label for piece in slices] == [
        partition.label for partition in union_plan
    ]

    # Both sources spilled: no union is ever materialized — the view
    # fetches working sets from each store separately.
    left_path, right_path = spilled_halves[kind]
    left_store = open_store(left_path, page_size=4, max_pages=3)
    right_store = open_store(right_path, page_size=4, max_pages=3)
    spilled = _detector(factory).detect_between(left_store, right_store)
    assert _triples(spilled) == _triples(reference)
    spilled_parallel = _detector(factory).detect_between(
        left_store, right_store, n_jobs=2, chunk_size=7
    )
    assert _triples(spilled_parallel) == _triples(reference)


@pytest.mark.parametrize("name", sorted(REDUCERS))
def test_cross_only_equals_filtered_union_run(
    name, flat_halves, x_halves
):
    """within_sources=False == union decisions filtered to cross pairs."""
    factory, kind = REDUCERS[name]
    left, right = _halves_for(kind, flat_halves, x_halves)
    reference = _detector(factory).detect(left.union(right))
    left_ids = set(left.tuple_ids)

    cross = _detector(factory).detect_between(
        left, right, within_sources=False
    )
    expected = [
        t
        for t in _triples(reference)
        if (t[0] in left_ids) != (t[1] in left_ids)
    ]
    assert _triples(cross) == expected


def test_detect_between_is_stealing_compatible(flat_halves):
    left, right = flat_halves
    factory = lambda: CertainKeyBlocking(BLOCK_KEY)  # noqa: E731
    reference = _detector(factory).detect(left.union(right))
    stolen = _detector(factory).detect_between(
        left, right, scheduling="stealing", split_pairs=7, n_jobs=2
    )
    assert _triples(stolen) == _triples(reference)


def test_striped_detect_between_still_works(flat_halves):
    left, right = flat_halves
    factory = lambda: SortedNeighborhood(SORT_KEY, window=5)  # noqa: E731
    reference = _detector(factory).detect(left.union(right))
    striped = _detector(factory).detect_between(
        left, right, scheduling="striped"
    )
    assert _triples(striped) == _triples(reference)
    with pytest.raises(ValueError, match="within_sources=False"):
        _detector(factory).detect_between(
            left, right, scheduling="striped", within_sources=False
        )


# ----------------------------------------------------------------------
# Source tags and pruning
# ----------------------------------------------------------------------


def test_plan_sources_tags_every_partition(x_halves):
    left, right = x_halves
    view = MultiSourceStore([left, right])
    plan = plan_sources(CertainKeyBlocking(BLOCK_KEY), view)
    assert plan.source_names == ("Left", "Right")
    assert plan.partitions
    for partition in plan.partitions:
        assert partition.sources is not None
        assert set(partition.sources) <= {"Left", "Right"}
        expected = tuple(
            dict.fromkeys(view.source_of(m) for m in partition.members)
        )
        assert partition.sources == expected
    # The tagged plan still equals the union plan pair for pair.
    union_plan = plan_candidates(
        CertainKeyBlocking(BLOCK_KEY), left.union(right)
    )
    assert list(plan.pairs()) == list(union_plan.pairs())


def test_cross_source_plan_prunes_single_source_partitions(x_halves):
    left, right = x_halves
    view = MultiSourceStore([left, right])
    plan = plan_sources(CertainKeyBlocking(BLOCK_KEY), view)
    cross = cross_source_plan(plan, view)
    assert "[cross-source]" in cross.source
    kept_labels = {partition.label for partition in cross.partitions}
    for partition in plan.partitions:
        if len(partition.sources) < 2:
            assert partition.label not in kept_labels
    for partition in cross.partitions:
        assert len(partition.sources) == 2
        for pair in partition.pairs:
            assert view.source_of(pair[0]) != view.source_of(pair[1])
    # Cross pairs are a subsequence of the tagged plan's pair order.
    cross_pairs = list(cross.pairs())
    order = {pair: i for i, pair in enumerate(plan.pairs())}
    assert cross_pairs == sorted(cross_pairs, key=order.__getitem__)


def test_cross_source_plan_requires_tags(x_halves):
    left, right = x_halves
    view = MultiSourceStore([left, right])
    untagged = plan_candidates(CertainKeyBlocking(BLOCK_KEY), view)
    with pytest.raises(ValueError, match="source-tagged"):
        cross_source_plan(untagged, view)


# ----------------------------------------------------------------------
# Per-source preparation (facade satellite)
# ----------------------------------------------------------------------


def test_preparation_hook_runs_per_source_before_planning(flat_halves):
    left, right = flat_halves
    prepared_names: list[str] = []

    def prepare(relation: XRelation) -> XRelation:
        prepared_names.append(relation.name)
        return XRelation(
            relation.name,
            relation.schema,
            list(relation),
        )

    factory = lambda: CertainKeyBlocking(BLOCK_KEY)  # noqa: E731
    detector = DuplicateDetector(
        default_matcher(),
        weighted_model(),
        reducer=factory(),
        preparation=prepare,
    )
    result = detector.detect_between(left, right)
    # The hook saw each autonomous source separately — never the union.
    assert prepared_names == ["Left", "Right"]
    reference = _detector(factory).detect(left.union(right))
    assert _triples(result) == _triples(reference)


def test_preparation_hook_rejects_store_sources(tmp_path, flat_halves):
    left, right = flat_halves
    store = left.spill(str(tmp_path / "left"))
    detector = DuplicateDetector(
        default_matcher(),
        weighted_model(),
        reducer=CertainKeyBlocking(BLOCK_KEY),
        preparation=lambda relation: relation,
    )
    with pytest.raises(TypeError, match="materialize each store"):
        detector.detect_between(store, right)


# ----------------------------------------------------------------------
# The view's store semantics
# ----------------------------------------------------------------------


def test_view_satisfies_the_store_protocol(x_halves):
    left, right = x_halves
    view = MultiSourceStore([left, right])
    union = left.union(right)
    assert isinstance(view, XTupleStore)
    assert view.tuple_ids == union.tuple_ids
    assert len(view) == len(union)
    assert view.schema == union.schema
    some = union.tuple_ids[0]
    assert some in view and "no-such-id" not in view
    assert view.get(some).tuple_id == some
    with pytest.raises(KeyError):
        view.get("no-such-id")
    assert [xt.tuple_id for xt in view] == list(union.tuple_ids)


def test_view_fetch_preserves_request_order(x_halves):
    left, right = x_halves
    view = MultiSourceStore([left, right])
    # Interleave sources; the merged mapping must keep request order.
    wanted = [
        tuple_id
        for pair in zip(left.tuple_ids, right.tuple_ids)
        for tuple_id in reversed(pair)
    ]
    working_set = view.fetch(wanted)
    assert list(working_set) == wanted
    assert working_set == fetch_tuples(left.union(right), wanted)
    with pytest.raises(KeyError):
        view.fetch(["no-such-id"])


def test_view_rejects_id_collisions_and_schema_mismatch(x_halves):
    left, _ = x_halves
    with pytest.raises(DuplicateTupleIdError):
        MultiSourceStore([left, left])
    other_schema = XRelation("Other", ("name",), [])
    with pytest.raises(SchemaMismatchError):
        MultiSourceStore([left, other_schema])
    with pytest.raises(ValueError):
        MultiSourceStore([])


def test_view_disambiguates_colliding_source_names(x_halves):
    left, right = x_halves
    renamed = XRelation("Left", right.schema, list(right))
    view = MultiSourceStore([left, renamed])
    assert view.source_names == ("Left#0", "Left#1")
    assert view.source_of(left.tuple_ids[0]) == "Left#0"
    assert view.source_of(renamed.tuple_ids[0]) == "Left#1"


def test_combine_sources_passes_single_store_through(x_halves):
    left, right = x_halves
    assert combine_sources([left]) is left
    view = combine_sources([left, right])
    assert isinstance(view, MultiSourceStore)
    assert view.name == "Left∪Right"


def test_three_way_consolidation(flat_halves, x_halves):
    """detect_between takes N sources, not just two."""
    left, right = flat_halves
    third_ids = right.tuple_ids[: len(right.tuple_ids) // 2]
    second = XRelation(
        "Mid", right.schema, [right.get(i) for i in third_ids]
    )
    rest = XRelation(
        "Tail",
        right.schema,
        [right.get(i) for i in right.tuple_ids[len(third_ids):]],
    )
    factory = lambda: CertainKeyBlocking(BLOCK_KEY)  # noqa: E731
    reference = _detector(factory).detect(
        left.union(second).union(rest)
    )
    threeway = _detector(factory).detect_between(left, second, rest)
    assert _triples(threeway) == _triples(reference)
