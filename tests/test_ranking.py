"""Unit tests for uncertain-key ranking (repro.pdb.ranking)."""

from __future__ import annotations

import pytest

from repro.pdb import (
    RANKING_FUNCTIONS,
    expected_rank_order,
    most_probable_key_order,
    prf_e_order,
)


def certain(key: str) -> list[tuple[str, float]]:
    return [(key, 1.0)]


class TestExpectedRankOrder:
    def test_certain_keys_sort_lexicographically(self):
        items = [("b", certain("beta")), ("a", certain("alpha"))]
        assert expected_rank_order(items) == ["a", "b"]

    def test_ties_preserve_input_order(self):
        items = [("x", certain("same")), ("y", certain("same"))]
        assert expected_rank_order(items) == ["x", "y"]

    def test_uncertain_key_placed_by_expectation(self):
        # keys: a(0), c(1), e(2); item m has 50/50 a/e ⇒ expected 1.0,
        # equal to certain c — tie broken by input order.
        items = [
            ("m", [("a", 0.5), ("e", 0.5)]),
            ("c", certain("c")),
        ]
        assert expected_rank_order(items) == ["m", "c"]

    def test_probability_shifts_position(self):
        # m is mostly "a" ⇒ should come before certain "c".
        items = [
            ("c", certain("c")),
            ("m", [("a", 0.9), ("e", 0.1)]),
        ]
        assert expected_rank_order(items) == ["m", "c"]

    def test_maybe_mass_is_conditioned_away(self):
        """Scaling a key distribution must not change the order."""
        items_full = [
            ("m", [("a", 0.9), ("e", 0.1)]),
            ("c", certain("c")),
        ]
        items_scaled = [
            ("m", [("a", 0.45), ("e", 0.05)]),  # maybe tuple, mass 0.5
            ("c", certain("c")),
        ]
        assert expected_rank_order(items_full) == expected_rank_order(
            items_scaled
        )

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            expected_rank_order([("x", [])])

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            expected_rank_order([("x", [("a", 0.0)])])


class TestMostProbableKeyOrder:
    def test_sorts_by_modal_key(self):
        items = [
            ("x", [("zeta", 0.6), ("alpha", 0.4)]),
            ("y", certain("beta")),
        ]
        assert most_probable_key_order(items) == ["y", "x"]

    def test_tie_on_key_preserves_input_order(self):
        items = [("x", certain("k")), ("y", certain("k"))]
        assert most_probable_key_order(items) == ["x", "y"]


class TestPrfEOrder:
    def test_alpha_bounds_validated(self):
        with pytest.raises(ValueError):
            prf_e_order([("x", certain("a"))], alpha=1.0)
        with pytest.raises(ValueError):
            prf_e_order([("x", certain("a"))], alpha=0.0)

    def test_certain_keys_sort_lexicographically(self):
        items = [("b", certain("beta")), ("a", certain("alpha"))]
        assert prf_e_order(items) == ["a", "b"]

    def test_high_alpha_matches_expected_rank_on_paper_data(self):
        # The Figure-13 distributions.
        items = [
            ("t31", [("Johpi", 0.7), ("Johmu", 0.3)]),
            ("t32", [("Timme", 0.3), ("Jimme", 0.2), ("Jimba", 0.4)]),
            ("t41", [("Johpi", 1.0)]),
            ("t42", [("Tomme", 0.8)]),
            ("t43", [("Joh", 0.2), ("Seapi", 0.6)]),
        ]
        assert prf_e_order(items, alpha=0.99) == expected_rank_order(items)


class TestRegistry:
    def test_all_functions_registered(self):
        assert set(RANKING_FUNCTIONS) == {
            "expected_rank",
            "most_probable_key",
            "prf_e",
        }

    def test_registered_functions_are_callable(self):
        items = [("a", certain("x")), ("b", certain("y"))]
        for fn in RANKING_FUNCTIONS.values():
            assert fn(items) == ["a", "b"]
