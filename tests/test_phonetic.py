"""Unit tests for phonetic encodings (repro.similarity.phonetic)."""

from __future__ import annotations

import pytest

from repro.similarity import (
    NYSIIS,
    SOUNDEX,
    SOUNDEX_LEVENSHTEIN,
    nysiis,
    nysiis_similarity,
    phonetic_backoff,
    soundex,
    soundex_similarity,
)


class TestSoundex:
    @pytest.mark.parametrize(
        ("name", "code"),
        [
            ("Robert", "R163"),
            ("Rupert", "R163"),
            ("Ashcraft", "A261"),
            ("Ashcroft", "A261"),
            ("Tymczak", "T522"),
            ("Pfister", "P236"),
            ("Honeyman", "H555"),
            ("Jackson", "J250"),
        ],
    )
    def test_canonical_codes(self, name, code):
        assert soundex(name) == code

    def test_case_insensitive(self):
        assert soundex("TIM") == soundex("tim")

    def test_non_alpha_ignored(self):
        assert soundex("O'Brien") == soundex("OBrien")

    def test_empty_input(self):
        assert soundex("") == "0000"
        assert soundex("123") == "0000"

    def test_short_names_zero_padded(self):
        assert len(soundex("Al")) == 4

    def test_similarity_same_code(self):
        assert soundex_similarity("Robert", "Rupert") == 1.0

    def test_similarity_different_code(self):
        assert soundex_similarity("Robert", "Baker") == 0.0


class TestNysiis:
    @pytest.mark.parametrize(
        ("name", "code"),
        [
            ("MACINTOSH", "MCANT"),
            ("KNIGHT", "NAGT"),
            ("PHILLIPSON", "FALAPSAN"),
        ],
    )
    def test_canonical_codes(self, name, code):
        assert nysiis(name) == code

    def test_spelling_variants_share_code(self):
        assert nysiis("Stephan") == nysiis("Stefan")

    def test_empty_input(self):
        assert nysiis("") == ""
        assert nysiis_similarity("", "") == 1.0

    def test_similarity(self):
        assert nysiis_similarity("Stephan", "Stefan") == 1.0
        assert nysiis_similarity("Stephan", "Walter") == 0.0


class TestBackoff:
    def test_phonetic_agreement_dominates(self):
        assert SOUNDEX_LEVENSHTEIN("Robert", "Rupert") == 1.0

    def test_fallback_is_dampened(self):
        from repro.similarity import levenshtein_similarity

        # Tim/Dan disagree phonetically (T500 vs D500), so the blend is
        # the dampened edit similarity.
        assert soundex("Tim") != soundex("Dan")
        raw = levenshtein_similarity("Tim", "Dan")
        assert SOUNDEX_LEVENSHTEIN("Tim", "Dan") == pytest.approx(0.9 * raw)

    def test_custom_fallback(self):
        blend = phonetic_backoff(
            soundex_similarity, fallback=lambda a, b: 0.5
        )
        assert blend("completely", "different") == pytest.approx(0.45)

    def test_bounded(self):
        for pair in [("a", "b"), ("Tim", "Timothy"), ("", "x")]:
            assert 0.0 <= SOUNDEX_LEVENSHTEIN(*pair) <= 1.0


class TestRegistryIntegration:
    def test_comparators_registered(self):
        from repro.similarity import COMPARATORS

        assert "soundex" in COMPARATORS
        assert "nysiis" in COMPARATORS

    def test_named_instances(self):
        assert SOUNDEX("Robert", "Rupert") == 1.0
        assert NYSIIS("Stephan", "Stefan") == 1.0

    def test_usable_in_uncertain_lift(self):
        """Phonetic comparators slot into the Equation-5 machinery."""
        from repro.pdb import ProbabilisticValue
        from repro.similarity import UncertainValueComparator

        comparator = UncertainValueComparator(SOUNDEX)
        left = ProbabilisticValue({"Robert": 0.7, "Walter": 0.3})
        right = ProbabilisticValue.certain("Rupert")
        assert comparator(left, right) == pytest.approx(0.7)
