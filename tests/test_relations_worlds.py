"""Unit tests for relations, possible worlds and conditioning."""

from __future__ import annotations

import random

import pytest

from repro.pdb import (
    ConditioningError,
    DuplicateTupleIdError,
    PossibleWorld,
    ProbabilisticRelation,
    ProbabilisticTuple,
    Schema,
    SchemaMismatchError,
    WorldEnumerationError,
    XRelation,
    XTuple,
    condition_on_presence,
    condition_worlds,
    enumerate_full_worlds,
    enumerate_worlds,
    most_probable_world,
    presence_probability,
    sample_world,
    value_in_world,
    world_count,
    world_overlap,
)


def make_xtuple(tid: str, rows) -> XTuple:
    return XTuple.build(tid, rows)


class TestSchema:
    def test_attributes_ordered(self):
        assert Schema(["name", "job"]).attributes == ("name", "job")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaMismatchError):
            Schema(["a", "a"])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaMismatchError):
            Schema([])

    def test_index_of(self):
        assert Schema(["a", "b"]).index_of("b") == 1

    def test_index_of_unknown_raises(self):
        with pytest.raises(KeyError):
            Schema(["a"]).index_of("z")

    def test_equality(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a", "b"]) != Schema(["b", "a"])

    def test_contains_and_len(self):
        schema = Schema(["a", "b"])
        assert "a" in schema
        assert len(schema) == 2


class TestRelations:
    def test_duplicate_tuple_id_rejected(self):
        with pytest.raises(DuplicateTupleIdError):
            ProbabilisticRelation(
                "R",
                ["a"],
                [
                    ProbabilisticTuple("t1", {"a": "x"}),
                    ProbabilisticTuple("t1", {"a": "y"}),
                ],
            )

    def test_schema_mismatch_rejected(self):
        with pytest.raises(SchemaMismatchError):
            ProbabilisticRelation(
                "R", ["a"], [ProbabilisticTuple("t1", {"b": "x"})]
            )

    def test_lookup_and_contains(self):
        relation = ProbabilisticRelation(
            "R", ["a"], [ProbabilisticTuple("t1", {"a": "x"})]
        )
        assert relation.get("t1")["a"].certain_value == "x"
        assert "t1" in relation
        assert "t2" not in relation

    def test_union_requires_same_schema(self):
        left = XRelation("L", ["a"], [XTuple.certain("t1", {"a": "x"})])
        right = XRelation("R", ["b"], [XTuple.certain("t2", {"b": "y"})])
        with pytest.raises(SchemaMismatchError):
            left.union(right)

    def test_union_concatenates(self):
        left = XRelation("L", ["a"], [XTuple.certain("t1", {"a": "x"})])
        right = XRelation("R", ["a"], [XTuple.certain("t2", {"a": "y"})])
        union = left.union(right)
        assert union.tuple_ids == ("t1", "t2")

    def test_flat_to_x_relation(self):
        relation = ProbabilisticRelation(
            "R", ["a"], [ProbabilisticTuple("t1", {"a": "x"}, 0.5)]
        )
        xrel = relation.to_x_relation()
        assert xrel.get("t1").probability == pytest.approx(0.5)

    def test_alternative_count(self):
        xrel = XRelation(
            "R",
            ["a"],
            [
                XTuple.build("t1", [({"a": "x"}, 0.5), ({"a": "y"}, 0.5)]),
                XTuple.certain("t2", {"a": "z"}),
            ],
        )
        assert xrel.alternative_count() == 3

    def test_conditioned_relation(self):
        xrel = XRelation(
            "R", ["a"], [XTuple.build("t1", [({"a": "x"}, 0.5)])]
        )
        assert xrel.conditioned().get("t1").probability == pytest.approx(1.0)

    def test_pretty_renders_rows(self):
        relation = ProbabilisticRelation(
            "R", ["a"], [ProbabilisticTuple("t1", {"a": "x"})]
        )
        assert "R(a)" in relation.pretty()
        assert "t1" in relation.pretty()


class TestWorldEnumeration:
    def setup_method(self):
        self.t32 = make_xtuple(
            "t32",
            [
                ({"name": "Tim"}, 0.3),
                ({"name": "Jim"}, 0.2),
                ({"name": "Kim"}, 0.4),
            ],
        )
        self.t42 = make_xtuple("t42", [({"name": "Tom"}, 0.8)])

    def test_world_count(self):
        # (3 alternatives + absence) × (1 alternative + absence)
        assert world_count([self.t32, self.t42]) == 8

    def test_world_count_certain_tuple(self):
        certain = XTuple.certain("t", {"name": "x"})
        assert world_count([certain]) == 1

    def test_enumeration_probabilities_sum_to_one(self):
        worlds = list(enumerate_worlds([self.t32, self.t42]))
        assert len(worlds) == 8
        assert sum(w.probability for w in worlds) == pytest.approx(1.0)

    def test_enumeration_bound_enforced(self):
        xtuples = [
            make_xtuple(f"t{i}", [({"a": "x"}, 0.5), ({"a": "y"}, 0.4)])
            for i in range(30)
        ]
        with pytest.raises(WorldEnumerationError):
            list(enumerate_worlds(xtuples, max_worlds=1000))

    def test_full_worlds_conditioned(self):
        full = enumerate_full_worlds([self.t32, self.t42])
        assert len(full) == 3
        assert sum(w.probability for w in full) == pytest.approx(1.0)

    def test_full_worlds_unconditioned(self):
        full = enumerate_full_worlds(
            [self.t32, self.t42], renormalize=False
        )
        assert sum(w.probability for w in full) == pytest.approx(0.72)

    def test_most_probable_world(self):
        world = most_probable_world([self.t32, self.t42])
        assert world.alternative_index("t32") == 2  # Kim, 0.4
        assert world.alternative_index("t42") == 0

    def test_most_probable_world_may_drop_unlikely_tuple(self):
        unlikely = make_xtuple("u", [({"a": "x"}, 0.2)])
        world = most_probable_world([unlikely], require_all=False)
        assert not world.contains("u")

    def test_value_in_world(self):
        worlds = list(enumerate_worlds([self.t32]))
        first_full = next(w for w in worlds if w.contains("t32"))
        value = value_in_world(self.t32, first_full, "name")
        assert value is not None
        assert value.is_certain

    def test_value_in_world_absent(self):
        empty = PossibleWorld((), 1.0)
        assert value_in_world(self.t32, empty, "name") is None


class TestWorldSampling:
    def test_sample_distribution_roughly_matches(self):
        rng = random.Random(42)
        xt = make_xtuple("t", [({"a": "x"}, 0.7), ({"a": "y"}, 0.3)])
        counts = {0: 0, 1: 0}
        for _ in range(4000):
            world = sample_world([xt], rng, require_all=True)
            counts[world.alternative_index("t")] += 1
        assert counts[0] / 4000 == pytest.approx(0.7, abs=0.05)

    def test_sample_require_all_never_drops(self):
        rng = random.Random(1)
        maybe = make_xtuple("t", [({"a": "x"}, 0.1)])
        for _ in range(100):
            world = sample_world([maybe], rng, require_all=True)
            assert world.contains("t")

    def test_sample_can_drop_maybe_tuples(self):
        rng = random.Random(2)
        maybe = make_xtuple("t", [({"a": "x"}, 0.1)])
        dropped = sum(
            1
            for _ in range(200)
            if not sample_world([maybe], rng).contains("t")
        )
        assert dropped > 100  # ~90% expected


class TestWorldOverlap:
    def test_identical_worlds_overlap_one(self):
        world = PossibleWorld((("a", 0), ("b", 1)), 0.5)
        assert world_overlap(world, world) == 1.0

    def test_disjoint_choices_overlap_zero(self):
        left = PossibleWorld((("a", 0),), 0.5)
        right = PossibleWorld((("a", 1),), 0.5)
        assert world_overlap(left, right) == 0.0

    def test_partial_overlap(self):
        left = PossibleWorld((("a", 0), ("b", 0)), 0.5)
        right = PossibleWorld((("a", 0), ("b", 1)), 0.5)
        assert world_overlap(left, right) == pytest.approx(0.5)

    def test_absence_counts_as_agreement(self):
        left = PossibleWorld((("a", 0),), 0.5)
        right = PossibleWorld((("a", 0),), 0.5)
        assert world_overlap(left, right) == 1.0

    def test_empty_worlds_fully_overlap(self):
        empty = PossibleWorld((), 1.0)
        assert world_overlap(empty, empty) == 1.0


class TestConditioning:
    def test_presence_probability_factorizes(self):
        t32 = make_xtuple(
            "t32", [({"a": "x"}, 0.3), ({"a": "y"}, 0.6)]
        )
        t42 = make_xtuple("t42", [({"a": "z"}, 0.8)])
        assert presence_probability([t32, t42]) == pytest.approx(0.72)

    def test_condition_on_presence_drops_partial_worlds(self):
        t32 = make_xtuple("t32", [({"a": "x"}, 0.9)])
        t42 = make_xtuple("t42", [({"a": "z"}, 0.8)])
        worlds = list(enumerate_worlds([t32, t42]))
        kept, mass = condition_on_presence(worlds, ["t32", "t42"])
        assert mass == pytest.approx(0.72)
        assert len(kept) == 1
        assert kept[0].probability == pytest.approx(1.0)

    def test_zero_probability_event_raises(self):
        worlds = [PossibleWorld((("a", 0),), 1.0)]
        with pytest.raises(ConditioningError):
            condition_worlds(worlds, lambda w: False)

    def test_condition_worlds_renormalizes(self):
        worlds = [
            PossibleWorld((("a", 0),), 0.25),
            PossibleWorld((("a", 1),), 0.75),
        ]
        kept, mass = condition_worlds(
            worlds, lambda w: w.alternative_index("a") == 0
        )
        assert mass == pytest.approx(0.25)
        assert kept[0].probability == pytest.approx(1.0)
