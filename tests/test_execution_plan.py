"""The block-aware execution planner: plans, scheduling, streaming.

Two invariant families are pinned here:

* **plan structure** — every reducer's plan partitions its legacy pair
  stream: concatenated plan pairs equal the normalized, deduplicated
  ``pairs()`` sequence *in order*, and no pair appears in two
  partitions;
* **execution equivalence** — partitioned scheduling, multiprocessing
  fan-out over whole partitions, and ``stream=True`` all produce exactly
  the decisions of the legacy striped serial pipeline (the seed
  behavior), for every reducer family of Section V.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import DatasetConfig, generate_dataset
from repro.experiments.quality import default_matcher, weighted_model
from repro.matching import DuplicateDetector, FullComparison
from repro.pdb.relations import XRelation
from repro.reduction import (
    AlternativeKeyBlocking,
    AlternativeSorting,
    CandidatePlan,
    CertainKeyBlocking,
    MultiPassBlocking,
    MultiPassSNM,
    PhoneticBlocking,
    PlanBuilder,
    SortedNeighborhood,
    SubstringKey,
    UncertainKeyClusteringBlocking,
    UncertainKeySNM,
    pairs_from_blocks,
    plan_candidates,
    plan_from_blocks,
)
from repro.reduction.plan import partition_vocabulary
from repro.similarity.kernels import SimilarityCache

SORT_KEY = SubstringKey([("name", 3), ("job", 2)])
BLOCK_KEY = SubstringKey([("name", 1), ("job", 1)])


def r34() -> XRelation:
    """The paper's ℛ34 (5 x-tuples) — small enough for world passes."""
    from repro.experiments.paper_data import MU_JOBS, relation_r34

    return XRelation(
        "R34x",
        ("name", "job"),
        [
            xt.expand_patterns({"job": MU_JOBS}).expand()
            for xt in relation_r34()
        ],
    )


@pytest.fixture(scope="module")
def flat_relation():
    return generate_dataset(
        DatasetConfig(entity_count=24, seed=91), flat=True
    ).relation


@pytest.fixture(scope="module")
def x_relation():
    return generate_dataset(DatasetConfig(entity_count=14, seed=93)).relation


#: Reducer factories and which fixture-backed relation they run on.
#: Multi-pass strategies enumerate full worlds, so they get the tiny ℛ34.
REDUCERS = {
    "full": (lambda: FullComparison(), "flat"),
    "certain_blocking": (lambda: CertainKeyBlocking(BLOCK_KEY), "x"),
    "alternative_blocking": (
        lambda: AlternativeKeyBlocking(BLOCK_KEY),
        "x",
    ),
    "snm": (lambda: SortedNeighborhood(SORT_KEY, window=5), "flat"),
    "alternative_sorting": (
        lambda: AlternativeSorting(SORT_KEY, window=4),
        "x",
    ),
    "uncertain_snm": (lambda: UncertainKeySNM(SORT_KEY, window=4), "x"),
    "uncertain_clustering": (
        lambda: UncertainKeyClusteringBlocking(BLOCK_KEY, radius=0.4),
        "x",
    ),
    "phonetic_blocking": (lambda: PhoneticBlocking(), "x"),
    "multipass_snm": (
        lambda: MultiPassSNM(
            SORT_KEY, window=3, selection="diverse", world_count=2
        ),
        "r34",
    ),
    "multipass_blocking": (
        lambda: MultiPassBlocking(
            BLOCK_KEY, selection="diverse", world_count=2
        ),
        "r34",
    ),
}


def _relation_for(kind, flat_relation, x_relation):
    if kind == "flat":
        return flat_relation
    if kind == "x":
        return x_relation
    return r34()


def _legacy_unique_pairs(reducer, relation):
    """The pair sequence the seed pipeline compared, in order."""
    seen = set()
    ordered = []
    for left, right in reducer.pairs(relation):
        if left == right:
            continue
        pair = (left, right) if left <= right else (right, left)
        if pair in seen:
            continue
        seen.add(pair)
        ordered.append(pair)
    return ordered


def _triples(result):
    return [
        (d.left_id, d.right_id, d.status, d.similarity)
        for d in result.decisions
    ]


# ----------------------------------------------------------------------
# Plan structure
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(REDUCERS))
def test_plan_partitions_legacy_pair_stream(
    name, flat_relation, x_relation
):
    factory, kind = REDUCERS[name]
    relation = _relation_for(kind, flat_relation, x_relation)
    reducer = factory()
    plan = plan_candidates(reducer, relation)
    assert isinstance(plan, CandidatePlan)
    assert plan.relation_size == len(relation)
    # Concatenated plan pairs == legacy order; no pair twice.
    assert list(plan.pairs()) == _legacy_unique_pairs(factory(), relation)
    flat = [pair for partition in plan for pair in partition.pairs]
    assert len(flat) == len(set(flat)) == plan.total_pairs
    for partition in plan:
        assert partition.pairs, "empty partitions must not be recorded"
        touched = {tuple_id for pair in partition.pairs for tuple_id in pair}
        assert set(partition.members) == touched


@pytest.mark.parametrize("name", sorted(REDUCERS))
def test_partition_pairs_stay_normalized(name, flat_relation, x_relation):
    factory, kind = REDUCERS[name]
    relation = _relation_for(kind, flat_relation, x_relation)
    plan = plan_candidates(factory(), relation)
    for partition in plan:
        for left, right in partition.pairs:
            assert left < right


def test_legacy_pairs_only_reducer_gets_single_partition(flat_relation):
    class PairsOnly:
        def pairs(self, relation):
            ids = relation.tuple_ids[:6]
            for i, left in enumerate(ids):
                for right in ids[i + 1 :]:
                    yield left, right
                    yield right, left  # duplicates must be dropped

    plan = plan_candidates(PairsOnly(), flat_relation)
    assert len(plan) == 1
    assert plan.partitions[0].label == "all"
    assert plan.total_pairs == 15


def test_blocking_plan_matches_blocks(x_relation):
    blocking = CertainKeyBlocking(BLOCK_KEY)
    plan = blocking.plan(x_relation)
    blocks = blocking.blocks(x_relation)
    multi = {
        key: members
        for key, members in blocks.items()
        if len(members) > 1
    }
    assert len(plan) == len(multi)
    for partition, (key, members) in zip(plan, multi.items()):
        assert partition.label == f"block:{key}"
        assert set(partition.members) <= set(members)


def test_partition_vocabulary_collects_member_values(x_relation):
    plan = CertainKeyBlocking(BLOCK_KEY).plan(x_relation)
    partition = plan.partitions[0]
    vocabulary = partition_vocabulary(x_relation, partition)
    assert set(vocabulary) <= {"name", "job"}
    observed_names = set(vocabulary.get("name", ()))
    for tuple_id in partition.members:
        for alternative in x_relation.get(tuple_id).alternatives:
            for outcome in alternative.value("name").support:
                assert outcome in observed_names


@settings(max_examples=60, deadline=None)
@given(
    blocks=st.lists(
        st.lists(
            st.integers(min_value=0, max_value=12).map("t{}".format),
            min_size=1,
            max_size=5,
        ),
        min_size=1,
        max_size=6,
    )
)
def test_plan_from_blocks_equals_pairs_from_blocks(blocks):
    """Property: block plans reproduce the legacy flattened stream."""
    mapping = {f"b{i}": members for i, members in enumerate(blocks)}
    plan = plan_from_blocks(mapping, relation_size=13, source="prop")
    assert list(plan.pairs()) == list(pairs_from_blocks(mapping))


@settings(max_examples=40, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9).map("t{}".format),
            st.integers(min_value=0, max_value=9).map("t{}".format),
        ),
        max_size=40,
    ),
    split=st.integers(min_value=1, max_value=40),
)
def test_plan_builder_dedups_like_the_pipeline(pairs, split):
    """Property: builder output is invariant under partition boundaries."""
    one = PlanBuilder()
    one.add("all", pairs)
    two = PlanBuilder()
    two.add("head", pairs[:split])
    two.add("tail", pairs[split:])
    plan_one = one.build(relation_size=10, source="prop")
    plan_two = two.build(relation_size=10, source="prop")
    assert list(plan_one.pairs()) == list(plan_two.pairs())


# ----------------------------------------------------------------------
# Execution equivalence (the acceptance pin)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(REDUCERS))
def test_partitioned_and_streamed_match_serial_seed_pipeline(
    name, flat_relation, x_relation
):
    """Partitioned, parallel and streamed execution are bitwise-serial."""
    factory, kind = REDUCERS[name]
    relation = _relation_for(kind, flat_relation, x_relation)

    def detector():
        return DuplicateDetector(
            default_matcher(), weighted_model(), reducer=factory()
        )

    reference = detector().detect(relation, scheduling="striped")
    partitioned = detector().detect(relation)
    parallel = detector().detect(relation, n_jobs=2, chunk_size=7)
    slices = list(detector().detect(relation, stream=True))

    assert _triples(partitioned) == _triples(reference)
    assert _triples(parallel) == _triples(reference)
    assert partitioned.compared_pairs == reference.compared_pairs
    assert parallel.compared_pairs == reference.compared_pairs

    streamed = [triple for piece in slices for triple in _triples(piece)]
    assert streamed == _triples(reference)
    plan = plan_candidates(factory(), relation)
    assert [piece.partition_label for piece in slices] == [
        partition.label for partition in plan
    ]
    union = frozenset().union(*(s.compared_pairs for s in slices)) if slices else frozenset()
    assert union == reference.compared_pairs


def test_stream_slices_align_with_partitions(x_relation):
    reducer = CertainKeyBlocking(BLOCK_KEY)
    detector = DuplicateDetector(
        default_matcher(), weighted_model(), reducer=reducer
    )
    plan = reducer.plan(x_relation)
    slices = list(detector.detect(x_relation, stream=True))
    assert len(slices) == len(plan)
    for piece, partition in zip(slices, plan):
        assert len(piece.decisions) == len(partition.pairs)
        assert piece.compared_pairs == frozenset(partition.pairs)


def test_keep_compared_pairs_false_drops_the_pair_set(flat_relation):
    def detector():
        return DuplicateDetector(default_matcher(), weighted_model())

    reference = detector().detect(flat_relation)
    slim = detector().detect(flat_relation, keep_compared_pairs=False)
    assert _triples(slim) == _triples(reference)
    assert slim.compared_pairs == frozenset()
    striped_slim = detector().detect(
        flat_relation, scheduling="striped", keep_compared_pairs=False
    )
    assert _triples(striped_slim) == _triples(reference)
    assert striped_slim.compared_pairs == frozenset()
    # Clustering still works from the decisions alone.
    assert slim.clusters().clusters == reference.clusters().clusters


def test_invalid_scheduling_options_raise(flat_relation):
    detector = DuplicateDetector(default_matcher(), weighted_model())
    with pytest.raises(ValueError):
        detector.detect(flat_relation, scheduling="ring")
    with pytest.raises(ValueError):
        detector.detect(flat_relation, scheduling="striped", stream=True)


def test_detector_plan_exposes_the_execution_plan(x_relation):
    reducer = CertainKeyBlocking(BLOCK_KEY)
    detector = DuplicateDetector(
        default_matcher(), weighted_model(), reducer=reducer
    )
    plan = detector.plan(x_relation)
    assert list(plan.pairs()) == _legacy_unique_pairs(reducer, x_relation)


# ----------------------------------------------------------------------
# Cache pre-warm / freeze
# ----------------------------------------------------------------------


def test_cache_warm_precomputes_pairwise_table():
    calls = []

    def base(left, right):
        calls.append((left, right))
        return 0.5

    cache = SimilarityCache(base)
    stored = cache.warm(["a", "b", "c", "b"])
    assert stored == 3
    assert len(cache) == 3
    assert cache.warmed == 3
    calls.clear()
    assert cache("b", "a") == 0.5
    assert calls == []  # answered from the warm table
    assert cache.hits == 1


def test_cache_warm_budget_and_idempotence():
    cache = SimilarityCache(lambda a, b: 1.0)
    assert cache.warm("abcdef", budget=4) == 4
    assert cache.warm("abcdef") == 15 - 4
    assert cache.warm("abcdef") == 0  # everything already present


def test_frozen_cache_reads_but_never_writes():
    cache = SimilarityCache(lambda a, b: 0.25)
    cache.warm(["x", "y"])
    cache.freeze()
    assert cache.frozen
    assert cache("x", "y") == 0.25
    assert cache("x", "z") == 0.25  # computed, not stored
    assert len(cache) == 1
    assert cache.warm(["x", "z"]) == 0  # warming is a write too
    assert len(cache) == 1
    cache.thaw()
    assert cache("x", "z") == 0.25
    assert len(cache) == 2


def test_matcher_warm_fills_attribute_caches(x_relation):
    matcher = default_matcher()
    plan = CertainKeyBlocking(BLOCK_KEY).plan(x_relation)
    vocabulary = partition_vocabulary(x_relation, plan.partitions[0])
    warmed, examined, complete = matcher.warm(vocabulary)
    assert complete
    assert warmed > 0
    assert examined >= warmed
    assert all(
        len(cache) > 0 for cache in matcher.cache_stats().values()
    )
    again = matcher.warm(vocabulary)
    assert again[0] == 0  # idempotent


def test_cacheable_vocabulary_expands_patterns():
    """EXPAND-policy comparators query the cache with lexicon expansions,
    so warming must cover them — not the raw pattern objects."""
    from repro.pdb.values import PatternValue
    from repro.similarity.jaro import JARO_WINKLER
    from repro.similarity.uncertain import (
        PatternPolicy,
        UncertainValueComparator,
    )

    lexicon = ("musician", "muser", "baker")
    expanding = UncertainValueComparator(
        JARO_WINKLER,
        pattern_policy=PatternPolicy.EXPAND,
        pattern_lexicon=lexicon,
        cache=True,
    )
    vocabulary = ["baker", PatternValue("mu*")]
    assert expanding.cacheable_vocabulary(vocabulary) == (
        "baker",
        "musician",
        "muser",
    )
    # Non-expanding policies never reach the cache with patterns.
    prefix = UncertainValueComparator(
        JARO_WINKLER, pattern_policy=PatternPolicy.PREFIX, cache=True
    )
    assert prefix.cacheable_vocabulary(vocabulary) == ("baker",)


def test_pattern_vocabulary_prewarm_covers_expansion_lookups():
    """A warmed-then-frozen cache must answer pattern-expansion lookups."""
    from repro.pdb.relations import Schema, XRelation
    from repro.pdb.values import PatternValue, ProbabilisticValue
    from repro.pdb.xtuples import TupleAlternative, XTuple
    from repro.matching import AttributeMatcher
    from repro.datagen.corpus import JOBS
    from repro.similarity.jaro import JARO_WINKLER
    from repro.similarity.uncertain import (
        PatternPolicy,
        UncertainValueComparator,
    )
    from repro.reduction import CertainKeyBlocking, plan_candidates

    schema = Schema(("name", "job"))

    def xt(tuple_id, name, job):
        return XTuple(
            tuple_id,
            [
                TupleAlternative(
                    {
                        "name": ProbabilisticValue.certain(name),
                        "job": ProbabilisticValue.certain(job),
                    },
                    1.0,
                )
            ],
        )

    relation = XRelation(
        "patterns",
        schema,
        [
            xt("t1", "John", PatternValue("mu*")),
            xt("t2", "Jon", "musician"),
        ],
    )
    matcher = AttributeMatcher(
        {
            "name": UncertainValueComparator(JARO_WINKLER, cache=True),
            "job": UncertainValueComparator(
                JARO_WINKLER,
                pattern_policy=PatternPolicy.EXPAND,
                pattern_lexicon=JOBS,
                cache=True,
            ),
        }
    )
    plan = plan_candidates(
        CertainKeyBlocking(SubstringKey([("name", 1)])), relation
    )
    vocabulary = partition_vocabulary(relation, plan.partitions[0])
    assert any(
        isinstance(value, PatternValue)
        for value in vocabulary.get("job", ())
    )
    _, _, complete = matcher.warm(vocabulary)
    assert complete
    job_cache = matcher.cache_stats()["job"]
    job_cache.freeze()
    try:
        before = job_cache.misses
        comparator = matcher.comparator_for("job")
        comparator(
            ProbabilisticValue.certain(PatternValue("mu*")),
            ProbabilisticValue.certain("musician"),
        )
        assert job_cache.misses == before  # every expansion pair was warm
    finally:
        job_cache.thaw()


def test_prewarmed_parallel_detection_is_unchanged(x_relation):
    reducer = CertainKeyBlocking(BLOCK_KEY)
    reference = DuplicateDetector(
        default_matcher(), weighted_model(), reducer=reducer
    ).detect(x_relation, scheduling="striped")
    matcher = default_matcher()
    warmed = DuplicateDetector(
        matcher, weighted_model(), reducer=reducer
    ).detect(x_relation, n_jobs=2, prewarm=True)
    assert _triples(warmed) == _triples(reference)
    # The pool froze and thawed the caches around the fork.
    assert all(
        not cache.frozen for cache in matcher.cache_stats().values()
    )
    assert any(
        cache.warmed > 0 for cache in matcher.cache_stats().values()
    )


def test_detect_preserves_caller_established_freezes(x_relation):
    """A cache the caller froze stays frozen across a prewarmed run."""
    matcher = default_matcher()
    name_cache = matcher.cache_stats()["name"]
    name_cache.freeze()
    detector = DuplicateDetector(
        matcher,
        weighted_model(),
        reducer=CertainKeyBlocking(BLOCK_KEY),
    )
    detector.detect(x_relation, n_jobs=2, prewarm=True)
    assert name_cache.frozen  # detect only thaws its own freezes
    assert not matcher.cache_stats()["job"].frozen
    name_cache.thaw()


# ----------------------------------------------------------------------
# Banded kernels / cache threading in the reducers
# ----------------------------------------------------------------------


def test_uncertain_clustering_cache_matches_uncached(x_relation):
    cached = UncertainKeyClusteringBlocking(BLOCK_KEY, radius=0.4)
    uncached = UncertainKeyClusteringBlocking(
        BLOCK_KEY, radius=0.4, cache=False
    )
    assert cached.cache is not None
    assert uncached.cache is None
    assert cached.clusters(x_relation) == uncached.clusters(x_relation)
    assert cached.cache.hits + cached.cache.misses > 0


def test_normalized_key_distance_matches_reference():
    from repro.reduction import normalized_key_distance
    from repro.similarity.edit import levenshtein_distance

    samples = ["", "Jo", "Johpi", "Johmu", "Timu", "Suba", "Johannes"]
    for left in samples:
        for right in samples:
            longest = max(len(left), len(right))
            expected = (
                levenshtein_distance(left, right) / longest
                if longest
                else 0.0
            )
            assert normalized_key_distance(left, right) == expected


def test_expected_key_distance_accepts_distance_kernel():
    from repro.reduction import expected_key_distance, normalized_key_distance

    left = [("Johpi", 0.7), ("Johmu", 0.3)]
    right = [("Johpi", 1.0)]
    cache = SimilarityCache(normalized_key_distance, reflexive_value=0.0)
    plain = expected_key_distance(left, right)
    threaded = expected_key_distance(left, right, distance=cache)
    assert plain == threaded
    assert cache.misses > 0
    # Re-evaluation is answered from the memo.
    assert expected_key_distance(left, right, distance=cache) == plain
    assert cache.hits > 0
