"""docs/PAPER_MAP.md stays truthful: every code reference must exist.

The paper→code map is only useful while its rows name *real* symbols.
This check (run by tier-1, hence by CI) extracts every backticked
reference from the map and verifies it against the tree:

* dotted ``repro.…`` names must import — the longest importable module
  prefix is imported and the remainder resolved with ``getattr``;
* backticked paths containing a ``/`` must exist relative to the
  repository root.

Anything else inside backticks (math, literals like ``mu*``) is
ignored.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
PAPER_MAP = REPO_ROOT / "docs" / "PAPER_MAP.md"

_BACKTICKED = re.compile(r"`([^`]+)`")
_DOTTED = re.compile(r"^repro(\.\w+)+$")


def _references() -> tuple[list[str], list[str]]:
    """(dotted symbol references, path references) from the map."""
    text = PAPER_MAP.read_text(encoding="utf-8")
    symbols: list[str] = []
    paths: list[str] = []
    for token in _BACKTICKED.findall(text):
        token = token.strip()
        if _DOTTED.match(token):
            symbols.append(token)
        elif "/" in token and re.match(r"^[\w][\w./-]*\.(py|md|ya?ml)$", token):
            paths.append(token)
    return sorted(set(symbols)), sorted(set(paths))


SYMBOLS, PATHS = _references()


def test_map_exists_and_names_references():
    assert PAPER_MAP.exists()
    assert len(SYMBOLS) > 40, "the map should reference real symbols"
    assert any("tests/" in path for path in PATHS)


def test_readme_links_the_map():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/PAPER_MAP.md" in readme


@pytest.mark.parametrize("symbol", SYMBOLS)
def test_symbol_resolves(symbol):
    parts = symbol.split(".")
    module = None
    remainder: list[str] = []
    for cut in range(len(parts), 0, -1):
        try:
            module = importlib.import_module(".".join(parts[:cut]))
        except ImportError:
            continue
        remainder = parts[cut:]
        break
    assert module is not None, f"no importable prefix in {symbol!r}"
    target = module
    for name in remainder:
        assert hasattr(target, name), (
            f"{symbol!r}: {target!r} has no attribute {name!r}"
        )
        target = getattr(target, name)


@pytest.mark.parametrize("path", PATHS)
def test_path_exists(path):
    assert (REPO_ROOT / path).exists(), f"{path!r} referenced but missing"
