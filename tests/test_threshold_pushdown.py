"""Golden equivalence suite for threshold pushdown (``min_similarity``).

The pushdown contract (:mod:`repro.matching.pushdown`): for every model
that derives safe floors, cutoff-pruned detection is **bitwise equal**
to the exact path — same decision order, same statuses, same derived
similarities — because the floors are φ-level invariance points.  That
is strictly stronger than the acceptance guarantee (identical accepted
pairs with bitwise-equal similarities at or above T_λ), and this suite
pins both:

* **pipeline equivalence** — for every Section-V reducer and both
  prunable model families (rules, Fellegi–Sunter), ``detect`` with
  ``min_similarity="auto"`` matches the exact run bit for bit: serial,
  ``n_jobs=2``, ``stream=True``, against the in-memory relation *and*
  an out-of-core spilled store;
* **floor derivation** — the inversion yields exactly the weakest
  decisive thresholds (rule-condition minima, agreement thresholds) and
  refuses configurations it cannot prove safe (continuous combiners,
  unrecognized derivations);
* **kernel/cache banding** — hypothesis properties for the
  "exact at or above the floor, exact-or-0.0 below" kernel contract and
  the band-keyed similarity caches.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import JOBS, DatasetConfig, generate_dataset
from repro.matching import (
    AttributeMatcher,
    CombinedDecisionModel,
    DuplicateDetector,
    FellegiSunterModel,
    FullComparison,
    IdentificationRule,
    LogLikelihoodRatio,
    MatchingWeight,
    RuleBasedModel,
    SimilarityFloors,
    ThresholdClassifier,
    derive_floors,
    estimate_em,
)
from repro.matching.comparison import ComparisonVector
from repro.matching.decision.rules import Condition
from repro.matching.derivation import ExpectedSimilarity
from repro.pdb.io import open_store
from repro.pdb.relations import XRelation
from repro.reduction import (
    AlternativeKeyBlocking,
    AlternativeSorting,
    CertainKeyBlocking,
    MultiPassBlocking,
    MultiPassSNM,
    PhoneticBlocking,
    SortedNeighborhood,
    SubstringKey,
    UncertainKeyClusteringBlocking,
    UncertainKeySNM,
)
from repro.similarity import (
    FAST_DAMERAU_LEVENSHTEIN,
    FAST_LEVENSHTEIN,
    PatternPolicy,
    SimilarityCache,
    UncertainValueComparator,
    banded_damerau_levenshtein_similarity,
    banded_levenshtein_similarity,
    damerau_levenshtein_similarity,
    levenshtein_similarity,
)

SORT_KEY = SubstringKey([("name", 3), ("job", 2)])
BLOCK_KEY = SubstringKey([("name", 1), ("job", 1)])


def fast_matcher() -> AttributeMatcher:
    """Levenshtein matcher whose base kernels are bandable."""
    return AttributeMatcher(
        {
            "name": UncertainValueComparator(FAST_LEVENSHTEIN, cache=True),
            "job": UncertainValueComparator(
                FAST_LEVENSHTEIN,
                cache=True,
                pattern_policy=PatternPolicy.EXPAND,
                pattern_lexicon=JOBS,
            ),
        }
    )


def fs_model() -> FellegiSunterModel:
    return FellegiSunterModel(
        m_probabilities={"name": 0.92, "job": 0.7},
        u_probabilities={"name": 0.03, "job": 0.05},
        classifier=ThresholdClassifier(40.0, 2.0),
        agreement_threshold=0.82,
    )


def rules_model() -> RuleBasedModel:
    return RuleBasedModel(
        [
            IdentificationRule.build(
                [("name", 0.8), ("job", 0.5)], certainty=0.8
            ),
            IdentificationRule.build(
                [("name", 0.95)], certainty=0.9, name="exact-name"
            ),
        ],
        ThresholdClassifier(0.75, 0.5),
    )


MODELS = {"fellegi_sunter": fs_model, "rules": rules_model}


def r34() -> XRelation:
    from repro.experiments.paper_data import MU_JOBS, relation_r34

    return XRelation(
        "R34x",
        ("name", "job"),
        [
            xt.expand_patterns({"job": MU_JOBS}).expand()
            for xt in relation_r34()
        ],
    )


@pytest.fixture(scope="module")
def flat_relation():
    return generate_dataset(
        DatasetConfig(entity_count=20, seed=91), flat=True
    ).relation


@pytest.fixture(scope="module")
def x_relation():
    return generate_dataset(DatasetConfig(entity_count=12, seed=93)).relation


@pytest.fixture(scope="module")
def stores(tmp_path_factory, flat_relation, x_relation):
    root = tmp_path_factory.mktemp("pushdown-stores")
    spilled = {}
    for kind, relation in (
        ("flat", flat_relation),
        ("x", x_relation),
        ("r34", r34()),
    ):
        relation.spill(
            str(root / kind), segment_size=7, page_size=4, max_pages=3
        )
        spilled[kind] = str(root / kind)
    return spilled


#: The same ten-reducer matrix the planner and storage suites pin.
REDUCERS = {
    "full": (lambda: FullComparison(), "flat"),
    "certain_blocking": (lambda: CertainKeyBlocking(BLOCK_KEY), "x"),
    "alternative_blocking": (
        lambda: AlternativeKeyBlocking(BLOCK_KEY),
        "x",
    ),
    "snm": (lambda: SortedNeighborhood(SORT_KEY, window=5), "flat"),
    "alternative_sorting": (
        lambda: AlternativeSorting(SORT_KEY, window=4),
        "x",
    ),
    "uncertain_snm": (lambda: UncertainKeySNM(SORT_KEY, window=4), "x"),
    "uncertain_clustering": (
        lambda: UncertainKeyClusteringBlocking(BLOCK_KEY, radius=0.4),
        "x",
    ),
    "phonetic_blocking": (lambda: PhoneticBlocking(), "x"),
    "multipass_snm": (
        lambda: MultiPassSNM(
            SORT_KEY, window=3, selection="diverse", world_count=2
        ),
        "r34",
    ),
    "multipass_blocking": (
        lambda: MultiPassBlocking(
            BLOCK_KEY, selection="diverse", world_count=2
        ),
        "r34",
    ),
}


def _relation_for(kind, flat_relation, x_relation):
    if kind == "flat":
        return flat_relation
    if kind == "x":
        return x_relation
    return r34()


def _detector(reducer_factory, model_factory):
    return DuplicateDetector(
        fast_matcher(), model_factory(), reducer=reducer_factory()
    )


def _triples(result):
    return [
        (d.left_id, d.right_id, d.status, d.similarity)
        for d in result.decisions
    ]


# ----------------------------------------------------------------------
# The acceptance pin: pruned == exact, every reducer, every mode,
# both storage backends, both prunable model families
# ----------------------------------------------------------------------


@pytest.mark.parametrize("model_name", sorted(MODELS))
@pytest.mark.parametrize("reducer_name", sorted(REDUCERS))
def test_pruned_detection_is_bitwise_exact(
    reducer_name, model_name, flat_relation, x_relation, stores
):
    factory, kind = REDUCERS[reducer_name]
    model_factory = MODELS[model_name]
    relation = _relation_for(kind, flat_relation, x_relation)
    store = open_store(stores[kind], page_size=4, max_pages=3)

    reference = _detector(factory, model_factory).detect(relation)
    serial = _detector(factory, model_factory).detect(
        relation, min_similarity="auto"
    )
    parallel = _detector(factory, model_factory).detect(
        relation, min_similarity="auto", n_jobs=2, chunk_size=7
    )
    spilled = _detector(factory, model_factory).detect(
        store, min_similarity="auto"
    )
    slices = list(
        _detector(factory, model_factory).detect(
            store,
            min_similarity="auto",
            stream=True,
            keep_compared_pairs=False,
        )
    )

    expected = _triples(reference)
    assert _triples(serial) == expected
    assert _triples(parallel) == expected
    assert _triples(spilled) == expected
    assert [
        triple for piece in slices for triple in _triples(piece)
    ] == expected
    assert serial.compared_pairs == reference.compared_pairs

    # The acceptance criterion, stated in its own terms: identical
    # accepted pairs with bitwise-equal derived similarities for every
    # pair at or above the (final) unmatch threshold.
    assert serial.matches == reference.matches
    assert serial.possible_matches == reference.possible_matches
    accepted = {
        (d.left_id, d.right_id): d.similarity
        for d in reference.decisions
        if not d.status.value == "u"
    }
    for decision in serial.decisions:
        key = (decision.left_id, decision.right_id)
        if key in accepted:
            assert decision.similarity == accepted[key]


@pytest.mark.parametrize("model_name", sorted(MODELS))
@pytest.mark.parametrize("reducer_name", sorted(REDUCERS))
def test_jaro_winkler_floors_bitwise_exact(
    reducer_name, model_name, flat_relation, x_relation
):
    """The experiments' Jaro–Winkler matcher under pushdown, re-pinned.

    ``default_matcher`` (:data:`~repro.similarity.FAST_JARO_WINKLER`
    with pattern expansion) is the matcher every Tier-B study and the
    service CLI run with — so its floor path gets the same golden
    treatment as the Levenshtein one: every reducer, both prunable
    model families, pruned bitwise equal to exact.
    """
    from repro.experiments.quality import default_matcher

    factory, kind = REDUCERS[reducer_name]
    model_factory = MODELS[model_name]
    relation = _relation_for(kind, flat_relation, x_relation)
    exact = DuplicateDetector(
        default_matcher(), model_factory(), reducer=factory()
    ).detect(relation)
    pruned = DuplicateDetector(
        default_matcher(), model_factory(), reducer=factory()
    ).detect(relation, min_similarity="auto")
    assert _triples(pruned) == _triples(exact)
    assert pruned.compared_pairs == exact.compared_pairs


def test_pruned_derivation_inputs_are_bitwise_exact(flat_relation):
    """keep_derivations: the intermediate matrices agree bit for bit."""
    factory = lambda: SortedNeighborhood(SORT_KEY, window=5)  # noqa: E731
    exact = _detector(factory, fs_model).detect(flat_relation)
    pruned = _detector(factory, fs_model).detect(
        flat_relation, min_similarity="auto"
    )
    for left, right in zip(exact.decisions, pruned.decisions):
        assert left.derivation_input.similarities == (
            right.derivation_input.similarities
        )
        assert left.derivation_input.statuses == (
            right.derivation_input.statuses
        )
        assert left.derivation_input.weights == (
            right.derivation_input.weights
        )


def test_decision_based_derivation_is_bitwise_exact(x_relation):
    """Equations 7–9 (MatchingWeight) under pushdown, x-tuple pairs."""
    detector_exact = DuplicateDetector(
        fast_matcher(),
        fs_model(),
        derivation=MatchingWeight(),
        reducer=CertainKeyBlocking(BLOCK_KEY),
    )
    detector_pruned = DuplicateDetector(
        fast_matcher(),
        fs_model(),
        derivation=MatchingWeight(),
        reducer=CertainKeyBlocking(BLOCK_KEY),
    )
    exact = detector_exact.detect(x_relation)
    pruned = detector_pruned.detect(x_relation, min_similarity="auto")
    assert _triples(pruned) == _triples(exact)


def test_explicit_floor_modes(flat_relation):
    """Uniform float and per-attribute mapping floors run and agree."""
    factory = lambda: FullComparison()  # noqa: E731
    exact = _detector(factory, fs_model).detect(flat_relation)
    uniform = _detector(factory, fs_model).detect(
        flat_relation, min_similarity=0.82
    )
    mapped = _detector(factory, fs_model).detect(
        flat_relation, min_similarity={"name": 0.82, "job": 0.82}
    )
    assert _triples(uniform) == _triples(exact)
    assert _triples(mapped) == _triples(exact)
    with pytest.raises(ValueError, match="min_similarity"):
        _detector(factory, fs_model).detect(
            flat_relation, min_similarity="fastest"
        )


def test_empty_relation_detects_nothing_under_pushdown():
    empty = XRelation("empty", ("name", "job"), [])
    result = _detector(FullComparison, fs_model).detect(
        empty, min_similarity="auto"
    )
    assert result.decisions == ()
    assert result.relation_size == 0


def test_pruned_procedure_is_memoized_per_configuration(flat_relation):
    detector = _detector(FullComparison, fs_model)
    first = detector._resolve_procedure("auto")
    second = detector._resolve_procedure("auto")
    assert first is second and first is not detector.procedure
    # Explicit floors equal to the derived ones share the signature.
    floors = detector.attribute_floors()
    explicit = detector._resolve_procedure(
        {attr: floors.floor(attr) for attr in ("name", "job")}
    )
    assert explicit is not detector.procedure


def test_prewarm_fills_banded_caches(flat_relation):
    """Parallel pushdown warms cutoff-aware entries, keyed by band."""
    detector = _detector(
        lambda: CertainKeyBlocking(BLOCK_KEY), fs_model
    )
    detector.detect(flat_relation, min_similarity="auto", n_jobs=2)
    pruned = detector._resolve_procedure("auto")
    stats = pruned.matcher.cache_stats()
    assert stats, "pruned matcher must expose its banded caches"
    for cache in stats.values():
        assert cache.band == pytest.approx(0.82)
        assert cache.warmed > 0
        assert not cache.frozen  # thawed again after the pool closed


# ----------------------------------------------------------------------
# Floor derivation (the Equations 6–9 inversion)
# ----------------------------------------------------------------------


def test_rule_floors_take_the_weakest_condition_per_attribute():
    floors = rules_model().attribute_floors()
    assert floors.floor("name") == 0.8  # min(0.8, 0.95)
    assert floors.floor("job") == 0.5
    assert floors.floor("salary") == 1.0  # unconditioned ⇒ unobservable


def test_rule_floor_edge_cases():
    always = RuleBasedModel(
        [
            IdentificationRule(
                (Condition("name", 0.0, inclusive=True),), 0.9
            )
        ],
        ThresholdClassifier(0.5),
    )
    # An inclusive threshold-0 condition fires for every similarity:
    # it constrains nothing, so the attribute stays fully prunable.
    assert always.attribute_floors().floor("name") == 1.0

    strict_zero = RuleBasedModel(
        [IdentificationRule((Condition("name", 0.0),), 0.9)],
        ThresholdClassifier(0.5),
    )
    # A strict threshold-0 condition distinguishes 0 from any positive
    # similarity — nothing may be pruned on that attribute.
    assert strict_zero.attribute_floors().floor("name") == 0.0


def test_fs_floors_are_the_agreement_threshold():
    floors = fs_model().attribute_floors()
    assert floors.floor("name") == floors.floor("job") == 0.82
    assert floors.default == 0.82
    assert fs_model().agreement_threshold == 0.82


def test_em_estimated_models_expose_floors():
    vectors = [ComparisonVector(("name",), (0.95,))] * 10 + [
        ComparisonVector(("name",), (0.1,))
    ] * 40
    estimate = estimate_em(vectors, agreement_threshold=0.9)
    model = estimate.to_model(ThresholdClassifier(2.0, 0.5))
    assert estimate.agreement_threshold == 0.9
    assert model.attribute_floors().floor("name") == 0.9


def test_log_likelihood_combiner_exposes_floors():
    model = CombinedDecisionModel(
        LogLikelihoodRatio(
            {"name": 0.9}, {"name": 0.1}, agreement_threshold=0.88
        ),
        ThresholdClassifier(2.0, -2.0),
    )
    floors = derive_floors(model)
    assert floors is not None and floors.floor("name") == 0.88


def test_continuous_combiners_refuse_floors():
    from repro.experiments.quality import weighted_model

    assert weighted_model().attribute_floors() is None
    assert derive_floors(weighted_model()) is None


def test_unrecognized_derivations_disable_pruning():
    class OpaqueDerivation:
        def __call__(self, data):  # pragma: no cover - never invoked
            return 0.0

    assert (
        derive_floors(fs_model(), OpaqueDerivation()) is None
    ), "a ϑ without the protocol flag cannot be proven safe"
    assert derive_floors(fs_model(), ExpectedSimilarity()) is not None


def test_floors_validation():
    with pytest.raises(ValueError, match="outside"):
        SimilarityFloors({"name": 1.5})
    with pytest.raises(ValueError, match="outside"):
        SimilarityFloors({}, default=-0.1)
    assert SimilarityFloors({}, default=0.0).is_exact
    assert not SimilarityFloors({"name": 0.5}).is_exact
    sig = SimilarityFloors({"b": 0.2, "a": 0.1}, default=0.3).signature()
    assert sig == ((("a", 0.1), ("b", 0.2)), 0.3)


# ----------------------------------------------------------------------
# Kernel contract and band-keyed caches
# ----------------------------------------------------------------------

_words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    max_size=10,
)
_floors = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@settings(max_examples=200, deadline=None)
@given(_words, _words, _floors)
def test_banded_similarity_contract_levenshtein(left, right, floor):
    exact = levenshtein_similarity(left, right)
    pruned = banded_levenshtein_similarity(
        left, right, min_similarity=floor
    )
    if exact >= floor:
        assert pruned == exact
    else:
        assert pruned == exact or pruned == 0.0


@settings(max_examples=200, deadline=None)
@given(_words, _words, _floors)
def test_banded_similarity_contract_damerau(left, right, floor):
    exact = damerau_levenshtein_similarity(left, right)
    pruned = banded_damerau_levenshtein_similarity(
        left, right, min_similarity=floor
    )
    if exact >= floor:
        assert pruned == exact
    else:
        assert pruned == exact or pruned == 0.0


def test_banded_comparator_clones():
    pruned = FAST_LEVENSHTEIN.with_min_similarity(0.8)
    assert pruned is not FAST_LEVENSHTEIN
    assert pruned.min_similarity == 0.8
    assert FAST_LEVENSHTEIN.with_min_similarity(0.0) is FAST_LEVENSHTEIN
    assert pruned.with_min_similarity(0.8) is pruned
    assert FAST_DAMERAU_LEVENSHTEIN.with_min_similarity(
        0.9
    ).min_similarity == 0.9
    with pytest.raises(ValueError, match="min_similarity"):
        FAST_LEVENSHTEIN.with_min_similarity(1.5)


def test_similarity_cache_bands_are_isolated():
    exact_cache = SimilarityCache(FAST_LEVENSHTEIN)
    banded = exact_cache.banded(
        0.9, FAST_LEVENSHTEIN.with_min_similarity(0.9)
    )
    assert banded is not exact_cache and banded.band == 0.9
    # Same band twice: one memoized derived cache.
    assert exact_cache.banded(
        0.9, FAST_LEVENSHTEIN.with_min_similarity(0.9)
    ) is banded
    # The cache's own band returns itself.
    assert exact_cache.banded(0.0, FAST_LEVENSHTEIN) is exact_cache
    # Entries never leak across bands: a pair below the floor reads
    # 0.0 from the banded cache but its true similarity from the exact.
    assert banded("meier", "baker") == 0.0
    assert exact_cache("meier", "baker") == pytest.approx(0.4)
    assert len(banded) == 1 and len(exact_cache) == 1


def test_pruned_comparator_shares_the_exact_cache():
    exact = UncertainValueComparator(FAST_LEVENSHTEIN, cache=True)
    pruned = exact.with_min_similarity(0.8)
    assert pruned is not exact
    assert pruned.min_similarity == 0.8
    assert pruned.exact_cache is exact.cache
    assert pruned.cache is not exact.cache
    assert pruned.cache.band == 0.8
    # Fast path: at/above the floor exact, below it 0.0.
    assert pruned("meier", "meyer") == exact("meier", "meyer") == 0.8
    assert exact("meier", "baker") == pytest.approx(0.4)
    assert pruned("meier", "baker") == 0.0
    # No-op clones.
    assert exact.with_min_similarity(0.0) is exact
    assert pruned.with_min_similarity(0.8) is pruned
    eq4 = UncertainValueComparator()
    assert eq4.with_min_similarity(0.9) is eq4


def test_uncertain_expectation_stays_exact_under_pushdown():
    """Equation 5 must use exact domain similarities (convexity)."""
    from repro.pdb.values import ProbabilisticValue

    exact = UncertainValueComparator(FAST_LEVENSHTEIN, cache=True)
    pruned = exact.with_min_similarity(0.85)
    left = ProbabilisticValue({"meier": 0.5, "baker": 0.5})
    right = ProbabilisticValue.certain("meier")
    assert pruned(left, right) == exact(left, right)


def test_non_bandable_comparators_are_reused_unchanged():
    """No banded kernel ⇒ no clone: pruning must cost nothing there."""
    from repro.similarity import JARO_WINKLER

    jaro = UncertainValueComparator(JARO_WINKLER, cache=True)
    assert jaro.with_min_similarity(0.8) is jaro
    matcher = AttributeMatcher(
        {
            "name": UncertainValueComparator(JARO_WINKLER, cache=True),
            "job": UncertainValueComparator(JARO_WINKLER, cache=True),
        }
    )
    assert matcher.with_floors(SimilarityFloors.uniform(0.82)) is matcher
    detector = DuplicateDetector(matcher, fs_model())
    # Floors derive, but nothing can prune: auto stays the exact
    # procedure instead of memoizing a useless cold clone.
    assert detector._resolve_procedure("auto") is detector.procedure


def test_pruned_procedure_memo_is_bounded(flat_relation):
    detector = _detector(FullComparison, fs_model)
    from repro.matching.pipeline import _MAX_PRUNED_PROCEDURES

    for step in range(_MAX_PRUNED_PROCEDURES + 3):
        detector._resolve_procedure(0.5 + step * 0.01)
    assert len(detector._pruned_procedures) <= _MAX_PRUNED_PROCEDURES


def test_matcher_with_floors_threads_per_attribute():
    matcher = fast_matcher()
    floors = SimilarityFloors({"name": 0.9}, default=0.5)
    pruned = matcher.with_floors(floors)
    assert pruned is not matcher
    assert pruned.comparator_for("name").min_similarity == 0.9
    assert pruned.comparator_for("job").min_similarity == 0.5
    # Exact floors leave the matcher untouched.
    assert matcher.with_floors(SimilarityFloors()) is matcher
