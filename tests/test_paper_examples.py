"""Golden tests: every worked example of the paper, pinned exactly.

Each test cites the paper location it reproduces.  Exact fractions are
used where the paper's arithmetic is exact; printed roundings (0.59,
0.838) are additionally checked at their printed precision.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    figure_7_possible_worlds,
    figure_9_sorted_world_orders,
    figure_10_certain_key_order,
    figure_11_sorted_alternatives,
    figure_13_uncertain_key_ranking,
    figure_14_alternative_key_blocking,
    paper_matcher,
    paper_model,
    relation_r1,
    relation_r2,
    relation_r3,
    relation_r34,
    relation_r4,
    section_4a_flat_example,
    section_4b_derivations,
)
from repro.similarity import HAMMING

EXACT = 1e-12


class TestReferenceSimilarities:
    """The normalized-Hamming reference values of Section IV."""

    @pytest.mark.parametrize(
        ("left", "right", "expected"),
        [
            ("Tim", "Kim", 2 / 3),
            ("Tim", "Tom", 2 / 3),
            ("Jim", "Tom", 1 / 3),
            ("machinist", "mechanic", 5 / 9),
            ("baker", "mechanic", 0.0),
        ],
    )
    def test_hamming_reference_value(self, left, right, expected):
        assert HAMMING(left, right) == pytest.approx(expected, abs=EXACT)


class TestFigure4Relations:
    """Figure 4: the probabilistic relations ℛ1 and ℛ2."""

    def test_r1_has_three_tuples(self):
        assert relation_r1().tuple_ids == ("t11", "t12", "t13")

    def test_r2_has_three_tuples(self):
        assert relation_r2().tuple_ids == ("t21", "t22", "t23")

    def test_t11_is_jobless_with_ten_percent(self):
        """Section IV-A: implicit ⊥ mass of t11.job is 0.1."""
        job = relation_r1().get("t11")["job"]
        assert job.null_probability == pytest.approx(0.1, abs=EXACT)

    def test_t13_membership_probability(self):
        assert relation_r1().get("t13").probability == pytest.approx(0.6)

    def test_t22_membership_probability(self):
        assert relation_r2().get("t22").probability == pytest.approx(0.8)


class TestSection4AFlatExample:
    """Section IV-A worked example on (t11, t22)."""

    @pytest.fixture(scope="class")
    def example(self):
        return section_4a_flat_example()

    def test_name_similarity_is_0_9(self, example):
        """sim(t11.name, t22.name) = 0.7·1 + 0.3·(2/3) = 0.9."""
        assert example.name_similarity == pytest.approx(0.9, abs=EXACT)

    def test_job_similarity_exact_value(self, example):
        """sim(t11.job, t22.job) = 0.2 + 0.7·5/9 = 53/90 (printed 0.59)."""
        assert example.job_similarity == pytest.approx(53 / 90, abs=EXACT)
        assert round(example.job_similarity, 2) == 0.59

    def test_tuple_similarity_exact_value(self, example):
        """sim(t11, t22) = 0.8·0.9 + 0.2·53/90 = 377/450 (printed 0.838)."""
        assert example.tuple_similarity == pytest.approx(
            377 / 450, abs=EXACT
        )
        assert round(example.tuple_similarity, 3) == 0.838

    def test_membership_probabilities_do_not_matter(self):
        """Section IV: p(t)=0.8 of t22 must not influence similarity."""
        t11 = relation_r1().get("t11")
        t22 = relation_r2().get("t22")
        matcher = paper_matcher()
        base = matcher.compare_rows(t11, t22)
        boosted = matcher.compare_rows(
            t11.with_probability(1.0), t22.with_probability(0.01)
        )
        assert base.values == boosted.values


class TestFigure5Relations:
    """Figure 5: the x-relations ℛ3 and ℛ4."""

    def test_r3_tuple_ids(self):
        assert relation_r3().tuple_ids == ("t31", "t32")

    def test_r4_tuple_ids(self):
        assert relation_r4().tuple_ids == ("t41", "t42", "t43")

    def test_t32_is_maybe_with_mass_0_9(self):
        t32 = relation_r3().get("t32")
        assert t32.is_maybe
        assert t32.probability == pytest.approx(0.9, abs=EXACT)

    def test_t42_and_t43_are_maybe(self):
        r4 = relation_r4()
        assert r4.get("t42").is_maybe
        assert r4.get("t43").is_maybe

    def test_t41_is_not_maybe(self):
        assert not relation_r4().get("t41").is_maybe

    def test_t43_first_alternative_job_is_null(self):
        first = relation_r4().get("t43").alternatives[0]
        assert first.value("job").is_null


class TestFigure7PossibleWorlds:
    """Figure 7: the eight worlds of {t32, t42} and conditioning."""

    @pytest.fixture(scope="class")
    def worlds(self):
        return figure_7_possible_worlds()

    def test_world_probabilities_in_paper_order(self, worlds):
        expected = (0.24, 0.16, 0.32, 0.08, 0.06, 0.04, 0.08, 0.02)
        assert worlds.world_probabilities == pytest.approx(
            expected, abs=EXACT
        )

    def test_world_probabilities_sum_to_one(self, worlds):
        assert sum(worlds.world_probabilities) == pytest.approx(
            1.0, abs=EXACT
        )

    def test_presence_probability_is_0_72(self, worlds):
        """P(B) = p(t32)·p(t42) = 0.9·0.8 = 0.72."""
        assert worlds.presence_probability == pytest.approx(0.72, abs=EXACT)

    def test_conditional_probabilities(self, worlds):
        """P(I1|B)=0.24/0.72=3/9, P(I2|B)=2/9, P(I3|B)=4/9."""
        assert worlds.conditional_probabilities == pytest.approx(
            (3 / 9, 2 / 9, 4 / 9), abs=EXACT
        )


class TestSection4BDerivations:
    """Section IV-B worked example: both derivations on (t32, t42)."""

    @pytest.fixture(scope="class")
    def example(self):
        return section_4b_derivations()

    def test_alternative_similarities(self, example):
        """sim(t32^i, t42) = 11/15, 7/15, 4/15."""
        assert example.alternative_similarities == pytest.approx(
            (11 / 15, 7 / 15, 4 / 15), abs=EXACT
        )

    def test_similarity_based_equals_7_15(self, example):
        """Equation 6: sim(t32, t42) = 7/15."""
        assert example.similarity_based == pytest.approx(7 / 15, abs=1e-10)

    def test_alternative_statuses_m_p_u(self, example):
        """With T_λ=0.4, T_μ=0.7: I1 match, I2 possible, I3 non-match."""
        assert example.alternative_statuses == ("m", "p", "u")

    def test_p_match_is_3_9(self, example):
        assert example.p_match == pytest.approx(3 / 9, abs=EXACT)

    def test_p_unmatch_is_4_9(self, example):
        assert example.p_unmatch == pytest.approx(4 / 9, abs=1e-10)

    def test_decision_based_equals_0_75(self, example):
        """Equation 7: sim(t32, t42) = (3/9)/(4/9) = 0.75."""
        assert example.decision_based == pytest.approx(0.75, abs=1e-10)

    def test_expected_matching_result(self, example):
        """E(η|B) with m=2,p=1,u=0: 2·3/9 + 1·2/9 + 0·4/9 = 8/9."""
        assert example.expected_matching_result == pytest.approx(
            8 / 9, abs=1e-10
        )


class TestFigure9MultiPass:
    """Figures 8/9: per-world sort orders of the multi-pass SNM."""

    @pytest.fixture(scope="class")
    def orders(self):
        return figure_9_sorted_world_orders()

    def test_both_figure_worlds_found(self, orders):
        assert set(orders) == {"I1", "I2"}

    def test_world_i1_order(self, orders):
        """Figure 9 left: Johpi t31, Johpi t41, Seapil t43, Timme t32, Tomme t42."""
        assert orders["I1"] == ["t31", "t41", "t43", "t32", "t42"]

    def test_world_i2_order(self, orders):
        """Figure 9 right: Jimme t32, Joh t43, Johmu t31, Johpi t41, Tomme t42."""
        assert orders["I2"] == ["t32", "t43", "t31", "t41", "t42"]

    def test_different_worlds_give_different_orders(self, orders):
        """The paper's point: passes over different worlds differ."""
        assert orders["I1"] != orders["I2"]


class TestFigure10CertainKeys:
    """Figure 10: most-probable-alternative keys, sorted."""

    def test_sorted_key_rows(self):
        assert figure_10_certain_key_order() == [
            ("Jimba", "t32"),
            ("Johpi", "t31"),
            ("Johpi", "t41"),
            ("Seapi", "t43"),
            ("Tomme", "t42"),
        ]


class TestFigure11SortingAlternatives:
    """Figures 11/12: sorting alternatives, dedup, five matchings."""

    @pytest.fixture(scope="class")
    def result(self):
        return figure_11_sorted_alternatives()

    def test_nine_sorted_entries(self, result):
        """Figure 11 right column has nine key rows."""
        assert result["sorted_entries"] == [
            ("Jimba", "t32"),
            ("Jimme", "t32"),
            ("Joh", "t43"),
            ("Johmu", "t31"),
            ("Johpi", "t31"),
            ("Johpi", "t41"),
            ("Seapi", "t43"),
            ("Timme", "t32"),
            ("Tomme", "t42"),
        ]

    def test_neighbor_dedup_removes_two_entries(self, result):
        """The figure strikes Jimme(t32) and Johpi(t31)."""
        assert result["deduped_entries"] == [
            ("Jimba", "t32"),
            ("Joh", "t43"),
            ("Johmu", "t31"),
            ("Johpi", "t41"),
            ("Seapi", "t43"),
            ("Timme", "t32"),
            ("Tomme", "t42"),
        ]

    def test_exactly_the_five_paper_matchings(self, result):
        """Window 2 ⇒ (t32,t43), (t43,t31), (t31,t41), (t41,t43), (t32,t42)."""
        normalized = {tuple(sorted(p)) for p in result["matchings"]}
        assert normalized == {
            ("t32", "t43"),
            ("t31", "t43"),
            ("t31", "t41"),
            ("t41", "t43"),
            ("t32", "t42"),
        }

    def test_each_matching_applied_exactly_once(self, result):
        assert len(result["matchings"]) == 5


class TestFigure13UncertainKeyRanking:
    """Figure 13: ranking by uncertain key values."""

    @pytest.fixture(scope="class")
    def result(self):
        return figure_13_uncertain_key_ranking()

    def test_ranked_order_matches_figure(self, result):
        """Figure 13 right: t32, t31, t41, t43, t42."""
        assert result["ranked_ids"] == ["t32", "t31", "t41", "t43", "t42"]

    def test_t41_key_is_certain_despite_two_alternatives(self, result):
        """Both alternatives of t41 map to 'Johpi' (paper's remark)."""
        distributions = dict(result["key_distributions"])
        assert distributions["t41"] == [("Johpi", pytest.approx(1.0))]

    def test_t31_key_distribution(self, result):
        """t31: Johpi 0.7 (John/pilot), Johmu 0.3 (Johan/mu*)."""
        distributions = dict(result["key_distributions"])
        assert dict(distributions["t31"]) == pytest.approx(
            {"Johpi": 0.7, "Johmu": 0.3}
        )

    def test_t32_raw_key_probabilities(self, result):
        """Figure 13 shows raw probabilities 0.3/0.2/0.4 for t32."""
        distributions = dict(result["key_distributions"])
        assert dict(distributions["t32"]) == pytest.approx(
            {"Timme": 0.3, "Jimme": 0.2, "Jimba": 0.4}
        )

    def test_t43_raw_key_probabilities(self, result):
        """t43: Joh 0.2 (John/⊥ — ⊥ contributes nothing), Seapi 0.6."""
        distributions = dict(result["key_distributions"])
        assert dict(distributions["t43"]) == pytest.approx(
            {"Joh": 0.2, "Seapi": 0.6}
        )


class TestFigure14AlternativeKeyBlocking:
    """Figure 14: blocking with alternative key values on ℛ34."""

    @pytest.fixture(scope="class")
    def result(self):
        return figure_14_alternative_key_blocking()

    def test_six_blocks(self, result):
        """The paper partitions into six blocks."""
        assert result["block_count"] == 6

    def test_block_membership(self, result):
        blocks = {
            key: set(members) for key, members in result["blocks"].items()
        }
        assert blocks == {
            "Jp": {"t31", "t41"},
            "Jm": {"t31", "t32"},
            "Tm": {"t32", "t42"},
            "Jb": {"t32"},
            "J": {"t43"},
            "Sp": {"t43"},
        }

    def test_three_matchings_result(self, result):
        """Three x-tuple matchings result (the paper's count)."""
        normalized = {tuple(sorted(p)) for p in result["matchings"]}
        assert normalized == {
            ("t31", "t41"),
            ("t31", "t32"),
            ("t32", "t42"),
        }

    def test_no_tuple_twice_in_one_block(self, result):
        """t31 maps to Jp twice (pilot/pianist…); duplicates removed."""
        for members in result["blocks"].values():
            assert len(members) == len(set(members))


class TestPaperModelConfiguration:
    """The reference model: φ = 0.8·name + 0.2·job, T_λ=0.4, T_μ=0.7."""

    def test_model_classifier_thresholds(self):
        model = paper_model()
        assert model.classifier.match_threshold == pytest.approx(0.7)
        assert model.classifier.unmatch_threshold == pytest.approx(0.4)

    def test_r34_union_has_five_xtuples(self):
        assert relation_r34().tuple_ids == (
            "t31",
            "t32",
            "t41",
            "t42",
            "t43",
        )
