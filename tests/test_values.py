"""Unit tests for probabilistic attribute values (repro.pdb.values)."""

from __future__ import annotations

import pickle

import pytest

from repro.pdb import (
    NULL,
    EmptyDistributionError,
    InvalidProbabilityError,
    PatternValue,
    ProbabilisticValue,
)


class TestNullSentinel:
    def test_null_is_singleton(self):
        assert NULL is type(NULL)()

    def test_null_repr(self):
        assert repr(NULL) == "⊥"

    def test_null_equality(self):
        assert NULL == type(NULL)()
        assert NULL != "anything"

    def test_null_survives_pickling(self):
        assert pickle.loads(pickle.dumps(NULL)) == NULL

    def test_null_hash_is_stable(self):
        assert hash(NULL) == hash(type(NULL)())


class TestConstruction:
    def test_certain_value(self):
        value = ProbabilisticValue.certain("Tim")
        assert value.is_certain
        assert value.certain_value == "Tim"
        assert value.probability("Tim") == 1.0

    def test_missing_value(self):
        value = ProbabilisticValue.missing()
        assert value.is_null
        assert value.null_probability == 1.0

    def test_residual_mass_goes_to_null(self):
        """Figure 4 semantics: t11.job sums to 0.9 ⇒ P(⊥) = 0.1."""
        value = ProbabilisticValue({"machinist": 0.7, "mechanic": 0.2})
        assert value.null_probability == pytest.approx(0.1)

    def test_full_mass_has_no_null(self):
        value = ProbabilisticValue({"a": 0.5, "b": 0.5})
        assert value.null_probability == 0.0

    def test_uniform(self):
        value = ProbabilisticValue.uniform(["a", "b", "c", "d"])
        for outcome in "abcd":
            assert value.probability(outcome) == pytest.approx(0.25)

    def test_from_pairs(self):
        value = ProbabilisticValue.from_pairs([("x", 0.4), ("y", 0.6)])
        assert value.probability("y") == pytest.approx(0.6)

    def test_explicit_null_merges_with_residual(self):
        value = ProbabilisticValue({"a": 0.5, NULL: 0.2})
        assert value.null_probability == pytest.approx(0.5)

    def test_empty_distribution_rejected(self):
        with pytest.raises(EmptyDistributionError):
            ProbabilisticValue({})

    def test_zero_probability_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            ProbabilisticValue({"a": 0.0})

    def test_negative_probability_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            ProbabilisticValue({"a": -0.1})

    def test_nan_probability_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            ProbabilisticValue({"a": float("nan")})

    def test_excess_mass_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            ProbabilisticValue({"a": 0.7, "b": 0.7})

    def test_uniform_empty_rejected(self):
        with pytest.raises(EmptyDistributionError):
            ProbabilisticValue.uniform([])


class TestInspection:
    def test_support_includes_null(self):
        value = ProbabilisticValue({"a": 0.6})
        assert set(value.support) == {"a", NULL}

    def test_existing_support_excludes_null(self):
        value = ProbabilisticValue({"a": 0.6})
        assert value.existing_support == ("a",)

    def test_most_probable(self):
        value = ProbabilisticValue({"a": 0.2, "b": 0.5, "c": 0.3})
        assert value.most_probable() == "b"

    def test_most_probable_tie_prefers_first(self):
        value = ProbabilisticValue({"a": 0.5, "b": 0.5})
        assert value.most_probable() == "a"

    def test_certain_value_raises_on_uncertain(self):
        value = ProbabilisticValue({"a": 0.5, "b": 0.5})
        with pytest.raises(ValueError):
            _ = value.certain_value

    def test_entropy_zero_for_certain(self):
        assert ProbabilisticValue.certain("x").entropy() == 0.0

    def test_entropy_of_fair_coin_is_one_bit(self):
        value = ProbabilisticValue({"a": 0.5, "b": 0.5})
        assert value.entropy() == pytest.approx(1.0)

    def test_alternative_count(self):
        value = ProbabilisticValue({"a": 0.6, "b": 0.2})
        assert value.alternative_count() == 3  # a, b, ⊥


class TestTransformation:
    def test_map_applies_to_existing_outcomes(self):
        value = ProbabilisticValue({"Tim": 0.6, "Tom": 0.4})
        mapped = value.map(str.upper)
        assert mapped.probability("TIM") == pytest.approx(0.6)

    def test_map_preserves_null(self):
        value = ProbabilisticValue({"Tim": 0.7})
        mapped = value.map(str.upper)
        assert mapped.null_probability == pytest.approx(0.3)

    def test_map_merges_collisions(self):
        value = ProbabilisticValue({"Tim": 0.6, "tim": 0.4})
        mapped = value.map(str.lower)
        assert mapped.is_certain
        assert mapped.certain_value == "tim"

    def test_filter_renormalizes(self):
        value = ProbabilisticValue({"a": 0.25, "b": 0.75})
        kept = value.filter(lambda v: v == "a")
        assert kept.is_certain
        assert kept.probability("a") == pytest.approx(1.0)

    def test_filter_everything_out_raises(self):
        value = ProbabilisticValue({"a": 1.0})
        with pytest.raises(EmptyDistributionError):
            value.filter(lambda v: False)


class TestPatternValues:
    def test_wildcard_matching(self):
        pattern = PatternValue("mu*")
        assert pattern.matches("musician")
        assert not pattern.matches("pilot")

    def test_literal_pattern_matches_exactly(self):
        pattern = PatternValue("pilot")
        assert pattern.matches("pilot")
        assert not pattern.matches("pilots")

    def test_pattern_prefix(self):
        assert PatternValue("mu*").prefix == "mu"

    def test_pattern_equality_and_hash(self):
        assert PatternValue("mu*") == PatternValue("mu*")
        assert hash(PatternValue("mu*")) == hash(PatternValue("mu*"))

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            PatternValue("")

    def test_from_pattern_uniform_expansion(self):
        lexicon = ["musician", "muralist", "pilot"]
        value = ProbabilisticValue.from_pattern("mu*", lexicon)
        assert value.probability("musician") == pytest.approx(0.5)
        assert value.probability("muralist") == pytest.approx(0.5)
        assert value.probability("pilot") == 0.0

    def test_from_pattern_no_match_raises(self):
        with pytest.raises(EmptyDistributionError):
            ProbabilisticValue.from_pattern("zz*", ["pilot"])

    def test_expand_patterns_divides_mass(self):
        value = ProbabilisticValue(
            {PatternValue("mu*"): 0.6, "pilot": 0.4}
        )
        expanded = value.expand_patterns(["musician", "muralist"])
        assert expanded.probability("musician") == pytest.approx(0.3)
        assert expanded.probability("pilot") == pytest.approx(0.4)

    def test_expand_patterns_noop_without_patterns(self):
        value = ProbabilisticValue({"pilot": 1.0})
        assert value.expand_patterns(["musician"]) == value


class TestEquationFourAndFive:
    def test_equality_probability_certain_equal(self):
        left = ProbabilisticValue.certain("x")
        assert left.equality_probability(left) == pytest.approx(1.0)

    def test_equality_probability_disjoint_supports(self):
        left = ProbabilisticValue.certain("x")
        right = ProbabilisticValue.certain("y")
        assert left.equality_probability(right) == 0.0

    def test_equality_probability_overlap(self):
        left = ProbabilisticValue({"x": 0.5, "y": 0.5})
        right = ProbabilisticValue({"x": 0.5, "z": 0.5})
        assert left.equality_probability(right) == pytest.approx(0.25)

    def test_equality_counts_shared_null(self):
        """sim(⊥,⊥)=1: both missing with 0.5·0.5 adds 0.25."""
        left = ProbabilisticValue({"x": 0.5})
        right = ProbabilisticValue({"y": 0.5})
        assert left.equality_probability(right) == pytest.approx(0.25)

    def test_expected_similarity_null_vs_existing_is_zero(self):
        left = ProbabilisticValue.missing()
        right = ProbabilisticValue.certain("x")
        assert left.expected_similarity(right, lambda a, b: 1.0) == 0.0

    def test_expected_similarity_null_vs_null_is_one(self):
        left = ProbabilisticValue.missing()
        assert left.expected_similarity(left, lambda a, b: 0.0) == 1.0

    def test_expected_similarity_weights_by_joint_probability(self):
        left = ProbabilisticValue({"ab": 0.5, "cd": 0.5})
        right = ProbabilisticValue.certain("ab")
        sim = left.expected_similarity(
            right, lambda a, b: 1.0 if a == b else 0.25
        )
        assert sim == pytest.approx(0.5 * 1.0 + 0.5 * 0.25)

    def test_similarity_fn_never_sees_null(self):
        seen = []

        def spy(a, b):
            seen.append((a, b))
            return 0.0

        left = ProbabilisticValue({"x": 0.5})
        right = ProbabilisticValue({"y": 0.5})
        left.expected_similarity(right, spy)
        assert seen == [("x", "y")]


class TestValueProtocol:
    def test_equality_is_tolerant(self):
        left = ProbabilisticValue({"a": 0.1 + 0.2, "b": 0.7})
        right = ProbabilisticValue({"a": 0.3, "b": 0.7})
        assert left == right

    def test_equal_values_hash_equal(self):
        left = ProbabilisticValue({"a": 0.5, "b": 0.5})
        right = ProbabilisticValue({"a": 0.5, "b": 0.5})
        assert hash(left) == hash(right)

    def test_inequality_different_support(self):
        assert ProbabilisticValue.certain("a") != ProbabilisticValue.certain(
            "b"
        )

    def test_pretty_certain(self):
        assert ProbabilisticValue.certain("Tim").pretty() == "Tim"

    def test_pretty_null(self):
        assert ProbabilisticValue.missing().pretty() == "⊥"

    def test_pretty_distribution_mentions_null(self):
        value = ProbabilisticValue({"a": 0.6})
        assert "⊥" in value.pretty()

    def test_repr_roundtrip_certain(self):
        value = ProbabilisticValue.certain("Tim")
        assert "Tim" in repr(value)
