"""Unit tests for data preparation and verification metrics."""

from __future__ import annotations

import pytest

from repro.matching import MatchStatus
from repro.pdb import NULL, ProbabilisticValue, XRelation, XTuple
from repro.preparation import (
    apply_replacements,
    apply_token_replacements,
    casefold_value,
    clean_relation,
    clean_value,
    compose,
    missing_marker_to_null,
    normalize_whitespace,
    remove_control_characters,
    standardize_relation,
    standardize_xtuple,
    strip_accents,
)
from repro.verification import (
    PossiblePolicy,
    evaluate_pairs,
    normalize_pairs,
    pairs_completeness,
    reduction_f1,
    reduction_ratio,
    total_pair_count,
)


class TestStandardizationTransforms:
    def test_normalize_whitespace(self):
        assert normalize_whitespace("  Tim   the  Pilot ") == "Tim the Pilot"

    def test_casefold(self):
        assert casefold_value("TIM") == "tim"

    def test_strip_accents(self):
        assert strip_accents("Müller-José") == "Muller-Jose"

    def test_non_strings_untouched(self):
        assert normalize_whitespace(42) == 42
        assert casefold_value(None) is None
        assert strip_accents(3.14) == 3.14

    def test_apply_replacements_whole_value(self):
        transform = apply_replacements({"Dr.": "doctor"})
        assert transform("Dr.") == "doctor"
        assert transform("Dr. Smith") == "Dr. Smith"  # not token-wise

    def test_apply_token_replacements(self):
        transform = apply_token_replacements({"st.": "street"})
        assert transform("Main St.") == "Main street"

    def test_compose_ordering(self):
        transform = compose(normalize_whitespace, casefold_value)
        assert transform("  TIM ") == "tim"


class TestRelationStandardization:
    def test_xtuple_outcomes_merge_after_standardization(self):
        xt = XTuple.build(
            "t", [({"name": {"Tim": 0.6, "tim": 0.4}}, 1.0)]
        )
        standardized = standardize_xtuple(xt, {"name": casefold_value})
        value = standardized.alternatives[0].value("name")
        assert value.is_certain
        assert value.certain_value == "tim"

    def test_relation_default_pipeline(self):
        relation = XRelation(
            "R",
            ["name"],
            [XTuple.certain("t", {"name": "  TÏM  "})],
        )
        standardized = standardize_relation(relation)
        value = standardized.get("t").alternatives[0].value("name")
        assert value.certain_value == "tim"

    def test_relation_selected_attributes(self):
        relation = XRelation(
            "R",
            ["name", "job"],
            [XTuple.certain("t", {"name": "TIM", "job": "PILOT"})],
        )
        standardized = standardize_relation(relation, attributes=["name"])
        assert (
            standardized.get("t").alternatives[0].value("name").certain_value
            == "tim"
        )
        assert (
            standardized.get("t").alternatives[0].value("job").certain_value
            == "PILOT"
        )


class TestCleaning:
    def test_control_characters_removed(self):
        assert remove_control_characters("Tim\x00\x1f!") == "Tim!"

    def test_missing_markers(self):
        assert missing_marker_to_null("n/a") is NULL
        assert missing_marker_to_null(" UNKNOWN ") is NULL
        assert missing_marker_to_null("Tim") == "Tim"

    def test_clean_value_moves_mass_to_null(self):
        value = ProbabilisticValue({"n/a": 0.4, "pilot": 0.6})
        cleaned = clean_value(value)
        assert cleaned.null_probability == pytest.approx(0.4)
        assert cleaned.probability("pilot") == pytest.approx(0.6)

    def test_clean_relation(self):
        relation = XRelation(
            "R",
            ["job"],
            [XTuple.certain("t", {"job": "unknown"})],
        )
        cleaned = clean_relation(relation)
        assert cleaned.get("t").alternatives[0].value("job").is_null


class TestQualityMetrics:
    def score(self, **kwargs):
        compared = [("a", "b"), ("a", "c"), ("b", "c"), ("c", "d")]
        defaults = dict(
            predicted_matches=[("a", "b"), ("a", "c")],
            true_matches=[("a", "b"), ("c", "d")],
            compared_pairs=compared,
        )
        defaults.update(kwargs)
        return evaluate_pairs(**defaults)

    def test_confusion_counts(self):
        report = self.score()
        assert report.true_positives == 1  # (a,b)
        assert report.false_positives == 1  # (a,c)
        assert report.false_negatives == 1  # (c,d)
        assert report.true_negatives == 1  # (b,c)

    def test_precision_recall_f1(self):
        report = self.score()
        assert report.precision == pytest.approx(0.5)
        assert report.recall == pytest.approx(0.5)
        assert report.f1 == pytest.approx(0.5)

    def test_error_rates(self):
        report = self.score()
        assert report.false_negative_rate == pytest.approx(0.5)
        assert report.false_positive_rate == pytest.approx(0.5)

    def test_pair_order_is_irrelevant(self):
        report = self.score(predicted_matches=[("b", "a"), ("c", "a")])
        assert report.true_positives == 1

    def test_possible_policy_exclude(self):
        report = self.score(
            possible_matches=[("c", "d")],
            possible_policy=PossiblePolicy.EXCLUDE,
        )
        # (c,d) removed from scoring entirely.
        assert report.false_negatives == 0
        assert report.possible_pairs == 1

    def test_possible_policy_as_match(self):
        report = self.score(
            possible_matches=[("c", "d")],
            possible_policy=PossiblePolicy.AS_MATCH,
        )
        assert report.true_positives == 2

    def test_possible_policy_as_unmatch(self):
        report = self.score(
            possible_matches=[("c", "d")],
            possible_policy=PossiblePolicy.AS_UNMATCH,
        )
        assert report.false_negatives == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            self.score(possible_policy="sometimes")

    def test_empty_gold_perfect_recall(self):
        report = evaluate_pairs([], [], [("a", "b")])
        assert report.recall == 1.0
        assert report.precision == 1.0

    def test_as_dict_contains_all_measures(self):
        keys = set(self.score().as_dict())
        assert {
            "precision",
            "recall",
            "f1",
            "fn_rate",
            "fp_rate",
            "accuracy",
        } <= keys


class TestReductionMetrics:
    def test_total_pair_count(self):
        assert total_pair_count(6) == 15
        assert total_pair_count(0) == 0
        with pytest.raises(ValueError):
            total_pair_count(-1)

    def test_reduction_ratio(self):
        candidates = [("a", "b"), ("c", "d")]
        assert reduction_ratio(candidates, 6) == pytest.approx(1 - 2 / 15)

    def test_reduction_ratio_empty_relation(self):
        assert reduction_ratio([], 1) == 0.0

    def test_pairs_completeness(self):
        candidates = [("a", "b"), ("x", "y")]
        gold = [("a", "b"), ("c", "d")]
        assert pairs_completeness(candidates, gold) == pytest.approx(0.5)

    def test_pairs_completeness_no_gold(self):
        assert pairs_completeness([("a", "b")], []) == 1.0

    def test_reduction_f1_harmonic(self):
        candidates = [("a", "b")]
        gold = [("a", "b")]
        rr = reduction_ratio(candidates, 6)
        f1 = reduction_f1(candidates, gold, 6)
        assert f1 == pytest.approx(2 * rr * 1.0 / (rr + 1.0))

    def test_normalize_pairs(self):
        assert normalize_pairs([("b", "a"), ("a", "b")]) == frozenset(
            {("a", "b")}
        )
