"""Unit tests for decision models: thresholds, rules, Fellegi–Sunter, EM."""

from __future__ import annotations

import math
import random

import pytest

from repro.matching import (
    CertaintyCombination,
    CombinedDecisionModel,
    ComparisonVector,
    Condition,
    FellegiSunterModel,
    IdentificationRule,
    MatchStatus,
    RuleBasedModel,
    ThresholdClassifier,
    WeightedSum,
    agreement_pattern,
    estimate_em,
    paper_example_rule,
    select_thresholds,
)


def vector(**values: float) -> ComparisonVector:
    return ComparisonVector(tuple(values), tuple(values.values()))


class TestMatchStatus:
    def test_values(self):
        assert MatchStatus.MATCH.value == "m"
        assert MatchStatus.POSSIBLE.value == "p"
        assert MatchStatus.UNMATCH.value == "u"

    def test_numeric_coding(self):
        """The paper's coding m=2, p=1, u=0."""
        assert MatchStatus.MATCH.numeric == 2
        assert MatchStatus.POSSIBLE.numeric == 1
        assert MatchStatus.UNMATCH.numeric == 0


class TestThresholdClassifier:
    def test_two_threshold_bands(self):
        classifier = ThresholdClassifier(0.7, 0.4)
        assert classifier.classify(0.8) is MatchStatus.MATCH
        assert classifier.classify(0.5) is MatchStatus.POSSIBLE
        assert classifier.classify(0.3) is MatchStatus.UNMATCH

    def test_strict_inequalities(self):
        """The paper uses R > T_μ and R < T_λ (strict)."""
        classifier = ThresholdClassifier(0.7, 0.4)
        assert classifier.classify(0.7) is MatchStatus.POSSIBLE
        assert classifier.classify(0.4) is MatchStatus.POSSIBLE

    def test_single_threshold_collapses_band(self):
        classifier = ThresholdClassifier(0.5)
        assert not classifier.supports_possible
        assert classifier.classify(0.6) is MatchStatus.MATCH
        assert classifier.classify(0.4) is MatchStatus.UNMATCH

    def test_inverted_thresholds_rejected(self):
        with pytest.raises(ValueError):
            ThresholdClassifier(0.4, 0.7)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            ThresholdClassifier(float("nan"))

    def test_infinite_similarity_is_match(self):
        classifier = ThresholdClassifier(0.7, 0.4)
        assert classifier.classify(math.inf) is MatchStatus.MATCH

    def test_decide_bundles_similarity(self):
        decision = ThresholdClassifier(0.7, 0.4).decide(0.9)
        assert decision.is_match
        assert decision.similarity == 0.9


class TestIdentificationRules:
    def test_condition_strict_comparison(self):
        condition = Condition("name", 0.8)
        assert condition.holds(vector(name=0.81))
        assert not condition.holds(vector(name=0.8))

    def test_condition_inclusive(self):
        condition = Condition("name", 1.0, inclusive=True)
        assert condition.holds(vector(name=1.0))

    def test_condition_threshold_validated(self):
        with pytest.raises(ValueError):
            Condition("name", 1.5)

    def test_rule_fires_when_all_conditions_hold(self):
        rule = IdentificationRule.build(
            [("name", 0.8), ("job", 0.5)], 0.8
        )
        assert rule.fires(vector(name=0.9, job=0.6))
        assert not rule.fires(vector(name=0.9, job=0.4))

    def test_rule_requires_conditions(self):
        with pytest.raises(ValueError):
            IdentificationRule((), 0.8)

    def test_rule_certainty_validated(self):
        with pytest.raises(ValueError):
            IdentificationRule.build([("a", 0.5)], 0.0)
        with pytest.raises(ValueError):
            IdentificationRule.build([("a", 0.5)], 1.1)

    def test_paper_rule_pretty_matches_figure_1(self):
        rule = paper_example_rule(0.8, 0.5)
        assert rule.pretty() == (
            "IF name > 0.8 AND job > 0.5 "
            "THEN DUPLICATES with CERTAINTY=0.8"
        )


class TestRuleBasedModel:
    def make(self, combination=CertaintyCombination.MAXIMUM) -> RuleBasedModel:
        rules = [
            IdentificationRule.build([("name", 0.9)], 0.9, name="strong"),
            IdentificationRule.build(
                [("name", 0.7), ("job", 0.7)], 0.6, name="both"
            ),
        ]
        return RuleBasedModel(
            rules, ThresholdClassifier(0.7), combination=combination
        )

    def test_no_rule_fires_similarity_zero(self):
        model = self.make()
        assert model.similarity(vector(name=0.1, job=0.1)) == 0.0
        assert model.decide(vector(name=0.1, job=0.1)).is_unmatch

    def test_maximum_combination(self):
        model = self.make()
        assert model.similarity(vector(name=0.95, job=0.8)) == pytest.approx(
            0.9
        )

    def test_noisy_or_combination(self):
        model = self.make(CertaintyCombination.NOISY_OR)
        # both rules fire: 1 - (1-0.9)(1-0.6) = 0.96
        assert model.similarity(vector(name=0.95, job=0.8)) == pytest.approx(
            0.96
        )

    def test_firing_rules_listing(self):
        model = self.make()
        fired = model.firing_rules(vector(name=0.95, job=0.8))
        assert {rule.name for rule in fired} == {"strong", "both"}

    def test_decision_uses_threshold(self):
        model = self.make()
        assert model.decide(vector(name=0.95, job=0.1)).is_match

    def test_empty_rule_set_rejected(self):
        with pytest.raises(ValueError):
            RuleBasedModel([], ThresholdClassifier(0.5))

    def test_unknown_combination_rejected(self):
        with pytest.raises(ValueError):
            RuleBasedModel(
                [paper_example_rule()],
                ThresholdClassifier(0.5),
                combination="votes",
            )

    def test_pretty_lists_all_rules(self):
        assert self.make().pretty().count("IF") == 2


class TestFellegiSunter:
    def make(self, use_log=False) -> FellegiSunterModel:
        return FellegiSunterModel(
            m_probabilities={"name": 0.9, "job": 0.8},
            u_probabilities={"name": 0.1, "job": 0.2},
            classifier=ThresholdClassifier(10.0, 0.5),
            agreement_threshold=0.8,
            use_log=use_log,
        )

    def test_m_probability_product(self):
        model = self.make()
        assert model.m_probability(vector(name=0.9, job=0.9)) == pytest.approx(
            0.72
        )
        assert model.m_probability(vector(name=0.9, job=0.1)) == pytest.approx(
            0.9 * 0.2
        )

    def test_u_probability_product(self):
        model = self.make()
        assert model.u_probability(vector(name=0.9, job=0.9)) == pytest.approx(
            0.02
        )

    def test_matching_weight_ratio(self):
        model = self.make()
        weight = model.matching_weight(vector(name=0.9, job=0.9))
        assert weight == pytest.approx(0.72 / 0.02)

    def test_log_domain(self):
        linear = self.make().matching_weight(vector(name=0.9, job=0.9))
        logged = self.make(use_log=True).matching_weight(
            vector(name=0.9, job=0.9)
        )
        assert logged == pytest.approx(math.log2(linear))

    def test_decide_classifies_by_ratio(self):
        model = self.make()
        assert model.decide(vector(name=0.9, job=0.9)).is_match
        assert model.decide(vector(name=0.1, job=0.1)).is_unmatch

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FellegiSunterModel(
                {"a": 1.0}, {"a": 0.5}, ThresholdClassifier(1.0)
            )
        with pytest.raises(ValueError):
            FellegiSunterModel(
                {"a": 0.5}, {"b": 0.5}, ThresholdClassifier(1.0)
            )

    def test_unknown_attribute_raises(self):
        with pytest.raises(KeyError):
            self.make().m_probability(vector(other=0.9))

    def test_agreement_pattern_helper(self):
        assert agreement_pattern(vector(a=0.9, b=0.5), 0.8) == (True, False)

    def test_fit_labeled_recovers_rates(self):
        matches = [vector(name=0.95, job=0.9)] * 90 + [
            vector(name=0.95, job=0.1)
        ] * 10
        unmatches = [vector(name=0.1, job=0.1)] * 95 + [
            vector(name=0.95, job=0.9)
        ] * 5
        model = FellegiSunterModel.fit_labeled(
            matches, unmatches, ThresholdClassifier(10.0, 0.5),
            agreement_threshold=0.8,
        )
        assert model.m_probabilities["name"] == pytest.approx(0.995, abs=0.01)
        assert model.m_probabilities["job"] == pytest.approx(0.9, abs=0.01)
        assert model.u_probabilities["name"] == pytest.approx(0.05, abs=0.01)

    def test_fit_labeled_requires_both_classes(self):
        with pytest.raises(ValueError):
            FellegiSunterModel.fit_labeled(
                [], [vector(a=0.1)], ThresholdClassifier(1.0)
            )


class TestThresholdSelection:
    def test_separable_data_collapses_band(self):
        classifier = select_thresholds(
            weights_matches=[10.0, 12.0, 15.0],
            weights_unmatches=[0.1, 0.2, 0.3],
            false_match_rate=0.0,
            false_unmatch_rate=0.0,
        )
        assert classifier.unmatch_threshold <= classifier.match_threshold

    def test_tolerated_error_rates_widen_band(self):
        matches = [5.0] * 90 + [0.5] * 10
        unmatches = [0.1] * 90 + [4.0] * 10
        classifier = select_thresholds(
            matches, unmatches, false_match_rate=0.05, false_unmatch_rate=0.05
        )
        assert classifier.match_threshold > classifier.unmatch_threshold

    def test_requires_samples(self):
        with pytest.raises(ValueError):
            select_thresholds([], [1.0])

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            select_thresholds([1.0], [0.5], false_match_rate=1.5)


class TestEMEstimation:
    def _synthetic_vectors(self, n=2000, seed=5):
        """Two latent classes with known m/u agreement rates.

        Three attributes: the latent-class model with two binary
        attributes is not identifiable (5 parameters, 3 degrees of
        freedom), so parameter-recovery tests need n ≥ 3 — the same
        reason practical linkage uses several comparison fields.
        """
        rng = random.Random(seed)
        true_m = {"name": 0.9, "job": 0.75, "city": 0.85}
        true_u = {"name": 0.05, "job": 0.15, "city": 0.1}
        prevalence = 0.2
        vectors = []
        for _ in range(n):
            params = true_m if rng.random() < prevalence else true_u
            vectors.append(
                vector(
                    name=1.0 if rng.random() < params["name"] else 0.0,
                    job=1.0 if rng.random() < params["job"] else 0.0,
                    city=1.0 if rng.random() < params["city"] else 0.0,
                )
            )
        return vectors

    def test_recovers_parameters(self):
        estimate = estimate_em(
            self._synthetic_vectors(), agreement_threshold=0.5
        )
        assert estimate.m_probabilities["name"] == pytest.approx(0.9, abs=0.07)
        assert estimate.u_probabilities["name"] == pytest.approx(
            0.05, abs=0.05
        )
        assert estimate.prevalence == pytest.approx(0.2, abs=0.07)

    def test_convergence_flag(self):
        estimate = estimate_em(
            self._synthetic_vectors(500), agreement_threshold=0.5
        )
        assert estimate.converged
        assert estimate.iterations <= 200

    def test_orientation_is_canonical(self):
        """m-probabilities describe the agreeing class even if the
        initialization would converge swapped."""
        estimate = estimate_em(
            self._synthetic_vectors(),
            agreement_threshold=0.5,
            initial_m=0.2,
            initial_u=0.8,
            initial_prevalence=0.9,
        )
        assert sum(estimate.m_probabilities.values()) >= sum(
            estimate.u_probabilities.values()
        )

    def test_probabilities_stay_in_bounds(self):
        estimate = estimate_em(
            self._synthetic_vectors(200), agreement_threshold=0.5
        )
        for probs in (estimate.m_probabilities, estimate.u_probabilities):
            for value in probs.values():
                assert 0.0 < value < 1.0
        assert 0.0 < estimate.prevalence < 1.0

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            estimate_em([])

    def test_estimates_power_a_model(self):
        """EM output plugs directly into FellegiSunterModel."""
        estimate = estimate_em(
            self._synthetic_vectors(), agreement_threshold=0.5
        )
        model = FellegiSunterModel(
            estimate.m_probabilities,
            estimate.u_probabilities,
            ThresholdClassifier(10.0, 0.5),
            agreement_threshold=0.5,
        )
        agreeing = vector(name=1.0, job=1.0)
        disagreeing = vector(name=0.0, job=0.0)
        assert model.matching_weight(agreeing) > model.matching_weight(
            disagreeing
        )


class TestCombinedDecisionModel:
    def test_figure_3_two_steps(self):
        model = CombinedDecisionModel(
            WeightedSum({"name": 0.8, "job": 0.2}),
            ThresholdClassifier(0.7, 0.4),
        )
        decision = model.decide(vector(name=0.9, job=0.59))
        assert decision.similarity == pytest.approx(0.838)
        assert decision.is_match
