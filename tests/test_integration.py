"""Integration tests: full pipelines across modules.

These exercise realistic end-to-end flows: generate probabilistic data →
(optionally) prepare → reduce the search space → match → decide → verify,
including EM-trained Fellegi–Sunter models and both Figure-6 procedures.
"""

from __future__ import annotations

import pytest

from repro.datagen import (
    DatasetConfig,
    LIGHT_UNCERTAINTY,
    UncertaintyProfile,
    generate_dataset,
)
from repro.matching import (
    AttributeMatcher,
    CombinedDecisionModel,
    DuplicateDetector,
    ExpectedSimilarity,
    FellegiSunterModel,
    MatchingWeight,
    ThresholdClassifier,
    WeightedSum,
    estimate_em,
)
from repro.reduction import (
    AlternativeKeyBlocking,
    AlternativeSorting,
    CertainKeyBlocking,
    SortedNeighborhood,
    SubstringKey,
    UncertainKeySNM,
)
from repro.datagen import JOBS
from repro.similarity import (
    JARO_WINKLER,
    PatternPolicy,
    UncertainValueComparator,
)
from repro.verification import (
    PossiblePolicy,
    evaluate_detection,
    pairs_completeness,
    reduction_ratio,
)

KEY = SubstringKey([("name", 3), ("job", 2)])


def matcher() -> AttributeMatcher:
    """Pattern-aware Jaro–Winkler matcher (generated jobs may be mu*)."""
    name_cmp = UncertainValueComparator(JARO_WINKLER)
    job_cmp = UncertainValueComparator(
        JARO_WINKLER,
        pattern_policy=PatternPolicy.EXPAND,
        pattern_lexicon=JOBS,
    )
    return AttributeMatcher({"name": name_cmp, "job": job_cmp})


def model(t_mu=0.9, t_lambda=0.8) -> CombinedDecisionModel:
    """Equal-weight combiner with tight thresholds.

    The name corpus intentionally contains near-duplicate names
    (Anna/Anne, Carl/Karl), so requiring strong agreement on *both*
    attributes is what keeps precision usable — mirroring why real
    linkage uses several comparison fields.
    """
    return CombinedDecisionModel(
        WeightedSum({"name": 0.5, "job": 0.5}),
        ThresholdClassifier(t_mu, t_lambda),
    )


@pytest.fixture(scope="module")
def flat_dataset():
    return generate_dataset(
        DatasetConfig(
            entity_count=80,
            duplicate_rate=0.5,
            record_error_rate=0.4,
            profile=LIGHT_UNCERTAINTY,
            seed=23,
        ),
        flat=True,
    )


@pytest.fixture(scope="module")
def x_dataset():
    return generate_dataset(
        DatasetConfig(
            entity_count=60,
            duplicate_rate=0.5,
            record_error_rate=0.4,
            seed=29,
        )
    )


class TestFullComparisonPipeline:
    def test_quality_is_reasonable_on_light_noise(self, flat_dataset):
        detector = DuplicateDetector(matcher(), model())
        result = detector.detect(flat_dataset.relation)
        report = evaluate_detection(
            result,
            flat_dataset.true_matches,
            possible_policy=PossiblePolicy.AS_MATCH,
        )
        assert report.recall > 0.6
        assert report.precision > 0.6
        assert report.f1 > 0.6

    def test_tighter_thresholds_trade_recall_for_precision(
        self, flat_dataset
    ):
        loose = DuplicateDetector(matcher(), model(0.75, 0.6)).detect(
            flat_dataset.relation
        )
        strict = DuplicateDetector(matcher(), model(0.97, 0.9)).detect(
            flat_dataset.relation
        )
        loose_report = evaluate_detection(
            loose, flat_dataset.true_matches
        )
        strict_report = evaluate_detection(
            strict, flat_dataset.true_matches
        )
        assert strict_report.recall <= loose_report.recall + 1e-9
        assert len(strict.matches) <= len(loose.matches)


class TestReducedPipelines:
    @pytest.mark.parametrize(
        "reducer_factory",
        [
            lambda: SortedNeighborhood(KEY, window=6),
            lambda: AlternativeSorting(KEY, window=6),
            lambda: UncertainKeySNM(KEY, window=6),
            lambda: CertainKeyBlocking(
                SubstringKey([("name", 1), ("job", 1)])
            ),
            lambda: AlternativeKeyBlocking(
                SubstringKey([("name", 1), ("job", 1)])
            ),
        ],
        ids=[
            "snm_certain",
            "snm_alternatives",
            "snm_uncertain",
            "blocking_certain",
            "blocking_alternatives",
        ],
    )
    def test_reduction_prunes_but_keeps_quality(
        self, x_dataset, reducer_factory
    ):
        reducer = reducer_factory()
        detector = DuplicateDetector(matcher(), model(), reducer=reducer)
        result = detector.detect(x_dataset.relation)

        ratio = reduction_ratio(
            result.compared_pairs, result.relation_size
        )
        completeness = pairs_completeness(
            result.compared_pairs, x_dataset.true_matches
        )
        assert ratio > 0.5, "reduction should prune most pairs"
        assert completeness > 0.4, "reduction should keep most matches"

    def test_alternative_sorting_completeness_geq_certain_key(
        self, x_dataset
    ):
        """Considering all alternatives can only widen the candidate set
        relative to a single certain key per tuple (same window)."""
        certain = set(
            SortedNeighborhood(KEY, window=6).pairs(x_dataset.relation)
        )
        alternatives = set(
            AlternativeSorting(KEY, window=6).pairs(x_dataset.relation)
        )
        pc_certain = pairs_completeness(certain, x_dataset.true_matches)
        pc_alternatives = pairs_completeness(
            alternatives, x_dataset.true_matches
        )
        # Not a strict theorem for SNM (window dilution), but holds on
        # generated data with a sensible margin.
        assert pc_alternatives >= pc_certain - 0.05


class TestXTupleDerivationsEndToEnd:
    def test_similarity_and_decision_based_agree_on_easy_pairs(
        self, x_dataset
    ):
        sim_detector = DuplicateDetector(
            matcher(), model(), derivation=ExpectedSimilarity()
        )
        dec_detector = DuplicateDetector(
            matcher(),
            model(),
            derivation=MatchingWeight(),
            final_classifier=ThresholdClassifier(1.5, 0.6),
        )
        sim_result = sim_detector.detect(x_dataset.relation)
        dec_result = dec_detector.detect(x_dataset.relation)
        sim_matches = set(sim_result.matches)
        dec_matches = set(dec_result.matches)
        overlap = len(sim_matches & dec_matches)
        union = len(sim_matches | dec_matches)
        assert union > 0
        assert overlap / union > 0.5, "derivations should broadly agree"


class TestEMTrainedPipeline:
    def test_em_parameters_power_detection(self, flat_dataset):
        """Unsupervised FS: estimate m/u on SNM candidates, then detect."""
        att_matcher = matcher()
        candidates = list(
            SortedNeighborhood(KEY, window=8).pairs(flat_dataset.relation)
        )
        vectors = [
            att_matcher.compare_rows(
                flat_dataset.relation.get(left).alternatives[0],
                flat_dataset.relation.get(right).alternatives[0],
            )
            for left, right in candidates
        ]
        estimate = estimate_em(vectors, agreement_threshold=0.85)
        fs_model = FellegiSunterModel(
            estimate.m_probabilities,
            estimate.u_probabilities,
            ThresholdClassifier(20.0, 1.0),
            agreement_threshold=0.85,
        )
        detector = DuplicateDetector(att_matcher, fs_model)
        result = detector.detect(flat_dataset.relation)
        # Score the automatic decisions: possible matches go to clerical
        # review (the paper's Figure-2 semantics), so they are excluded.
        report = evaluate_detection(
            result,
            flat_dataset.true_matches,
            possible_policy=PossiblePolicy.EXCLUDE,
        )
        assert report.f1 > 0.7
        assert report.precision > 0.8

    def test_em_prevalence_in_plausible_range(self, flat_dataset):
        att_matcher = matcher()
        pairs = list(
            SortedNeighborhood(KEY, window=8).pairs(flat_dataset.relation)
        )
        vectors = [
            att_matcher.compare_rows(
                flat_dataset.relation.get(a).alternatives[0],
                flat_dataset.relation.get(b).alternatives[0],
            )
            for a, b in pairs
        ]
        estimate = estimate_em(vectors, agreement_threshold=0.85)
        assert 0.0 < estimate.prevalence < 0.6


class TestClusterConsistency:
    def test_clusters_respect_entity_structure(self, flat_dataset):
        detector = DuplicateDetector(matcher(), model())
        result = detector.detect(flat_dataset.relation)
        clusters = result.clusters()
        # Most in-cluster pairs should share the true entity.
        agree = 0
        total = 0
        for cluster in clusters.clusters:
            for i, left in enumerate(cluster):
                for right in cluster[i + 1 :]:
                    total += 1
                    if (
                        flat_dataset.entity_of[left]
                        == flat_dataset.entity_of[right]
                    ):
                        agree += 1
        if total:
            assert agree / total > 0.7


class TestHeavyUncertaintyRobustness:
    def test_pipeline_survives_heavy_uncertainty(self):
        dataset = generate_dataset(
            DatasetConfig(
                entity_count=40,
                profile=UncertaintyProfile(
                    uncertain_value_rate=0.9,
                    max_alternatives=4,
                    true_value_mass=0.5,
                    null_rate=0.2,
                    maybe_rate=0.5,
                    pattern_rate=0.0,
                ),
                seed=31,
            )
        )
        detector = DuplicateDetector(matcher(), model())
        result = detector.detect(dataset.relation)
        # Sanity: every decision has a finite or infinite similarity and
        # a valid status; nothing crashes under heavy uncertainty.
        assert len(result.decisions) == len(result.compared_pairs)
        report = evaluate_detection(result, dataset.true_matches)
        assert 0.0 <= report.precision <= 1.0
