"""Unit tests for the certain-value comparison functions."""

from __future__ import annotations

import pytest

from repro.similarity import (
    COMPARATORS,
    FAST_JARO_WINKLER,
    BoundedJaroWinkler,
    Glossary,
    bigram_similarity,
    checked,
    damerau_levenshtein_distance,
    damerau_levenshtein_similarity,
    exact_similarity,
    hamming_distance,
    jaccard_qgram_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    jaro_winkler_upper_bound,
    levenshtein_distance,
    levenshtein_similarity,
    normalized_hamming_similarity,
    numeric_similarity,
    qgram_similarity,
    qgrams,
    relative_numeric_similarity,
    symmetrized,
    token_jaccard_similarity,
    trigram_similarity,
    weighted_mean,
)

ALL_STRING_COMPARATORS = [
    normalized_hamming_similarity,
    levenshtein_similarity,
    damerau_levenshtein_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    bigram_similarity,
    trigram_similarity,
    jaccard_qgram_similarity,
]


class TestSharedContracts:
    @pytest.mark.parametrize("fn", ALL_STRING_COMPARATORS)
    def test_identity_scores_one(self, fn):
        assert fn("duplicate", "duplicate") == pytest.approx(1.0)

    @pytest.mark.parametrize("fn", ALL_STRING_COMPARATORS)
    def test_bounded(self, fn):
        pairs = [
            ("abc", "xyz"),
            ("", "abc"),
            ("a", ""),
            ("Tim", "Timothy"),
            ("machinist", "mechanic"),
        ]
        for left, right in pairs:
            assert 0.0 <= fn(left, right) <= 1.0

    @pytest.mark.parametrize("fn", ALL_STRING_COMPARATORS)
    def test_symmetric(self, fn):
        assert fn("Tim", "Timothy") == pytest.approx(fn("Timothy", "Tim"))

    @pytest.mark.parametrize("fn", ALL_STRING_COMPARATORS)
    def test_empty_vs_empty_is_one(self, fn):
        assert fn("", "") == pytest.approx(1.0)


class TestHamming:
    def test_distance_equal_length(self):
        assert hamming_distance("karolin", "kathrin") == 3

    def test_distance_pads_shorter(self):
        assert hamming_distance("abc", "abcd") == 1

    def test_distance_order_independent(self):
        assert hamming_distance("ab", "abcd") == hamming_distance(
            "abcd", "ab"
        )

    def test_paper_value_machinist_mechanic(self):
        assert normalized_hamming_similarity(
            "machinist", "mechanic"
        ) == pytest.approx(5 / 9)

    def test_non_string_coerced(self):
        assert normalized_hamming_similarity(123, 123) == 1.0


class TestLevenshtein:
    def test_classic_kitten_sitting(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_empty_cases(self):
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3
        assert levenshtein_distance("", "") == 0

    def test_similarity_value(self):
        assert levenshtein_similarity("kitten", "sitting") == pytest.approx(
            1 - 3 / 7
        )

    def test_transposition_costs_two(self):
        assert levenshtein_distance("ab", "ba") == 2

    def test_damerau_transposition_costs_one(self):
        assert damerau_levenshtein_distance("ab", "ba") == 1

    def test_damerau_never_exceeds_levenshtein(self):
        pairs = [("Tim", "Tmi"), ("abcdef", "abcdfe"), ("ca", "abc")]
        for left, right in pairs:
            assert damerau_levenshtein_distance(
                left, right
            ) <= levenshtein_distance(left, right)


class TestJaro:
    def test_known_value_martha_marhta(self):
        assert jaro_similarity("MARTHA", "MARHTA") == pytest.approx(
            0.944444, abs=1e-5
        )

    def test_known_value_dwayne_duane(self):
        assert jaro_similarity("DWAYNE", "DUANE") == pytest.approx(
            0.822222, abs=1e-5
        )

    def test_no_common_characters(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_winkler_boosts_common_prefix(self):
        plain = jaro_similarity("MARTHA", "MARHTA")
        boosted = jaro_winkler_similarity("MARTHA", "MARHTA")
        assert boosted > plain

    def test_winkler_known_value(self):
        assert jaro_winkler_similarity("MARTHA", "MARHTA") == pytest.approx(
            0.961111, abs=1e-5
        )

    def test_winkler_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_scale=0.5, max_prefix=4)

    def test_empty_operand(self):
        assert jaro_similarity("", "abc") == 0.0


class TestJaroWinklerBound:
    PAIRS = [
        ("MARTHA", "MARHTA"),
        ("DWAYNE", "DUANE"),
        ("abc", "xyz"),
        ("", "abc"),
        ("meier", "meier"),
        ("jo", "johannes"),
        ("a", "ab"),
    ]

    @pytest.mark.parametrize("left,right", PAIRS)
    def test_bound_dominates_the_exact_similarity(self, left, right):
        bound = jaro_winkler_upper_bound(left, right)
        assert bound >= jaro_winkler_similarity(left, right)
        assert 0.0 <= bound <= 1.0

    def test_bound_is_cheap_length_arithmetic(self):
        # Shared length and a full prefix pin the bound at 1.0 even for
        # unequal strings — it never inspects beyond the prefix.
        assert jaro_winkler_upper_bound("abcdx", "abcdy") == 1.0
        assert jaro_winkler_upper_bound("same", "same") == 1.0
        assert jaro_winkler_upper_bound("", "") == 1.0
        assert jaro_winkler_upper_bound("", "abc") == 0.0

    @pytest.mark.parametrize("left,right", PAIRS)
    @pytest.mark.parametrize("floor", [0.0, 0.4, 0.9, 0.99])
    def test_floored_comparator_prunes_without_changing_scores(
        self, left, right, floor
    ):
        comparator = FAST_JARO_WINKLER.with_min_similarity(floor)
        exact = jaro_winkler_similarity(left, right)
        observed = comparator(left, right)
        if exact >= floor:
            assert observed == exact
        else:
            assert observed in (0.0, exact)

    def test_comparator_skips_the_quadratic_pass_below_floor(self):
        # "jo" vs an 8-char string: matches ≤ 2 bounds jaro well below
        # 0.9, so the floored comparator answers 0.0 from lengths alone.
        comparator = FAST_JARO_WINKLER.with_min_similarity(0.9)
        assert comparator("jo", "xyzvwxyz") == 0.0
        assert FAST_JARO_WINKLER.min_similarity == 0.0
        assert comparator.min_similarity == 0.9
        assert comparator.with_min_similarity(0.9) is comparator
        assert isinstance(comparator, BoundedJaroWinkler)

    def test_unfloored_comparator_equals_the_reference(self):
        for left, right in self.PAIRS:
            assert FAST_JARO_WINKLER(left, right) == (
                jaro_winkler_similarity(left, right)
            )


class TestNgrams:
    def test_qgrams_padded(self):
        grams = qgrams("ab", 2)
        assert sum(grams.values()) == 3  # _a, ab, b_

    def test_qgrams_unpadded(self):
        grams = qgrams("abc", 2, pad=False)
        assert set(grams) == {"ab", "bc"}

    def test_qgrams_short_string(self):
        assert sum(qgrams("a", 3, pad=False).values()) == 1

    def test_qgrams_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", 0)

    def test_dice_disjoint(self):
        assert qgram_similarity("abc", "xyz") == 0.0

    def test_jaccard_leq_dice(self):
        pairs = [("night", "nacht"), ("Tim", "Timothy")]
        for left, right in pairs:
            assert jaccard_qgram_similarity(left, right) <= qgram_similarity(
                left, right
            ) + 1e-9

    def test_multiset_counts_matter(self):
        # 'aaa' shares limited gram multiplicity with 'a'.
        assert qgram_similarity("aaa", "a") < 1.0


class TestBasicComparators:
    def test_exact(self):
        assert exact_similarity("x", "x") == 1.0
        assert exact_similarity("x", "y") == 0.0
        assert exact_similarity(1, 1.0) == 1.0

    def test_numeric_decay(self):
        assert numeric_similarity(10, 10) == 1.0
        assert numeric_similarity(10, 11, scale=1.0) == pytest.approx(
            0.3678794, abs=1e-6
        )

    def test_numeric_invalid_scale(self):
        with pytest.raises(ValueError):
            numeric_similarity(1, 2, scale=0.0)

    def test_numeric_non_numeric_is_zero(self):
        assert numeric_similarity("a", 1) == 0.0

    def test_relative_numeric(self):
        assert relative_numeric_similarity(100, 90) == pytest.approx(0.9)
        assert relative_numeric_similarity(0, 0) == 1.0

    def test_token_jaccard(self):
        assert token_jaccard_similarity(
            "main street 5", "Main Street"
        ) == pytest.approx(2 / 3)


class TestGlossary:
    def make(self) -> Glossary:
        return Glossary(
            synonym_groups=[("confectioner", "confectionist")],
            related={("machinist", "mechanic"): 0.8},
        )

    def test_synonyms_score_one(self):
        assert self.make().lookup("confectioner", "confectionist") == 1.0

    def test_case_insensitive_by_default(self):
        assert self.make().lookup("Confectioner", "CONFECTIONIST") == 1.0

    def test_related_pairs_score(self):
        assert self.make().lookup("mechanic", "machinist") == 0.8

    def test_unknown_pair_is_none(self):
        assert self.make().lookup("baker", "pilot") is None

    def test_equal_terms_score_one(self):
        assert self.make().lookup("pilot", "pilot") == 1.0

    def test_comparator_falls_back(self):
        comparator = self.make().comparator(fallback=lambda a, b: 0.5)
        assert comparator("baker", "pilot") == 0.5

    def test_comparator_without_fallback_scores_zero(self):
        comparator = self.make().comparator()
        assert comparator("baker", "pilot") == 0.0

    def test_invalid_related_score_rejected(self):
        with pytest.raises(ValueError):
            Glossary(related={("a", "b"): 1.5})

    def test_contains(self):
        assert "confectioner" in self.make()
        assert "pilot" not in self.make()


class TestCombinators:
    def test_checked_passes_valid(self):
        fn = checked(lambda a, b: 0.5)
        assert fn("x", "y") == 0.5

    def test_checked_raises_on_violation(self):
        fn = checked(lambda a, b: 1.5)
        with pytest.raises(ValueError):
            fn("x", "y")

    def test_symmetrized(self):
        asymmetric = lambda a, b: 1.0 if a == "x" else 0.0
        fn = symmetrized(asymmetric)
        assert fn("x", "y") == pytest.approx(0.5)
        assert fn("y", "x") == pytest.approx(0.5)

    def test_weighted_mean(self):
        fn = weighted_mean([(lambda a, b: 1.0, 3), (lambda a, b: 0.0, 1)])
        assert fn("x", "y") == pytest.approx(0.75)

    def test_weighted_mean_requires_weights(self):
        with pytest.raises(ValueError):
            weighted_mean([])
        with pytest.raises(ValueError):
            weighted_mean([(exact_similarity, 0.0)])

    def test_registry_names_are_unique_and_callable(self):
        assert len(COMPARATORS) >= 10
        for name, fn in COMPARATORS.items():
            assert fn.name == name
            assert 0.0 <= fn("abc", "abd") <= 1.0
