"""The execution engine: skew-aware work stealing, splits, progress.

Three invariant families pin the executor extraction:

* **stealing equivalence** — ``scheduling="stealing"`` (cost-budget
  subdivision + largest-first dispatch + plan-order reassembly)
  produces exactly the decisions of the legacy striped serial pipeline,
  serial and fanned out, streamed and collected;
* **exact cover** — every subdivision path (sub-key hook, grouping
  helper, banding fallback) covers a partition's pairs exactly once
  (hypothesis properties), and a broken splitter is rejected loudly;
* **introspection** — run reports and progress events describe what
  the scheduler actually did.

The detector facade's LRU memo of pruned procedure clones (threshold
pushdown) is pinned here too, since the facade slimming moved it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import DatasetConfig, generate_dataset
from repro.experiments.quality import default_matcher, weighted_model
from repro.matching import (
    AttributeMatcher,
    DuplicateDetector,
    FellegiSunterModel,
    FullComparison,
    ThresholdClassifier,
)
from repro.matching.executor import (
    ExecutionEngine,
    ExecutionSettings,
    estimate_partition_weight,
    subdivide_partition,
)
from repro.pdb.relations import XRelation
from repro.pdb.xtuples import XTuple
from repro.reduction import (
    CandidatePartition,
    CertainKeyBlocking,
    PlanBuilder,
    SortedNeighborhood,
    SubstringKey,
    band_partition,
    plan_candidates,
    split_partition_by_groups,
)
from repro.similarity import FAST_LEVENSHTEIN, UncertainValueComparator

BLOCK_KEY = SubstringKey([("name", 1)])
SORT_KEY = SubstringKey([("name", 3), ("job", 2)])


@pytest.fixture(scope="module")
def flat_relation():
    return generate_dataset(
        DatasetConfig(entity_count=40, seed=7), flat=True
    ).relation


def _detector(reducer):
    return DuplicateDetector(
        default_matcher(), weighted_model(), reducer=reducer
    )


def _triples(result):
    return [
        (d.left_id, d.right_id, d.status, d.similarity)
        for d in result.decisions
    ]


# ----------------------------------------------------------------------
# Stealing equivalence (the acceptance pin)
# ----------------------------------------------------------------------


STEALING_REDUCERS = {
    "blocking": lambda: CertainKeyBlocking(BLOCK_KEY),
    "snm": lambda: SortedNeighborhood(SORT_KEY, window=5),
    "full": lambda: FullComparison(),
}


@pytest.mark.parametrize("name", sorted(STEALING_REDUCERS))
def test_stealing_matches_serial_seed_pipeline(name, flat_relation):
    """Tiny split budget forces subdivision on every oversized block."""
    factory = STEALING_REDUCERS[name]
    reference = _detector(factory()).detect(
        flat_relation, scheduling="striped"
    )
    serial = _detector(factory()).detect(
        flat_relation, scheduling="stealing", split_pairs=11
    )
    parallel = _detector(factory()).detect(
        flat_relation,
        scheduling="stealing",
        split_pairs=11,
        n_jobs=2,
        chunk_size=23,
    )
    assert _triples(serial) == _triples(reference)
    assert _triples(parallel) == _triples(reference)
    assert serial.compared_pairs == reference.compared_pairs
    assert parallel.compared_pairs == reference.compared_pairs


def test_stealing_stream_slices_stay_in_plan_order(flat_relation):
    reducer = CertainKeyBlocking(BLOCK_KEY)
    detector = _detector(reducer)
    plan = reducer.plan(flat_relation)
    slices = list(
        detector.detect(
            flat_relation,
            scheduling="stealing",
            split_pairs=7,
            n_jobs=2,
            stream=True,
        )
    )
    assert [piece.partition_label for piece in slices] == [
        partition.label for partition in plan
    ]
    reference = _detector(CertainKeyBlocking(BLOCK_KEY)).detect(
        flat_relation
    )
    streamed = [t for piece in slices for t in _triples(piece)]
    assert streamed == _triples(reference)


def test_stealing_report_counts_splits(flat_relation):
    detector = _detector(CertainKeyBlocking(BLOCK_KEY))
    detector.detect(flat_relation, scheduling="stealing", split_pairs=7)
    report = detector.last_report
    assert report.scheduling == "stealing"
    assert report.oversized_partitions > 0
    assert report.subkey_split_partitions > 0
    assert report.work_units > report.partitions
    assert report.decided_pairs == report.total_pairs
    assert report.completed_partitions == report.partitions
    assert "split" in report.summary()


def test_progress_events_track_the_plan(flat_relation):
    reducer = CertainKeyBlocking(BLOCK_KEY)
    detector = _detector(reducer)
    events = []
    detector.detect(flat_relation, on_progress=events.append)
    plan = reducer.plan(flat_relation)
    assert [event.label for event in events] == [
        partition.label for partition in plan
    ]
    assert [event.index for event in events] == list(range(len(plan)))
    fractions = [event.fraction for event in events]
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)
    assert events[-1].decided_pairs == plan.total_pairs


def test_partitioned_report_counts_dispatches(flat_relation):
    detector = _detector(CertainKeyBlocking(BLOCK_KEY))
    detector.detect(flat_relation, n_jobs=2, chunk_size=13)
    report = detector.last_report
    assert report.scheduling == "partitioned"
    assert report.n_jobs == 2
    assert report.dispatch_tasks > 0
    assert report.prewarmed_entries > 0
    assert report.caches_frozen
    assert report.decided_pairs == report.total_pairs


def test_stealing_defaults_to_no_parent_prewarm(flat_relation):
    detector = _detector(CertainKeyBlocking(BLOCK_KEY))
    detector.detect(
        flat_relation, scheduling="stealing", n_jobs=2, split_pairs=7
    )
    assert detector.last_report.prewarmed_entries == 0
    detector.detect(
        flat_relation,
        scheduling="stealing",
        n_jobs=2,
        split_pairs=7,
        prewarm=True,
    )
    assert detector.last_report.prewarmed_entries > 0


def test_execution_settings_validate():
    with pytest.raises(ValueError):
        ExecutionSettings(chunk_size=0)
    with pytest.raises(ValueError):
        ExecutionSettings(n_jobs=0)
    with pytest.raises(ValueError):
        ExecutionSettings(scheduling="ring")
    with pytest.raises(ValueError):
        ExecutionSettings(split_pairs=0)
    with pytest.raises(ValueError):
        ExecutionSettings(prewarm_budget=-1)


def test_prewarm_budget_overflow_skips_freezing(flat_relation):
    """A budget too small for the plan leaves the warm incomplete: the
    caches are then not frozen around the fork (the skewed-block regime
    the stealing scheduler sidesteps) — and decisions are unchanged."""
    reference = _detector(CertainKeyBlocking(BLOCK_KEY)).detect(
        flat_relation
    )
    detector = _detector(CertainKeyBlocking(BLOCK_KEY))
    capped = detector.detect(flat_relation, n_jobs=2, prewarm_budget=5)
    assert not detector.last_report.caches_frozen
    assert _triples(capped) == _triples(reference)
    detector.detect(flat_relation, n_jobs=2)
    assert detector.last_report.caches_frozen


def test_detect_rejects_unknown_scheduling(flat_relation):
    detector = _detector(FullComparison())
    with pytest.raises(ValueError):
        detector.detect(flat_relation, scheduling="ring")
    with pytest.raises(ValueError):
        detector.detect(flat_relation, scheduling="striped", stream=True)


# ----------------------------------------------------------------------
# Exact cover of subdivisions
# ----------------------------------------------------------------------


def _partition_from_pairs(pairs):
    builder = PlanBuilder()
    builder.add("prop", pairs)
    plan = builder.build(relation_size=64, source="prop")
    return plan.partitions[0] if plan.partitions else None


pair_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15).map("t{:02d}".format),
        st.integers(min_value=0, max_value=15).map("t{:02d}".format),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(pairs=pair_lists, max_pairs=st.integers(min_value=1, max_value=12))
def test_banding_covers_every_pair_exactly_once(pairs, max_pairs):
    partition = _partition_from_pairs(pairs)
    if partition is None:
        return
    bands = band_partition(partition, max_pairs)
    flat = [pair for band in bands for pair in band.pairs]
    assert flat == list(partition.pairs)  # order-preserving cover
    assert all(len(band) <= max_pairs for band in bands)


@settings(max_examples=60, deadline=None)
@given(
    pairs=pair_lists,
    salt=st.integers(min_value=2, max_value=5),
)
def test_grouped_split_covers_every_pair_exactly_once(pairs, salt):
    """Property: any member→group map is an exact, reorderable cover."""
    partition = _partition_from_pairs(pairs)
    if partition is None:
        return
    groups = {
        member: f"g{hash(member) % salt}" for member in partition.members
    }
    subs = split_partition_by_groups(partition, groups)
    flat = [pair for sub in subs for pair in sub.pairs]
    assert sorted(flat) == sorted(set(partition.pairs))
    assert len(flat) == len(partition.pairs)
    for sub in subs:
        touched = {m for pair in sub.pairs for m in pair}
        assert set(sub.members) == touched


@settings(max_examples=30, deadline=None)
@given(
    names=st.lists(
        st.text(
            alphabet="ab", min_size=1, max_size=4
        ),
        min_size=2,
        max_size=12,
    ),
    max_pairs=st.integers(min_value=1, max_value=6),
)
def test_blocking_subkey_split_covers_exactly_once(names, max_pairs):
    """The reducer hook: work-stealing sub-partitions cover every
    candidate pair of the block exactly once (the ISSUE's property)."""
    from repro.pdb.xtuples import TupleAlternative, XTuple

    relation = XRelation(
        "R",
        ("name",),
        [
            XTuple(f"t{i:02d}", (TupleAlternative({"name": name}, 1.0),))
            for i, name in enumerate(names)
        ],
    )
    reducer = CertainKeyBlocking(SubstringKey([("name", 1)]))
    for partition in reducer.plan(relation):
        units = subdivide_partition(
            reducer, relation, partition, max_pairs=max_pairs
        )
        flat = [pair for unit in units for pair in unit.pairs]
        assert sorted(flat) == sorted(partition.pairs)
        assert len(flat) == len(partition.pairs)
        assert all(len(unit) <= max_pairs for unit in units)


def test_broken_splitter_is_rejected(flat_relation):
    class DroppingSplitter:
        """Claims to split but silently drops pairs."""

        def split_partition(self, relation, partition, *, max_pairs):
            half = partition.pairs[: len(partition.pairs) // 2]
            return [
                CandidatePartition(
                    label=f"{partition.label}/broken",
                    pairs=half,
                    members=partition.members,
                )
            ]

    plan = plan_candidates(CertainKeyBlocking(BLOCK_KEY), flat_relation)
    oversized = max(plan.partitions, key=len)
    with pytest.raises(ValueError, match="inexact cover"):
        subdivide_partition(
            DroppingSplitter(),
            flat_relation,
            oversized,
            max_pairs=max(1, len(oversized) // 4),
        )


def test_engine_is_usable_directly(flat_relation):
    """The extracted engine works without the detector facade."""
    reducer = CertainKeyBlocking(BLOCK_KEY)
    detector = _detector(reducer)
    plan = plan_candidates(reducer, flat_relation)
    engine = ExecutionEngine(
        detector.procedure,
        ExecutionSettings(scheduling="stealing", split_pairs=9),
        splitter=reducer,
    )
    slices = list(engine.execute(flat_relation, plan))
    reference = _detector(CertainKeyBlocking(BLOCK_KEY)).detect(
        flat_relation
    )
    flat = [t for piece in slices for t in _triples(piece)]
    assert flat == _triples(reference)
    assert engine.report.completed_partitions == len(plan)


# ----------------------------------------------------------------------
# Pruned-procedure memo: true LRU eviction (facade satellite)
# ----------------------------------------------------------------------


def _prunable_detector():
    matcher = AttributeMatcher(
        {
            "name": UncertainValueComparator(FAST_LEVENSHTEIN, cache=True),
            "job": UncertainValueComparator(FAST_LEVENSHTEIN, cache=True),
        }
    )
    model = FellegiSunterModel(
        {"name": 0.9, "job": 0.6},
        {"name": 0.05, "job": 0.2},
        ThresholdClassifier(10.0, 1.0),
        agreement_threshold=0.8,
    )
    return DuplicateDetector(matcher, model)


def test_pruned_procedure_memo_is_bounded_lru():
    from repro.matching.pipeline import _MAX_PRUNED_PROCEDURES

    detector = _prunable_detector()
    hot = detector._resolve_procedure(0.5)
    assert hot is not detector.procedure  # a real pruned clone
    assert detector._resolve_procedure(0.5) is hot  # memoized
    # A cutoff sweep interleaved with the hot configuration: the hot
    # clone must survive (the old wholesale clear() dropped it).
    for step in range(2 * _MAX_PRUNED_PROCEDURES):
        detector._resolve_procedure(0.05 + step * 0.02)
        assert detector._resolve_procedure(0.5) is hot
        assert len(detector._pruned_procedures) <= _MAX_PRUNED_PROCEDURES
    # Cold sweep entries were evicted least-recently-used first: the
    # earliest sweep cutoffs are gone, the latest still memoized.
    memo = detector._pruned_procedures
    late = detector._resolve_procedure(
        0.05 + (2 * _MAX_PRUNED_PROCEDURES - 1) * 0.02
    )
    assert any(procedure is late for procedure in memo.values())
    early_key_count = len(memo)
    detector._resolve_procedure(0.05)  # re-derive an evicted cutoff
    assert len(memo) <= max(early_key_count, _MAX_PRUNED_PROCEDURES)


def test_pruned_procedure_memo_evicts_oldest_not_everything():
    from repro.matching.pipeline import _MAX_PRUNED_PROCEDURES

    detector = _prunable_detector()
    procedures = [
        detector._resolve_procedure(0.1 + i * 0.05)
        for i in range(_MAX_PRUNED_PROCEDURES)
    ]
    # Memo is full; one more eviction drops exactly the oldest.
    detector._resolve_procedure(0.9)
    memo_values = list(detector._pruned_procedures.values())
    assert procedures[0] not in memo_values
    assert all(p in memo_values for p in procedures[1:])
    assert len(memo_values) == _MAX_PRUNED_PROCEDURES


# ----------------------------------------------------------------------
# Weighted stealing cost model
# ----------------------------------------------------------------------


def _fat_thin_relation():
    """Two blocks of equal pair count but wildly different pair cost:
    "fat" tuples carry two long-string alternatives each (4 alternative
    combinations per pair, long edit distances), "thin" tuples a single
    short certain row."""
    fat = [
        XTuple.build(
            f"fat-{i}",
            [
                (
                    {
                        "name": f"aardvark-{i}-" + "x" * 28,
                        "job": "archivist-" + "y" * 15,
                    },
                    0.6,
                ),
                (
                    {
                        "name": f"aardwolf-{i}-" + "x" * 28,
                        "job": "archivist-" + "z" * 15,
                    },
                    0.4,
                ),
            ],
        )
        for i in range(8)
    ]
    thin = [
        XTuple.build(
            f"thin-{i}", [({"name": f"zed-{i}", "job": "zk"}, 1.0)]
        )
        for i in range(8)
    ]
    return XRelation("fatthin", ("name", "job"), fat + thin)


def test_weight_estimate_separates_fat_from_thin():
    relation = _fat_thin_relation()
    plan = CertainKeyBlocking(BLOCK_KEY).plan(relation)
    weights = {
        partition.members[0][:3]: estimate_partition_weight(
            relation, partition
        )
        for partition in plan
    }
    assert set(weights) == {"fat", "thi"}
    assert weights["fat"] > 10 * weights["thi"]


def test_weighted_cost_model_is_bitwise_and_splits_finer(
    flat_relation,
):
    """The weighted model subdivides expensive partitions that the
    pair-count model leaves whole — and stays bitwise-identical."""
    relation = _fat_thin_relation()
    reference = _detector(CertainKeyBlocking(BLOCK_KEY)).detect(
        relation, scheduling="striped"
    )
    by_pairs = _detector(CertainKeyBlocking(BLOCK_KEY))
    pairs_result = by_pairs.detect(
        relation, scheduling="stealing", split_pairs=28
    )
    by_weight = _detector(CertainKeyBlocking(BLOCK_KEY))
    weight_result = by_weight.detect(
        relation,
        scheduling="stealing",
        split_pairs=28,
        split_cost_model="weighted",
    )
    assert _triples(pairs_result) == _triples(reference)
    assert _triples(weight_result) == _triples(reference)
    # Both blocks hold 28 pairs: the pair model splits neither, the
    # weighted model subdivides the fat block's budget-blowing pairs.
    assert (
        by_weight.last_report.work_units
        > by_pairs.last_report.work_units
    )
    # The weighted run also works fanned out.
    fanned = _detector(CertainKeyBlocking(BLOCK_KEY)).detect(
        relation,
        scheduling="stealing",
        split_pairs=28,
        split_cost_model="weighted",
        n_jobs=2,
    )
    assert _triples(fanned) == _triples(reference)


def test_split_cost_model_validates():
    with pytest.raises(ValueError):
        ExecutionSettings(split_cost_model="bogus")
    assert (
        ExecutionSettings(split_cost_model="weighted").split_cost_model
        == "weighted"
    )
