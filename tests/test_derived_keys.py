"""Unit tests for derived keys and phonetic blocking."""

from __future__ import annotations

import pytest

from repro.pdb import NULL, PatternValue, XRelation, XTuple
from repro.pdb.xtuples import TupleAlternative
from repro.reduction import (
    DerivedKey,
    PhoneticBlocking,
    derived_most_probable_key,
    derived_xtuple_key_distribution,
    phonetic_key,
    prefix_transform,
    soundex_transform,
)
from repro.reduction.derived_keys import (
    derived_alternative_key_distribution,
)
from repro.similarity import soundex


class TestTransforms:
    def test_prefix_transform(self):
        assert prefix_transform(3)("Johnathan") == "Joh"

    def test_prefix_transform_validated(self):
        with pytest.raises(ValueError):
            prefix_transform(0)

    def test_soundex_transform(self):
        assert soundex_transform("Robert") == soundex("Robert")


class TestDerivedKey:
    def make(self) -> DerivedKey:
        return DerivedKey(
            [("name", soundex_transform), ("job", prefix_transform(2))]
        )

    def test_concatenates_parts(self):
        key = self.make()
        assert key.for_assignment(
            {"name": "Robert", "job": "pilot"}
        ) == soundex("Robert") + "pi"

    def test_null_contributes_empty(self):
        key = self.make()
        assert key.for_assignment({"name": "Robert", "job": NULL}) == (
            soundex("Robert")
        )

    def test_pattern_uses_prefix(self):
        key = DerivedKey([("job", prefix_transform(2))])
        assert key.for_assignment({"job": PatternValue("mu*")}) == "mu"

    def test_empty_parts_rejected(self):
        with pytest.raises(ValueError):
            DerivedKey([])

    def test_attributes(self):
        assert self.make().attributes == ("name", "job")


class TestDerivedDistributions:
    def test_alternative_distribution_merges_codes(self):
        # Tim and Tym share the Soundex code T500.
        alt = TupleAlternative(
            {"name": {"Tim": 0.6, "Tym": 0.4}}, 1.0
        )
        key = DerivedKey([("name", soundex_transform)])
        distribution = derived_alternative_key_distribution(alt, key)
        assert distribution == [("T500", pytest.approx(1.0))]

    def test_xtuple_distribution_conditioned(self):
        xt = XTuple.build(
            "t",
            [
                ({"name": "Tim"}, 0.4),
                ({"name": "Walter"}, 0.4),
            ],
        )
        key = DerivedKey([("name", soundex_transform)])
        distribution = dict(derived_xtuple_key_distribution(xt, key))
        assert distribution[soundex("Tim")] == pytest.approx(0.5)
        assert distribution[soundex("Walter")] == pytest.approx(0.5)

    def test_most_probable_derived_key(self):
        xt = XTuple.build(
            "t",
            [
                ({"name": "Tim"}, 0.3),
                ({"name": "Walter"}, 0.6),
            ],
        )
        key = DerivedKey([("name", soundex_transform)])
        assert derived_most_probable_key(xt, key) == soundex("Walter")


class TestPhoneticBlocking:
    def relation(self) -> XRelation:
        return XRelation(
            "R",
            ["name", "job"],
            [
                XTuple.certain("a", {"name": "Stephan", "job": "pilot"}),
                XTuple.certain("b", {"name": "Stefan", "job": "baker"}),
                XTuple.certain("c", {"name": "Walter", "job": "judge"}),
            ],
        )

    def test_phonetic_variants_share_block(self):
        blocking = PhoneticBlocking()
        blocks = blocking.blocks(self.relation())
        code = soundex("Stephan")
        assert set(blocks[code]) == {"a", "b"}

    def test_pairs(self):
        blocking = PhoneticBlocking()
        assert set(blocking.pairs(self.relation())) == {("a", "b")}

    def test_alternatives_join_multiple_blocks(self):
        relation = XRelation(
            "R",
            ["name", "job"],
            [
                XTuple.build(
                    "x",
                    [
                        ({"name": "Tim", "job": "j"}, 0.5),
                        ({"name": "Walter", "job": "j"}, 0.5),
                    ],
                ),
                XTuple.certain("y", {"name": "Tym", "job": "j"}),
                XTuple.certain("z", {"name": "Valter", "job": "j"}),
            ],
        )
        blocking = PhoneticBlocking()
        pairs = set(blocking.pairs(relation))
        assert ("x", "y") in pairs  # Tim/Tym agree phonetically
        # Walter (W436) vs Valter (V436) differ in the leading letter, so
        # plain Soundex separates them — documented limitation.
        assert ("x", "z") not in pairs

    def test_misspelling_survives_phonetic_but_not_prefix_blocking(self):
        """The motivating comparison: a leading-character typo breaks
        prefix blocks but not phonetic blocks when codes agree."""
        from repro.reduction import CertainKeyBlocking, SubstringKey

        relation = XRelation(
            "R",
            ["name", "job"],
            [
                XTuple.certain("a", {"name": "Catharine", "job": "j"}),
                XTuple.certain("b", {"name": "Katharine", "job": "j"}),
            ],
        )
        prefix_pairs = set(
            CertainKeyBlocking(
                SubstringKey([("name", 3), ("job", 1)])
            ).pairs(relation)
        )
        assert prefix_pairs == set()
        # Soundex maps C and K to the same code class only for the
        # *following* consonants; leading letters differ (C vs K), so
        # use NYSIIS-style reasoning? No: Soundex keeps the first
        # letter, C != K. Phonetic blocking also misses this pair —
        # honest negative: no blocking scheme is universally robust.
        phonetic_pairs = set(PhoneticBlocking().pairs(relation))
        assert phonetic_pairs == set()

    def test_phonetic_key_with_extra_parts(self):
        key = phonetic_key(extra_parts=[("job", prefix_transform(1))])
        assert key.for_assignment(
            {"name": "Robert", "job": "pilot"}
        ) == soundex("Robert") + "p"
