"""Unit tests for match clustering and the five-step pipeline."""

from __future__ import annotations

import pytest

from repro.matching import (
    AttributeMatcher,
    CombinedDecisionModel,
    DuplicateDetector,
    FullComparison,
    MatchStatus,
    ThresholdClassifier,
    UnionFind,
    WeightedSum,
    cluster_matches,
)
from repro.pdb import ProbabilisticRelation, ProbabilisticTuple, XRelation, XTuple
from repro.similarity import HAMMING

M, P, U = MatchStatus.MATCH, MatchStatus.POSSIBLE, MatchStatus.UNMATCH


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind()
        uf.add("a")
        uf.add("b")
        assert uf.find("a") != uf.find("b")

    def test_union_merges(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.find("a") == uf.find("c")

    def test_groups(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.add("c")
        groups = sorted(sorted(g) for g in uf.groups())
        assert groups == [["a", "b"], ["c"]]

    def test_find_auto_registers(self):
        uf = UnionFind()
        assert uf.find("new") == "new"

    def test_idempotent_union(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("a", "b")
        assert len(uf.groups()) == 1


class TestClusterMatches:
    def test_transitive_closure(self):
        result = cluster_matches(
            ["a", "b", "c", "d"],
            [("a", "b", M), ("b", "c", M)],
        )
        assert result.clusters == (("a", "b", "c"),)
        assert result.singletons == ("d",)

    def test_possible_excluded_by_default(self):
        result = cluster_matches(["a", "b"], [("a", "b", P)])
        assert result.clusters == ()

    def test_possible_included_on_request(self):
        result = cluster_matches(
            ["a", "b"], [("a", "b", P)], include_possible=True
        )
        assert result.clusters == (("a", "b"),)

    def test_conflicts_reported(self):
        """a~b, b~c matched, but a–c explicitly unmatch ⇒ conflict."""
        result = cluster_matches(
            ["a", "b", "c"],
            [("a", "b", M), ("b", "c", M), ("a", "c", U)],
        )
        assert result.conflicts == (("a", "c"),)

    def test_duplicate_pairs_property(self):
        result = cluster_matches(
            ["a", "b", "c"], [("a", "b", M), ("b", "c", M)]
        )
        assert result.duplicate_pairs == {
            ("a", "b"),
            ("a", "c"),
            ("b", "c"),
        }

    def test_cluster_of(self):
        result = cluster_matches(["a", "b", "c"], [("a", "b", M)])
        assert result.cluster_of("a") == ("a", "b")
        assert result.cluster_of("c") is None


def build_relation() -> XRelation:
    """Five x-tuples: {A, A', A''} one entity, {B, B'} another, C alone."""
    rows = [
        ("a1", "Tim", "pilot"),
        ("a2", "Tim", "pilot"),
        ("a3", "Tim", "pilots"),
        ("b1", "Johan", "baker"),
        ("b2", "Johan", "baker"),
        ("c1", "Walter", "zoologist"),
    ]
    return XRelation(
        "R",
        ["name", "job"],
        [XTuple.certain(tid, {"name": n, "job": j}) for tid, n, j in rows],
    )


def build_detector(**kwargs) -> DuplicateDetector:
    matcher = AttributeMatcher({"name": HAMMING, "job": HAMMING})
    model = CombinedDecisionModel(
        WeightedSum({"name": 0.7, "job": 0.3}),
        ThresholdClassifier(0.9, 0.5),
    )
    return DuplicateDetector(matcher, model, **kwargs)


class TestFullComparison:
    def test_pair_count(self):
        relation = build_relation()
        pairs = list(FullComparison().pairs(relation))
        assert len(pairs) == 15  # 6·5/2

    def test_no_self_pairs(self):
        for left, right in FullComparison().pairs(build_relation()):
            assert left != right


class TestDuplicateDetector:
    def test_detects_expected_matches(self):
        result = build_detector().detect(build_relation())
        matches = set(result.matches)
        assert ("a1", "a2") in matches
        assert ("b1", "b2") in matches
        assert not any("c1" in pair for pair in matches)

    def test_result_partitions_compared_pairs(self):
        result = build_detector().detect(build_relation())
        total = (
            len(result.matches)
            + len(result.possible_matches)
            + len(result.unmatches)
        )
        assert total == len(result.compared_pairs) == 15

    def test_relation_size_recorded(self):
        result = build_detector().detect(build_relation())
        assert result.relation_size == 6

    def test_flat_relation_accepted(self):
        relation = ProbabilisticRelation(
            "R",
            ["name", "job"],
            [
                ProbabilisticTuple("x", {"name": "Tim", "job": "pilot"}),
                ProbabilisticTuple("y", {"name": "Tim", "job": "pilot"}),
            ],
        )
        result = build_detector().detect(relation)
        assert result.matches == (("x", "y"),)

    def test_detect_between_unions_sources(self):
        left = XRelation(
            "L",
            ["name", "job"],
            [XTuple.certain("l1", {"name": "Tim", "job": "pilot"})],
        )
        right = XRelation(
            "R",
            ["name", "job"],
            [XTuple.certain("r1", {"name": "Tim", "job": "pilot"})],
        )
        result = build_detector().detect_between(left, right)
        assert result.matches == (("l1", "r1"),)

    def test_reducer_pairs_deduplicated(self):
        class NoisyReducer:
            def pairs(self, relation):
                ids = relation.tuple_ids
                yield ids[0], ids[1]
                yield ids[1], ids[0]  # reversed duplicate
                yield ids[0], ids[0]  # self pair
                yield ids[0], ids[1]  # exact duplicate

        detector = build_detector(reducer=NoisyReducer())
        result = detector.detect(build_relation())
        assert len(result.decisions) == 1

    def test_preparation_hook_applied(self):
        from repro.preparation import standardize_relation

        relation = XRelation(
            "R",
            ["name", "job"],
            [
                XTuple.certain("x", {"name": "TIM  ", "job": "pilot"}),
                XTuple.certain("y", {"name": "tim", "job": "pilot"}),
            ],
        )
        unprepared = build_detector().detect(relation)
        prepared = build_detector(
            preparation=standardize_relation
        ).detect(relation)
        assert unprepared.matches == ()
        assert prepared.matches == (("x", "y"),)

    def test_clusters_from_result(self):
        result = build_detector().detect(build_relation())
        clusters = result.clusters()
        flattened = {tid for cluster in clusters.clusters for tid in cluster}
        assert {"a1", "a2", "b1", "b2"} <= flattened

    def test_pairs_with_status(self):
        result = build_detector().detect(build_relation())
        for pair in result.pairs_with_status(MatchStatus.MATCH):
            assert pair in result.compared_pairs
