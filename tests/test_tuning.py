"""Unit tests for threshold tuning (repro.verification.tuning)."""

from __future__ import annotations

import random

import pytest

from repro.verification import (
    best_f1_threshold,
    candidate_thresholds,
    recommend_thresholds,
    threshold_sweep,
)


def separable_samples():
    """True matches at high similarity, non-matches at low — separable."""
    return [(0.9, True), (0.95, True), (0.85, True), (0.2, False),
            (0.1, False), (0.3, False)]


def overlapping_samples(n=400, seed=3):
    rng = random.Random(seed)
    samples = []
    for _ in range(n):
        if rng.random() < 0.3:
            samples.append((rng.gauss(0.8, 0.1), True))
        else:
            samples.append((rng.gauss(0.3, 0.15), False))
    return samples


class TestCandidateThresholds:
    def test_midpoints_between_distinct_values(self):
        candidates = candidate_thresholds([(0.2, False), (0.8, True)])
        assert candidates == [-0.8, 0.5, 1.8]

    def test_duplicates_collapse(self):
        candidates = candidate_thresholds(
            [(0.5, True), (0.5, False), (0.7, True)]
        )
        assert candidates == [-0.5, pytest.approx(0.6), 1.7]

    def test_infinite_similarities_ignored(self):
        candidates = candidate_thresholds(
            [(float("inf"), True), (0.5, False)]
        )
        assert candidates == [-0.5, 1.5]

    def test_all_infinite_fallback(self):
        assert candidate_thresholds([(float("inf"), True)]) == [0.0]


class TestThresholdSweep:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            threshold_sweep([])

    def test_extreme_thresholds(self):
        points = threshold_sweep(separable_samples())
        lowest = points[0]
        highest = points[-1]
        # Below everything: all declared matches.
        assert lowest.recall == 1.0
        assert lowest.false_positives == 3
        # Above everything: nothing declared.
        assert highest.true_positives == 0
        assert highest.recall == 0.0

    def test_perfect_point_on_separable_data(self):
        points = threshold_sweep(separable_samples())
        assert any(p.f1 == 1.0 for p in points)

    def test_counts_are_consistent(self):
        samples = overlapping_samples()
        total_true = sum(1 for _, label in samples if label)
        for point in threshold_sweep(samples):
            assert point.true_positives + point.false_negatives == total_true
            assert point.true_positives >= 0
            assert point.false_positives >= 0

    def test_recall_monotone_decreasing_in_threshold(self):
        points = threshold_sweep(overlapping_samples())
        recalls = [p.recall for p in points]
        assert recalls == sorted(recalls, reverse=True)

    def test_as_dict_keys(self):
        point = threshold_sweep(separable_samples())[0]
        assert set(point.as_dict()) == {
            "threshold", "tp", "fp", "fn", "precision", "recall", "f1",
        }


class TestBestF1:
    def test_separable_data_perfect_f1(self):
        best = best_f1_threshold(separable_samples())
        assert best.f1 == 1.0
        assert 0.3 < best.threshold < 0.85

    def test_matches_exhaustive_search(self):
        samples = overlapping_samples()
        best = best_f1_threshold(samples)
        brute = max(threshold_sweep(samples), key=lambda p: p.f1)
        assert best.f1 == pytest.approx(brute.f1)


class TestRecommendThresholds:
    def test_band_ordering(self):
        classifier = recommend_thresholds(overlapping_samples())
        assert classifier.unmatch_threshold <= classifier.match_threshold

    def test_review_recall_controls_t_lambda(self):
        samples = overlapping_samples()
        strict = recommend_thresholds(samples, review_recall=0.999)
        loose = recommend_thresholds(samples, review_recall=0.5)
        assert strict.unmatch_threshold <= loose.unmatch_threshold

    def test_review_recall_validated(self):
        with pytest.raises(ValueError):
            recommend_thresholds(separable_samples(), review_recall=0.0)

    def test_recommended_band_catches_target_recall(self):
        samples = overlapping_samples()
        classifier = recommend_thresholds(samples, review_recall=0.95)
        true_similarities = [s for s, label in samples if label]
        caught = sum(
            1
            for s in true_similarities
            if s >= classifier.unmatch_threshold
        )
        assert caught / len(true_similarities) >= 0.95

    def test_no_true_matches_collapses_band(self):
        classifier = recommend_thresholds(
            [(0.5, False), (0.6, False)]
        )
        assert classifier.unmatch_threshold == classifier.match_threshold

    def test_end_to_end_with_detector(self):
        """The full Section III-E loop: detect → tune → re-detect."""
        from repro.datagen import DatasetConfig, LIGHT_UNCERTAINTY, generate_dataset
        from repro.matching import (
            CombinedDecisionModel,
            DuplicateDetector,
            ThresholdClassifier,
            WeightedSum,
        )
        from repro.experiments.quality import default_matcher
        from repro.verification import evaluate_detection, normalize_pairs

        dataset = generate_dataset(
            DatasetConfig(
                entity_count=60, profile=LIGHT_UNCERTAINTY, seed=57
            ),
            flat=True,
        )
        matcher = default_matcher()
        # First pass with naive thresholds.
        first_model = CombinedDecisionModel(
            WeightedSum({"name": 0.5, "job": 0.5}),
            ThresholdClassifier(0.99, 0.99),
        )
        detector = DuplicateDetector(matcher, first_model)
        result = detector.detect(dataset.relation)
        gold = normalize_pairs(dataset.true_matches)
        samples = [
            (d.similarity, tuple(sorted((d.left_id, d.right_id))) in gold)
            for d in result.decisions
        ]
        tuned = recommend_thresholds(samples)
        second_model = CombinedDecisionModel(
            WeightedSum({"name": 0.5, "job": 0.5}), tuned
        )
        retuned = DuplicateDetector(matcher, second_model).detect(
            dataset.relation
        )
        first_report = evaluate_detection(result, dataset.true_matches)
        second_report = evaluate_detection(retuned, dataset.true_matches)
        assert second_report.f1 >= first_report.f1


class TestSweepBoundaries:
    """Boundary sweeps backing the threshold-pushdown cutoffs.

    The pushdown layer derives ``min_similarity`` floors from the same
    classifier thresholds the tuning loop recommends, so the sweep must
    behave exactly at the edges: a cutoff sitting *on* T_λ, a cutoff
    above every observed similarity, and tuning over a detection run
    that produced no samples at all (an empty relation).
    """

    def test_cutoff_exactly_at_t_lambda_keeps_the_pair(self):
        # recommend_thresholds nudges T_λ just below the weakest true
        # match it must keep, so a similarity exactly at that weakest
        # value classifies at-or-above T_λ (never UNMATCH) — matching
        # the strict-inequality reading of Figure 2 that pushdown's
        # "exact at or above the floor" kernel contract mirrors.
        samples = separable_samples()
        classifier = recommend_thresholds(samples, review_recall=1.0)
        weakest_true = min(s for s, label in samples if label)
        assert classifier.unmatch_threshold <= weakest_true
        assert classifier.classify(weakest_true).value != "u"

    def test_kernel_cutoff_exactly_at_the_floor_stays_exact(self):
        # The companion kernel guarantee: a cutoff placed exactly on an
        # achievable similarity still computes that similarity exactly
        # (the banded kernels keep one row of slack at the boundary).
        from repro.similarity import banded_levenshtein_similarity

        exact = banded_levenshtein_similarity("meier", "meyer")
        assert exact == 0.8
        assert banded_levenshtein_similarity(
            "meier", "meyer", min_similarity=exact
        ) == exact

    def test_cutoff_above_all_similarities(self):
        samples = separable_samples()
        points = threshold_sweep(samples)
        top = points[-1]
        assert top.threshold > max(s for s, _ in samples)
        assert top.true_positives == 0
        assert top.false_positives == 0
        assert top.false_negatives == sum(1 for _, l in samples if l)
        assert top.precision == 1.0  # nothing declared ⇒ vacuous
        assert top.recall == 0.0

    def test_empty_relation_yields_no_samples_and_loud_errors(self):
        from repro.experiments.quality import default_matcher, weighted_model
        from repro.matching import DuplicateDetector
        from repro.pdb.relations import XRelation

        empty = XRelation("empty", ("name", "job"), [])
        result = DuplicateDetector(
            default_matcher(), weighted_model()
        ).detect(empty)
        samples = [(d.similarity, False) for d in result.decisions]
        assert samples == []
        with pytest.raises(ValueError, match="calibration samples"):
            threshold_sweep(samples)
        with pytest.raises(ValueError, match="calibration samples"):
            recommend_thresholds(samples)
