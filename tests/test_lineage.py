"""Unit tests for ULDB-style lineage (repro.pdb.lineage)."""

from __future__ import annotations

import pytest

from repro.pdb import (
    Lineage,
    LineageAtom,
    PossibleWorld,
    XTuple,
    mutually_exclusive,
)


def world(*selection: tuple[str, int]) -> PossibleWorld:
    return PossibleWorld(tuple(selection), 1.0)


class TestLineageAtom:
    def test_holds_when_alternative_matches(self):
        atom = LineageAtom("t", 1)
        assert atom.holds_in(world(("t", 1)))
        assert not atom.holds_in(world(("t", 0)))

    def test_absence_atom(self):
        atom = LineageAtom("t", None)
        assert atom.holds_in(world())
        assert not atom.holds_in(world(("t", 0)))

    def test_probability_of_alternative(self):
        xt = XTuple.build("t", [({"a": "x"}, 0.3), ({"a": "y"}, 0.5)])
        assert LineageAtom("t", 1).probability({"t": xt}) == pytest.approx(
            0.5
        )

    def test_probability_of_absence(self):
        xt = XTuple.build("t", [({"a": "x"}, 0.3)])
        assert LineageAtom("t", None).probability({"t": xt}) == pytest.approx(
            0.7
        )

    def test_repr(self):
        assert repr(LineageAtom("t", 2)) == "t[2]"
        assert repr(LineageAtom("t", None)) == "¬t"


class TestLineage:
    def test_empty_lineage_always_holds(self):
        assert Lineage().holds_in(world(("x", 0)))
        assert Lineage().is_empty
        assert Lineage().probability({}) == 1.0

    def test_conjunction_holds(self):
        lineage = Lineage([LineageAtom("a", 0), LineageAtom("b", 1)])
        assert lineage.holds_in(world(("a", 0), ("b", 1)))
        assert not lineage.holds_in(world(("a", 0), ("b", 0)))

    def test_duplicate_atoms_deduplicated(self):
        lineage = Lineage([LineageAtom("a", 0), LineageAtom("a", 0)])
        assert len(lineage.atoms) == 1

    def test_contradictory_atoms_rejected(self):
        with pytest.raises(ValueError):
            Lineage([LineageAtom("a", 0), LineageAtom("a", 1)])

    def test_probability_factorizes(self):
        xt_a = XTuple.build("a", [({"v": "x"}, 0.5)])
        xt_b = XTuple.build("b", [({"v": "y"}, 0.4)])
        lineage = Lineage([LineageAtom("a", 0), LineageAtom("b", 0)])
        assert lineage.probability({"a": xt_a, "b": xt_b}) == pytest.approx(
            0.2
        )

    def test_conjoin(self):
        left = Lineage([LineageAtom("a", 0)])
        right = Lineage([LineageAtom("b", 1)])
        combined = left.conjoin(right)
        assert len(combined.atoms) == 2

    def test_conjoin_contradiction_raises(self):
        left = Lineage([LineageAtom("a", 0)])
        right = Lineage([LineageAtom("a", 1)])
        with pytest.raises(ValueError):
            left.conjoin(right)

    def test_mentions(self):
        lineage = Lineage([LineageAtom("a", 0)])
        assert lineage.mentions("a")
        assert not lineage.mentions("b")

    def test_equality_is_order_insensitive(self):
        left = Lineage([LineageAtom("a", 0), LineageAtom("b", 1)])
        right = Lineage([LineageAtom("b", 1), LineageAtom("a", 0)])
        assert left == right
        assert hash(left) == hash(right)


class TestMutualExclusion:
    def test_different_alternatives_of_shared_tuple(self):
        left = Lineage([LineageAtom("d", 0)])
        right = Lineage([LineageAtom("d", 1)])
        assert mutually_exclusive(left, right)

    def test_same_alternative_not_exclusive(self):
        left = Lineage([LineageAtom("d", 0)])
        assert not mutually_exclusive(left, left)

    def test_disjoint_lineages_not_exclusive(self):
        left = Lineage([LineageAtom("d1", 0)])
        right = Lineage([LineageAtom("d2", 1)])
        assert not mutually_exclusive(left, right)

    def test_presence_vs_absence_exclusive(self):
        left = Lineage([LineageAtom("d", 0)])
        right = Lineage([LineageAtom("d", None)])
        assert mutually_exclusive(left, right)

    def test_empty_lineage_never_exclusive(self):
        assert not mutually_exclusive(Lineage(), Lineage([LineageAtom("d", 0)]))
