"""Property tests pinning the fast kernels to the reference implementations.

The banded, early-exit edit distances in :mod:`repro.similarity.kernels`
must be *exactly* equivalent to the reference dynamic programs of
:mod:`repro.similarity.edit` — below a cutoff they return the same
integer, above it the documented sentinel ``max_distance + 1``.  The
memoization layers (:class:`SimilarityCache`, cached attribute matchers)
must never change a result, only skip recomputation, so cached and
uncached matchers are required to produce bitwise-identical comparison
matrices.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.comparison import (
    AttributeMatcher,
    ComparisonMatrix,
    ComparisonVector,
)
from repro.matching.decision.base import MatchStatus
from repro.matching.derivation import (
    DerivationInput,
    ExpectedMatchingResult,
    ExpectedSimilarity,
    MatchingWeight,
    MatchProbability,
    MaximumSimilarity,
    MostProbableWorldSimilarity,
    normalized_weights,
)
from repro.pdb.values import ProbabilisticValue
from repro.pdb.xtuples import XTuple
from repro.similarity.edit import (
    damerau_levenshtein_distance,
    levenshtein_distance,
)
from repro.similarity.jaro import JARO_WINKLER
from repro.similarity.kernels import (
    FAST_DAMERAU_LEVENSHTEIN,
    FAST_LEVENSHTEIN,
    SimilarityCache,
    banded_damerau_levenshtein,
    banded_damerau_levenshtein_similarity,
    banded_levenshtein,
    banded_levenshtein_similarity,
)
from repro.similarity.edit import (
    damerau_levenshtein_similarity,
    levenshtein_similarity,
)
from repro.similarity.uncertain import UncertainValueComparator

short_text = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    max_size=14,
)

cutoffs = st.integers(min_value=0, max_value=16)


# ----------------------------------------------------------------------
# Banded kernels vs reference DP
# ----------------------------------------------------------------------


@settings(max_examples=300, deadline=None)
@given(short_text, short_text)
def test_banded_levenshtein_exact_without_cutoff(left, right):
    assert banded_levenshtein(left, right) == levenshtein_distance(
        left, right
    )


@settings(max_examples=300, deadline=None)
@given(short_text, short_text, cutoffs)
def test_banded_levenshtein_respects_cutoff(left, right, cutoff):
    reference = levenshtein_distance(left, right)
    result = banded_levenshtein(left, right, cutoff)
    if reference <= cutoff:
        assert result == reference
    else:
        assert result == cutoff + 1


@settings(max_examples=300, deadline=None)
@given(short_text, short_text)
def test_banded_damerau_exact_without_cutoff(left, right):
    assert banded_damerau_levenshtein(
        left, right
    ) == damerau_levenshtein_distance(left, right)


@settings(max_examples=300, deadline=None)
@given(short_text, short_text, cutoffs)
def test_banded_damerau_respects_cutoff(left, right, cutoff):
    reference = damerau_levenshtein_distance(left, right)
    result = banded_damerau_levenshtein(left, right, cutoff)
    if reference <= cutoff:
        assert result == reference
    else:
        assert result == cutoff + 1


@settings(max_examples=200, deadline=None)
@given(short_text, short_text)
def test_fast_similarities_match_reference(left, right):
    """The full-precision kernels equal the reference similarities."""
    assert banded_levenshtein_similarity(left, right) == pytest.approx(
        levenshtein_similarity(left, right), abs=0
    )
    assert banded_damerau_levenshtein_similarity(
        left, right
    ) == pytest.approx(damerau_levenshtein_similarity(left, right), abs=0)


@settings(max_examples=200, deadline=None)
@given(short_text, short_text, st.floats(min_value=0.0, max_value=1.0))
def test_similarity_floor_is_sound(left, right, floor):
    """With a floor, results are exact above it and 0 below it."""
    reference = levenshtein_similarity(left, right)
    result = banded_levenshtein_similarity(
        left, right, min_similarity=floor
    )
    if reference >= floor:
        assert result == reference
    else:
        assert result == 0.0 or result == reference


def test_banded_length_difference_pruning():
    """The length gap alone answers hopeless comparisons."""
    assert banded_levenshtein("a" * 30, "a", 5) == 6
    assert banded_damerau_levenshtein("a" * 30, "a", 5) == 6


def test_banded_rejects_negative_cutoff():
    with pytest.raises(ValueError):
        banded_levenshtein("ab", "cd", -1)
    with pytest.raises(ValueError):
        banded_damerau_levenshtein("ab", "cd", -1)


def test_named_fast_comparators_registered():
    assert FAST_LEVENSHTEIN("kitten", "sitting") == levenshtein_similarity(
        "kitten", "sitting"
    )
    assert FAST_DAMERAU_LEVENSHTEIN("ab", "ba") == (
        damerau_levenshtein_similarity("ab", "ba")
    )


# ----------------------------------------------------------------------
# SimilarityCache
# ----------------------------------------------------------------------


def test_cache_is_transparent_and_symmetric():
    calls = []

    def base(left, right):
        calls.append((left, right))
        return levenshtein_similarity(left, right)

    cache = SimilarityCache(base)
    first = cache("anna", "anne")
    second = cache("anne", "anna")  # unordered key: no recomputation
    third = cache("anna", "anne")
    assert first == second == third
    assert len(calls) == 1
    assert cache.hits == 2 and cache.misses == 1
    assert cache.hit_rate == pytest.approx(2 / 3)


def test_cache_equal_operands_short_circuit():
    cache = SimilarityCache(lambda a, b: 0.5)
    assert cache("same", "same") == 1.0
    assert len(cache) == 0  # never touched the store


def test_empty_shared_cache_still_enables_caching():
    """A freshly created (empty, falsy) cache must not be ignored."""
    shared = SimilarityCache(JARO_WINKLER)
    left = UncertainValueComparator(JARO_WINKLER, cache=shared)
    right = UncertainValueComparator(JARO_WINKLER, cache=shared)
    assert left.cache is shared and right.cache is shared
    left("anna", "anne")
    right("anne", "anna")
    assert shared.misses == 1 and shared.hits == 1


def test_cache_cross_type_equality_not_shortcut():
    """``1 == 1.0`` but their string forms differ — no reflexive 1.0."""
    assert JARO_WINKLER(1, 1.0) != 1.0
    cache = SimilarityCache(JARO_WINKLER)
    assert cache(1, 1.0) == JARO_WINKLER(1, 1.0)
    # And equal-but-differently-typed pairs don't alias cache entries.
    assert cache(1, 2) == JARO_WINKLER(1, 2)
    assert cache(1.0, 2.0) == JARO_WINKLER(1.0, 2.0)


def test_compare_rows_still_validates_comparator_range():
    """The trusted hot path keeps the loud out-of-range error."""
    from repro.pdb.tuples import ProbabilisticTuple

    matcher = AttributeMatcher({"name": lambda a, b: 1.5})
    left = ProbabilisticTuple("t1", {"name": "anna"})
    right = ProbabilisticTuple("t2", {"name": "anne"})
    with pytest.raises(ValueError, match="outside"):
        matcher.compare_rows(left, right)
    # Float round-off above 1 is clamped, not rejected.
    forgiving = AttributeMatcher({"name": lambda a, b: 1.0 + 1e-13})
    assert matcher is not forgiving
    assert forgiving.compare_rows(left, right).values == (1.0,)


def test_cache_overflow_clears_store():
    cache = SimilarityCache(levenshtein_similarity, max_entries=2)
    cache("a", "b")
    cache("a", "c")
    cache("a", "d")  # exceeds capacity: store cleared, then repopulated
    assert len(cache) == 1


@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(short_text, short_text), max_size=30))
def test_cached_comparator_bitwise_equals_uncached(pairs):
    cache = SimilarityCache(JARO_WINKLER)
    for left, right in pairs:
        assert cache(left, right) == JARO_WINKLER(left, right)


# ----------------------------------------------------------------------
# Cached vs uncached attribute matching (bitwise identity)
# ----------------------------------------------------------------------

uncertain_value = st.one_of(
    short_text,
    st.none(),
    st.dictionaries(
        short_text, st.floats(min_value=0.05, max_value=0.3), min_size=1, max_size=3
    ),
)


def _xtuple(tuple_id: str, rows) -> XTuple:
    return XTuple.build(tuple_id, [(values, prob) for values, prob in rows])


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(uncertain_value, uncertain_value), min_size=1, max_size=3
    ),
    st.lists(
        st.tuples(uncertain_value, uncertain_value), min_size=1, max_size=3
    ),
)
def test_cached_matcher_bitwise_identical_matrices(left_rows, right_rows):
    """Cached and uncached matchers agree bit for bit on whole matrices."""
    share_left = 1.0 / len(left_rows)
    share_right = 1.0 / len(right_rows)
    left = _xtuple(
        "t1",
        [
            ({"name": name, "job": job}, share_left)
            for name, job in left_rows
        ],
    )
    right = _xtuple(
        "t2",
        [
            ({"name": name, "job": job}, share_right)
            for name, job in right_rows
        ],
    )
    plain = AttributeMatcher(
        {"name": JARO_WINKLER, "job": JARO_WINKLER}
    )
    cached = AttributeMatcher(
        {"name": JARO_WINKLER, "job": JARO_WINKLER}, cache=True
    )
    expected = plain.compare_xtuples(left, right)
    # Run the cached matcher twice: the second pass answers from the
    # memo and must still be bitwise identical.
    for _ in range(2):
        actual = cached.compare_xtuples(left, right)
        assert actual.shape == expected.shape
        for i, j, vector in expected.cells():
            assert actual.vector(i, j).values == vector.values
            assert actual.vector(i, j).attributes == vector.attributes


def test_matcher_cache_stats_exposed():
    matcher = AttributeMatcher({"name": JARO_WINKLER}, cache=True)
    stats = matcher.cache_stats()
    assert set(stats) == {"name"}
    matcher.compare_values("name", "anna", "anne")
    matcher.compare_values("name", "anne", "anna")
    assert stats["name"].hits == 1 and stats["name"].misses == 1
    assert AttributeMatcher({"name": JARO_WINKLER}).cache_stats() == {}


# ----------------------------------------------------------------------
# Certain-value fast path
# ----------------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(short_text, short_text)
def test_certain_fast_path_matches_eq5(left, right):
    comparator = UncertainValueComparator(JARO_WINKLER)
    via_plain = comparator(left, right)
    via_values = comparator(
        ProbabilisticValue.certain(left), ProbabilisticValue.certain(right)
    )
    # The reference result through the full Equation-5 double loop.
    reference = ProbabilisticValue.certain(left).expected_similarity(
        ProbabilisticValue.certain(right), JARO_WINKLER
    )
    assert via_plain == reference
    assert via_values == reference


def test_fast_path_null_semantics():
    comparator = UncertainValueComparator(JARO_WINKLER)
    assert comparator(None, None) == 1.0
    assert comparator(None, "anna") == 0.0
    assert comparator("anna", None) == 0.0


# ----------------------------------------------------------------------
# Trusted constructors and the name → index map
# ----------------------------------------------------------------------


def test_trusted_vector_equals_validated():
    validated = ComparisonVector(("name", "job"), (0.25, 1.0))
    trusted = ComparisonVector.trusted(("name", "job"), (0.25, 1.0))
    assert trusted == validated
    assert hash(trusted) == hash(validated)
    assert trusted.similarity("job") == 1.0
    assert trusted.similarity("name") == 0.25
    with pytest.raises(KeyError):
        trusted.similarity("city")


def test_vector_index_map_is_lazy_and_correct():
    vector = ComparisonVector(("a", "b", "c"), (0.1, 0.2, 0.3))
    assert vector._index is None
    assert vector.similarity("c") == pytest.approx(0.3)
    assert vector._index == {"a": 0, "b": 1, "c": 2}
    # Second lookup reuses the map.
    assert vector.similarity("a") == pytest.approx(0.1)


def test_matrix_weights_precomputed_and_consistent():
    vector = ComparisonVector(("name",), (0.5,))
    matrix = ComparisonMatrix(
        [[vector, vector], [vector, vector]], [0.3, 0.3], [0.2, 0.6]
    )
    reference = normalized_weights([0.3, 0.3], [0.2, 0.6])
    assert matrix.weights == reference
    for i in range(2):
        for j in range(2):
            assert matrix.conditional_weight(i, j) == reference[i][j]
    array = matrix.weight_matrix
    assert array.shape == (2, 2)
    assert not array.flags.writeable
    assert array.sum() == pytest.approx(1.0)
    # The numpy view is cached, not rebuilt.
    assert matrix.weight_matrix is array


# ----------------------------------------------------------------------
# Vectorized derivation functions: array path ≡ scalar path
# ----------------------------------------------------------------------


def _random_input(rng, k, l, with_statuses):
    similarities = tuple(
        tuple(rng.random() for _ in range(l)) for _ in range(k)
    )
    raw = [[rng.random() + 0.05 for _ in range(l)] for _ in range(k)]
    total = sum(sum(row) for row in raw)
    weights = tuple(tuple(w / total for w in row) for row in raw)
    statuses = None
    if with_statuses:
        choices = (MatchStatus.MATCH, MatchStatus.POSSIBLE, MatchStatus.UNMATCH)
        statuses = tuple(
            tuple(rng.choice(choices) for _ in range(l)) for _ in range(k)
        )
    return DerivationInput(
        similarities=similarities, statuses=statuses, weights=weights
    )


@pytest.mark.parametrize(
    "derivation",
    [
        ExpectedSimilarity(),
        MostProbableWorldSimilarity(),
        MaximumSimilarity(),
        MatchingWeight(),
        MatchProbability(),
        ExpectedMatchingResult(),
    ],
    ids=repr,
)
@pytest.mark.parametrize("shape", [(1, 1), (3, 4), (12, 12)])
def test_derivations_agree_across_scalar_and_array_paths(derivation, shape):
    """12×12 exceeds the vectorization threshold; 1×1 and 3×4 stay scalar.

    Both code paths must produce the same ϑ value (up to float summation
    order) on the same derivation input.
    """
    import random

    rng = random.Random(20240729 + shape[0])
    data = _random_input(
        rng, *shape, with_statuses=derivation.requires_statuses
    )
    result = derivation(data)
    # Reference: the naive cells() loop the seed implementation used.
    if isinstance(derivation, ExpectedSimilarity):
        reference = sum(
            w * s for _, _, s, _, w in data.cells()
        )
    elif isinstance(derivation, MaximumSimilarity):
        reference = max(s for _, _, s, _, _ in data.cells())
    elif isinstance(derivation, MostProbableWorldSimilarity):
        best_w, reference = -1.0, 0.0
        for _, _, s, _, w in data.cells():
            if w > best_w:
                best_w, reference = w, s
    elif isinstance(derivation, MatchProbability):
        reference = sum(
            w
            for _, _, _, status, w in data.cells()
            if status is MatchStatus.MATCH
        )
    elif isinstance(derivation, ExpectedMatchingResult):
        reference = sum(
            w * status.numeric for _, _, _, status, w in data.cells()
        )
    else:
        p_m = sum(
            w
            for _, _, _, status, w in data.cells()
            if status is MatchStatus.MATCH
        )
        p_u = sum(
            w
            for _, _, _, status, w in data.cells()
            if status is MatchStatus.UNMATCH
        )
        if p_u > 0:
            reference = p_m / p_u
        else:
            reference = float("inf") if p_m > 0 else 1.0
    assert result == pytest.approx(reference, rel=1e-12)


def test_derivation_input_arrays_match_tuples():
    data = DerivationInput(
        similarities=((0.1, 0.9), (0.4, 0.6)),
        statuses=(
            (MatchStatus.MATCH, MatchStatus.UNMATCH),
            (MatchStatus.POSSIBLE, MatchStatus.MATCH),
        ),
        weights=((0.25, 0.25), (0.25, 0.25)),
    )
    assert data.similarity_array.tolist() == [[0.1, 0.9], [0.4, 0.6]]
    assert data.weight_array.tolist() == [[0.25] * 2, [0.25] * 2]
    assert data.status_code_array.tolist() == [[2, 0], [1, 2]]
    # Cached on first access.
    assert data.similarity_array is data.similarity_array


def test_derivation_input_pickles_without_array_caches():
    import pickle

    data = DerivationInput(
        similarities=((1.0,),), statuses=None, weights=((1.0,),)
    )
    data.similarity_array  # materialize a cache
    clone = pickle.loads(pickle.dumps(data))
    assert clone == data
    assert clone.status_code_array is None
    assert clone.weight_array.tolist() == [[1.0]]
