"""Pluggable comparison-kernel backends: bitwise pinning + selection.

Three invariant families guard the batch comparison backend:

* **kernel pinning** — the Myers bit-parallel kernels and the numpy
  batch scorer reproduce the reference DPs bit for bit, over unicode,
  empty strings, strings beyond the 64-bit word boundary, and every
  ``min_similarity`` cutoff band (hypothesis properties plus directed
  edges);
* **selection** — ``"auto"`` resolution, the ``REPRO_KERNEL_BACKEND``
  environment override, loud failure on unknown/unavailable names, and
  graceful degradation to ``bitparallel`` when numpy is absent;
* **end-to-end equivalence** — every reducer family's detection run is
  bitwise identical to the ``"python"`` reference backend under every
  execution mode (serial, ``n_jobs=2``, streamed, spilled store,
  threshold-pruned, work stealing).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import DatasetConfig, generate_dataset
from repro.experiments.quality import default_matcher, weighted_model
from repro.matching import DuplicateDetector, FullComparison
from repro.pdb.io import open_store
from repro.pdb.relations import XRelation
from repro.reduction import (
    AlternativeKeyBlocking,
    AlternativeSorting,
    CertainKeyBlocking,
    MultiPassBlocking,
    MultiPassSNM,
    PhoneticBlocking,
    SortedNeighborhood,
    SubstringKey,
    UncertainKeyClusteringBlocking,
    UncertainKeySNM,
    plan_candidates,
)
from repro.reduction.plan import (
    partition_value_pairs,
    partition_vocabulary,
)
from repro.similarity import (
    FAST_DAMERAU_LEVENSHTEIN,
    FAST_LEVENSHTEIN,
    SimilarityCache,
    available_backends,
    bitparallel_damerau_levenshtein,
    bitparallel_damerau_levenshtein_similarity,
    bitparallel_levenshtein,
    bitparallel_levenshtein_similarity,
    damerau_levenshtein_distance,
    get_backend,
    levenshtein_distance,
    resolve_backend_name,
)
from repro.similarity.backends import BACKEND_ENV_VAR
from repro.similarity.backends import numpy_backend
from repro.similarity.kernels import (
    banded_damerau_levenshtein_similarity,
    banded_levenshtein_similarity,
)

# ----------------------------------------------------------------------
# Strategies: unicode text crossing the 64-char machine-word boundary
# ----------------------------------------------------------------------

TEXT = st.text(max_size=24)
LONG_TEXT = st.text(
    alphabet=st.sampled_from("abcdß€𝄞"), min_size=0, max_size=90
)
FLOORS = st.sampled_from([0.0, 0.15, 0.4, 0.85, 0.99])

requires_numpy = pytest.mark.skipif(
    not numpy_backend.available(), reason="numpy not installed"
)


# ----------------------------------------------------------------------
# Bit-parallel kernels vs reference DPs
# ----------------------------------------------------------------------


class TestBitparallelPinning:
    @settings(max_examples=200, deadline=None)
    @given(left=TEXT, right=TEXT)
    def test_exact_levenshtein_matches_reference(self, left, right):
        assert bitparallel_levenshtein(left, right) == (
            levenshtein_distance(left, right)
        )

    @settings(max_examples=200, deadline=None)
    @given(left=TEXT, right=TEXT)
    def test_exact_damerau_matches_reference(self, left, right):
        assert bitparallel_damerau_levenshtein(left, right) == (
            damerau_levenshtein_distance(left, right)
        )

    @settings(max_examples=100, deadline=None)
    @given(left=LONG_TEXT, right=LONG_TEXT)
    def test_block_extension_beyond_64_chars(self, left, right):
        assert bitparallel_levenshtein(left, right) == (
            levenshtein_distance(left, right)
        )
        assert bitparallel_damerau_levenshtein(left, right) == (
            damerau_levenshtein_distance(left, right)
        )

    @settings(max_examples=150, deadline=None)
    @given(left=TEXT, right=TEXT, cap=st.integers(0, 6))
    def test_capped_distance_contract(self, left, right, cap):
        exact = levenshtein_distance(left, right)
        capped = bitparallel_levenshtein(left, right, max_distance=cap)
        if exact <= cap:
            assert capped == exact
        else:
            assert capped > cap

    @settings(max_examples=200, deadline=None)
    @given(left=TEXT, right=TEXT, floor=FLOORS)
    def test_similarity_pinned_across_cutoff_bands(
        self, left, right, floor
    ):
        assert bitparallel_levenshtein_similarity(
            left, right, min_similarity=floor
        ) == banded_levenshtein_similarity(
            left, right, min_similarity=floor
        )
        assert bitparallel_damerau_levenshtein_similarity(
            left, right, min_similarity=floor
        ) == banded_damerau_levenshtein_similarity(
            left, right, min_similarity=floor
        )

    def test_directed_edges(self):
        assert bitparallel_levenshtein("", "") == 0
        assert bitparallel_levenshtein("", "abc") == 3
        assert bitparallel_levenshtein("abc", "") == 3
        assert bitparallel_damerau_levenshtein("ab", "ba") == 1
        assert bitparallel_levenshtein("ab", "ba") == 2
        # Transposition straddling a 64-char block boundary.
        left = "x" * 63 + "ab" + "y" * 10
        right = "x" * 63 + "ba" + "y" * 10
        assert bitparallel_damerau_levenshtein(left, right) == 1
        assert bitparallel_levenshtein_similarity("", "") == 1.0
        # Non-string operands go through the shared coercion.
        assert bitparallel_levenshtein_similarity(
            1, 1.0
        ) == banded_levenshtein_similarity(1, 1.0)


# ----------------------------------------------------------------------
# Numpy batch scorer vs reference
# ----------------------------------------------------------------------


@requires_numpy
class TestNumpyBatchPinning:
    @settings(max_examples=60, deadline=None)
    @given(
        pairs=st.lists(st.tuples(TEXT, TEXT), max_size=16),
        floor=FLOORS,
        damerau=st.booleans(),
    )
    def test_batch_similarities_pinned(self, pairs, floor, damerau):
        if damerau:
            batch = numpy_backend.batch_damerau_levenshtein_similarities
            reference = banded_damerau_levenshtein_similarity
        else:
            batch = numpy_backend.batch_levenshtein_similarities
            reference = banded_levenshtein_similarity
        assert batch(pairs, min_similarity=floor) == [
            reference(left, right, min_similarity=floor)
            for left, right in pairs
        ]

    @settings(max_examples=40, deadline=None)
    @given(pairs=st.lists(st.tuples(LONG_TEXT, LONG_TEXT), max_size=8))
    def test_batch_distances_beyond_64_chars(self, pairs):
        assert numpy_backend.batch_edit_distances(pairs) == [
            levenshtein_distance(left, right) for left, right in pairs
        ]
        assert numpy_backend.batch_edit_distances(
            pairs, damerau=True
        ) == [
            damerau_levenshtein_distance(left, right)
            for left, right in pairs
        ]

    def test_per_pair_entry_points_delegate(self):
        assert numpy_backend.numpy_levenshtein("kitten", "sitting") == 3
        assert numpy_backend.numpy_damerau_levenshtein("ab", "ba") == 1
        assert numpy_backend.numpy_levenshtein_similarity(
            "meier", "maier"
        ) == banded_levenshtein_similarity("meier", "maier")


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------


class TestBackendSelection:
    def test_python_and_bitparallel_always_registered(self):
        names = available_backends()
        assert "python" in names
        assert "bitparallel" in names

    def test_auto_prefers_numpy_then_bitparallel(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        expected = (
            "numpy" if numpy_backend.available() else "bitparallel"
        )
        assert resolve_backend_name(None) == expected
        assert resolve_backend_name("auto") == expected

    def test_env_var_overrides_auto(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert resolve_backend_name(None) == "python"
        assert resolve_backend_name("auto") == "python"
        # Explicit names beat the environment.
        assert resolve_backend_name("bitparallel") == "bitparallel"
        monkeypatch.setenv(BACKEND_ENV_VAR, "imaginary")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend_name(None)

    def test_env_var_is_case_normalized(self, monkeypatch):
        # Operators type environment values; "NumPy", "PYTHON" and
        # surrounding whitespace all resolve to the registered name.
        monkeypatch.setenv(BACKEND_ENV_VAR, "PYTHON")
        assert resolve_backend_name(None) == "python"
        monkeypatch.setenv(BACKEND_ENV_VAR, " BitParallel ")
        assert resolve_backend_name("auto") == "bitparallel"
        monkeypatch.setenv(BACKEND_ENV_VAR, "AUTO")
        # Case-normalized "auto" falls through to preference order.
        expected = (
            "numpy" if numpy_backend.available() else "bitparallel"
        )
        assert resolve_backend_name(None) == expected
        if numpy_backend.available():
            monkeypatch.setenv(BACKEND_ENV_VAR, "NumPy")
            assert resolve_backend_name(None) == "numpy"

    def test_env_var_casing_does_not_relax_unknown_names(
        self, monkeypatch
    ):
        monkeypatch.setenv(BACKEND_ENV_VAR, "IMAGINARY")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend_name(None)
        # Explicit API names stay case-sensitive: loud error, no guess.
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend_name("Python")

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend_name("imaginary")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("imaginary")

    def test_numpy_unavailable_falls_back_to_bitparallel(
        self, monkeypatch
    ):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        monkeypatch.setattr(numpy_backend, "_np", None)
        assert not numpy_backend.available()
        assert not get_backend("numpy").available
        assert resolve_backend_name("auto") == "bitparallel"
        with pytest.raises(ValueError, match="not available"):
            resolve_backend_name("numpy")

    def test_detect_rejects_unknown_backend(self):
        relation = generate_dataset(
            DatasetConfig(entity_count=4, seed=7), flat=True
        ).relation
        detector = DuplicateDetector(default_matcher(), weighted_model())
        with pytest.raises(ValueError, match="unknown kernel backend"):
            detector.detect(relation, kernel_backend="imaginary")


# ----------------------------------------------------------------------
# Backend-aware comparators and caches
# ----------------------------------------------------------------------


class TestComparatorBackends:
    def test_with_backend_clones_preserve_band_and_kind(self):
        fast = FAST_LEVENSHTEIN.with_min_similarity(0.85)
        clone = fast.with_backend("bitparallel")
        assert clone is not fast
        assert clone.backend_name == "bitparallel"
        assert clone.kind == fast.kind
        assert clone.min_similarity == fast.min_similarity
        assert clone.name == fast.name
        # Same backend → same object; python round-trip restores.
        assert clone.with_backend("bitparallel") is clone
        assert fast.with_backend("python") is fast

    @pytest.mark.parametrize(
        "comparator", [FAST_LEVENSHTEIN, FAST_DAMERAU_LEVENSHTEIN]
    )
    def test_backend_clones_score_bitwise(self, comparator):
        pairs = [
            ("meier", "maier"),
            ("jones", "johnson"),
            ("", "smith"),
            ("𝄞music", "music𝄞"),
            ("x" * 70, "x" * 69 + "y"),
        ]
        for floor in (0.0, 0.4, 0.85):
            reference = comparator.with_min_similarity(floor)
            for name in ("bitparallel", "numpy"):
                if not get_backend(name).available:
                    continue
                clone = reference.with_backend(name)
                for left, right in pairs:
                    assert clone(left, right) == reference(left, right)

    def test_batch_similarities_hook(self):
        pairs = [("meier", "maier"), ("bauer", "brauer")]
        python_batch = FAST_LEVENSHTEIN.batch_similarities(pairs)
        if numpy_backend.available():
            clone = FAST_LEVENSHTEIN.with_backend("numpy")
            assert clone.batch_similarities(pairs) == [
                FAST_LEVENSHTEIN(left, right) for left, right in pairs
            ]
        else:
            assert python_batch is None

    def test_cache_with_base_shares_the_store(self):
        cache = SimilarityCache(FAST_LEVENSHTEIN)
        cache.warm(["meier", "maier", "mayer"])
        clone = cache.with_base(
            FAST_LEVENSHTEIN.with_backend("bitparallel")
        )
        assert clone is not cache
        assert len(clone) == len(cache)
        before = cache.misses
        assert clone("meier", "maier") == FAST_LEVENSHTEIN(
            "meier", "maier"
        )
        assert cache.misses == before  # served from the shared table
        # Writes through the clone land in the shared store too.
        clone("meier", "unseen")
        assert cache("unseen", "meier") is not None
        assert cache.hits > 0

    def test_banded_caches_memoized_per_band_and_backend(self):
        cache = SimilarityCache(FAST_LEVENSHTEIN)
        python_band = cache.banded(
            0.85, FAST_LEVENSHTEIN.with_min_similarity(0.85)
        )
        fast = FAST_LEVENSHTEIN.with_min_similarity(0.85).with_backend(
            "bitparallel"
        )
        bit_band = cache.banded(0.85, fast)
        assert bit_band is not python_band
        # Same (band, backend) key → the warm derived cache comes back.
        assert cache.banded(0.85, fast) is bit_band
        assert (
            cache.banded(
                0.85, FAST_LEVENSHTEIN.with_min_similarity(0.85)
            )
            is python_band
        )


# ----------------------------------------------------------------------
# End-to-end golden equivalence, all reducers × modes × backends
# ----------------------------------------------------------------------

SORT_KEY = SubstringKey([("name", 3), ("job", 2)])
BLOCK_KEY = SubstringKey([("name", 1), ("job", 1)])


def r34() -> XRelation:
    from repro.experiments.paper_data import MU_JOBS, relation_r34

    return XRelation(
        "R34x",
        ("name", "job"),
        [
            xt.expand_patterns({"job": MU_JOBS}).expand()
            for xt in relation_r34()
        ],
    )


@pytest.fixture(scope="module")
def flat_relation():
    return generate_dataset(
        DatasetConfig(entity_count=16, seed=91), flat=True
    ).relation


@pytest.fixture(scope="module")
def x_relation():
    return generate_dataset(DatasetConfig(entity_count=9, seed=93)).relation


@pytest.fixture(scope="module")
def stores(tmp_path_factory, flat_relation, x_relation):
    root = tmp_path_factory.mktemp("stores")
    spilled = {}
    for kind, relation in (
        ("flat", flat_relation),
        ("x", x_relation),
        ("r34", r34()),
    ):
        relation.spill(
            str(root / kind), segment_size=7, page_size=4, max_pages=3
        )
        spilled[kind] = str(root / kind)
    return spilled


#: The same ten-reducer matrix the planner and storage suites pin.
REDUCERS = {
    "full": (lambda: FullComparison(), "flat"),
    "certain_blocking": (lambda: CertainKeyBlocking(BLOCK_KEY), "x"),
    "alternative_blocking": (
        lambda: AlternativeKeyBlocking(BLOCK_KEY),
        "x",
    ),
    "snm": (lambda: SortedNeighborhood(SORT_KEY, window=5), "flat"),
    "alternative_sorting": (
        lambda: AlternativeSorting(SORT_KEY, window=4),
        "x",
    ),
    "uncertain_snm": (lambda: UncertainKeySNM(SORT_KEY, window=4), "x"),
    "uncertain_clustering": (
        lambda: UncertainKeyClusteringBlocking(BLOCK_KEY, radius=0.4),
        "x",
    ),
    "phonetic_blocking": (lambda: PhoneticBlocking(), "x"),
    "multipass_snm": (
        lambda: MultiPassSNM(
            SORT_KEY, window=3, selection="diverse", world_count=2
        ),
        "r34",
    ),
    "multipass_blocking": (
        lambda: MultiPassBlocking(
            BLOCK_KEY, selection="diverse", world_count=2
        ),
        "r34",
    ),
}

FAST_BACKENDS = [
    name
    for name in ("bitparallel", "numpy")
    if get_backend(name).available
]


def _relation_for(kind, flat_relation, x_relation):
    if kind == "flat":
        return flat_relation
    if kind == "x":
        return x_relation
    return r34()


def _detector(factory):
    return DuplicateDetector(
        default_matcher(), weighted_model(), reducer=factory()
    )


def _triples(result):
    return [
        (d.left_id, d.right_id, d.status, d.similarity)
        for d in result.decisions
    ]


@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("name", sorted(REDUCERS))
def test_backend_detection_is_bitwise_python(
    name, backend, flat_relation, x_relation, stores
):
    """The acceptance pin: every reducer × mode, per fast backend."""
    factory, kind = REDUCERS[name]
    relation = _relation_for(kind, flat_relation, x_relation)
    reference = _triples(
        _detector(factory).detect(relation, kernel_backend="python")
    )

    serial_detector = _detector(factory)
    serial = serial_detector.detect(relation, kernel_backend=backend)
    assert _triples(serial) == reference
    assert serial_detector.last_report.kernel_backend == backend

    parallel = _detector(factory).detect(
        relation, kernel_backend=backend, n_jobs=2, chunk_size=7
    )
    assert _triples(parallel) == reference

    slices = list(
        _detector(factory).detect(
            relation, kernel_backend=backend, stream=True
        )
    )
    assert [
        triple for piece in slices for triple in _triples(piece)
    ] == reference

    store = open_store(stores[kind], page_size=4, max_pages=3)
    spilled = _detector(factory).detect(store, kernel_backend=backend)
    assert _triples(spilled) == reference

    pruned = _detector(factory).detect(
        relation, kernel_backend=backend, min_similarity="auto"
    )
    assert _triples(pruned) == reference

    stealing = _detector(factory).detect(
        relation,
        kernel_backend=backend,
        scheduling="stealing",
        split_pairs=9,
    )
    assert _triples(stealing) == reference


# ----------------------------------------------------------------------
# Pair-aware pre-warming
# ----------------------------------------------------------------------


class TestPairAwarePrewarm:
    def test_value_pairs_are_a_subset_of_the_vocabulary_square(
        self, flat_relation
    ):
        plan = plan_candidates(
            SortedNeighborhood(SORT_KEY, window=5), flat_relation
        )
        partition = max(plan.partitions, key=lambda p: len(p.pairs))
        vocabulary = partition_vocabulary(flat_relation, partition)
        square = sum(
            len(values) * (len(values) - 1) // 2
            for values in vocabulary.values()
        )
        value_pairs, truncated = partition_value_pairs(
            flat_relation, partition
        )
        assert not truncated
        total = sum(len(pairs) for pairs in value_pairs.values())
        assert 0 < total <= square
        # Every collected combination draws from the vocabulary.
        for attribute, pairs in value_pairs.items():
            observed = set(vocabulary[attribute])
            for left, right in pairs:
                assert left in observed and right in observed

    def test_window_plans_warm_fewer_than_the_square(self, flat_relation):
        # A window of 5 over a sorted run compares only neighbors, so
        # the pair-aware set must undercut the all-pairs square.
        plan = plan_candidates(
            SortedNeighborhood(SORT_KEY, window=5), flat_relation
        )
        partition = max(plan.partitions, key=lambda p: len(p.pairs))
        if len(partition.members) < 8:
            pytest.skip("partition too small to separate the counts")
        vocabulary = partition_vocabulary(flat_relation, partition)
        square = sum(
            len(values) * (len(values) - 1) // 2
            for values in vocabulary.values()
        )
        value_pairs, _ = partition_value_pairs(flat_relation, partition)
        assert sum(len(p) for p in value_pairs.values()) < square

    def test_limit_truncates_and_reports_it(self, flat_relation):
        plan = plan_candidates(
            SortedNeighborhood(SORT_KEY, window=5), flat_relation
        )
        partition = max(plan.partitions, key=lambda p: len(p.pairs))
        value_pairs, truncated = partition_value_pairs(
            flat_relation, partition, limit=3
        )
        assert truncated
        assert sum(len(pairs) for pairs in value_pairs.values()) == 3

    def test_matcher_warm_pairs_fills_and_is_idempotent(
        self, flat_relation
    ):
        plan = plan_candidates(
            SortedNeighborhood(SORT_KEY, window=5), flat_relation
        )
        partition = max(plan.partitions, key=lambda p: len(p.pairs))
        value_pairs, _ = partition_value_pairs(flat_relation, partition)
        matcher = default_matcher()
        warmed, examined, complete = matcher.warm_pairs(value_pairs)
        assert complete
        assert warmed > 0
        assert examined >= warmed
        again, _, complete_again = matcher.warm_pairs(value_pairs)
        assert again == 0
        assert complete_again

    def test_prewarmed_run_freezes_and_undershoots_the_square(
        self, flat_relation
    ):
        detector = _detector(
            lambda: SortedNeighborhood(SORT_KEY, window=5)
        )
        result = detector.detect(flat_relation, n_jobs=2, chunk_size=7)
        report = detector.last_report
        assert report.prewarmed_entries > 0
        assert report.caches_frozen
        plan = plan_candidates(
            SortedNeighborhood(SORT_KEY, window=5), flat_relation
        )
        squares = 0
        for partition in plan:
            vocabulary = partition_vocabulary(flat_relation, partition)
            squares += sum(
                len(values) * (len(values) - 1) // 2
                for values in vocabulary.values()
            )
        assert report.prewarmed_entries < squares
        reference = _detector(
            lambda: SortedNeighborhood(SORT_KEY, window=5)
        ).detect(flat_relation)
        assert _triples(result) == _triples(reference)


def test_env_var_steers_the_whole_detection(monkeypatch, flat_relation):
    monkeypatch.setenv(BACKEND_ENV_VAR, "bitparallel")
    detector = DuplicateDetector(default_matcher(), weighted_model())
    result = detector.detect(flat_relation)
    assert detector.last_report.kernel_backend == "bitparallel"
    monkeypatch.setenv(BACKEND_ENV_VAR, "python")
    reference_detector = DuplicateDetector(
        default_matcher(), weighted_model()
    )
    reference = reference_detector.detect(flat_relation)
    assert _triples(result) == _triples(reference)
    assert reference_detector.last_report.kernel_backend == "python"
