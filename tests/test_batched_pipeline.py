"""The batched / parallel execution modes of :meth:`DuplicateDetector.detect`.

Every execution mode — chunked serial, multiprocessing fan-out,
derivation-dropping — must produce exactly the same decisions as the
plain serial pipeline; only resource usage may differ.
"""

from __future__ import annotations

import pytest

from repro.datagen import DatasetConfig, generate_dataset
from repro.experiments.quality import default_matcher, weighted_model
from repro.matching import DuplicateDetector


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(
        DatasetConfig(entity_count=25, seed=71), flat=True
    )


@pytest.fixture(scope="module")
def reference(dataset):
    detector = DuplicateDetector(default_matcher(), weighted_model())
    return detector.detect(dataset.relation)


def _decision_triples(result):
    return [
        (d.left_id, d.right_id, d.status, d.similarity)
        for d in result.decisions
    ]


def test_chunked_detection_matches_reference(dataset, reference):
    detector = DuplicateDetector(default_matcher(), weighted_model())
    chunked = detector.detect(dataset.relation, chunk_size=7)
    assert chunked.compared_pairs == reference.compared_pairs
    assert _decision_triples(chunked) == _decision_triples(reference)


def test_keep_derivations_false_drops_matrices(dataset, reference):
    detector = DuplicateDetector(default_matcher(), weighted_model())
    slim = detector.detect(dataset.relation, keep_derivations=False)
    assert _decision_triples(slim) == _decision_triples(reference)
    assert all(d.derivation_input is None for d in slim.decisions)
    assert all(d.derivation_input is not None for d in reference.decisions)


def test_parallel_detection_matches_reference(dataset, reference):
    detector = DuplicateDetector(default_matcher(), weighted_model())
    parallel = detector.detect(
        dataset.relation, n_jobs=2, chunk_size=11
    )
    assert parallel.compared_pairs == reference.compared_pairs
    assert _decision_triples(parallel) == _decision_triples(reference)
    # Derivation inputs survive the process boundary.
    assert all(
        d.derivation_input is not None for d in parallel.decisions
    )


def test_parallel_without_derivations(dataset, reference):
    detector = DuplicateDetector(default_matcher(), weighted_model())
    slim = detector.detect(
        dataset.relation, n_jobs=2, keep_derivations=False
    )
    assert _decision_triples(slim) == _decision_triples(reference)
    assert all(d.derivation_input is None for d in slim.decisions)


def test_detect_between_forwards_options(dataset):
    from repro.pdb.relations import XRelation

    detector = DuplicateDetector(default_matcher(), weighted_model())
    tuples = list(dataset.relation)
    half = len(tuples) // 2
    left = XRelation("L", dataset.relation.schema, tuples[:half])
    right = XRelation("R", dataset.relation.schema, tuples[half:])
    result = detector.detect_between(left, right, keep_derivations=False)
    assert all(d.derivation_input is None for d in result.decisions)


def test_invalid_options_raise(dataset):
    detector = DuplicateDetector(default_matcher(), weighted_model())
    with pytest.raises(ValueError):
        detector.detect(dataset.relation, chunk_size=0)
    with pytest.raises(ValueError):
        detector.detect(dataset.relation, n_jobs=0)
