"""Golden equivalence suite for x-relation storage backends.

Two invariant families pin the out-of-core path:

* **backend equivalence** — for every Section-V reducer, running the
  full detect pipeline against a spilled
  :class:`~repro.pdb.storage.SpillingXTupleStore` produces *bitwise*
  the decisions (ids, statuses, similarities), compared-pair sets and
  partition labels of the in-memory :class:`XRelation` run — serial,
  ``n_jobs=2``, ``stream=True`` and ``keep_compared_pairs=False``
  alike;
* **segment-codec round trips** — arbitrary generated x-relations
  survive ``spill → open_store → iterate`` with exact outcome order,
  alternative probabilities and values intact (hypothesis properties
  plus the empty / single-alternative / maybe-tuple edge cases).
"""

from __future__ import annotations

import json
import os
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import DatasetConfig, generate_dataset
from repro.experiments.quality import default_matcher, weighted_model
from repro.matching import DuplicateDetector, FullComparison
from repro.pdb import NULL, PatternValue, ProbabilisticValue
from repro.pdb.io import open_store
from repro.pdb.relations import Schema, XRelation
from repro.pdb.storage import (
    SegmentCorruptionError,
    SpillingXTupleStore,
    StorageError,
    XTupleStore,
    fetch_tuples,
    spill_relation,
)
from repro.pdb.xtuples import TupleAlternative, XTuple
from repro.reduction import (
    AlternativeKeyBlocking,
    AlternativeSorting,
    CertainKeyBlocking,
    MultiPassBlocking,
    MultiPassSNM,
    PhoneticBlocking,
    SortedNeighborhood,
    SubstringKey,
    UncertainKeyClusteringBlocking,
    UncertainKeySNM,
    plan_candidates,
)

SORT_KEY = SubstringKey([("name", 3), ("job", 2)])
BLOCK_KEY = SubstringKey([("name", 1), ("job", 1)])


def r34() -> XRelation:
    """The paper's ℛ34 (5 x-tuples) — small enough for world passes."""
    from repro.experiments.paper_data import MU_JOBS, relation_r34

    return XRelation(
        "R34x",
        ("name", "job"),
        [
            xt.expand_patterns({"job": MU_JOBS}).expand()
            for xt in relation_r34()
        ],
    )


@pytest.fixture(scope="module")
def flat_relation():
    return generate_dataset(
        DatasetConfig(entity_count=20, seed=91), flat=True
    ).relation


@pytest.fixture(scope="module")
def x_relation():
    return generate_dataset(DatasetConfig(entity_count=12, seed=93)).relation


@pytest.fixture(scope="module")
def stores(tmp_path_factory, flat_relation, x_relation):
    """Every fixture relation spilled once, with a tiny page cache."""
    root = tmp_path_factory.mktemp("stores")
    spilled = {}
    for kind, relation in (
        ("flat", flat_relation),
        ("x", x_relation),
        ("r34", r34()),
    ):
        relation.spill(
            str(root / kind), segment_size=7, page_size=4, max_pages=3
        )
        spilled[kind] = str(root / kind)
    return spilled


#: Reducer factories and which fixture-backed relation they run on —
#: the same ten-reducer matrix the planner suite pins.
REDUCERS = {
    "full": (lambda: FullComparison(), "flat"),
    "certain_blocking": (lambda: CertainKeyBlocking(BLOCK_KEY), "x"),
    "alternative_blocking": (
        lambda: AlternativeKeyBlocking(BLOCK_KEY),
        "x",
    ),
    "snm": (lambda: SortedNeighborhood(SORT_KEY, window=5), "flat"),
    "alternative_sorting": (
        lambda: AlternativeSorting(SORT_KEY, window=4),
        "x",
    ),
    "uncertain_snm": (lambda: UncertainKeySNM(SORT_KEY, window=4), "x"),
    "uncertain_clustering": (
        lambda: UncertainKeyClusteringBlocking(BLOCK_KEY, radius=0.4),
        "x",
    ),
    "phonetic_blocking": (lambda: PhoneticBlocking(), "x"),
    "multipass_snm": (
        lambda: MultiPassSNM(
            SORT_KEY, window=3, selection="diverse", world_count=2
        ),
        "r34",
    ),
    "multipass_blocking": (
        lambda: MultiPassBlocking(
            BLOCK_KEY, selection="diverse", world_count=2
        ),
        "r34",
    ),
}


def _relation_for(kind, flat_relation, x_relation):
    if kind == "flat":
        return flat_relation
    if kind == "x":
        return x_relation
    return r34()


def _detector(factory):
    return DuplicateDetector(
        default_matcher(), weighted_model(), reducer=factory()
    )


def _triples(result):
    return [
        (d.left_id, d.right_id, d.status, d.similarity)
        for d in result.decisions
    ]


def _exact_value_items(relation):
    """Every value's exact ``(outcome, probability)`` sequence, per id."""
    return {
        xtuple.tuple_id: [
            (
                alternative.probability,
                {
                    attribute: list(alternative.value(attribute).items())
                    for attribute in alternative.attributes
                },
            )
            for alternative in xtuple.alternatives
        ]
        for xtuple in relation
    }


# ----------------------------------------------------------------------
# Golden equivalence: in-memory vs spilled, all reducers, all modes
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(REDUCERS))
def test_spilled_detection_is_bitwise_in_memory(
    name, flat_relation, x_relation, stores
):
    """The acceptance pin: every mode, every reducer, both backends."""
    factory, kind = REDUCERS[name]
    relation = _relation_for(kind, flat_relation, x_relation)
    store = open_store(stores[kind], page_size=4, max_pages=3)

    reference = _detector(factory).detect(relation)
    serial = _detector(factory).detect(store)
    parallel = _detector(factory).detect(store, n_jobs=2, chunk_size=7)
    slices = list(
        _detector(factory).detect(
            store, stream=True, keep_compared_pairs=False
        )
    )

    assert _triples(serial) == _triples(reference)
    assert _triples(parallel) == _triples(reference)
    assert serial.compared_pairs == reference.compared_pairs
    assert parallel.compared_pairs == reference.compared_pairs
    assert serial.relation_size == reference.relation_size

    streamed = [triple for piece in slices for triple in _triples(piece)]
    assert streamed == _triples(reference)
    assert all(piece.compared_pairs == frozenset() for piece in slices)
    plan = plan_candidates(factory(), relation)
    assert [piece.partition_label for piece in slices] == [
        partition.label for partition in plan
    ]
    # Partition labels (cluster assignments of the plan) agree between
    # backends too: the store plans identically to the relation.
    store_plan = plan_candidates(factory(), store)
    assert [p.label for p in store_plan] == [p.label for p in plan]
    assert list(store_plan.pairs()) == list(plan.pairs())


def test_detector_plan_is_backend_independent(x_relation, stores):
    store = open_store(stores["x"])
    detector = _detector(lambda: CertainKeyBlocking(BLOCK_KEY))
    assert list(detector.plan(store).pairs()) == list(
        detector.plan(x_relation).pairs()
    )


def test_striped_scheduling_works_on_stores(flat_relation, stores):
    """The legacy striped fan-out reads through the page cache too."""
    store = open_store(stores["flat"], page_size=4, max_pages=3)
    factory = lambda: SortedNeighborhood(SORT_KEY, window=5)  # noqa: E731
    reference = _detector(factory).detect(flat_relation)
    striped = _detector(factory).detect(store, scheduling="striped")
    assert _triples(striped) == _triples(reference)


def test_clusters_match_across_backends(x_relation, stores):
    store = open_store(stores["x"])
    factory = lambda: CertainKeyBlocking(BLOCK_KEY)  # noqa: E731
    in_memory = _detector(factory).detect(x_relation)
    spilled = _detector(factory).detect(store)
    assert (
        spilled.clusters().clusters == in_memory.clusters().clusters
    )


def test_preparation_hook_rejects_stores(stores):
    detector = DuplicateDetector(
        default_matcher(),
        weighted_model(),
        preparation=lambda relation: relation,
    )
    with pytest.raises(TypeError, match="materialize"):
        detector.detect(open_store(stores["x"]))


def test_detect_between_accepts_stores(x_relation, stores):
    """Stores consolidate through the multi-source view now; the old
    union-only path rejected them.  Colliding ids across sources (here:
    the same relation twice) still fail loudly, and a preparation hook
    still requires in-memory sources."""
    from repro.pdb.errors import DuplicateTupleIdError

    detector = _detector(lambda: CertainKeyBlocking(BLOCK_KEY))
    with pytest.raises(DuplicateTupleIdError):
        detector.detect_between(open_store(stores["x"]), x_relation)
    prepared = DuplicateDetector(
        default_matcher(),
        weighted_model(),
        reducer=CertainKeyBlocking(BLOCK_KEY),
        preparation=lambda relation: relation,
    )
    with pytest.raises(TypeError, match="materialize each store"):
        prepared.detect_between(open_store(stores["x"]), x_relation)


# ----------------------------------------------------------------------
# Store semantics
# ----------------------------------------------------------------------


def test_both_backends_satisfy_the_protocol(x_relation, stores):
    store = open_store(stores["x"])
    assert isinstance(x_relation, XTupleStore)
    assert isinstance(store, XTupleStore)
    assert store.name == x_relation.name
    assert store.schema == x_relation.schema
    assert store.tuple_ids == x_relation.tuple_ids
    assert len(store) == len(x_relation)
    some_id = x_relation.tuple_ids[0]
    assert some_id in store and "no-such-id" not in store
    with pytest.raises(KeyError):
        store.get("no-such-id")


def test_page_cache_residency_stays_bounded(x_relation, stores):
    store = open_store(stores["x"], page_size=4, max_pages=3)
    for tuple_id in x_relation.tuple_ids:
        store.get(tuple_id)
    info = store.cache_info()
    assert info.cached_tuples <= info.capacity_tuples == 12
    assert info.pages <= info.max_pages
    assert info.evictions > 0  # the relation is larger than the cache
    assert info.misses >= len(x_relation) // 4


def test_fetch_decodes_each_page_once(x_relation, stores):
    store = open_store(stores["x"], page_size=4, max_pages=64)
    store.clear_cache()
    working_set = store.fetch(x_relation.tuple_ids)
    assert working_set == x_relation.fetch(x_relation.tuple_ids)
    pages_needed = store.cache_info().misses
    # A second fetch of the same ids is answered entirely from cache.
    before = store.cache_info().hits
    store.fetch(x_relation.tuple_ids)
    assert store.cache_info().misses == pages_needed
    assert store.cache_info().hits > before


def test_scattered_fetch_does_not_pin_evicted_pages(tmp_path):
    """A working set spread one-member-per-page must not hold every
    touched page's tuples alive at once: pages are copied out one at a
    time, so the fetch's memory peak tracks the working set, not the
    total page volume it sweeps past."""
    import tracemalloc

    relation = generate_dataset(
        DatasetConfig(entity_count=260, seed=17), flat=True
    ).relation
    store = relation.spill(
        str(tmp_path / "scatter"), segment_size=16, page_size=8, max_pages=2
    )
    scattered = relation.tuple_ids[::8]  # one id per page
    assert len(scattered) > 20

    def fetch_peak(ids):
        store.clear_cache()
        tracemalloc.start()
        working_set = store.fetch(ids)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(working_set) == len(ids)
        return peak

    everything = fetch_peak(relation.tuple_ids)
    sparse = fetch_peak(scattered)
    # The scattered fetch decodes the same pages as the full fetch but
    # retains only 1/8 of the tuples; pinning whole pages would put the
    # two peaks in the same ballpark.
    assert sparse < everything / 2
    assert store.fetch(scattered) == relation.fetch(scattered)


def test_fetch_tuples_helper_covers_both_backends(x_relation, stores):
    ids = x_relation.tuple_ids[:5]
    assert fetch_tuples(x_relation, ids) == fetch_tuples(
        open_store(stores["x"]), ids
    )

    class GetOnly:
        def __init__(self, relation):
            self.get = relation.get

    assert fetch_tuples(GetOnly(x_relation), ids) == fetch_tuples(
        x_relation, ids
    )


def test_open_segment_handles_stay_bounded(tmp_path, x_relation):
    """Random access over many segments must not exhaust the FD limit."""
    store = x_relation.spill(
        str(tmp_path / "many-segments"),
        segment_size=1,  # one segment per tuple
        page_size=1,
        max_pages=2,
        max_open_segments=3,
    )
    for tuple_id in reversed(x_relation.tuple_ids):
        store.get(tuple_id)
    assert store.open_segments <= 3
    # Evicted-and-reopened handles still read the right tuples.
    for tuple_id in x_relation.tuple_ids:
        assert store.get(tuple_id) == x_relation.get(tuple_id)
    store.close()
    assert store.open_segments == 0


def test_sequential_iteration_bypasses_the_cache(x_relation, stores):
    store = open_store(stores["x"], page_size=4, max_pages=2)
    assert list(store) == list(x_relation)
    info = store.cache_info()
    assert info.misses == 0 and info.pages == 0


def test_pickled_store_ships_metadata_only(x_relation, stores):
    store = open_store(stores["x"])
    store.fetch(x_relation.tuple_ids[:8])
    clone = pickle.loads(pickle.dumps(store))
    assert clone.cache_info().pages == 0
    assert clone.tuple_ids == store.tuple_ids
    assert list(clone) == list(store)
    assert clone.get(x_relation.tuple_ids[3]) == x_relation.get(
        x_relation.tuple_ids[3]
    )


def test_store_open_rejects_bad_directories(tmp_path):
    with pytest.raises(StorageError, match="not a spilled store"):
        SpillingXTupleStore(str(tmp_path / "missing"))
    corrupt = tmp_path / "corrupt"
    corrupt.mkdir()
    (corrupt / "manifest.json").write_text("{not json", encoding="utf-8")
    with pytest.raises(StorageError, match="corrupt store manifest"):
        SpillingXTupleStore(str(corrupt))
    truncated = tmp_path / "truncated"
    truncated.mkdir()
    (truncated / "manifest.json").write_text(
        '{"format": 1}', encoding="utf-8"
    )
    with pytest.raises(StorageError, match="missing key"):
        SpillingXTupleStore(str(truncated))


def test_serial_detection_loads_bounded_working_sets(flat_relation, stores):
    """A single-partition-sized plan must not pin the whole relation:
    serial execution fetches chunk-sized working sets, like workers."""
    batch_sizes = []

    class Spying(SpillingXTupleStore):
        def fetch(self, tuple_ids):
            ids = list(tuple_ids)
            batch_sizes.append(len(ids))
            return super().fetch(ids)

    store = Spying(stores["flat"], page_size=4, max_pages=3)
    chunk_size = 16
    result = _detector(lambda: FullComparison()).detect(
        store, chunk_size=chunk_size, keep_derivations=False
    )
    assert result.decisions
    # Each fetch covers one chunk of pairs: at most 2 ids per pair.
    assert max(batch_sizes) <= 2 * chunk_size < len(flat_relation)


def test_spill_refuses_to_overwrite(tmp_path, x_relation):
    target = str(tmp_path / "store")
    x_relation.spill(target)
    with pytest.raises(StorageError, match="refusing"):
        x_relation.spill(target)


def test_storage_error_surface_is_consistent(tmp_path, x_relation):
    """Bad paths raise StorageError, not raw OS errors."""
    with pytest.raises(StorageError, match="no relation file"):
        open_store(str(tmp_path / "nowhere.json"))
    regular_file = tmp_path / "plain.txt"
    regular_file.write_text("not a directory", encoding="utf-8")
    with pytest.raises(StorageError, match="cannot create"):
        x_relation.spill(str(regular_file))


def test_segment_read_errors_surface_as_storage_errors(
    tmp_path, x_relation
):
    """A store whose segments vanished or rotted after opening reports
    StorageError from get/fetch/iteration, not raw OS/JSON errors.

    With checksums verified (the default), overwritten bytes are caught
    by the CRC before any line is decoded; with verification off, the
    per-line decode error surfaces instead, carrying the segment path,
    byte offset and tuple id.
    """
    target = tmp_path / "rotting"
    store = x_relation.spill(str(target), segment_size=4)
    victim = sorted(target.glob("seg-*.jsonl"))[1]
    original = victim.read_bytes()
    victim.write_bytes(b"{corrupt\n" * 4)
    store.clear_cache()
    with pytest.raises(SegmentCorruptionError, match="integrity"):
        store.get(x_relation.tuple_ids[4])
    # Iteration re-diagnoses the unparseable line via the checksum, so
    # bit rot reports the whole segment's blast radius, not one line.
    with pytest.raises(SegmentCorruptionError, match="integrity"):
        list(store)
    unverified = SpillingXTupleStore(str(target), verify_checksums=False)
    with pytest.raises(StorageError, match="corrupt segment line") as info:
        unverified.get(x_relation.tuple_ids[4])
    assert "byte offset" in str(info.value)
    assert repr(x_relation.tuple_ids[4]) in str(info.value)
    victim.unlink()
    store.close()
    with pytest.raises(StorageError, match="unreadable segment"):
        store.get(x_relation.tuple_ids[4])
    with pytest.raises(StorageError, match="unreadable segment"):
        list(store)
    victim.write_bytes(original)
    store.close()
    assert store.get(x_relation.tuple_ids[4]) == x_relation.get(
        x_relation.tuple_ids[4]
    )


def test_failed_spill_leaves_no_orphaned_segments(tmp_path):
    """An aborted spill removes the segments it already wrote."""

    class Duplicates:
        name = "D"
        schema = Schema(("name", "job"))

        def __iter__(self):
            for _ in range(3):
                yield XTuple.certain(
                    "t1", {"name": "Tim", "job": "baker"}
                )

    target = tmp_path / "aborted"
    with pytest.raises(StorageError, match="duplicate tuple id"):
        spill_relation(Duplicates(), str(target), segment_size=1)
    assert sorted(target.glob("seg-*.jsonl")) == []
    assert not (target / "manifest.json").exists()


def test_interrupted_spill_never_opens(tmp_path, x_relation):
    """Without the (atomically written) manifest there is no store."""
    target = tmp_path / "partial"
    target.mkdir()
    # Simulate a crash after segment data hit disk but before the
    # manifest: segment files exist, manifest does not.
    (target / "seg-00000.jsonl").write_text(
        '{"id":"t0","alternatives":[]}\n', encoding="utf-8"
    )
    with pytest.raises(StorageError, match="not a spilled store"):
        SpillingXTupleStore(str(target))


def test_open_store_reads_plain_relation_files(tmp_path, x_relation):
    from repro.pdb import io as pdb_io

    path = str(tmp_path / "relation.json")
    pdb_io.dump(x_relation, path)
    loaded = open_store(path)
    assert isinstance(loaded, XRelation)
    assert list(loaded) == list(x_relation)
    with pytest.raises(TypeError, match="store options"):
        open_store(path, page_size=8)


# ----------------------------------------------------------------------
# Segment codec round trips
# ----------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    entity_count=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
    alternatives=st.integers(min_value=1, max_value=3),
    flat=st.booleans(),
    segment_size=st.integers(min_value=1, max_value=7),
    page_size=st.integers(min_value=1, max_value=5),
)
def test_generated_relations_survive_spill_roundtrip(
    tmp_path_factory,
    entity_count,
    seed,
    alternatives,
    flat,
    segment_size,
    page_size,
):
    """Property: spill → open_store → iterate is the identity, exactly.

    Equality is checked twice: structurally (x-tuple equality) and
    bitwise (the exact outcome iteration order and float probabilities
    that make detection results reproducible).
    """
    relation = generate_dataset(
        DatasetConfig(
            entity_count=entity_count,
            seed=seed,
            alternatives_per_xtuple=alternatives,
        ),
        flat=flat,
    ).relation
    target = str(
        tmp_path_factory.mktemp("roundtrip") / f"s{seed}-{entity_count}"
    )
    store = spill_relation(
        relation,
        target,
        segment_size=segment_size,
        page_size=page_size,
        max_pages=2,
    )
    assert list(store) == list(relation)
    assert store.tuple_ids == relation.tuple_ids
    assert _exact_value_items(store) == _exact_value_items(relation)
    for tuple_id in relation.tuple_ids:
        assert store.get(tuple_id) == relation.get(tuple_id)
    assert store.materialize().xtuples == relation.xtuples


def test_empty_relation_roundtrip(tmp_path):
    empty = XRelation("E", ("name", "job"))
    store = empty.spill(str(tmp_path / "empty"))
    assert len(store) == 0
    assert list(store) == []
    assert store.tuple_ids == ()
    assert store.fetch([]) == {}
    assert store.materialize().xtuples == ()
    # No segment files were left behind for zero tuples.
    assert sorted(os.listdir(tmp_path / "empty")) == ["manifest.json"]


def test_single_alternative_roundtrip(tmp_path):
    relation = XRelation(
        "S",
        ("name", "job"),
        [XTuple.certain("t1", {"name": "Tim", "job": "baker"})],
    )
    store = relation.spill(str(tmp_path / "single"))
    xtuple = store.get("t1")
    assert xtuple == relation.get("t1")
    assert len(xtuple.alternatives) == 1
    assert xtuple.alternatives[0].probability == 1.0
    assert not xtuple.is_maybe


def test_maybe_tuple_roundtrip(tmp_path):
    """Maybe x-tuples (p < 1) keep their membership mass bit for bit."""
    maybe = XTuple.build(
        "t1",
        [
            ({"name": "Tim", "job": "baker"}, 0.45),
            ({"name": "Tom", "job": NULL}, 0.15),
        ],
    )
    relation = XRelation("M", ("name", "job"), [maybe])
    store = relation.spill(str(tmp_path / "maybe"))
    decoded = store.get("t1")
    assert decoded == maybe
    assert decoded.is_maybe
    assert decoded.probability == maybe.probability
    assert [a.probability for a in decoded.alternatives] == [0.45, 0.15]


def test_mixed_order_distribution_roundtrip_is_exact(tmp_path):
    """⊥ and pattern outcomes interleaved with plain ones keep their
    positions — the property the legacy grouped codec cannot give."""
    value = ProbabilisticValue(
        {"alpha": 0.3, NULL: 0.2, PatternValue("mu*"): 0.1, "beta": 0.15}
    )
    relation = XRelation(
        "O",
        ("name", "job"),
        [
            XTuple(
                "t1",
                [TupleAlternative({"name": "Tim", "job": value}, 0.8)],
            )
        ],
    )
    store = relation.spill(str(tmp_path / "ordered"))
    decoded = store.get("t1").alternatives[0].value("job")
    assert list(decoded.items()) == list(value.items())
    # ⊥ keeps both its explicit and residual mass (0.2 + 0.25).
    assert decoded.null_probability == value.null_probability


def test_segment_lines_use_the_exact_codec(tmp_path, x_relation):
    x_relation.spill(str(tmp_path / "exact"), segment_size=1_000)
    segment = tmp_path / "exact" / "seg-00000.jsonl"
    documents = [
        json.loads(line)
        for line in segment.read_text(encoding="utf-8").splitlines()
    ]
    assert [doc["id"] for doc in documents] == list(x_relation.tuple_ids)
    encoded = json.dumps(documents)
    # Uncertain values must be stored in the ordered form, never the
    # order-losing legacy {"dist": ...} grouping.
    assert '"dist"' not in encoded
