"""Unit tests for data fusion and the uncertain result representation."""

from __future__ import annotations

import pytest

from repro.fusion import (
    MERGE,
    SEPARATE,
    MembershipRule,
    build_uncertain_resolution,
    collapse_xtuple,
    decide_first,
    decide_least_uncertain,
    decide_most_probable,
    fuse_cluster,
    fuse_relation,
    fused_membership,
    fusion_summary,
    mediate_intersection,
    mediate_mixture,
    ramp_confidence,
)
from repro.matching import (
    AttributeMatcher,
    CombinedDecisionModel,
    DuplicateDetector,
    ThresholdClassifier,
    WeightedSum,
)
from repro.pdb import (
    EmptyDistributionError,
    NULL,
    ProbabilisticValue,
    XRelation,
    XTuple,
)
from repro.similarity import HAMMING


def value(**outcomes: float) -> ProbabilisticValue:
    return ProbabilisticValue(outcomes)


class TestStrategies:
    def test_decide_most_probable(self):
        fused = decide_most_probable(
            [
                (value(pilot=0.6, baker=0.4), 1.0),
                (value(baker=0.9), 1.0),
            ]
        )
        assert fused.is_certain
        assert fused.certain_value == "baker"

    def test_decide_most_probable_respects_weights(self):
        fused = decide_most_probable(
            [
                (value(pilot=0.6), 2.0),  # weighted score 1.2
                (value(baker=0.9), 1.0),  # weighted score 0.9
            ]
        )
        assert fused.certain_value == "pilot"

    def test_decide_first(self):
        first = value(pilot=0.6, baker=0.4)
        assert decide_first([(first, 1.0), (value(baker=1.0), 9.0)]) is first

    def test_decide_least_uncertain(self):
        certain = value(pilot=1.0)
        noisy = value(pilot=0.5, baker=0.5)
        assert decide_least_uncertain([(noisy, 1.0), (certain, 1.0)]) is (
            certain
        )

    def test_mediate_mixture_combines_mass(self):
        fused = mediate_mixture(
            [(value(pilot=0.8, baker=0.2), 1.0), (value(pilot=0.4), 1.0)]
        )
        assert fused.probability("pilot") == pytest.approx(0.6)
        assert fused.probability("baker") == pytest.approx(0.1)
        assert fused.null_probability == pytest.approx(0.3)

    def test_mixture_weights(self):
        fused = mediate_mixture(
            [(value(pilot=1.0), 3.0), (value(baker=1.0), 1.0)]
        )
        assert fused.probability("pilot") == pytest.approx(0.75)

    def test_mediate_intersection(self):
        fused = mediate_intersection(
            [
                (value(pilot=0.5, baker=0.5), 1.0),
                (value(pilot=0.9, singer=0.1), 1.0),
            ]
        )
        assert set(fused.existing_support) == {"pilot"}
        assert fused.probability("pilot") == pytest.approx(1.0)

    def test_intersection_disjoint_raises(self):
        with pytest.raises(EmptyDistributionError):
            mediate_intersection(
                [(value(pilot=1.0), 1.0), (value(baker=1.0), 1.0)]
            )

    def test_input_validation(self):
        with pytest.raises(ValueError):
            mediate_mixture([])
        with pytest.raises(ValueError):
            mediate_mixture([(value(a=1.0), 0.0)])


class TestCollapseAndMembership:
    def test_collapse_marginalizes_alternatives(self):
        xt = XTuple.build(
            "t",
            [
                ({"job": "pilot"}, 0.6),
                ({"job": "baker"}, 0.2),
            ],
        )
        marginals = collapse_xtuple(xt)
        assert marginals["job"].probability("pilot") == pytest.approx(0.75)
        assert marginals["job"].probability("baker") == pytest.approx(0.25)

    def test_membership_any(self):
        a = XTuple.build("a", [({"v": "x"}, 0.5)])
        b = XTuple.build("b", [({"v": "x"}, 0.5)])
        assert fused_membership([a, b], MembershipRule.ANY) == pytest.approx(
            0.75
        )

    def test_membership_max_and_mean(self):
        a = XTuple.build("a", [({"v": "x"}, 0.4)])
        b = XTuple.build("b", [({"v": "x"}, 0.8)])
        assert fused_membership([a, b], MembershipRule.MAX) == pytest.approx(
            0.8
        )
        assert fused_membership([a, b], MembershipRule.MEAN) == pytest.approx(
            0.6
        )

    def test_unknown_rule_rejected(self):
        a = XTuple.build("a", [({"v": "x"}, 0.4)])
        with pytest.raises(ValueError):
            fused_membership([a], "median")


class TestFuseCluster:
    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            fuse_cluster([])

    def test_weight_count_validated(self):
        a = XTuple.certain("a", {"v": "x"})
        with pytest.raises(ValueError):
            fuse_cluster([a], source_weights=[1.0, 2.0])

    def test_default_id_joins_members(self):
        a = XTuple.certain("a", {"v": "x"})
        b = XTuple.certain("b", {"v": "x"})
        assert fuse_cluster([a, b]).tuple_id == "a+b"

    def test_corroboration_boosts_shared_outcome(self):
        a = XTuple.build("a", [({"v": {"x": 0.8, "y": 0.2}}, 1.0)])
        b = XTuple.build("b", [({"v": {"x": 0.6, "z": 0.4}}, 1.0)])
        fused = fuse_cluster([a, b])
        assert fused.alternatives[0].value("v").probability(
            "x"
        ) == pytest.approx(0.7)

    def test_null_mass_fuses_too(self):
        a = XTuple.build("a", [({"v": {"x": 0.5}}, 1.0)])  # ⊥ 0.5
        b = XTuple.build("b", [({"v": None}, 1.0)])  # ⊥ 1.0
        fused = fuse_cluster([a, b])
        assert fused.alternatives[0].value("v").probability(
            NULL
        ) == pytest.approx(0.75)

    def test_alternate_strategy(self):
        a = XTuple.build("a", [({"v": {"x": 0.9, "y": 0.1}}, 1.0)])
        b = XTuple.build("b", [({"v": {"y": 0.8, "x": 0.2}}, 1.0)])
        fused = fuse_cluster([a, b], value_fusion=decide_most_probable)
        assert fused.alternatives[0].value("v").certain_value == "x"


class TestFuseRelation:
    def build(self) -> XRelation:
        return XRelation(
            "R",
            ["name", "job"],
            [
                XTuple.certain("a1", {"name": "Tim", "job": "pilot"}),
                XTuple.certain("a2", {"name": "Tim", "job": "pilot"}),
                XTuple.certain("c1", {"name": "Walter", "job": "judge"}),
            ],
        )

    def detect(self, relation: XRelation):
        matcher = AttributeMatcher({"name": HAMMING, "job": HAMMING})
        model = CombinedDecisionModel(
            WeightedSum({"name": 0.5, "job": 0.5}),
            ThresholdClassifier(0.9, 0.7),
        )
        return DuplicateDetector(matcher, model).detect(relation)

    def test_fuses_detected_clusters(self):
        relation = self.build()
        clustering = self.detect(relation).clusters()
        fused = fuse_relation(relation, clustering)
        assert len(fused) == 2
        assert "a1+a2" in fused.tuple_ids

    def test_singletons_pass_through(self):
        relation = self.build()
        clustering = self.detect(relation).clusters()
        fused = fuse_relation(relation, clustering)
        assert "c1" in fused.tuple_ids

    def test_summary(self):
        relation = self.build()
        clustering = self.detect(relation).clusters()
        fused = fuse_relation(relation, clustering)
        summary = fusion_summary(relation, fused)
        assert summary["source_tuples"] == 3
        assert summary["fused_tuples"] == 2
        assert summary["merged_away"] == 1


class TestRampConfidence:
    def test_below_lambda_is_zero(self):
        classifier = ThresholdClassifier(0.7, 0.4)
        assert ramp_confidence(0.3, classifier) == 0.0

    def test_above_mu_is_one(self):
        classifier = ThresholdClassifier(0.7, 0.4)
        assert ramp_confidence(0.9, classifier) == 1.0

    def test_linear_in_between(self):
        classifier = ThresholdClassifier(0.7, 0.4)
        assert ramp_confidence(0.55, classifier) == pytest.approx(0.5)

    def test_infinite_similarity(self):
        classifier = ThresholdClassifier(0.7, 0.4)
        assert ramp_confidence(float("inf"), classifier) == 1.0

    def test_collapsed_band(self):
        classifier = ThresholdClassifier(0.5)
        assert ramp_confidence(0.5, classifier) == 1.0
        assert ramp_confidence(0.49, classifier) == 0.0


class TestUncertainResolution:
    def build(self) -> XRelation:
        return XRelation(
            "R",
            ["name", "job"],
            [
                # definite duplicates:
                XTuple.certain("a1", {"name": "Tim", "job": "pilot"}),
                XTuple.certain("a2", {"name": "Tim", "job": "pilot"}),
                # a possible pair (name agrees, job differs):
                XTuple.certain("b1", {"name": "Johan", "job": "baker"}),
                XTuple.certain("b2", {"name": "Johan", "job": "tailor"}),
                # a singleton:
                XTuple.certain("c1", {"name": "Walter", "job": "judge"}),
            ],
        )

    def resolve(self):
        relation = self.build()
        matcher = AttributeMatcher({"name": HAMMING, "job": HAMMING})
        classifier = ThresholdClassifier(0.9, 0.4)
        model = CombinedDecisionModel(
            WeightedSum({"name": 0.5, "job": 0.5}), classifier
        )
        result = DuplicateDetector(matcher, model).detect(relation)
        return relation, result, build_uncertain_resolution(
            relation, result, classifier
        )

    def test_definite_cluster_fused_unconditionally(self):
        _, _, resolution = self.resolve()
        unconditional = [
            t for t in resolution.tuples if not t.is_conditional
        ]
        ids = {t.xtuple.tuple_id for t in unconditional}
        assert "a1+a2" in ids
        assert "c1" in ids

    def test_possible_pair_creates_hypothesis(self):
        _, _, resolution = self.resolve()
        assert len(resolution.hypotheses) == 1
        hypothesis = next(iter(resolution.hypotheses.values()))
        assert hypothesis.member_ids == ("b1", "b2")
        assert 0.0 < hypothesis.confidence < 1.0

    def test_mutually_exclusive_sets(self):
        _, _, resolution = self.resolve()
        exclusive = resolution.exclusive_pairs()
        # fused(b1,b2) vs b1, fused vs b2 — but b1 vs b2 share the
        # SEPARATE alternative, so they are NOT exclusive.
        assert ("b1+b2", "b1") in exclusive
        assert ("b1+b2", "b2") in exclusive
        assert ("b1", "b2") not in exclusive

    def test_decision_relation_has_two_alternatives(self):
        _, _, resolution = self.resolve()
        decision = resolution.decisions.xtuples[0]
        assert len(decision) == 2
        assert decision.probability == pytest.approx(1.0)

    def test_expected_tuple_count(self):
        _, _, resolution = self.resolve()
        hypothesis = next(iter(resolution.hypotheses.values()))
        q = hypothesis.confidence
        # a1+a2, c1 always; merged (q) or two separates (2(1-q)).
        expected = 2 + q + 2 * (1 - q)
        assert resolution.expected_tuple_count() == pytest.approx(expected)

    def test_instantiate_merge_world(self):
        _, _, resolution = self.resolve()
        decision_id = next(iter(resolution.hypotheses))
        merged = resolution.instantiate({decision_id: MERGE})
        assert "b1+b2" in merged.tuple_ids
        assert "b1" not in merged.tuple_ids

    def test_instantiate_separate_world(self):
        _, _, resolution = self.resolve()
        decision_id = next(iter(resolution.hypotheses))
        separate = resolution.instantiate({decision_id: SEPARATE})
        assert "b1" in separate.tuple_ids
        assert "b2" in separate.tuple_ids
        assert "b1+b2" not in separate.tuple_ids

    def test_default_instantiation_uses_modal_choice(self):
        _, _, resolution = self.resolve()
        hypothesis = next(iter(resolution.hypotheses.values()))
        materialized = resolution.instantiate()
        if hypothesis.confidence >= 0.5:
            assert "b1+b2" in materialized.tuple_ids
        else:
            assert "b1" in materialized.tuple_ids

    def test_tuple_probability_matches_confidence(self):
        _, _, resolution = self.resolve()
        hypothesis = next(iter(resolution.hypotheses.values()))
        for result_tuple in resolution.tuples:
            if result_tuple.xtuple.tuple_id == "b1+b2":
                assert resolution.tuple_probability(
                    result_tuple
                ) == pytest.approx(hypothesis.confidence)
            elif result_tuple.xtuple.tuple_id == "b1":
                assert resolution.tuple_probability(
                    result_tuple
                ) == pytest.approx(1.0 - hypothesis.confidence)
