"""Unit tests for the Equation-4/5 lift (repro.similarity.uncertain)."""

from __future__ import annotations

import pytest

from repro.pdb import NULL, PatternValue, ProbabilisticValue
from repro.similarity import (
    HAMMING,
    PatternPolicy,
    UncertainValueComparator,
    equality_probability,
    expected_similarity,
)


class TestEquationFour:
    def test_plain_values_coerced(self):
        assert equality_probability("x", "x") == 1.0
        assert equality_probability("x", "y") == 0.0

    def test_none_means_null(self):
        assert equality_probability(None, None) == 1.0
        assert equality_probability(None, "x") == 0.0

    def test_distribution_overlap(self):
        left = ProbabilisticValue({"x": 0.6, "y": 0.4})
        right = ProbabilisticValue({"x": 0.5, "z": 0.5})
        assert equality_probability(left, right) == pytest.approx(0.3)

    def test_error_free_comparator_flag(self):
        assert UncertainValueComparator().is_error_free
        assert not UncertainValueComparator(HAMMING).is_error_free


class TestEquationFive:
    def test_paper_name_example(self):
        """sim(Tim, {Tim:.7, Kim:.3}) = 0.7 + 0.3·(2/3) = 0.9."""
        assert expected_similarity(
            "Tim", ProbabilisticValue({"Tim": 0.7, "Kim": 0.3}), HAMMING
        ) == pytest.approx(0.9)

    def test_paper_job_example(self):
        """sim({machinist:.7, mechanic:.2}, mechanic) = 53/90."""
        left = ProbabilisticValue({"machinist": 0.7, "mechanic": 0.2})
        assert expected_similarity(left, "mechanic", HAMMING) == pytest.approx(
            53 / 90
        )

    def test_null_semantics(self):
        comparator = UncertainValueComparator(HAMMING)
        assert comparator(None, None) == 1.0
        assert comparator(None, "x") == 0.0
        assert comparator("x", None) == 0.0

    def test_partial_null_mass(self):
        comparator = UncertainValueComparator(HAMMING)
        left = ProbabilisticValue({"x": 0.5})  # ⊥ mass 0.5
        right = ProbabilisticValue({"x": 0.5})  # ⊥ mass 0.5
        # 0.25·sim(x,x) + 0.25·sim(⊥,⊥) + 2·0.25·0
        assert comparator(left, right) == pytest.approx(0.5)

    def test_result_bounded_for_normalized_base(self):
        comparator = UncertainValueComparator(HAMMING)
        left = ProbabilisticValue({"abc": 0.3, "abd": 0.4, "xyz": 0.3})
        right = ProbabilisticValue({"abc": 0.6, "zzz": 0.4})
        assert 0.0 <= comparator(left, right) <= 1.0


class TestPatternPolicies:
    def test_strict_raises(self):
        comparator = UncertainValueComparator(HAMMING)
        with pytest.raises(ValueError):
            comparator(
                ProbabilisticValue.certain(PatternValue("mu*")), "musician"
            )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            UncertainValueComparator(HAMMING, pattern_policy="fuzzy")

    def test_expand_requires_lexicon(self):
        with pytest.raises(ValueError):
            UncertainValueComparator(
                HAMMING, pattern_policy=PatternPolicy.EXPAND
            )

    def test_expand_policy_uses_lexicon(self):
        comparator = UncertainValueComparator(
            HAMMING,
            pattern_policy=PatternPolicy.EXPAND,
            pattern_lexicon=["musician", "muralist"],
        )
        value = ProbabilisticValue.certain(PatternValue("mu*"))
        expected = 0.5 * HAMMING("musician", "musician") + 0.5 * HAMMING(
            "muralist", "musician"
        )
        assert comparator(value, "musician") == pytest.approx(expected)

    def test_prefix_policy_compares_prefixes(self):
        comparator = UncertainValueComparator(
            HAMMING, pattern_policy=PatternPolicy.PREFIX
        )
        value = ProbabilisticValue.certain(PatternValue("mu*"))
        # prefix 'mu' vs first two chars 'mu' of 'musician' ⇒ 1.0
        assert comparator(value, "musician") == pytest.approx(1.0)
        # 'mu' vs 'pi' ⇒ 0.0
        assert comparator(value, "pilot") == pytest.approx(0.0)

    def test_prefix_policy_pattern_vs_pattern(self):
        comparator = UncertainValueComparator(
            HAMMING, pattern_policy=PatternPolicy.PREFIX
        )
        left = ProbabilisticValue.certain(PatternValue("mu*"))
        right = ProbabilisticValue.certain(PatternValue("mu*"))
        assert comparator(left, right) == pytest.approx(1.0)

    def test_expand_mixed_distribution(self):
        comparator = UncertainValueComparator(
            HAMMING,
            pattern_policy=PatternPolicy.EXPAND,
            pattern_lexicon=["musician"],
        )
        value = ProbabilisticValue({PatternValue("mu*"): 0.5, "pilot": 0.5})
        result = comparator(value, "musician")
        assert result == pytest.approx(
            0.5 * 1.0 + 0.5 * HAMMING("pilot", "musician")
        )


class TestMembershipInvariance:
    """Tuple membership must never influence value similarity."""

    def test_comparator_only_sees_value_distributions(self):
        comparator = UncertainValueComparator(HAMMING)
        value = ProbabilisticValue({"Tim": 0.7, "Kim": 0.3})
        # The same distribution compared twice gives the same result; no
        # notion of tuple probability exists at this level by design.
        assert comparator(value, value) == comparator(value, value)
