"""Unit tests for derivation functions ϑ and the Figure-6 engine."""

from __future__ import annotations

import math

import pytest

from repro.matching import (
    AttributeMatcher,
    CombinedDecisionModel,
    DerivationInput,
    ExpectedMatchingResult,
    ExpectedSimilarity,
    MatchProbability,
    MatchStatus,
    MatchingWeight,
    MaximumSimilarity,
    MostProbableWorldSimilarity,
    ThresholdClassifier,
    WeightedSum,
    XTupleDecisionProcedure,
    normalized_weights,
)
from repro.pdb import ProbabilisticTuple, XTuple
from repro.similarity import HAMMING

M, P, U = MatchStatus.MATCH, MatchStatus.POSSIBLE, MatchStatus.UNMATCH


def make_input(
    similarities, weights, statuses=None
) -> DerivationInput:
    return DerivationInput(
        similarities=tuple(tuple(row) for row in similarities),
        statuses=(
            tuple(tuple(row) for row in statuses)
            if statuses is not None
            else None
        ),
        weights=tuple(tuple(row) for row in weights),
    )


class TestNormalizedWeights:
    def test_paper_example_weights(self):
        weights = normalized_weights([0.3, 0.2, 0.4], [0.8])
        assert weights[0][0] == pytest.approx(3 / 9)
        assert weights[1][0] == pytest.approx(2 / 9)
        assert weights[2][0] == pytest.approx(4 / 9)

    def test_always_sums_to_one(self):
        weights = normalized_weights([0.1, 0.2], [0.3, 0.3, 0.2])
        assert sum(sum(row) for row in weights) == pytest.approx(1.0)

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            normalized_weights([], [1.0])


class TestSimilarityBasedDerivations:
    def test_expected_similarity_weighted_mean(self):
        data = make_input(
            [[11 / 15], [7 / 15], [4 / 15]],
            [[3 / 9], [2 / 9], [4 / 9]],
        )
        assert ExpectedSimilarity()(data) == pytest.approx(7 / 15)

    def test_most_probable_world_picks_heaviest(self):
        data = make_input(
            [[0.9], [0.1]],
            [[0.3], [0.7]],
        )
        assert MostProbableWorldSimilarity()(data) == pytest.approx(0.1)

    def test_maximum_similarity(self):
        data = make_input([[0.2, 0.9], [0.5, 0.1]], [[0.25] * 2] * 2)
        assert MaximumSimilarity()(data) == pytest.approx(0.9)

    def test_requires_statuses_flags(self):
        assert not ExpectedSimilarity().requires_statuses
        assert not MostProbableWorldSimilarity().requires_statuses
        assert MatchingWeight().requires_statuses
        assert ExpectedMatchingResult().requires_statuses


class TestDecisionBasedDerivations:
    def test_matching_weight_paper_example(self):
        data = make_input(
            [[11 / 15], [7 / 15], [4 / 15]],
            [[3 / 9], [2 / 9], [4 / 9]],
            [[M], [P], [U]],
        )
        assert MatchingWeight()(data) == pytest.approx(0.75)

    def test_matching_weight_no_unmatch_is_infinite(self):
        data = make_input([[0.9]], [[1.0]], [[M]])
        assert MatchingWeight()(data) == math.inf

    def test_matching_weight_all_possible_is_neutral(self):
        data = make_input([[0.5]], [[1.0]], [[P]])
        assert MatchingWeight()(data) == pytest.approx(1.0)

    def test_matching_weight_requires_statuses(self):
        data = make_input([[0.5]], [[1.0]])
        with pytest.raises(ValueError):
            MatchingWeight()(data)

    def test_match_probability(self):
        data = make_input(
            [[0.9], [0.1]], [[0.6], [0.4]], [[M], [U]]
        )
        assert MatchProbability()(data) == pytest.approx(0.6)

    def test_expected_matching_result_coding(self):
        data = make_input(
            [[0.9], [0.5], [0.1]],
            [[3 / 9], [2 / 9], [4 / 9]],
            [[M], [P], [U]],
        )
        assert ExpectedMatchingResult()(data) == pytest.approx(8 / 9)

    def test_expected_matching_result_bounds(self):
        all_match = make_input([[1.0]], [[1.0]], [[M]])
        all_unmatch = make_input([[0.0]], [[1.0]], [[U]])
        assert ExpectedMatchingResult()(all_match) == pytest.approx(2.0)
        assert ExpectedMatchingResult()(all_unmatch) == pytest.approx(0.0)


def paper_setup():
    matcher = AttributeMatcher({"name": HAMMING, "job": HAMMING})
    model = CombinedDecisionModel(
        WeightedSum({"name": 0.8, "job": 0.2}),
        ThresholdClassifier(0.7, 0.4),
    )
    return matcher, model


class TestXTupleDecisionProcedure:
    def test_flat_pair_equals_direct_model(self):
        """A 1×1 matrix must reduce Figure 6 to Figure 3 exactly."""
        matcher, model = paper_setup()
        procedure = XTupleDecisionProcedure(
            matcher, model, ExpectedSimilarity()
        )
        left = ProbabilisticTuple("a", {"name": "Tim", "job": "pilot"}, 0.9)
        right = ProbabilisticTuple("b", {"name": "Tom", "job": "pilot"}, 0.4)
        via_procedure = procedure.decide_flat(left, right)
        direct = model.decide(matcher.compare_rows(left, right))
        assert via_procedure.similarity == pytest.approx(direct.similarity)
        assert via_procedure.status is direct.status

    def test_membership_probability_is_invariant(self):
        """Scaling all alternative masses of an x-tuple changes nothing
        (Section IV: tuple membership must not influence detection)."""
        matcher, model = paper_setup()
        procedure = XTupleDecisionProcedure(
            matcher, model, ExpectedSimilarity()
        )
        base = XTuple.build(
            "x",
            [
                ({"name": "Tim", "job": "pilot"}, 0.6),
                ({"name": "Tom", "job": "pilot"}, 0.3),
            ],
        )
        scaled = XTuple.build(
            "x",
            [
                ({"name": "Tim", "job": "pilot"}, 0.2),
                ({"name": "Tom", "job": "pilot"}, 0.1),
            ],
        )
        other = XTuple.certain("y", {"name": "Tim", "job": "pilot"})
        assert procedure.similarity(base, other) == pytest.approx(
            procedure.similarity(scaled, other)
        )

    def test_decision_based_records_statuses(self):
        matcher, model = paper_setup()
        procedure = XTupleDecisionProcedure(matcher, model, MatchingWeight())
        left = XTuple.build(
            "l", [({"name": "Tim", "job": "x"}, 0.5), ({"name": "Zed", "job": "x"}, 0.5)]
        )
        right = XTuple.certain("r", {"name": "Tim", "job": "x"})
        decision = procedure.decide(left, right)
        assert decision.derivation_input.statuses is not None
        assert decision.derivation_input.statuses[0][0] is MatchStatus.MATCH

    def test_similarity_based_keeps_statuses_none(self):
        matcher, model = paper_setup()
        procedure = XTupleDecisionProcedure(
            matcher, model, ExpectedSimilarity()
        )
        left = XTuple.certain("l", {"name": "Tim", "job": "x"})
        right = XTuple.certain("r", {"name": "Tim", "job": "x"})
        decision = procedure.decide(left, right)
        assert decision.derivation_input.statuses is None

    def test_final_classifier_override(self):
        matcher, model = paper_setup()
        procedure = XTupleDecisionProcedure(
            matcher,
            model,
            MatchingWeight(),
            classifier=ThresholdClassifier(2.0, 0.5),
        )
        left = XTuple.build(
            "l",
            [
                ({"name": "Tim", "job": "pilot"}, 0.5),
                ({"name": "Tim", "job": "pilot"}, 0.5),
            ],
        )
        right = XTuple.certain("r", {"name": "Tim", "job": "pilot"})
        decision = procedure.decide(left, right)
        # All alternative pairs match ⇒ P(u)=0 ⇒ weight=inf ⇒ match.
        assert decision.similarity == math.inf
        assert decision.status is MatchStatus.MATCH

    def test_default_derivation_is_expected_similarity(self):
        matcher, model = paper_setup()
        procedure = XTupleDecisionProcedure(matcher, model)
        assert isinstance(procedure.derivation, ExpectedSimilarity)

    def test_identity_pair_is_match(self):
        matcher, model = paper_setup()
        procedure = XTupleDecisionProcedure(matcher, model)
        tuple_ = XTuple.certain("t", {"name": "Tim", "job": "pilot"})
        decision = procedure.decide(tuple_, tuple_)
        assert decision.status is MatchStatus.MATCH
        assert decision.similarity == pytest.approx(1.0)
