"""Unit tests for the synthetic data generator."""

from __future__ import annotations

import random

import pytest

from repro.datagen import (
    FIRST_NAMES,
    JOBS,
    Corruptor,
    DatasetConfig,
    HEAVY_UNCERTAINTY,
    LIGHT_UNCERTAINTY,
    UncertaintyProfile,
    delete_char,
    generate_dataset,
    insert_char,
    jobs_with_prefix,
    make_uncertain_value,
    membership_probability,
    ocr_confuse,
    substitute_char,
    transpose_chars,
    truncate,
)
from repro.pdb import NULL, PatternValue


class TestCorpora:
    def test_paper_cast_present(self):
        for name in ("Tim", "Tom", "Jim", "Kim", "John", "Johan", "Timothy"):
            assert name in FIRST_NAMES

    def test_paper_jobs_present(self):
        for job in (
            "machinist",
            "mechanic",
            "baker",
            "confectioner",
            "confectionist",
            "pilot",
            "pianist",
        ):
            assert job in JOBS

    def test_mu_family_nonempty(self):
        family = jobs_with_prefix("mu")
        assert len(family) >= 3
        assert all(job.startswith("mu") for job in family)

    def test_corpora_have_no_duplicates(self):
        assert len(set(FIRST_NAMES)) == len(FIRST_NAMES)
        assert len(set(JOBS)) == len(JOBS)


class TestCorruptionOperators:
    @pytest.mark.parametrize(
        "op", [substitute_char, delete_char, insert_char, transpose_chars,
               ocr_confuse, truncate]
    )
    def test_operator_returns_string(self, op):
        rng = random.Random(3)
        result = op("machinist", rng)
        assert isinstance(result, str)

    def test_substitute_changes_one_char(self):
        rng = random.Random(1)
        result = substitute_char("abcdef", rng)
        assert len(result) == 6
        assert sum(a != b for a, b in zip(result, "abcdef")) == 1

    def test_delete_shortens(self):
        rng = random.Random(1)
        assert len(delete_char("abcdef", rng)) == 5

    def test_delete_keeps_single_char(self):
        rng = random.Random(1)
        assert delete_char("a", rng) == "a"

    def test_insert_lengthens(self):
        rng = random.Random(1)
        assert len(insert_char("abc", rng)) == 4

    def test_transpose_preserves_multiset(self):
        rng = random.Random(1)
        result = transpose_chars("abcdef", rng)
        assert sorted(result) == sorted("abcdef")

    def test_truncate_shortens(self):
        rng = random.Random(1)
        result = truncate("abcdefgh", rng)
        assert result == "abcdefgh"[: len(result)]
        assert 2 <= len(result) < 8


class TestCorruptor:
    def test_corrupt_changes_value(self):
        corruptor = Corruptor()
        rng = random.Random(7)
        for _ in range(50):
            assert corruptor.corrupt("machinist", rng) != "machinist"

    def test_variants_distinct(self):
        corruptor = Corruptor()
        rng = random.Random(7)
        variants = corruptor.variants("machinist", 4, rng)
        assert len(variants) == 4
        assert len(set(variants)) == 4
        assert "machinist" not in variants

    def test_variants_best_effort_when_space_exhausted(self):
        """Substitution-only on a 1-char string has < 26 variants; the
        attempt cap must terminate instead of spinning forever."""
        corruptor = Corruptor([(substitute_char, 1.0)], max_errors=1)
        rng = random.Random(7)
        variants = corruptor.variants("a", 100, rng)
        assert 0 < len(variants) <= 26

    def test_reproducible_with_same_seed(self):
        corruptor = Corruptor()
        first = corruptor.corrupt("machinist", random.Random(42))
        second = corruptor.corrupt("machinist", random.Random(42))
        assert first == second

    def test_validation(self):
        with pytest.raises(ValueError):
            Corruptor([])
        with pytest.raises(ValueError):
            Corruptor(max_errors=0)
        with pytest.raises(ValueError):
            Corruptor([(substitute_char, 0.0)])


class TestUncertaintyProfile:
    def test_field_validation(self):
        with pytest.raises(ValueError):
            UncertaintyProfile(uncertain_value_rate=1.5)
        with pytest.raises(ValueError):
            UncertaintyProfile(max_alternatives=1)
        with pytest.raises(ValueError):
            UncertaintyProfile(true_value_mass=1.0)

    def test_presets_are_valid(self):
        assert LIGHT_UNCERTAINTY.uncertain_value_rate < (
            HEAVY_UNCERTAINTY.uncertain_value_rate
        )


class TestMakeUncertainValue:
    def test_distribution_mass_valid(self):
        corruptor = Corruptor()
        profile = UncertaintyProfile(uncertain_value_rate=1.0)
        rng = random.Random(5)
        for _ in range(100):
            value = make_uncertain_value(
                "machinist", corruptor, profile, rng
            )
            total = sum(p for _, p in value.items())
            assert total == pytest.approx(1.0)

    def test_true_value_usually_dominant(self):
        corruptor = Corruptor()
        profile = UncertaintyProfile(
            uncertain_value_rate=1.0, true_value_dropout=0.0, null_rate=0.0
        )
        rng = random.Random(5)
        dominant = 0
        for _ in range(100):
            value = make_uncertain_value(
                "machinist", corruptor, profile, rng
            )
            if value.most_probable() == "machinist":
                dominant += 1
        assert dominant >= 80

    def test_pattern_emission(self):
        corruptor = Corruptor()
        profile = UncertaintyProfile(pattern_rate=1.0)
        rng = random.Random(5)
        value = make_uncertain_value(
            "musician", corruptor, profile, rng, pattern_lexicon=tuple(JOBS)
        )
        assert isinstance(value.certain_value, PatternValue)
        assert value.certain_value.prefix == "mu"

    def test_pattern_needs_family(self):
        """No pattern for a prefix matched by a single lexicon word."""
        corruptor = Corruptor()
        profile = UncertaintyProfile(pattern_rate=1.0)
        rng = random.Random(5)
        value = make_uncertain_value(
            "zoologist", corruptor, profile, rng, pattern_lexicon=tuple(JOBS)
        )
        assert not isinstance(value.most_probable(), PatternValue)

    def test_membership_probability_range(self):
        profile = UncertaintyProfile(maybe_rate=1.0, min_membership=0.4)
        rng = random.Random(5)
        for _ in range(100):
            p = membership_probability(profile, rng)
            assert 0.4 <= p <= 0.95


class TestDatasetGenerator:
    def test_deterministic(self):
        first = generate_dataset(entity_count=20, seed=3)
        second = generate_dataset(entity_count=20, seed=3)
        assert first.relation.tuple_ids == second.relation.tuple_ids
        assert first.true_matches == second.true_matches

    def test_different_seeds_differ(self):
        first = generate_dataset(entity_count=20, seed=3)
        second = generate_dataset(entity_count=20, seed=4)
        assert (
            first.true_matches != second.true_matches
            or first.relation.tuple_ids != second.relation.tuple_ids
        )

    def test_gold_pairs_reference_existing_tuples(self):
        dataset = generate_dataset(entity_count=30, seed=5)
        ids = set(dataset.relation.tuple_ids)
        for left, right in dataset.true_matches:
            assert left in ids and right in ids
            assert left < right

    def test_gold_pairs_match_entity_mapping(self):
        dataset = generate_dataset(entity_count=30, seed=5)
        for left, right in dataset.true_matches:
            assert dataset.entity_of[left] == dataset.entity_of[right]

    def test_duplicate_rate_zero_yields_no_gold(self):
        dataset = generate_dataset(
            entity_count=30, duplicate_rate=0.0, seed=5
        )
        assert dataset.true_matches == frozenset()

    def test_flat_mode_single_alternatives(self):
        dataset = generate_dataset(entity_count=20, seed=5, flat=True)
        assert all(len(xt) == 1 for xt in dataset.relation)

    def test_xtuple_mode_produces_multi_alternatives(self):
        dataset = generate_dataset(entity_count=40, seed=5)
        assert any(len(xt) > 1 for xt in dataset.relation)

    def test_split_sources(self):
        dataset = generate_dataset(entity_count=30, seed=5, split_sources=True)
        assert len(dataset.sources) == 2
        total = len(dataset.sources[0]) + len(dataset.sources[1])
        assert total == len(dataset.relation)

    def test_duplicate_cluster_count(self):
        dataset = generate_dataset(entity_count=50, seed=5)
        assert dataset.duplicate_cluster_count > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DatasetConfig(entity_count=0)
        with pytest.raises(ValueError):
            DatasetConfig(duplicate_rate=2.0)
        with pytest.raises(ValueError):
            DatasetConfig(max_records_per_entity=1)

    def test_config_and_overrides_mutually_exclusive(self):
        with pytest.raises(TypeError):
            generate_dataset(DatasetConfig(), entity_count=5)

    def test_all_xtuples_valid_probability(self):
        dataset = generate_dataset(
            entity_count=50,
            seed=9,
            profile=HEAVY_UNCERTAINTY,
        )
        for xt in dataset.relation:
            assert 0.0 < xt.probability <= 1.0 + 1e-9

    def test_heavy_profile_produces_nulls_and_maybes(self):
        dataset = generate_dataset(
            entity_count=80, seed=9, profile=HEAVY_UNCERTAINTY, flat=True
        )
        has_null = any(
            any(
                alt.value(a).probability(NULL) > 0
                for a in alt.attributes
            )
            for xt in dataset.relation
            for alt in xt.alternatives
        )
        has_maybe = any(xt.is_maybe for xt in dataset.relation)
        assert has_null and has_maybe
