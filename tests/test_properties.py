"""Property-based tests (hypothesis) on the core invariants.

These pin the paper's structural claims rather than individual numbers:

* distributions stay normalized under every transformation,
* Equation 5 stays within [0, 1] for normalized base comparators,
* expected similarity is symmetric when the base comparator is,
* value-level Eq. 5 ≡ tuple-level Eq. 6 after expansion (the paper's
  possible-world equivalence remark),
* tuple membership never influences similarities (Section IV),
* window pairs are unique and respect the window,
* world enumeration is a probability distribution,
* verification metrics stay within bounds.
"""

from __future__ import annotations

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.matching import (
    AttributeMatcher,
    CombinedDecisionModel,
    ExpectedSimilarity,
    ThresholdClassifier,
    WeightedSum,
    XTupleDecisionProcedure,
)
from repro.pdb import (
    NULL,
    ProbabilisticValue,
    XTuple,
    enumerate_worlds,
    expected_rank_order,
    world_count,
)
from repro.reduction import window_pairs
from repro.similarity import HAMMING, LEVENSHTEIN, UncertainValueComparator
from repro.verification import (
    evaluate_pairs,
    pairs_completeness,
    reduction_ratio,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

short_text = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=0,
    max_size=8,
)

nonempty_text = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=8,
)


@st.composite
def distributions(draw, min_outcomes=1, max_outcomes=4):
    """A valid ProbabilisticValue over short lowercase strings."""
    outcomes = draw(
        st.lists(
            nonempty_text,
            min_size=min_outcomes,
            max_size=max_outcomes,
            unique=True,
        )
    )
    raw_weights = [
        draw(st.floats(min_value=0.01, max_value=1.0)) for _ in outcomes
    ]
    scale = draw(st.floats(min_value=0.3, max_value=1.0)) / sum(raw_weights)
    return ProbabilisticValue(
        {o: w * scale for o, w in zip(outcomes, raw_weights)}
    )


@st.composite
def xtuples(draw, tuple_id="t", min_alts=1, max_alts=3):
    """A valid x-tuple over the (name, job) schema."""
    count = draw(st.integers(min_alts, max_alts))
    raw = [
        draw(st.floats(min_value=0.05, max_value=1.0)) for _ in range(count)
    ]
    scale = draw(st.floats(min_value=0.4, max_value=1.0)) / sum(raw)
    rows = []
    for weight in raw:
        rows.append(
            (
                {
                    "name": draw(nonempty_text),
                    "job": draw(st.one_of(st.none(), nonempty_text)),
                },
                weight * scale,
            )
        )
    return XTuple.build(tuple_id, rows)


# ----------------------------------------------------------------------
# Distribution invariants
# ----------------------------------------------------------------------


class TestDistributionInvariants:
    @given(distributions())
    def test_total_mass_is_one(self, value):
        assert sum(p for _, p in value.items()) == math.isclose(
            1.0, 1.0
        ) or abs(sum(p for _, p in value.items()) - 1.0) < 1e-9

    @given(distributions())
    def test_map_preserves_mass(self, value):
        mapped = value.map(lambda s: s[:2])
        assert abs(sum(p for _, p in mapped.items()) - 1.0) < 1e-9

    @given(distributions())
    def test_filter_existing_renormalizes(self, value):
        kept = value.filter(lambda v: True)
        assert abs(sum(p for _, p in kept.items()) - 1.0) < 1e-9

    @given(distributions())
    def test_most_probable_in_support(self, value):
        assert value.most_probable() in value.support

    @given(distributions())
    def test_entropy_non_negative(self, value):
        assert value.entropy() >= 0.0


# ----------------------------------------------------------------------
# Equation 4/5 invariants
# ----------------------------------------------------------------------


class TestSimilarityInvariants:
    @given(distributions(), distributions())
    def test_equation_5_bounded(self, left, right):
        comparator = UncertainValueComparator(HAMMING)
        assert -1e-9 <= comparator(left, right) <= 1.0 + 1e-9

    @given(distributions(), distributions())
    def test_equation_5_symmetric(self, left, right):
        comparator = UncertainValueComparator(HAMMING)
        assert abs(comparator(left, right) - comparator(right, left)) < 1e-9

    @given(distributions())
    def test_self_similarity_at_least_collision_probability(self, value):
        """sim(a,a) ≥ P(a=a): identical outcomes score 1 under Hamming."""
        comparator = UncertainValueComparator(HAMMING)
        assert (
            comparator(value, value)
            >= value.equality_probability(value) - 1e-9
        )

    @given(distributions(), distributions())
    def test_equation_4_leq_one(self, left, right):
        assert 0.0 <= left.equality_probability(right) <= 1.0 + 1e-9

    @given(st.lists(nonempty_text, min_size=1, max_size=4, unique=True))
    def test_equation_4_equals_eq5_with_exact_base(self, outcomes):
        """Eq. 4 is Eq. 5 with the Kronecker-delta comparator."""
        share = 1.0 / len(outcomes)
        value = ProbabilisticValue({o: share for o in outcomes})
        comparator = UncertainValueComparator()  # error-free
        assert abs(
            comparator(value, value) - value.equality_probability(value)
        ) < 1e-9


# ----------------------------------------------------------------------
# Equation 5 ≡ Equation 6 under expansion
# ----------------------------------------------------------------------


class TestExpansionEquivalence:
    @given(distributions(max_outcomes=3), distributions(max_outcomes=3))
    @settings(max_examples=50)
    def test_value_level_equals_alternative_level(self, left, right):
        """Comparing uncertain values inside one alternative (Eq. 5) must
        equal expanding them into certain alternatives and applying the
        expected-similarity derivation (Eq. 6) — both are the expectation
        over possible worlds, as the paper notes."""
        matcher = AttributeMatcher({"name": HAMMING})
        model = CombinedDecisionModel(
            WeightedSum({"name": 1.0}), ThresholdClassifier(0.7, 0.4)
        )
        procedure = XTupleDecisionProcedure(
            matcher, model, ExpectedSimilarity()
        )

        compact_left = XTuple.build("l", [({"name": left}, 1.0)])
        compact_right = XTuple.build("r", [({"name": right}, 1.0)])
        expanded_left = compact_left.expand()
        expanded_right = compact_right.expand()

        compact_sim = procedure.similarity(compact_left, compact_right)
        expanded_sim = procedure.similarity(expanded_left, expanded_right)
        assert abs(compact_sim - expanded_sim) < 1e-9


# ----------------------------------------------------------------------
# Membership invariance (Section IV)
# ----------------------------------------------------------------------


class TestMembershipInvariance:
    @given(
        xtuples(tuple_id="a"),
        xtuples(tuple_id="b"),
        st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=50)
    def test_scaling_alternatives_changes_nothing(self, left, right, factor):
        """Multiplying every alternative probability of an x-tuple by a
        constant λ (lowering p(t)) must not change the derived
        similarity — Section IV's central requirement."""
        matcher = AttributeMatcher({"name": HAMMING, "job": HAMMING})
        model = CombinedDecisionModel(
            WeightedSum({"name": 0.8, "job": 0.2}),
            ThresholdClassifier(0.7, 0.4),
        )
        procedure = XTupleDecisionProcedure(
            matcher, model, ExpectedSimilarity()
        )
        scaled = XTuple(
            left.tuple_id,
            [
                alt.with_probability(alt.probability * factor)
                for alt in left.alternatives
            ],
        )
        original = procedure.similarity(left, right)
        rescaled = procedure.similarity(scaled, right)
        assert abs(original - rescaled) < 1e-9


# ----------------------------------------------------------------------
# Possible worlds
# ----------------------------------------------------------------------


class TestWorldInvariants:
    @given(st.lists(xtuples(), min_size=1, max_size=3))
    @settings(max_examples=40)
    def test_enumeration_is_a_distribution(self, tuples):
        # Re-id the tuples uniquely.
        tuples = [
            XTuple(f"t{i}", xt.alternatives) for i, xt in enumerate(tuples)
        ]
        assume(world_count(tuples) <= 200)
        worlds = list(enumerate_worlds(tuples))
        assert abs(sum(w.probability for w in worlds) - 1.0) < 1e-9
        assert all(w.probability > 0.0 for w in worlds)

    @given(st.lists(xtuples(), min_size=1, max_size=3))
    @settings(max_examples=40)
    def test_world_count_matches_enumeration(self, tuples):
        tuples = [
            XTuple(f"t{i}", xt.alternatives) for i, xt in enumerate(tuples)
        ]
        assume(world_count(tuples) <= 200)
        assert len(list(enumerate_worlds(tuples))) == world_count(tuples)


# ----------------------------------------------------------------------
# Reduction invariants
# ----------------------------------------------------------------------


class TestReductionInvariants:
    @given(
        st.lists(
            st.sampled_from("abcdefgh"), min_size=2, max_size=12
        ),
        st.integers(min_value=2, max_value=6),
    )
    def test_window_pairs_unique_and_non_self(self, ids, window):
        pairs = list(window_pairs(ids, window))
        assert len(pairs) == len(set(pairs))
        for left, right in pairs:
            assert left != right
            assert left <= right

    @given(
        st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=97, max_codepoint=110),
                min_size=1,
                max_size=4,
            ),
            min_size=2,
            max_size=10,
        ),
        st.integers(min_value=2, max_value=4),
    )
    def test_window_pairs_only_within_window_distance(self, keys, window):
        ids = [f"t{i}" for i in range(len(keys))]
        order = [tid for _, tid in sorted(zip(keys, ids))]
        position = {tid: i for i, tid in enumerate(order)}
        for left, right in window_pairs(order, window):
            assert abs(position[left] - position[right]) < window

    @given(st.data())
    def test_ranking_is_a_permutation(self, data):
        n = data.draw(st.integers(min_value=1, max_value=8))
        items = []
        for i in range(n):
            keys = data.draw(
                st.lists(nonempty_text, min_size=1, max_size=3, unique=True)
            )
            probs = [
                data.draw(st.floats(min_value=0.05, max_value=1.0))
                for _ in keys
            ]
            scale = 1.0 / sum(probs)
            items.append(
                (f"t{i}", [(k, p * scale) for k, p in zip(keys, probs)])
            )
        ranked = expected_rank_order(items)
        assert sorted(ranked) == sorted(f"t{i}" for i in range(n))


# ----------------------------------------------------------------------
# Verification invariants
# ----------------------------------------------------------------------

pair_sets = st.sets(
    st.tuples(
        st.sampled_from("abcdef"), st.sampled_from("abcdef")
    ).filter(lambda p: p[0] < p[1]),
    max_size=10,
)


class TestMetricInvariants:
    @given(pair_sets, pair_sets)
    def test_precision_recall_bounded(self, predicted, gold):
        compared = predicted | gold
        assume(compared)
        report = evaluate_pairs(predicted, gold, compared)
        assert 0.0 <= report.precision <= 1.0
        assert 0.0 <= report.recall <= 1.0
        assert 0.0 <= report.f1 <= 1.0

    @given(pair_sets, pair_sets)
    def test_fn_rate_complements_recall(self, predicted, gold):
        compared = predicted | gold
        assume(gold)
        report = evaluate_pairs(predicted, gold, compared)
        assert abs(report.false_negative_rate - (1 - report.recall)) < 1e-9

    @given(pair_sets, st.integers(min_value=4, max_value=12))
    def test_reduction_ratio_bounded(self, candidates, size):
        assume(len(candidates) <= size * (size - 1) // 2)
        ratio = reduction_ratio(candidates, size)
        assert 0.0 <= ratio <= 1.0

    @given(pair_sets, pair_sets)
    def test_pairs_completeness_bounded(self, candidates, gold):
        pc = pairs_completeness(candidates, gold)
        assert 0.0 <= pc <= 1.0

    @given(pair_sets)
    def test_full_candidate_set_has_complete_pairs(self, gold):
        assert pairs_completeness(gold, gold) == 1.0


# ----------------------------------------------------------------------
# Comparator invariants over arbitrary strings
# ----------------------------------------------------------------------


class TestComparatorProperties:
    @given(short_text, short_text)
    def test_levenshtein_triangle_inequality(self, left, right):
        from repro.similarity import levenshtein_distance

        via_empty = levenshtein_distance(left, "") + levenshtein_distance(
            "", right
        )
        assert levenshtein_distance(left, right) <= via_empty

    @given(short_text, short_text)
    def test_levenshtein_symmetry(self, left, right):
        from repro.similarity import levenshtein_distance

        assert levenshtein_distance(left, right) == levenshtein_distance(
            right, left
        )

    @given(short_text)
    def test_identity_maximal(self, text):
        for fn in (HAMMING, LEVENSHTEIN):
            assert fn(text, text) == 1.0

    @given(short_text, short_text)
    def test_all_bounded(self, left, right):
        for fn in (HAMMING, LEVENSHTEIN):
            assert 0.0 <= fn(left, right) <= 1.0
