"""Unit tests for comparison vectors/matrices and combination functions."""

from __future__ import annotations

import math

import pytest

from repro.matching import (
    AttributeMatcher,
    Average,
    ComparisonMatrix,
    ComparisonVector,
    LogLikelihoodRatio,
    Maximum,
    Minimum,
    Product,
    WeightedSum,
)
from repro.pdb import ProbabilisticTuple, ProbabilisticValue, XTuple
from repro.similarity import HAMMING, UncertainValueComparator


def vector(**values: float) -> ComparisonVector:
    return ComparisonVector(tuple(values), tuple(values.values()))


class TestComparisonVector:
    def test_attribute_alignment(self):
        v = vector(name=0.9, job=0.5)
        assert v.similarity("name") == 0.9
        assert v.similarity("job") == 0.5

    def test_unknown_attribute_raises(self):
        with pytest.raises(KeyError):
            vector(name=0.9).similarity("job")

    def test_out_of_range_similarity_rejected(self):
        with pytest.raises(ValueError):
            ComparisonVector(("a",), (1.5,))
        with pytest.raises(ValueError):
            ComparisonVector(("a",), (-0.1,))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ComparisonVector(("a", "b"), (0.5,))

    def test_sequence_protocol(self):
        v = vector(a=0.1, b=0.2)
        assert len(v) == 2
        assert v[1] == pytest.approx(0.2)
        assert list(v) == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_as_dict(self):
        assert vector(a=0.25).as_dict() == {"a": 0.25}

    def test_equality_and_hash(self):
        assert vector(a=0.5) == vector(a=0.5)
        assert hash(vector(a=0.5)) == hash(vector(a=0.5))


class TestComparisonMatrix:
    def make(self) -> ComparisonMatrix:
        rows = [
            [vector(a=0.9), vector(a=0.1)],
            [vector(a=0.4), vector(a=0.6)],
            [vector(a=0.2), vector(a=0.8)],
        ]
        return ComparisonMatrix(rows, [0.3, 0.2, 0.4], [0.8, 0.2])

    def test_shape(self):
        assert self.make().shape == (3, 2)

    def test_indexing(self):
        matrix = self.make()
        assert matrix[1, 0].similarity("a") == pytest.approx(0.4)
        assert matrix.vector(2, 1).similarity("a") == pytest.approx(0.8)

    def test_cells_row_major(self):
        cells = list(self.make().cells())
        assert [(i, j) for i, j, _ in cells] == [
            (0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1),
        ]

    def test_conditional_weights_sum_to_one(self):
        matrix = self.make()
        total = sum(
            matrix.conditional_weight(i, j)
            for i in range(3)
            for j in range(2)
        )
        assert total == pytest.approx(1.0)

    def test_conditional_weight_value(self):
        matrix = self.make()
        # p(t1^0)/0.9 · p(t2^0)/1.0 = (0.3/0.9)·(0.8/1.0)
        assert matrix.conditional_weight(0, 0) == pytest.approx(
            (0.3 / 0.9) * 0.8
        )

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ComparisonMatrix([[vector(a=0.5)]], [0.5, 0.5], [1.0])
        with pytest.raises(ValueError):
            ComparisonMatrix([[vector(a=0.5)]], [1.0], [0.5, 0.5])


class TestAttributeMatcher:
    def test_plain_comparator_lifted(self):
        matcher = AttributeMatcher({"name": HAMMING})
        value = ProbabilisticValue({"Tim": 0.7, "Kim": 0.3})
        assert matcher.compare_values("name", "Tim", value) == pytest.approx(
            0.9
        )

    def test_uncertain_comparator_passes_through(self):
        lifted = UncertainValueComparator(HAMMING)
        matcher = AttributeMatcher({"name": lifted})
        assert matcher.comparator_for("name") is lifted

    def test_default_comparator_used_for_missing(self):
        matcher = AttributeMatcher({}, default=HAMMING)
        assert matcher.compare_values("anything", "x", "x") == 1.0

    def test_missing_comparator_raises(self):
        matcher = AttributeMatcher({"name": HAMMING})
        with pytest.raises(KeyError):
            matcher.comparator_for("job")

    def test_compare_rows(self):
        matcher = AttributeMatcher({"name": HAMMING, "job": HAMMING})
        left = ProbabilisticTuple("t1", {"name": "Tim", "job": "pilot"})
        right = ProbabilisticTuple("t2", {"name": "Tom", "job": "pilot"})
        vector_ = matcher.compare_rows(left, right)
        assert vector_.similarity("name") == pytest.approx(2 / 3)
        assert vector_.similarity("job") == 1.0

    def test_compare_xtuples_shape(self):
        matcher = AttributeMatcher({"a": HAMMING})
        left = XTuple.build("l", [({"a": "x"}, 0.5), ({"a": "y"}, 0.5)])
        right = XTuple.build("r", [({"a": "x"}, 1.0)])
        matrix = matcher.compare_xtuples(left, right)
        assert matrix.shape == (2, 1)
        assert matrix[0, 0].similarity("a") == 1.0


class TestCombinationFunctions:
    def test_weighted_sum_paper_example(self):
        phi = WeightedSum({"name": 0.8, "job": 0.2})
        assert phi(vector(name=0.9, job=0.59)) == pytest.approx(0.838)

    def test_weighted_sum_sequence_weights(self):
        phi = WeightedSum([0.5, 0.5])
        assert phi(vector(a=1.0, b=0.0)) == pytest.approx(0.5)

    def test_weighted_sum_normalized_flag(self):
        assert WeightedSum({"a": 0.8, "b": 0.2}).normalized
        assert not WeightedSum({"a": 2.0, "b": 1.0}).normalized

    def test_weighted_sum_missing_weight_raises(self):
        phi = WeightedSum({"a": 1.0})
        with pytest.raises(KeyError):
            phi(vector(b=0.5))

    def test_weighted_sum_wrong_arity_raises(self):
        phi = WeightedSum([1.0])
        with pytest.raises(ValueError):
            phi(vector(a=0.5, b=0.5))

    def test_weighted_sum_validation(self):
        with pytest.raises(ValueError):
            WeightedSum([])
        with pytest.raises(ValueError):
            WeightedSum([-1.0, 2.0])
        with pytest.raises(ValueError):
            WeightedSum([0.0, 0.0])

    def test_average(self):
        assert Average()(vector(a=0.2, b=0.8)) == pytest.approx(0.5)

    def test_minimum_maximum(self):
        v = vector(a=0.2, b=0.8)
        assert Minimum()(v) == pytest.approx(0.2)
        assert Maximum()(v) == pytest.approx(0.8)

    def test_product(self):
        assert Product()(vector(a=0.5, b=0.5)) == pytest.approx(0.25)

    def test_normalized_flags(self):
        for combiner in (Average(), Minimum(), Maximum(), Product()):
            assert combiner.normalized


class TestLogLikelihoodRatio:
    def make(self) -> LogLikelihoodRatio:
        return LogLikelihoodRatio(
            m_probabilities={"name": 0.9, "job": 0.8},
            u_probabilities={"name": 0.1, "job": 0.2},
            agreement_threshold=0.8,
        )

    def test_full_agreement_weight(self):
        weight = self.make()(vector(name=0.9, job=0.85))
        assert weight == pytest.approx(math.log2(9) + math.log2(4))

    def test_full_disagreement_weight(self):
        weight = self.make()(vector(name=0.1, job=0.1))
        assert weight == pytest.approx(
            math.log2(0.1 / 0.9) + math.log2(0.2 / 0.8)
        )

    def test_non_normalized(self):
        assert not self.make().normalized

    def test_agreement_pattern(self):
        pattern = self.make().agreement_pattern(vector(name=0.9, job=0.1))
        assert pattern == (True, False)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LogLikelihoodRatio({"a": 1.0}, {"a": 0.5})
        with pytest.raises(ValueError):
            LogLikelihoodRatio({"a": 0.5}, {"b": 0.5})
        with pytest.raises(ValueError):
            LogLikelihoodRatio(
                {"a": 0.5}, {"a": 0.5}, agreement_threshold=0.0
            )

    def test_unknown_attribute_raises(self):
        with pytest.raises(KeyError):
            self.make()(vector(other=0.5))
