"""Unit tests for JSON serialization and iterative match-merge."""

from __future__ import annotations

import pytest

from repro.experiments import (
    paper_matcher,
    paper_model,
    relation_r1,
    relation_r3,
    relation_r4,
)
from repro.matching import (
    IterativeResolver,
    XTupleDecisionProcedure,
)
from repro.pdb import (
    NULL,
    PatternValue,
    ProbabilisticValue,
    XRelation,
    XTuple,
)
from repro.pdb.io import (
    SerializationError,
    decode_value,
    dumps,
    encode_value,
    load,
    loads,
    dump,
    relation_from_dict,
    relation_to_dict,
)


class TestValueCodec:
    def test_certain_scalar(self):
        value = ProbabilisticValue.certain("Tim")
        assert encode_value(value) == "Tim"
        assert decode_value("Tim") == value

    def test_null(self):
        assert encode_value(ProbabilisticValue.missing()) is None
        assert decode_value(None).is_null

    def test_distribution_roundtrip(self):
        value = ProbabilisticValue({"Tim": 0.6, "Tom": 0.3})
        assert decode_value(encode_value(value)) == value

    def test_explicit_null_mass_roundtrip(self):
        value = ProbabilisticValue({"Tim": 0.7})  # ⊥ 0.3
        encoded = encode_value(value)
        assert encoded["null"] == pytest.approx(0.3)
        assert decode_value(encoded).null_probability == pytest.approx(0.3)

    def test_certain_pattern_roundtrip(self):
        value = ProbabilisticValue.certain(PatternValue("mu*"))
        encoded = encode_value(value)
        assert encoded == {"pattern": "mu*"}
        assert decode_value(encoded) == value

    def test_mixed_pattern_distribution_roundtrip(self):
        value = ProbabilisticValue(
            {PatternValue("mu*"): 0.4, "pilot": 0.6}
        )
        assert decode_value(encode_value(value)) == value

    def test_malformed_document_rejected(self):
        with pytest.raises(SerializationError):
            decode_value({"bogus": 1})
        with pytest.raises(SerializationError):
            decode_value({"dist": {}})
        with pytest.raises(SerializationError):
            decode_value({"outcomes": []})

    def test_exact_form_preserves_outcome_order(self):
        from repro.pdb.io import encode_value_exact

        value = ProbabilisticValue(
            {"pilot": 0.3, NULL: 0.2, PatternValue("mu*"): 0.1, "muser": 0.2}
        )
        encoded = encode_value_exact(value)
        decoded = decode_value(encoded)
        assert list(decoded.items()) == list(value.items())
        # The legacy grouped form stays available and value-equal.
        assert decode_value(encode_value(value)) == value

    def test_exact_form_keeps_sub_ulp_certain_mass(self):
        from repro.pdb.io import encode_value_exact

        almost_one = 1.0 - 2.0**-53  # within tolerance: still "certain"
        value = ProbabilisticValue({"Tim": almost_one})
        decoded = decode_value(encode_value_exact(value))
        assert decoded.probability("Tim") == almost_one
        # Exactly-1.0 certain values keep the compact scalar form.
        assert encode_value_exact(ProbabilisticValue.certain("Tim")) == "Tim"
        assert encode_value_exact(ProbabilisticValue.missing()) is None


class TestRelationCodec:
    @pytest.mark.parametrize(
        "relation_factory",
        [relation_r3, relation_r4, lambda: relation_r1().to_x_relation()],
        ids=["r3", "r4", "r1_flat"],
    )
    def test_paper_relations_roundtrip(self, relation_factory):
        relation = relation_factory()
        restored = loads(dumps(relation))
        assert restored.name == relation.name
        assert restored.schema == relation.schema
        assert restored.tuple_ids == relation.tuple_ids
        for xtuple in relation:
            restored_xtuple = restored.get(xtuple.tuple_id)
            assert restored_xtuple == xtuple

    def test_file_roundtrip(self, tmp_path):
        relation = relation_r3()
        path = str(tmp_path / "r3.json")
        dump(relation, path)
        assert load(path) == relation or load(path).tuple_ids == (
            relation.tuple_ids
        )

    def test_dict_roundtrip(self):
        relation = relation_r4()
        assert relation_from_dict(
            relation_to_dict(relation)
        ).tuple_ids == relation.tuple_ids

    def test_version_checked(self):
        document = relation_to_dict(relation_r3())
        document["format"] = 99
        with pytest.raises(SerializationError):
            relation_from_dict(document)

    def test_missing_keys_rejected(self):
        with pytest.raises(SerializationError):
            relation_from_dict({"name": "R"})

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError):
            loads("{not json")
        with pytest.raises(SerializationError):
            loads("[1, 2]")

    def test_generated_dataset_roundtrip(self):
        from repro.datagen import DatasetConfig, generate_dataset

        dataset = generate_dataset(DatasetConfig(entity_count=20, seed=3))
        restored = loads(dumps(dataset.relation))
        assert len(restored) == len(dataset.relation)
        for xtuple in dataset.relation:
            assert restored.get(xtuple.tuple_id).probability == (
                pytest.approx(xtuple.probability)
            )

    def test_dump_is_atomic_under_partial_write(self, tmp_path, monkeypatch):
        """A crash mid-dump never leaves a truncated relation on disk.

        The dump writes into a temporary sibling and renames it over the
        target; simulated here by failing the pre-rename fsync — the
        moment all content has (partially) hit the temp file but the
        target has not yet been touched.
        """
        import os as os_module

        from repro.pdb import io as pdb_io

        path = str(tmp_path / "relation.json")
        original = relation_r3()
        dump(original, path)
        before = open(path, encoding="utf-8").read()

        def crash(fd):
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(pdb_io.os, "fsync", crash)
        with pytest.raises(OSError, match="simulated crash"):
            dump(relation_r4(), path)
        monkeypatch.undo()

        # The original file is untouched and still loads.
        assert open(path, encoding="utf-8").read() == before
        assert load(path).tuple_ids == original.tuple_ids
        # The failed attempt's temporary file was cleaned up.
        assert os_module.listdir(tmp_path) == ["relation.json"]

    def test_dump_overwrites_via_rename(self, tmp_path):
        path = str(tmp_path / "relation.json")
        dump(relation_r3(), path)
        dump(relation_r4(), path)  # replace succeeds atomically
        assert load(path).tuple_ids == relation_r4().tuple_ids
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "relation.json"
        ]

    def test_dump_writes_through_symlinks(self, tmp_path):
        """Atomic dump updates a symlink's target, as plain open() did."""
        import os as os_module

        real = tmp_path / "real.json"
        dump(relation_r3(), str(real))
        link = tmp_path / "link.json"
        link.symlink_to(real)
        dump(relation_r4(), str(link))
        assert os_module.path.islink(link)  # the link survives
        assert load(str(real)).tuple_ids == relation_r4().tuple_ids

    def test_dump_preserves_file_permissions(self, tmp_path):
        """The atomic rewrite must not leave mkstemp's 0600 mode behind."""
        import os as os_module
        import stat

        path = str(tmp_path / "relation.json")
        dump(relation_r3(), path)
        mask = os_module.umask(0)
        os_module.umask(mask)
        fresh_mode = stat.S_IMODE(os_module.stat(path).st_mode)
        assert fresh_mode == 0o666 & ~mask  # umask default, not 0600
        os_module.chmod(path, 0o644)
        dump(relation_r4(), path)
        assert stat.S_IMODE(os_module.stat(path).st_mode) == 0o644


def make_resolver(**kwargs) -> IterativeResolver:
    return IterativeResolver(
        XTupleDecisionProcedure(paper_matcher(), paper_model()), **kwargs
    )


class TestIterativeResolver:
    def test_exact_duplicates_merge(self):
        relation = XRelation(
            "R",
            ["name", "job"],
            [
                XTuple.certain("a", {"name": "Tim", "job": "pilot"}),
                XTuple.certain("b", {"name": "Tim", "job": "pilot"}),
                XTuple.certain("c", {"name": "Walter", "job": "judge"}),
            ],
        )
        outcome = make_resolver().resolve(relation)
        assert len(outcome.relation) == 2
        assert outcome.merges == (("a", "b"),)
        assert outcome.merged_count == 1

    def test_transitive_chain_collapses(self):
        """a≈b and b≈c but a̸≈c directly: merging must still unify all
        three (the Swoosh argument for iterating)."""
        relation = XRelation(
            "R",
            ["name", "job"],
            [
                XTuple.certain("a", {"name": "Timothy", "job": "pilot"}),
                XTuple.certain("b", {"name": "Timothyx", "job": "pilot"}),
                XTuple.certain("c", {"name": "Timothyxx", "job": "pilot"}),
            ],
        )
        outcome = make_resolver().resolve(relation)
        assert len(outcome.relation) == 1
        assert outcome.source_of[
            outcome.relation.tuple_ids[0]
        ] == frozenset({"a", "b", "c"})

    def test_no_matches_is_identity(self):
        relation = XRelation(
            "R",
            ["name", "job"],
            [
                XTuple.certain("a", {"name": "Tim", "job": "pilot"}),
                XTuple.certain("b", {"name": "Walter", "job": "judge"}),
            ],
        )
        outcome = make_resolver().resolve(relation)
        assert set(outcome.relation.tuple_ids) == {"a", "b"}
        assert outcome.merges == ()

    def test_merged_distributions_accumulate_evidence(self):
        relation = XRelation(
            "R",
            ["name", "job"],
            [
                XTuple.build(
                    "a", [({"name": {"Tim": 0.8, "Tom": 0.2}, "job": "pilot"}, 1.0)]
                ),
                XTuple.build(
                    "b", [({"name": {"Tim": 0.6, "Jim": 0.4}, "job": "pilot"}, 1.0)]
                ),
            ],
        )
        outcome = make_resolver().resolve(relation)
        assert len(outcome.relation) == 1
        merged = outcome.relation.xtuples[0]
        name = merged.alternatives[0].value("name")
        assert name.probability("Tim") == pytest.approx(0.7)

    def test_comparison_budget_enforced(self):
        relation = XRelation(
            "R",
            ["name", "job"],
            [
                XTuple.certain(f"t{i}", {"name": f"N{i}", "job": "j"})
                for i in range(5)
            ],
        )
        with pytest.raises(RuntimeError):
            make_resolver(max_iterations=2).resolve(relation)

    def test_empty_relation(self):
        relation = XRelation("R", ["name", "job"], [])
        outcome = make_resolver().resolve(relation)
        assert len(outcome.relation) == 0
        assert outcome.comparisons == 0

    def test_sources_partition_input(self):
        from repro.datagen import DatasetConfig, generate_dataset
        from repro.experiments.quality import default_matcher

        dataset = generate_dataset(
            DatasetConfig(entity_count=15, seed=9), flat=True
        )
        # Generated jobs may carry any-prefix patterns, so the resolver
        # needs the corpus-wide matcher, not the mu*-only paper matcher.
        resolver = IterativeResolver(
            XTupleDecisionProcedure(default_matcher(), paper_model())
        )
        outcome = resolver.resolve(dataset.relation)
        absorbed = [
            tid for group in outcome.source_of.values() for tid in group
        ]
        assert sorted(absorbed) == sorted(dataset.relation.tuple_ids)
