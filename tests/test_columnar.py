"""Golden suite for the columnar mmap-backed storage backend.

Four invariant families pin the columnar path:

* **backend equivalence** — for every Section-V reducer, the full
  detect pipeline over a :class:`ColumnarXTupleStore` produces
  *bitwise* the decisions, compared-pair sets and partition labels of
  the in-memory and row-spilled runs — serial, ``n_jobs=2``, under a
  session overlay, and through the pruned ``detect_between``
  consolidation alike;
* **codec round trips** — generated x-relations (mixed certain /
  uncertain, empty columns, page-spanning strings) survive
  ``spill_columnar → iterate`` with exact outcome order, probabilities
  and per-alternative attribute order (hypothesis properties plus
  explicit edge cases);
* **projection laziness** — :meth:`project` reads only the selected
  columns' bytes: values match a full decode filtered to the
  selection, and rot in an unselected column is never noticed while a
  full scan trips its CRC;
* **zone maps and pruning** — spill-time statistics answer key-range
  questions that match the data, merge across sources, and let
  :func:`prune_disjoint_sources` drop provably disjoint sources
  without changing the cross-source plan.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import DatasetConfig, generate_dataset
from repro.experiments.quality import default_matcher, weighted_model
from repro.matching import DuplicateDetector, FullComparison
from repro.matching.executor import (
    cross_source_plan,
    plan_sources,
    prune_disjoint_sources,
    source_key_ranges,
)
from repro.pdb import NULL, PatternValue, ProbabilisticValue
from repro.pdb.errors import SegmentCorruptionError
from repro.pdb.io import open_store
from repro.pdb.relations import XRelation
from repro.pdb.storage import (
    ColumnarXTupleStore,
    MultiSourceStore,
    SessionStore,
    XTupleStore,
    project_xtuple,
    spill_columnar,
    spill_relation,
)
from repro.pdb.xtuples import TupleAlternative, XTuple
from repro.reduction import (
    AlternativeKeyBlocking,
    AlternativeSorting,
    CertainKeyBlocking,
    MultiPassBlocking,
    MultiPassSNM,
    PhoneticBlocking,
    SortedNeighborhood,
    SubstringKey,
    UncertainKeyClusteringBlocking,
    UncertainKeySNM,
    plan_candidates,
)

SORT_KEY = SubstringKey([("name", 3), ("job", 2)])
BLOCK_KEY = SubstringKey([("name", 1), ("job", 1)])


def r34() -> XRelation:
    from repro.experiments.paper_data import MU_JOBS, relation_r34

    return XRelation(
        "R34x",
        ("name", "job"),
        [
            xt.expand_patterns({"job": MU_JOBS}).expand()
            for xt in relation_r34()
        ],
    )


@pytest.fixture(scope="module")
def flat_relation():
    return generate_dataset(
        DatasetConfig(entity_count=20, seed=91), flat=True
    ).relation


@pytest.fixture(scope="module")
def x_relation():
    return generate_dataset(DatasetConfig(entity_count=12, seed=93)).relation


@pytest.fixture(scope="module")
def stores(tmp_path_factory, flat_relation, x_relation):
    """Every fixture relation spilled columnar, small segments/pages."""
    root = tmp_path_factory.mktemp("columnar-stores")
    spilled = {}
    for kind, relation in (
        ("flat", flat_relation),
        ("x", x_relation),
        ("r34", r34()),
    ):
        relation.spill(
            str(root / kind),
            layout="columnar",
            segment_size=7,
            page_size=4,
            max_pages=3,
        )
        spilled[kind] = str(root / kind)
    return spilled


#: The same ten-reducer matrix the row-backend suite pins.
REDUCERS = {
    "full": (lambda: FullComparison(), "flat"),
    "certain_blocking": (lambda: CertainKeyBlocking(BLOCK_KEY), "x"),
    "alternative_blocking": (
        lambda: AlternativeKeyBlocking(BLOCK_KEY),
        "x",
    ),
    "snm": (lambda: SortedNeighborhood(SORT_KEY, window=5), "flat"),
    "alternative_sorting": (
        lambda: AlternativeSorting(SORT_KEY, window=4),
        "x",
    ),
    "uncertain_snm": (lambda: UncertainKeySNM(SORT_KEY, window=4), "x"),
    "uncertain_clustering": (
        lambda: UncertainKeyClusteringBlocking(BLOCK_KEY, radius=0.4),
        "x",
    ),
    "phonetic_blocking": (lambda: PhoneticBlocking(), "x"),
    "multipass_snm": (
        lambda: MultiPassSNM(
            SORT_KEY, window=3, selection="diverse", world_count=2
        ),
        "r34",
    ),
    "multipass_blocking": (
        lambda: MultiPassBlocking(
            BLOCK_KEY, selection="diverse", world_count=2
        ),
        "r34",
    ),
}


def _relation_for(kind, flat_relation, x_relation):
    if kind == "flat":
        return flat_relation
    if kind == "x":
        return x_relation
    return r34()


def _detector(factory):
    return DuplicateDetector(
        default_matcher(), weighted_model(), reducer=factory()
    )


def _triples(result):
    return [
        (d.left_id, d.right_id, d.status, d.similarity)
        for d in result.decisions
    ]


def _exact_value_items(relation):
    return {
        xtuple.tuple_id: [
            (
                alternative.probability,
                {
                    attribute: list(alternative.value(attribute).items())
                    for attribute in alternative.attributes
                },
            )
            for alternative in xtuple.alternatives
        ]
        for xtuple in relation
    }


# ----------------------------------------------------------------------
# Golden equivalence: columnar vs in-memory/row, all reducers, all modes
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(REDUCERS))
def test_columnar_detection_is_bitwise_row(
    name, flat_relation, x_relation, stores
):
    """The acceptance pin: serial + n_jobs=2, every reducer, bitwise."""
    factory, kind = REDUCERS[name]
    relation = _relation_for(kind, flat_relation, x_relation)
    store = open_store(stores[kind], page_size=4, max_pages=3)
    assert isinstance(store, ColumnarXTupleStore)

    reference = _detector(factory).detect(relation)
    serial = _detector(factory).detect(store)
    parallel = _detector(factory).detect(store, n_jobs=2, chunk_size=7)

    assert _triples(serial) == _triples(reference)
    assert _triples(parallel) == _triples(reference)
    assert serial.compared_pairs == reference.compared_pairs
    assert parallel.compared_pairs == reference.compared_pairs
    assert serial.relation_size == reference.relation_size

    plan = plan_candidates(factory(), relation)
    store_plan = plan_candidates(factory(), store)
    assert [p.label for p in store_plan] == [p.label for p in plan]
    assert list(store_plan.pairs()) == list(plan.pairs())


def test_columnar_store_satisfies_the_protocol(x_relation, stores):
    store = open_store(stores["x"])
    assert isinstance(store, XTupleStore)
    assert store.name == x_relation.name
    assert store.schema == x_relation.schema
    assert store.tuple_ids == x_relation.tuple_ids
    assert len(store) == len(x_relation)
    assert list(store) == list(x_relation)
    some_id = x_relation.tuple_ids[0]
    assert some_id in store and "no-such-id" not in store
    assert store.fetch(x_relation.tuple_ids) == x_relation.fetch(
        x_relation.tuple_ids
    )
    with pytest.raises(KeyError):
        store.get("no-such-id")


def test_session_overlay_over_columnar_is_bitwise(x_relation, stores):
    """Session-ingest mode: a columnar base plus appended tuples decides
    exactly like the equivalent in-memory relation."""
    base = open_store(stores["x"], page_size=4, max_pages=3)
    session = SessionStore(base)
    added = [
        XTuple.certain(f"new-{i}", {"name": name, "job": job})
        for i, (name, job) in enumerate(
            [("amelia", "baker"), ("amelio", "baker"), ("zeno", "clerk")]
        )
    ]
    for xtuple in added:
        session.upsert(xtuple)
    union = XRelation(
        x_relation.name,
        x_relation.schema,
        list(x_relation) + added,
    )
    factory = lambda: CertainKeyBlocking(BLOCK_KEY)  # noqa: E731
    reference = _detector(factory).detect(union)
    overlay = _detector(factory).detect(session)
    assert _triples(overlay) == _triples(reference)
    assert overlay.compared_pairs == reference.compared_pairs


def _named(name, rows):
    return XRelation(
        name,
        ("name", "job"),
        [
            XTuple.certain(f"{name}-{i}", {"name": n, "job": j})
            for i, (n, j) in enumerate(rows)
        ],
    )


@pytest.fixture()
def consolidation_sources(tmp_path):
    """Three columnar sources: A/B share the a–c key range, C is z-only."""
    relations = {
        "A": _named(
            "A", [("anna", "baker"), ("bob", "clerk"), ("carl", "smith")]
        ),
        "B": _named(
            "B", [("anne", "baker"), ("bert", "clerk"), ("carla", "smith")]
        ),
        "C": _named("C", [("zeno", "baker"), ("zoe", "clerk")]),
    }
    stores = {
        name: spill_columnar(relation, str(tmp_path / name), segment_size=2)
        for name, relation in relations.items()
    }
    return relations, stores


def test_pruned_detect_between_is_bitwise(consolidation_sources):
    """Cross-source detection over columnar sources — where zone maps
    prune the disjoint source before planning — equals the in-memory
    run pair for pair."""
    relations, stores = consolidation_sources
    factory = lambda: CertainKeyBlocking(BLOCK_KEY)  # noqa: E731
    reference = _detector(factory).detect_between(
        relations["A"], relations["B"], relations["C"],
        within_sources=False,
    )
    pruned = _detector(factory).detect_between(
        stores["A"], stores["B"], stores["C"], within_sources=False
    )
    assert _triples(pruned) == _triples(reference)
    assert pruned.compared_pairs == reference.compared_pairs


def test_prune_disjoint_sources_drops_only_provably_disjoint(
    consolidation_sources,
):
    relations, stores = consolidation_sources
    view = MultiSourceStore([stores["A"], stores["B"], stores["C"]])
    reducer = CertainKeyBlocking(BLOCK_KEY)
    ranges = source_key_ranges(view, reducer.prune_key)
    assert ranges[0] is not None and ranges[2] is not None
    survivor, pruned = prune_disjoint_sources(view, reducer)
    assert pruned == ("C",)
    assert survivor.source_names == ("A", "B")
    # The pruned view's cross plan is the full view's, partition for
    # partition: C could only have formed single-source blocks.
    full = cross_source_plan(plan_sources(reducer, view), view)
    small = cross_source_plan(plan_sources(reducer, survivor), survivor)
    assert [p.label for p in small.partitions] == [
        p.label for p in full.partitions
    ]
    assert list(small.pairs()) == list(full.pairs())


def test_prune_keeps_everything_without_statistics(tmp_path):
    """A row-spilled source reports no statistics — unbounded — so even
    actually-disjoint data licenses no prune next to it."""
    row_store = spill_relation(
        _named("A", [("anna", "baker")]), str(tmp_path / "a-rows")
    )
    columnar = spill_columnar(
        _named("C", [("zoe", "clerk")]), str(tmp_path / "c-col")
    )
    view = MultiSourceStore([row_store, columnar], name="mixed")
    reducer = CertainKeyBlocking(BLOCK_KEY)
    ranges = source_key_ranges(view, reducer.prune_key)
    assert ranges[0] is None and ranges[1] is not None
    survivor, pruned = prune_disjoint_sources(view, reducer)
    assert survivor is view and pruned == ()


# ----------------------------------------------------------------------
# Codec round trips
# ----------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    entity_count=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
    alternatives=st.integers(min_value=1, max_value=3),
    flat=st.booleans(),
    segment_size=st.integers(min_value=1, max_value=7),
    page_size=st.integers(min_value=1, max_value=5),
)
def test_generated_relations_survive_columnar_roundtrip(
    tmp_path_factory,
    entity_count,
    seed,
    alternatives,
    flat,
    segment_size,
    page_size,
):
    """Property: spill_columnar → iterate is the identity, exactly —
    structurally and bitwise (outcome order, float probabilities)."""
    relation = generate_dataset(
        DatasetConfig(
            entity_count=entity_count,
            seed=seed,
            alternatives_per_xtuple=alternatives,
        ),
        flat=flat,
    ).relation
    target = str(
        tmp_path_factory.mktemp("columnar-roundtrip")
        / f"s{seed}-{entity_count}"
    )
    store = spill_columnar(
        relation,
        target,
        segment_size=segment_size,
        page_size=page_size,
        max_pages=2,
    )
    assert list(store) == list(relation)
    assert store.tuple_ids == relation.tuple_ids
    assert _exact_value_items(store) == _exact_value_items(relation)
    for tuple_id in relation.tuple_ids:
        assert store.get(tuple_id) == relation.get(tuple_id)
    assert store.materialize().xtuples == relation.xtuples


def test_empty_relation_roundtrip(tmp_path):
    empty = XRelation("E", ("name", "job"))
    store = empty.spill(str(tmp_path / "empty"), layout="columnar")
    assert len(store) == 0
    assert list(store) == []
    assert store.tuple_ids == ()
    assert store.fetch([]) == {}
    assert sorted(os.listdir(tmp_path / "empty")) == ["manifest.json"]


def test_empty_columns_roundtrip(tmp_path):
    """An attribute no alternative carries still gets a column file —
    all-empty lines — and absent values stay absent after the trip.

    XRelation pins tuple attribute sets to the schema, so the sparse
    shape rides in through a duck-typed relation, like the stores the
    spillers accept.
    """
    from repro.pdb.relations import Schema

    xtuples = [
        XTuple(
            "t1",
            [
                TupleAlternative({"name": "Tim"}, 0.6),
                TupleAlternative({"job": "baker"}, 0.4),
            ],
        ),
        XTuple("t2", [TupleAlternative({}, 1.0)]),
    ]

    class Sparse:
        name = "N"
        schema = Schema(("name", "job", "note"))

        def __iter__(self):
            return iter(xtuples)

    relation = Sparse()
    store = spill_columnar(relation, str(tmp_path / "sparse"))
    assert list(store) == xtuples
    assert _exact_value_items(store) == _exact_value_items(relation)
    decoded = store.get("t1")
    assert decoded.alternatives[0].attributes == ("name",)
    assert decoded.alternatives[1].attributes == ("job",)
    assert store.get("t2").alternatives[0].attributes == ()
    # The never-carried column exists and summarizes to an empty zone.
    assert store.statistics().attributes["note"].value_count == 0


def test_page_spanning_strings_roundtrip(tmp_path):
    """Values far larger than an OS page slice cleanly out of the mmap."""
    big = "x" * 20_000 + "end"
    relation = XRelation(
        "L",
        ("name", "job"),
        [
            XTuple.certain("t1", {"name": big, "job": "baker"}),
            XTuple.certain("t2", {"name": "tiny", "job": big[::-1]}),
        ],
    )
    store = spill_columnar(
        relation, str(tmp_path / "big"), segment_size=1, page_size=1
    )
    assert list(store) == list(relation)
    first = store.get("t1").alternatives[0]
    assert list(first.value("name").items()) == [(big, 1.0)]


def test_mixed_order_distribution_roundtrip_is_exact(tmp_path):
    """⊥ and pattern outcomes interleaved with plain ones keep their
    positions, exactly like the row codec."""
    value = ProbabilisticValue(
        {"alpha": 0.3, NULL: 0.2, PatternValue("mu*"): 0.1, "beta": 0.15}
    )
    relation = XRelation(
        "O",
        ("name", "job"),
        [
            XTuple(
                "t1",
                [TupleAlternative({"name": "Tim", "job": value}, 0.8)],
            )
        ],
    )
    store = spill_columnar(relation, str(tmp_path / "ordered"))
    decoded = store.get("t1").alternatives[0].value("job")
    assert list(decoded.items()) == list(value.items())
    assert decoded.null_probability == value.null_probability


def test_columnar_layout_roundtrips_through_open_store(
    tmp_path, x_relation
):
    """open_store dispatches on the manifest's layout marker."""
    target = str(tmp_path / "dispatch")
    spill_relation(x_relation, target, layout="columnar")
    store = open_store(target, page_size=4, max_pages=2)
    assert isinstance(store, ColumnarXTupleStore)
    assert list(store) == list(x_relation)


# ----------------------------------------------------------------------
# Projection reads only what it needs
# ----------------------------------------------------------------------


def test_projection_matches_filtered_full_decode(x_relation, stores):
    store = open_store(stores["x"])
    view = store.project(["name"])
    assert view.attributes == ("name",)
    assert view.tuple_ids == store.tuple_ids
    expected = [project_xtuple(xt, ("name",)) for xt in x_relation]
    assert list(view) == expected


def test_projection_rejects_unknown_attributes(stores):
    store = open_store(stores["x"])
    with pytest.raises(KeyError, match="not in the schema"):
        store.project(["name", "salary"])


def test_projection_never_reads_unselected_columns(tmp_path, x_relation):
    """Rot in an unselected column goes unnoticed by the projection —
    proof its bytes were never sliced — while a full scan trips the CRC."""
    target = tmp_path / "lazy"
    spill_columnar(x_relation, str(target), segment_size=5)
    victim = sorted(target.glob("seg-*.col01.jsonl"))[0]  # the job column
    victim.write_bytes(b'["corrupt"]\n' * 5)
    store = ColumnarXTupleStore(str(target))
    names = [xt.alternatives[0].value("name") for xt in store.project(["name"])]
    assert len(names) == len(x_relation)
    with pytest.raises(SegmentCorruptionError, match="integrity"):
        list(store)


# ----------------------------------------------------------------------
# Zone maps, statistics, integrity
# ----------------------------------------------------------------------


def test_spill_time_statistics_match_streamed(x_relation, stores):
    """The manifest's zone maps equal a fresh streaming pass, exactly."""
    from repro.pdb.storage import relation_statistics

    store = open_store(stores["x"])
    stored = store.statistics()
    streamed = relation_statistics(x_relation)
    assert stored.count == streamed.count == len(x_relation)
    assert stored.alternative_count == streamed.alternative_count
    for attribute in x_relation.schema.attributes:
        assert stored.attributes[attribute] == streamed.attributes[attribute]
        assert stored.key_range(attribute, 1) == streamed.key_range(
            attribute, 1
        )
        assert dict(stored.histograms[attribute]) == dict(
            streamed.histograms[attribute]
        )
    assert stored.key_range("salary", 1) is None


def test_multi_source_statistics_merge(consolidation_sources):
    relations, stores = consolidation_sources
    view = MultiSourceStore([stores["A"], stores["C"]])
    merged = view.statistics()
    assert merged is not None
    assert merged.count == len(relations["A"]) + len(relations["C"])
    lo, hi = merged.key_range("name", 1)
    assert (lo, hi) == ("a", "z")


def test_segment_zone_maps_are_per_segment(tmp_path):
    relation = _named(
        "Z", [("anna", "baker"), ("bob", "clerk"), ("zoe", "smith")]
    )
    store = spill_columnar(relation, str(tmp_path / "zones"), segment_size=2)
    first, second = store.segment_zones(0), store.segment_zones(1)
    assert first["name"]["min"].startswith("a")
    assert second["name"]["min"].startswith("z")


def test_verify_reports_per_file_and_quarantine_isolates_family(
    tmp_path, x_relation
):
    target = tmp_path / "audit"
    store = spill_columnar(x_relation, str(target), segment_size=5)
    victim = sorted(target.glob("seg-00001.col00.jsonl"))[0]
    victim.write_bytes(b'["rot"]\n')
    store.close()
    report = store.verify()
    corrupt = [entry for entry in report.corrupt]
    assert [entry.file for entry in corrupt] == [victim.name]
    assert all(
        entry.status == "ok"
        for entry in report.segments
        if entry.file != victim.name
    )
    dropped = store.quarantine(victim.name)
    assert dropped.tuple_ids == x_relation.tuple_ids[5:10]
    assert len(store) == len(x_relation) - len(dropped.tuple_ids)
    survivors = [tid for tid in x_relation.tuple_ids if tid not in dropped.tuple_ids]
    for tuple_id in survivors:
        assert store.get(tuple_id) == x_relation.get(tuple_id)
    # The whole family moved: structure file and every column.
    quarantined = sorted(os.listdir(target / "quarantine"))
    assert victim.name in quarantined
    assert any(name.endswith(".tuples.jsonl") for name in quarantined)
