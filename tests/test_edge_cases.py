"""Edge-case and failure-injection tests across modules."""

from __future__ import annotations

import pytest

from repro.experiments import paper_matcher
from repro.fusion import build_uncertain_resolution
from repro.matching import (
    AttributeMatcher,
    CombinedDecisionModel,
    DuplicateDetector,
    MatchStatus,
    ThresholdClassifier,
    WeightedSum,
)
from repro.pdb import (
    NULL,
    ProbabilisticValue,
    XRelation,
    XTuple,
)
from repro.similarity import HAMMING


def detector(t_mu: float, t_lambda: float) -> DuplicateDetector:
    matcher = AttributeMatcher({"name": HAMMING, "job": HAMMING})
    model = CombinedDecisionModel(
        WeightedSum({"name": 0.5, "job": 0.5}),
        ThresholdClassifier(t_mu, t_lambda),
    )
    return DuplicateDetector(matcher, model)


class TestUncertainResolutionEdgeCases:
    def test_possible_pair_touching_definite_cluster_is_skipped(self):
        """A possible match whose endpoint already merged definitively
        must not create a hypothesis — the definite merge wins."""
        relation = XRelation(
            "R",
            ["name", "job"],
            [
                XTuple.certain("a1", {"name": "Timothy", "job": "pilot"}),
                XTuple.certain("a2", {"name": "Timothy", "job": "pilot"}),
                # Close to a1/a2 but only possibly: same name, odd job.
                XTuple.certain("a3", {"name": "Timothy", "job": "zilot"}),
            ],
        )
        classifier = ThresholdClassifier(0.95, 0.5)
        model = CombinedDecisionModel(
            WeightedSum({"name": 0.5, "job": 0.5}), classifier
        )
        matcher = AttributeMatcher({"name": HAMMING, "job": HAMMING})
        result = DuplicateDetector(matcher, model).detect(relation)
        assert ("a1", "a2") in result.matches
        statuses = {
            (d.left_id, d.right_id): d.status for d in result.decisions
        }
        assert statuses[("a1", "a3")] is MatchStatus.POSSIBLE
        resolution = build_uncertain_resolution(
            relation, result, classifier
        )
        # a3 touches the definite {a1, a2} cluster, so no hypothesis.
        assert resolution.hypotheses == {}
        ids = {t.xtuple.tuple_id for t in resolution.tuples}
        assert ids == {"a1+a2", "a3"}

    def test_no_possible_matches_means_no_decisions_relation(self):
        relation = XRelation(
            "R",
            ["name", "job"],
            [
                XTuple.certain("x", {"name": "Tim", "job": "pilot"}),
                XTuple.certain("y", {"name": "Walter", "job": "judge"}),
            ],
        )
        classifier = ThresholdClassifier(0.9, 0.1)
        model = CombinedDecisionModel(
            WeightedSum({"name": 0.5, "job": 0.5}), classifier
        )
        matcher = AttributeMatcher({"name": HAMMING, "job": HAMMING})
        result = DuplicateDetector(matcher, model).detect(relation)
        resolution = build_uncertain_resolution(
            relation, result, classifier
        )
        assert len(resolution.decisions) == 0
        assert resolution.expected_tuple_count() == pytest.approx(2.0)


class TestClusteringWithPossible:
    def test_include_possible_merges_more(self):
        relation = XRelation(
            "R",
            ["name", "job"],
            [
                XTuple.certain("a", {"name": "Timothy", "job": "pilot"}),
                XTuple.certain("b", {"name": "Timothy", "job": "zilot"}),
            ],
        )
        result = detector(0.95, 0.5).detect(relation)
        strict = result.clusters()
        loose = result.clusters(include_possible=True)
        assert strict.clusters == ()
        assert loose.clusters == (("a", "b"),)


class TestValuesWithExoticDomains:
    def test_numeric_domain_values(self):
        value = ProbabilisticValue({1: 0.5, 2: 0.5})
        assert value.probability(1) == pytest.approx(0.5)

    def test_tuple_domain_values_hashable(self):
        value = ProbabilisticValue({("a", 1): 1.0})
        assert value.certain_value == ("a", 1)

    def test_unicode_values(self):
        value = ProbabilisticValue({"Müller": 0.6, "Muller": 0.4})
        mapped = value.map(lambda s: s.replace("ü", "u"))
        assert mapped.is_certain


class TestMatcherWithMixedSchemas:
    def test_left_schema_drives_comparison(self):
        """compare_rows reads the left row's attributes; both rows must
        share them (union-of-sources guarantees this in the pipeline)."""
        matcher = AttributeMatcher({"name": HAMMING}, default=HAMMING)
        left = XTuple.certain("l", {"name": "Tim"}).alternatives[0]
        right = XTuple.certain("r", {"name": "Tom"}).alternatives[0]
        vector = matcher.compare_rows(left, right)
        assert vector.attributes == ("name",)


class TestPatternInteractionWithNull:
    def test_pattern_and_null_coexist(self):
        from repro.pdb import PatternValue
        from repro.similarity import PatternPolicy, UncertainValueComparator

        value = ProbabilisticValue({PatternValue("mu*"): 0.5})  # ⊥ 0.5
        comparator = UncertainValueComparator(
            HAMMING,
            pattern_policy=PatternPolicy.EXPAND,
            pattern_lexicon=["musician"],
        )
        # vs certain musician: 0.5·1 (expanded pattern) + 0.5·0 (⊥ vs val)
        assert comparator(value, "musician") == pytest.approx(0.5)
        # vs ⊥: 0.5·0 + 0.5·1 (⊥=⊥)
        assert comparator(value, None) == pytest.approx(0.5)


class TestDetectorReducerContracts:
    def test_reducer_yielding_unknown_id_raises_keyerror(self):
        class BadReducer:
            def pairs(self, relation):
                yield "ghost", relation.tuple_ids[0]

        relation = XRelation(
            "R",
            ["name", "job"],
            [XTuple.certain("x", {"name": "Tim", "job": "p"})],
        )
        matcher = AttributeMatcher({"name": HAMMING, "job": HAMMING})
        model = CombinedDecisionModel(
            WeightedSum({"name": 0.5, "job": 0.5}),
            ThresholdClassifier(0.9, 0.5),
        )
        bad = DuplicateDetector(matcher, model, reducer=BadReducer())
        with pytest.raises(KeyError):
            bad.detect(relation)

    def test_empty_relation_detection(self):
        relation = XRelation("R", ["name", "job"], [])
        result = detector(0.9, 0.5).detect(relation)
        assert result.compared_pairs == frozenset()
        assert result.relation_size == 0


class TestPaperMatcherPatternLexicon:
    def test_mu_pattern_expands_against_fixture_lexicon(self):
        from repro.experiments import relation_r3, relation_r4

        matcher = paper_matcher()
        t31_alt2 = relation_r3().get("t31").alternatives[1]
        t41_alt2 = relation_r4().get("t41").alternatives[1]
        similarity = matcher.compare_values(
            "job", t31_alt2.value("job"), t41_alt2.value("job")
        )
        assert 0.0 <= similarity <= 1.0
