"""Unit tests for the experiment harness itself (tables, runner, studies)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    render_mapping_table,
    render_table,
    run_e1_decision_models,
    run_e2_derivations,
    run_e3_reduction,
    run_e3_window_sweep,
    run_e6_fusion_quality,
    strategy_table,
)
from repro.experiments.runner import SECTIONS, main


class TestRenderTable:
    def test_basic_alignment(self):
        table = render_table(
            ["name", "value"], [["alpha", 1.0], ["b", 22.5]]
        )
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("name")

    def test_title_prepended(self):
        table = render_table(["a"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_float_precision(self):
        table = render_table(["x"], [[1 / 3]], precision=3)
        assert "0.333" in table

    def test_special_floats(self):
        table = render_table(
            ["x"], [[float("inf")], [float("nan")], [float("-inf")]]
        )
        assert "inf" in table and "nan" in table and "-inf" in table

    def test_booleans_rendered_as_words(self):
        table = render_table(["flag"], [[True], [False]])
        assert "yes" in table and "no" in table

    def test_empty_rows(self):
        table = render_table(["a", "b"], [])
        assert "a" in table

    def test_mapping_table_infers_columns(self):
        table = render_mapping_table([{"x": 1, "y": 2}])
        assert table.splitlines()[0].split() == ["x", "y"]

    def test_mapping_table_explicit_columns(self):
        table = render_mapping_table(
            [{"x": 1, "y": 2}], columns=["y"]
        )
        assert "x" not in table.splitlines()[0]

    def test_mapping_table_empty(self):
        assert render_mapping_table([], title="t") == "t"


class TestRunner:
    def test_sections_registered(self):
        assert set(SECTIONS) == {"figures", "e1", "e2", "e3", "e6"}

    def test_unknown_section_rejected(self):
        assert main(["nope"]) == 2

    def test_figures_section_runs(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "0.72" in out

    def test_section_callables_return_text(self):
        text = SECTIONS["figures"]()
        assert "§IV-A" in text
        assert "Figure 14" in text


class TestStudies:
    """Smoke the Tier-B studies at small scale (shapes, not timings)."""

    def test_e1_row_grid(self):
        rows = run_e1_decision_models(entity_count=25, seed=1)
        assert len(rows) == 9
        assert {row.experiment for row in rows} == {"E1"}
        for row in rows:
            metrics = row.as_dict()
            assert 0.0 <= metrics["precision"] <= 1.0
            assert 0.0 <= metrics["recall"] <= 1.0

    def test_e2_row_grid(self):
        rows = run_e2_derivations(entity_count=20, seed=2)
        assert len(rows) == 15
        assert {row.profile for row in rows} == {
            "light",
            "default",
            "heavy",
        }

    def test_e3_contains_all_strategies(self):
        rows = run_e3_reduction(entity_count=30, seed=3)
        names = {row.strategy for row in rows}
        assert names == set(strategy_table())

    def test_e3_metrics_bounded(self):
        for row in run_e3_reduction(entity_count=30, seed=3):
            assert 0.0 <= row.reduction_ratio <= 1.0
            assert 0.0 <= row.pairs_completeness <= 1.0
            assert row.candidate_pairs <= row.total_pairs

    def test_e3_window_sweep_shape(self):
        rows = run_e3_window_sweep(
            entity_count=30, seed=3, windows=(2, 4)
        )
        assert len(rows) == 6  # 2 windows × 3 strategies
        assert {row["window"] for row in rows} == {2, 4}

    def test_e6_rows(self):
        rows = run_e6_fusion_quality(entity_count=40, seed=4)
        names = {row.strategy for row in rows}
        assert "mixture" in names
        for row in rows:
            assert 0.0 <= row.source_mass <= 1.0
            assert 0.0 <= row.fused_mass <= 1.0
            assert row.clusters > 0
