"""Property-based tests for the extension subsystems.

Invariants covered:

* JSON serialization round-trips arbitrary x-relations exactly;
* mixture fusion preserves total probability mass and is a convex
  combination (fused outcome mass never exceeds the max source mass);
* fused membership under the ANY rule dominates MAX dominates MEAN;
* lineage probabilities agree with brute-force world enumeration;
* derived-key distributions are proper distributions;
* threshold-sweep points are consistent confusion matrices.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.fusion import (
    MembershipRule,
    fuse_cluster,
    fused_membership,
    mediate_mixture,
)
from repro.pdb import (
    Lineage,
    LineageAtom,
    ProbabilisticValue,
    XRelation,
    XTuple,
    enumerate_worlds,
    world_count,
)
from repro.pdb.io import dumps, loads
from repro.reduction import DerivedKey, soundex_transform
from repro.reduction.derived_keys import derived_xtuple_key_distribution
from repro.verification import threshold_sweep

nonempty_text = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=8,
)


@st.composite
def values(draw, max_outcomes=4):
    outcomes = draw(
        st.lists(nonempty_text, min_size=1, max_size=max_outcomes, unique=True)
    )
    raw = [draw(st.floats(min_value=0.01, max_value=1.0)) for _ in outcomes]
    scale = draw(st.floats(min_value=0.3, max_value=1.0)) / sum(raw)
    return ProbabilisticValue(
        {o: w * scale for o, w in zip(outcomes, raw)}
    )


@st.composite
def xtuples(draw, tuple_id="t", min_alts=1, max_alts=3):
    count = draw(st.integers(min_alts, max_alts))
    raw = [draw(st.floats(min_value=0.05, max_value=1.0)) for _ in range(count)]
    scale = draw(st.floats(min_value=0.4, max_value=1.0)) / sum(raw)
    rows = []
    for weight in raw:
        rows.append(
            (
                {
                    "name": draw(values(max_outcomes=2)),
                    "job": draw(st.one_of(st.none(), nonempty_text)),
                },
                weight * scale,
            )
        )
    return XTuple.build(tuple_id, rows)


@st.composite
def xrelations(draw, max_tuples=4):
    count = draw(st.integers(1, max_tuples))
    tuples = [
        XTuple(f"t{i}", draw(xtuples()).alternatives) for i in range(count)
    ]
    return XRelation("R", ("name", "job"), tuples)


class TestSerializationRoundTrip:
    @given(xrelations())
    @settings(max_examples=50)
    def test_roundtrip_preserves_everything(self, relation):
        restored = loads(dumps(relation))
        assert restored.name == relation.name
        assert restored.schema == relation.schema
        assert restored.tuple_ids == relation.tuple_ids
        for xtuple in relation:
            assert restored.get(xtuple.tuple_id) == xtuple


class TestFusionInvariants:
    @given(st.lists(values(), min_size=1, max_size=4))
    def test_mixture_is_a_distribution(self, inputs):
        fused = mediate_mixture([(v, 1.0) for v in inputs])
        assert abs(sum(p for _, p in fused.items()) - 1.0) < 1e-9

    @given(st.lists(values(), min_size=2, max_size=4))
    def test_mixture_is_convex(self, inputs):
        """No outcome can exceed its maximal source probability."""
        fused = mediate_mixture([(v, 1.0) for v in inputs])
        for outcome, probability in fused.items():
            sources = [v.probability(outcome) for v in inputs]
            assert probability <= max(sources) + 1e-9
            assert probability >= min(sources) - 1e-9

    @given(st.lists(xtuples(), min_size=1, max_size=3))
    @settings(max_examples=40)
    def test_membership_rule_ordering(self, tuples):
        tuples = [
            XTuple(f"t{i}", xt.alternatives) for i, xt in enumerate(tuples)
        ]
        any_rule = fused_membership(tuples, MembershipRule.ANY)
        max_rule = fused_membership(tuples, MembershipRule.MAX)
        mean_rule = fused_membership(tuples, MembershipRule.MEAN)
        assert any_rule >= max_rule - 1e-9
        assert max_rule >= mean_rule - 1e-9
        assert 0.0 < any_rule <= 1.0 + 1e-9

    @given(st.lists(xtuples(), min_size=1, max_size=3))
    @settings(max_examples=40)
    def test_fused_cluster_is_valid_xtuple(self, tuples):
        tuples = [
            XTuple(f"t{i}", xt.alternatives) for i, xt in enumerate(tuples)
        ]
        fused = fuse_cluster(tuples)
        assert len(fused) == 1
        assert 0.0 < fused.probability <= 1.0 + 1e-9
        for attribute in ("name", "job"):
            value = fused.alternatives[0].value(attribute)
            assert abs(sum(p for _, p in value.items()) - 1.0) < 1e-9


class TestLineageConsistency:
    @given(st.lists(xtuples(), min_size=1, max_size=3), st.data())
    @settings(max_examples=40)
    def test_lineage_probability_equals_world_mass(self, tuples, data):
        """P(lineage) computed by factorization must equal the summed
        probability of all worlds where the lineage holds."""
        tuples = [
            XTuple(f"t{i}", xt.alternatives) for i, xt in enumerate(tuples)
        ]
        assume(world_count(tuples) <= 200)
        sources = {xt.tuple_id: xt for xt in tuples}

        atoms = []
        for xt in tuples:
            if data.draw(st.booleans()):
                index = data.draw(
                    st.one_of(
                        st.none(),
                        st.integers(0, len(xt.alternatives) - 1),
                    )
                )
                if index is None and xt.absence_probability <= 0.0:
                    continue
                atoms.append(LineageAtom(xt.tuple_id, index))
        lineage = Lineage(atoms)

        factorized = lineage.probability(sources)
        enumerated = sum(
            world.probability
            for world in enumerate_worlds(tuples)
            if lineage.holds_in(world)
        )
        assert abs(factorized - enumerated) < 1e-9


class TestDerivedKeyInvariants:
    @given(xtuples())
    @settings(max_examples=50)
    def test_conditioned_distribution_sums_to_one(self, xtuple):
        key = DerivedKey([("name", soundex_transform)])
        distribution = derived_xtuple_key_distribution(xtuple, key)
        assert abs(sum(p for _, p in distribution) - 1.0) < 1e-9

    @given(xtuples())
    @settings(max_examples=50)
    def test_unconditioned_mass_equals_membership(self, xtuple):
        key = DerivedKey([("name", soundex_transform)])
        distribution = derived_xtuple_key_distribution(
            xtuple, key, conditioned=False
        )
        assert abs(
            sum(p for _, p in distribution) - xtuple.probability
        ) < 1e-9


class TestSweepInvariants:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0),
                st.booleans(),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_sweep_points_are_consistent(self, samples):
        total = len(samples)
        total_true = sum(1 for _, label in samples if label)
        for point in threshold_sweep(samples):
            declared = point.true_positives + point.false_positives
            assert 0 <= declared <= total
            assert (
                point.true_positives + point.false_negatives == total_true
            )
            assert 0.0 <= point.precision <= 1.0
            assert 0.0 <= point.recall <= 1.0
