"""Unit tests for blocking strategies and world selection."""

from __future__ import annotations

import pytest

from repro.pdb import PossibleWorld, XRelation, XTuple, enumerate_full_worlds
from repro.reduction import (
    AlternativeKeyBlocking,
    CertainKeyBlocking,
    MultiPassBlocking,
    SubstringKey,
    UncertainKeyClusteringBlocking,
    average_pairwise_overlap,
    expected_key_distance,
    pairs_from_blocks,
    select_diverse_worlds,
    select_probable_worlds,
)

BLOCK_KEY = SubstringKey([("name", 1), ("job", 1)])


def r34() -> XRelation:
    from repro.experiments.paper_data import MU_JOBS, relation_r34

    return XRelation(
        "R34x",
        ("name", "job"),
        [
            xt.expand_patterns({"job": MU_JOBS}).expand()
            for xt in relation_r34()
        ],
    )


class TestPairsFromBlocks:
    def test_within_block_pairs(self):
        blocks = {"A": ["x", "y", "z"]}
        assert set(pairs_from_blocks(blocks)) == {
            ("x", "y"),
            ("x", "z"),
            ("y", "z"),
        }

    def test_cross_block_repeats_suppressed(self):
        blocks = {"A": ["x", "y"], "B": ["y", "x"]}
        assert list(pairs_from_blocks(blocks)) == [("x", "y")]

    def test_singleton_blocks_produce_nothing(self):
        assert list(pairs_from_blocks({"A": ["x"]})) == []


class TestCertainKeyBlocking:
    def test_blocks_by_most_probable_key(self):
        blocking = CertainKeyBlocking(BLOCK_KEY)
        blocks = blocking.blocks(r34())
        # Most probable worlds: t31→Jp, t32→Jb, t41→Jp, t42→Tm, t43→Sp
        assert set(blocks["Jp"]) == {"t31", "t41"}
        assert blocks["Jb"] == ["t32"]

    def test_pairs_only_within_blocks(self):
        blocking = CertainKeyBlocking(BLOCK_KEY)
        assert list(blocking.pairs(r34())) == [("t31", "t41")]


class TestAlternativeKeyBlocking:
    def test_tuples_in_multiple_blocks(self):
        blocking = AlternativeKeyBlocking(BLOCK_KEY)
        blocks = blocking.blocks(r34())
        memberships = [
            key for key, members in blocks.items() if "t32" in members
        ]
        assert len(memberships) >= 2  # Tm, Jm, Jb

    def test_in_block_dedup(self):
        blocking = AlternativeKeyBlocking(BLOCK_KEY)
        for members in blocking.blocks(r34()).values():
            assert len(members) == len(set(members))

    def test_superset_of_certain_key_blocking(self):
        relation = r34()
        certain_pairs = set(CertainKeyBlocking(BLOCK_KEY).pairs(relation))
        alternative_pairs = set(
            AlternativeKeyBlocking(BLOCK_KEY).pairs(relation)
        )
        assert certain_pairs <= alternative_pairs


class TestMultiPassBlocking:
    def test_selection_validated(self):
        with pytest.raises(ValueError):
            MultiPassBlocking(BLOCK_KEY, selection="nope")
        with pytest.raises(ValueError):
            MultiPassBlocking(BLOCK_KEY, world_count=0)

    def test_blocks_for_single_world(self):
        relation = r34()
        blocking = MultiPassBlocking(BLOCK_KEY, selection="all")
        world = enumerate_full_worlds(relation.xtuples)[0]
        blocks = blocking.blocks_for_world(relation, world)
        assert sum(len(m) for m in blocks.values()) == len(relation)

    def test_all_worlds_superset_of_most_probable(self):
        relation = r34()
        single = MultiPassBlocking(
            BLOCK_KEY, selection="most_probable", world_count=1
        )
        full = MultiPassBlocking(BLOCK_KEY, selection="all")
        assert set(single.pairs(relation)) <= set(full.pairs(relation))

    def test_diverse_selection_runs(self):
        blocking = MultiPassBlocking(
            BLOCK_KEY, selection="diverse", world_count=2
        )
        pairs = set(blocking.pairs(r34()))
        assert pairs  # non-empty on the example


class TestUncertainKeyClustering:
    def test_radius_validated(self):
        with pytest.raises(ValueError):
            UncertainKeyClusteringBlocking(BLOCK_KEY, radius=1.5)

    def test_expected_key_distance_zero_for_equal_certain(self):
        assert expected_key_distance([("Jp", 1.0)], [("Jp", 1.0)]) == 0.0

    def test_expected_key_distance_weights_probabilities(self):
        left = [("ab", 0.5), ("cd", 0.5)]
        right = [("ab", 1.0)]
        assert expected_key_distance(left, right) == pytest.approx(0.5)

    def test_expected_key_distance_normalizes_maybe_mass(self):
        full = expected_key_distance([("ab", 1.0)], [("cd", 1.0)])
        scaled = expected_key_distance([("ab", 0.5)], [("cd", 0.25)])
        assert full == pytest.approx(scaled)

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            expected_key_distance([], [("a", 1.0)])

    def test_zero_radius_groups_identical_keys_only(self):
        key = SubstringKey([("name", 3), ("job", 2)])
        blocking = UncertainKeyClusteringBlocking(key, radius=0.0)
        clusters = blocking.clusters(r34())
        # t31 and t41 have overlapping but unequal key distributions ⇒
        # with radius 0 only exactly-equal distributions co-cluster.
        sizes = sorted(len(m) for m in clusters.values())
        assert sum(sizes) == 5

    def test_wide_radius_merges_everything(self):
        blocking = UncertainKeyClusteringBlocking(BLOCK_KEY, radius=1.0)
        clusters = blocking.clusters(r34())
        assert len(clusters) == 1

    def test_pairs_flow_from_clusters(self):
        blocking = UncertainKeyClusteringBlocking(BLOCK_KEY, radius=0.6)
        pairs = set(blocking.pairs(r34()))
        clusters = blocking.clusters(r34())
        implied = set(pairs_from_blocks(clusters))
        assert pairs == implied


class TestWorldSelection:
    def make_worlds(self):
        return [
            PossibleWorld((("a", 0), ("b", 0)), 0.4),
            PossibleWorld((("a", 0), ("b", 1)), 0.3),
            PossibleWorld((("a", 1), ("b", 0)), 0.2),
            PossibleWorld((("a", 1), ("b", 1)), 0.1),
        ]

    def test_probable_selection_orders_by_probability(self):
        selected = select_probable_worlds(self.make_worlds(), 2)
        assert [w.probability for w in selected] == [0.4, 0.3]

    def test_probable_count_validated(self):
        with pytest.raises(ValueError):
            select_probable_worlds(self.make_worlds(), 0)

    def test_diverse_first_pick_is_most_probable(self):
        selected = select_diverse_worlds(self.make_worlds(), 2)
        assert selected[0].probability == 0.4

    def test_diverse_prefers_dissimilar_second_pick(self):
        # With strong diversity weight, the second pick should be the
        # fully different world (a=1, b=1) despite lowest probability.
        selected = select_diverse_worlds(
            self.make_worlds(), 2, diversity_weight=2.0
        )
        assert selected[1].selection == (("a", 1), ("b", 1))

    def test_zero_diversity_equals_probable_selection(self):
        diverse = select_diverse_worlds(
            self.make_worlds(), 3, diversity_weight=0.0
        )
        probable = select_probable_worlds(self.make_worlds(), 3)
        assert [w.selection for w in diverse] == [
            w.selection for w in probable
        ]

    def test_diverse_validation(self):
        with pytest.raises(ValueError):
            select_diverse_worlds(self.make_worlds(), 0)
        with pytest.raises(ValueError):
            select_diverse_worlds(
                self.make_worlds(), 1, diversity_weight=-1.0
            )

    def test_diverse_empty_input(self):
        assert select_diverse_worlds([], 3) == []

    def test_average_pairwise_overlap_bounds(self):
        worlds = self.make_worlds()
        overlap = average_pairwise_overlap(worlds)
        assert 0.0 <= overlap <= 1.0

    def test_average_overlap_single_world_is_one(self):
        assert average_pairwise_overlap(self.make_worlds()[:1]) == 1.0

    def test_diverse_selection_lowers_redundancy(self):
        """The paper's motivation: diversified worlds are less redundant
        than the top-probability worlds."""
        worlds = self.make_worlds()
        probable = select_probable_worlds(worlds, 2)
        diverse = select_diverse_worlds(worlds, 2, diversity_weight=2.0)
        assert average_pairwise_overlap(diverse) <= average_pairwise_overlap(
            probable
        )
