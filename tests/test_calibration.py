"""Statistical test layer for calibrated decisions (ISSUE 9 tentpole).

Pins, in order:

* **conformal guarantee** — seeded hypothesis property: the conformal
  threshold's held-out FPR stays at or below the target (up to the
  finite-sample DKW slack of the holdout size), and its in-sample FPR
  never exceeds the target at all;
* **NP structure** — thresholds are monotone non-increasing in the
  target, and the conformal threshold never undercuts the NP one;
* **safety gates** — size / degeneracy / infeasibility / drift trips
  are exact, deterministic, and force every decision to UNSURE
  (``MatchStatus.POSSIBLE``);
* **reason codes** — categorization is total over all floats (±inf and
  NaN included) and can never disagree with the classifier's status;
* **golden pinning** — a ``CalibratedModel`` whose calibrated
  thresholds coincide with the inner model's decides bitwise
  identically to the unwrapped model, floors still pruning;
* **audit manifests** — round-trip with tamper detection, and the
  acceptance pin: a spilled ``n_jobs=2`` run's manifest is
  byte-identical to the serial in-memory reference;
* **sessions** — incremental ingest with a calibrated model stays
  bitwise equal to from-scratch detection, gate trips surface in
  ``SessionStats``, session manifests fingerprint-equal detect ones;
* **chaos** — under seeded fault injection (``on_error="skip"``) the
  shrunken calibration set trips the same gates on every run, and the
  manifest records exactly the skipped partitions.
"""

from __future__ import annotations

import json
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import (
    AuditManifest,
    ManifestIntegrityError,
    load_manifest,
)
from repro.datagen import DatasetConfig, generate_dataset
from repro.experiments.quality import (
    default_matcher,
    run_e3_calibration,
    weighted_model,
)
from repro.matching import (
    CalibratedModel,
    CalibrationPair,
    CalibrationSet,
    DuplicateDetector,
    ForcedUnsureClassifier,
    FullComparison,
    IdentificationRule,
    MatchStatus,
    ReasonCategory,
    RuleBasedModel,
    SafetyGates,
    ThresholdClassifier,
    calibrate,
    calibrate_conformal,
    calibrate_np,
    categorize_decision,
    check_safety_gates,
    empirical_fpr,
)
from repro.matching.decision.gates import (
    GATE_DEGENERATE_SCORES,
    GATE_INFEASIBLE,
    GATE_MAX_FPR_DRIFT,
    GATE_MIN_CALIBRATION_SIZE,
)
from repro.matching.executor import RetryPolicy
from repro.pdb import io as pdb_io
from repro.pdb.io import open_store
from repro.pdb.relations import XRelation
from repro.pdb.xtuples import XTuple
from repro.reduction import (
    CertainKeyBlocking,
    SortedNeighborhood,
    SubstringKey,
)
from repro.service.cli import main as cli_main
from repro.testing import FaultInjector, crash_on, installed

SORT_KEY = SubstringKey([("name", 3), ("job", 2)])
BLOCK_KEY = SubstringKey([("name", 1)])

#: Deterministic split/seed constants mirroring the gate defaults.
SPLIT_SEED = 20100301


@pytest.fixture(scope="module")
def flat_dataset():
    return generate_dataset(
        DatasetConfig(entity_count=20, seed=91), flat=True
    )


@pytest.fixture(scope="module")
def flat_relation(flat_dataset):
    return flat_dataset.relation


@pytest.fixture(scope="module")
def spilled_flat(tmp_path_factory, flat_relation):
    root = tmp_path_factory.mktemp("calibration-store")
    flat_relation.spill(
        str(root / "flat"), segment_size=7, page_size=4, max_pages=3
    )
    return str(root / "flat")


def rules_model() -> RuleBasedModel:
    return RuleBasedModel(
        [
            IdentificationRule.build(
                [("name", 0.8), ("job", 0.5)], certainty=0.8, name="both"
            ),
            IdentificationRule.build(
                [("name", 0.95)], certainty=0.9, name="exact-name"
            ),
        ],
        ThresholdClassifier(0.75, 0.5),
    )


def _triples(result):
    return [
        (d.left_id, d.right_id, d.status, d.similarity)
        for d in result.decisions
    ]


@st.composite
def labeled_sets(draw, min_nonmatch=60, max_nonmatch=200):
    """Exchangeable labeled sets, seeded through hypothesis."""
    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(min_nonmatch, max_nonmatch))
    rng = random.Random(seed)
    pairs = [
        CalibrationPair(f"n{i:04d}", rng.random() ** 2, False)
        for i in range(n)
    ]
    pairs += [
        CalibrationPair(f"m{i:04d}", 0.4 + 0.6 * rng.random(), True)
        for i in range(n // 4)
    ]
    return CalibrationSet(pairs)


# ----------------------------------------------------------------------
# The conformal FPR guarantee (seeded hypothesis property)
# ----------------------------------------------------------------------


@given(calibration=labeled_sets(), target=st.sampled_from([0.05, 0.1, 0.2]))
@settings(max_examples=40, deadline=None, derandomize=True)
def test_conformal_fpr_holds_on_heldout_split(calibration, target):
    """Held-out FPR ≤ target + finite-sample slack.

    The ``(n+1)``-corrected conformal threshold bounds the *expected*
    exceedance probability of a new exchangeable non-match by the
    target; the empirical holdout estimate then deviates from that
    truth by at most the one-sided DKW margin of the holdout size plus
    the fit-side quantile fluctuation.  Derandomized examples make the
    composite bound a fixed assertion.
    """
    fit, holdout = calibration.split(0.5, SPLIT_SEED)
    result = calibrate_conformal(fit, target)
    assert result.feasible
    # In-sample: the conformal quantile never exceeds the target, ever.
    assert result.calibration_fpr <= target
    m = len(holdout.nonmatch_scores)
    slack = math.sqrt(math.log(1.0 / 0.01) / (2.0 * m))
    observed = empirical_fpr(result.threshold, holdout.nonmatch_scores)
    assert observed <= target + slack


def test_conformal_dkw_tightening_is_conservative():
    """``alpha`` inflates the quantile: a strictly safer threshold.

    On a set large enough for the DKW margin to stay feasible, the
    tightened threshold dominates the plain one, and requesting more
    confidence (smaller ``alpha``) never loosens it.  On small sets the
    tightening honestly reports infeasibility instead of pretending.
    """
    rng = random.Random(2010)
    big = CalibrationSet(
        [
            CalibrationPair(f"n{i:04d}", rng.random(), False)
            for i in range(2000)
        ]
    )
    plain = calibrate_conformal(big, 0.1)
    tightened = calibrate_conformal(big, 0.1, alpha=0.05)
    stricter = calibrate_conformal(big, 0.1, alpha=0.01)
    assert tightened.feasible
    assert tightened.threshold >= plain.threshold
    assert stricter.threshold >= tightened.threshold
    assert tightened.calibration_fpr <= 0.1
    small = CalibrationSet(
        [CalibrationPair(f"n{i}", i / 40, False) for i in range(40)]
    )
    assert not calibrate_conformal(small, 0.05, alpha=0.05).feasible
    with pytest.raises(ValueError, match="alpha"):
        calibrate_conformal(big, 0.1, alpha=1.5)


@given(calibration=labeled_sets(min_nonmatch=40, max_nonmatch=120))
@settings(max_examples=40, deadline=None, derandomize=True)
def test_np_calibration_fpr_never_exceeds_target(calibration):
    for target in (0.02, 0.05, 0.1, 0.25):
        result = calibrate_np(calibration, target)
        assert result.feasible
        assert result.calibration_fpr <= target


@given(
    calibration=labeled_sets(min_nonmatch=40, max_nonmatch=120),
    targets=st.lists(
        st.floats(0.01, 0.5), min_size=2, max_size=5, unique=True
    ),
)
@settings(max_examples=40, deadline=None, derandomize=True)
def test_np_threshold_monotone_in_target(calibration, targets):
    """A stricter FPR target never lowers the NP threshold."""
    thresholds = [
        calibrate_np(calibration, t).threshold for t in sorted(targets)
    ]
    assert thresholds == sorted(thresholds, reverse=True)


@given(
    calibration=labeled_sets(min_nonmatch=40, max_nonmatch=120),
    target=st.floats(0.01, 0.5),
)
@settings(max_examples=40, deadline=None, derandomize=True)
def test_conformal_never_undercuts_np(calibration, target):
    """Conformal is the conservative one: its threshold is ≥ NP's."""
    conformal = calibrate_conformal(calibration, target)
    np_rule = calibrate_np(calibration, target)
    assert conformal.threshold >= np_rule.threshold


def test_conformal_infeasible_on_tiny_set():
    tiny = CalibrationSet(
        [CalibrationPair(f"n{i}", i / 10, False) for i in range(5)]
    )
    result = calibrate_conformal(tiny, 0.01)
    assert not result.feasible
    assert result.threshold == math.inf
    assert empirical_fpr(math.inf, tiny.nonmatch_scores) == 0.0


def test_calibration_set_split_is_deterministic():
    pairs = [
        CalibrationPair(f"p{i:03d}", i / 100, i % 3 == 0)
        for i in range(50)
    ]
    fit_a, hold_a = CalibrationSet(pairs).split(0.5, SPLIT_SEED)
    shuffled = list(pairs)
    random.Random(7).shuffle(shuffled)
    fit_b, hold_b = CalibrationSet(shuffled).split(0.5, SPLIT_SEED)
    assert [p.pair_id for p in fit_a.pairs] == [
        p.pair_id for p in fit_b.pairs
    ]
    assert fit_a.fingerprint() == fit_b.fingerprint()
    assert hold_a.fingerprint() == hold_b.fingerprint()
    # And the two halves partition the set.
    assert len(fit_a) + len(hold_a) == len(pairs)
    assert not {p.pair_id for p in fit_a.pairs} & {
        p.pair_id for p in hold_a.pairs
    }


def test_calibration_set_rejects_nan_scores():
    with pytest.raises(ValueError, match="NaN"):
        CalibrationPair("bad", math.nan, False)


def test_calibration_set_round_trips_exactly(tmp_path):
    rng = random.Random(17)
    original = CalibrationSet(
        [
            CalibrationPair(f"p{i}", rng.random(), rng.random() < 0.3)
            for i in range(40)
        ]
    )
    path = str(tmp_path / "calibration.json")
    original.save(path)
    loaded = CalibrationSet.load(path)
    assert loaded.fingerprint() == original.fingerprint()
    assert loaded.nonmatch_scores == original.nonmatch_scores
    assert loaded.match_scores == original.match_scores


# ----------------------------------------------------------------------
# Safety gates: trips are exact and force UNSURE
# ----------------------------------------------------------------------


def _gate_names(trips):
    return [trip.gate for trip in trips]


def test_gate_min_size_forces_unsure(flat_relation):
    tiny = CalibrationSet(
        [CalibrationPair(f"n{i}", 0.1 + i / 20, False) for i in range(8)]
        + [CalibrationPair("m0", 0.9, True)]
    )
    calibrated = calibrate(weighted_model(), tiny, target_fpr=0.05)
    assert calibrated.forced_unsure
    assert GATE_MIN_CALIBRATION_SIZE in _gate_names(calibrated.gate_trips)
    assert isinstance(calibrated.classifier, ForcedUnsureClassifier)
    result = DuplicateDetector(default_matcher(), calibrated).detect(
        flat_relation
    )
    assert result.decisions
    assert all(
        d.status is MatchStatus.POSSIBLE for d in result.decisions
    )
    assert result.matches == ()


def test_gate_degenerate_scores_trips():
    constant = CalibrationSet(
        [CalibrationPair(f"n{i}", 0.3, False) for i in range(40)]
        + [CalibrationPair(f"m{i}", 0.9, True) for i in range(10)]
    )
    calibration = calibrate_conformal(constant, 0.05)
    trips = check_safety_gates(constant, calibration)
    assert _gate_names(trips) == [GATE_DEGENERATE_SCORES]
    trip = trips[0]
    assert trip.observed == 0.0
    assert trip.limit == SafetyGates().min_score_spread


def test_gate_infeasible_trips_with_size():
    tiny = CalibrationSet(
        [CalibrationPair(f"n{i}", i / 10, False) for i in range(5)]
    )
    calibration = calibrate_conformal(tiny, 0.01)
    trips = check_safety_gates(tiny, calibration)
    assert GATE_MIN_CALIBRATION_SIZE in _gate_names(trips)
    assert GATE_INFEASIBLE in _gate_names(trips)


def _drift_set() -> CalibrationSet:
    """A set whose seeded holdout half scores far above the fit half.

    Membership only depends on the sorted pair ids and the gate seed,
    so scores can be assigned by half: re-calibrating on the fit half
    yields a low threshold that the holdout then blows through.
    """
    ids = [f"n{i:02d}" for i in range(60)] + [f"m{i}" for i in range(10)]
    order = sorted(ids)
    random.Random(SPLIT_SEED).shuffle(order)
    cut = int(round(len(order) * 0.5))
    holdout_ids = set(order[:cut])
    pairs = []
    for i in range(60):
        pair_id = f"n{i:02d}"
        base = 0.8 if pair_id in holdout_ids else 0.1
        pairs.append(CalibrationPair(pair_id, base + i * 1e-3, False))
    pairs += [CalibrationPair(f"m{i}", 0.95, True) for i in range(10)]
    return CalibrationSet(pairs)


def test_gate_drift_trips_on_shifted_holdout():
    drifted = _drift_set()
    calibration = calibrate_conformal(drifted, 0.05)
    assert calibration.feasible
    trips = check_safety_gates(drifted, calibration)
    assert _gate_names(trips) == [GATE_MAX_FPR_DRIFT]
    assert trips[0].observed > trips[0].limit
    calibrated = calibrate(weighted_model(), drifted, target_fpr=0.05)
    assert calibrated.forced_unsure


def test_gate_drift_check_can_be_disabled():
    drifted = _drift_set()
    gates = SafetyGates(max_fpr_drift=None)
    calibration = calibrate_conformal(drifted, 0.05)
    assert check_safety_gates(drifted, calibration, gates=gates) == ()


def test_gates_false_skips_all_checks():
    tiny = CalibrationSet(
        [CalibrationPair(f"n{i}", i / 10, False) for i in range(5)]
        + [CalibrationPair("m0", 0.99, True)]
    )
    calibrated = calibrate(
        weighted_model(), tiny, method="np", target_fpr=0.2, gates=False
    )
    assert not calibrated.forced_unsure
    assert type(calibrated.classifier) is ThresholdClassifier


def test_gate_policy_validation():
    with pytest.raises(ValueError, match="min_calibration_size"):
        SafetyGates(min_calibration_size=0)
    with pytest.raises(ValueError, match="max_fpr_drift"):
        SafetyGates(max_fpr_drift=-0.1)
    with pytest.raises(ValueError, match="holdout_fraction"):
        SafetyGates(holdout_fraction=1.0)


def test_calibrate_validates_method_and_alpha():
    ok = CalibrationSet(
        [CalibrationPair(f"n{i}", i / 100, False) for i in range(60)]
    )
    with pytest.raises(ValueError, match="method"):
        calibrate(weighted_model(), ok, method="bayes")
    with pytest.raises(ValueError, match="alpha"):
        calibrate(weighted_model(), ok, method="np", alpha=0.05)


# ----------------------------------------------------------------------
# Reason codes: total, consistent, and named
# ----------------------------------------------------------------------


@given(
    similarity=st.floats(allow_nan=True, allow_infinity=True),
    t_mu=st.floats(0.0, 1.0),
    band=st.floats(0.0, 0.5),
)
@settings(max_examples=200, deadline=None)
def test_reason_category_always_matches_classifier(similarity, t_mu, band):
    """Totality + consistency: one category, agreeing with classify()."""
    classifier = ThresholdClassifier(t_mu, max(t_mu - band, 0.0))
    code = categorize_decision(similarity, classifier)
    assert code.category.status is classifier.classify(similarity)
    assert isinstance(code.code, str) and code.code


def test_reason_gate_forced_names_the_gates():
    trips = check_safety_gates(
        CalibrationSet(
            [CalibrationPair("n0", 0.5, False)]
        ),
        calibrate_conformal(
            CalibrationSet([CalibrationPair("n0", 0.5, False)]), 0.05
        ),
    )
    classifier = ForcedUnsureClassifier(0.9, 0.5, trips)
    code = categorize_decision(0.99, classifier)
    assert code.category is ReasonCategory.GATE_FORCED
    assert code.category.status is MatchStatus.POSSIBLE
    assert set(code.gates) == set(_gate_names(trips))
    assert code.code.startswith("gate_forced:")


def test_reason_terms_name_the_forcing_rule():
    model = rules_model()
    classifier = model.classifier
    above = categorize_decision(0.9, classifier, model=model)
    assert above.category is ReasonCategory.ABOVE_MATCH
    assert above.term == "exact-name"
    assert above.code == "above_match:exact-name"
    other = categorize_decision(0.8, classifier, model=model)
    assert other.term == "both"
    # Similarities no rule produced have no nameable term.
    assert categorize_decision(0.93, classifier, model=model).term is None
    # The possible band never names a term (nothing was decisive).
    inside = categorize_decision(0.6, classifier, model=model)
    assert inside.category is ReasonCategory.POSSIBLE_BAND
    assert inside.term is None
    assert inside.margin >= 0.0


def test_reason_margins_are_signed_distances():
    classifier = ThresholdClassifier(0.75, 0.5)
    assert categorize_decision(0.8, classifier).margin == pytest.approx(
        0.05
    )
    assert categorize_decision(0.4, classifier).margin == pytest.approx(
        -0.1
    )
    nan_code = categorize_decision(math.nan, classifier)
    assert nan_code.category is ReasonCategory.POSSIBLE_BAND
    assert math.isnan(nan_code.margin)


def test_explain_is_total_over_a_detection(flat_relation):
    calibrated = _pinned_calibrated()
    result = DuplicateDetector(default_matcher(), calibrated).detect(
        flat_relation
    )
    reasons = calibrated.explain(result)
    assert len(reasons) == len(result.decisions)
    for row in reasons:
        assert row.reason.category.status is row.status
        document = row.as_dict()
        json.dumps(document)  # JSON-serializable end to end
        assert document["reason"]["code"]


# ----------------------------------------------------------------------
# Golden pinning: calibrated wrapper == unwrapped model, bitwise
# ----------------------------------------------------------------------


def _pinned_set() -> CalibrationSet:
    """An NP calibration set whose threshold is *exactly* 0.75.

    The largest non-match score is 0.75 by construction, and the 0.02
    target allows zero exceedances on 40 scores — so the NP threshold
    is the maximum itself, coinciding with ``rules_model``'s ``T_μ``.
    """
    pairs = [
        CalibrationPair(f"n{i:02d}", 0.75 - 0.005 * i, False)
        for i in range(1, 40)
    ]
    pairs.append(CalibrationPair("n40", 0.75, False))
    pairs += [
        CalibrationPair(f"m{i}", 0.8 + 0.004 * i, True) for i in range(12)
    ]
    return CalibrationSet(pairs)


def _pinned_calibrated() -> CalibratedModel:
    return calibrate(
        rules_model(), _pinned_set(), method="np", target_fpr=0.02
    )


def test_calibrated_model_pins_to_unwrapped_bitwise(flat_relation):
    calibrated = _pinned_calibrated()
    assert not calibrated.forced_unsure
    assert type(calibrated.classifier) is ThresholdClassifier
    assert calibrated.classifier.match_threshold == 0.75
    assert calibrated.classifier.unmatch_threshold == 0.5

    reference = DuplicateDetector(default_matcher(), rules_model())
    wrapped = DuplicateDetector(default_matcher(), calibrated)
    exact = reference.detect(flat_relation)
    pruned = wrapped.detect(flat_relation, min_similarity="auto")
    assert _triples(pruned) == _triples(exact)
    assert pruned.compared_pairs == exact.compared_pairs


def test_calibrated_model_forwards_attribute_floors():
    inner = rules_model()
    calibrated = CalibratedModel(
        inner, calibrate_np(_pinned_set(), 0.02)
    )
    floors = calibrated.attribute_floors()
    reference = inner.attribute_floors()
    assert floors is not None
    assert floors.per_attribute == reference.per_attribute
    assert floors.default == reference.default
    # A floor-less inner model keeps pruning off rather than faking one.
    bare = CalibratedModel(object(), calibrate_np(_pinned_set(), 0.02))
    assert bare.attribute_floors() is None


def test_calibrated_model_defaults_unmatch_threshold_safely():
    """T_λ is clamped to the calibrated T_μ; no invalid classifier."""
    low = CalibrationSet(
        [
            CalibrationPair(f"n{i:02d}", 0.05 + 0.002 * i, False)
            for i in range(40)
        ]
    )
    calibrated = calibrate(
        weighted_model(0.9, 0.78),
        low,
        method="np",
        target_fpr=0.02,
        gates=False,
    )
    t_mu = calibrated.classifier.match_threshold
    assert t_mu < 0.78
    assert calibrated.classifier.unmatch_threshold == t_mu


# ----------------------------------------------------------------------
# Audit manifests
# ----------------------------------------------------------------------


def _audited_detector():
    return DuplicateDetector(
        default_matcher(),
        weighted_model(),
        reducer=SortedNeighborhood(SORT_KEY, window=5),
    )


def test_manifest_round_trip_and_tamper_detection(
    flat_relation, tmp_path
):
    path = str(tmp_path / "manifest.json")
    detector = _audited_detector()
    detector.detect(flat_relation, audit=path)
    built = detector.last_manifest
    assert built is not None

    loaded = load_manifest(path)
    assert loaded.verify_integrity()
    assert loaded.verify_against(built)
    assert loaded.fingerprint() == built.fingerprint()

    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    document["payload"]["decided_pairs"] += 1
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    with pytest.raises(ManifestIntegrityError, match="edited"):
        load_manifest(path)
    tampered = load_manifest(path, verify=False)
    assert not tampered.verify_integrity()
    assert "decided_pairs" in tampered.diff(built)


def test_manifest_stable_across_execution_variants(
    flat_relation, spilled_flat
):
    """The acceptance pin: execution never changes the fingerprint.

    Serial in-memory is the reference; ``n_jobs=2`` (both scheduling
    modes), the spilled out-of-core store under ``n_jobs=2``, and a
    forced ``python`` kernel backend must all produce byte-identical
    manifest payloads.
    """
    serial = _audited_detector()
    serial.detect(flat_relation, audit=True)
    reference = serial.last_manifest

    variants = {}
    parallel = _audited_detector()
    parallel.detect(flat_relation, audit=True, n_jobs=2, chunk_size=7)
    variants["n_jobs=2"] = parallel.last_manifest

    stealing = _audited_detector()
    stealing.detect(
        flat_relation,
        audit=True,
        n_jobs=2,
        chunk_size=7,
        scheduling="stealing",
    )
    variants["stealing"] = stealing.last_manifest

    spilled = _audited_detector()
    spilled.detect(
        open_store(spilled_flat, page_size=4, max_pages=3),
        audit=True,
        n_jobs=2,
        chunk_size=7,
    )
    variants["spilled n_jobs=2"] = spilled.last_manifest

    python_backend = _audited_detector()
    python_backend.detect(
        flat_relation, audit=True, kernel_backend="python"
    )
    variants["python backend"] = python_backend.last_manifest

    for name, manifest in variants.items():
        assert manifest.payload_bytes() == reference.payload_bytes(), name
        assert manifest.fingerprint() == reference.fingerprint(), name
        assert manifest.verify_against(reference), name
    # The environment still records how each run executed …
    assert variants["n_jobs=2"].environment["n_jobs"] == 2
    assert variants["spilled n_jobs=2"].environment["storage"] != (
        reference.environment["storage"]
    )
    # … without ever entering the fingerprint.
    assert "environment" not in reference.payload()


def test_manifest_distinguishes_different_runs(flat_relation):
    reference = _audited_detector()
    reference.detect(flat_relation, audit=True)
    other_data = generate_dataset(
        DatasetConfig(entity_count=20, seed=92), flat=True
    ).relation
    changed = _audited_detector()
    changed.detect(other_data, audit=True)
    assert changed.last_manifest.fingerprint() != (
        reference.last_manifest.fingerprint()
    )
    assert changed.last_manifest.diff(reference.last_manifest)


def test_manifest_records_calibration_and_floors(flat_relation):
    calibrated = _pinned_calibrated()
    detector = DuplicateDetector(default_matcher(), calibrated)
    detector.detect(flat_relation, audit=True, min_similarity="auto")
    manifest = detector.last_manifest
    entry = manifest.calibration
    assert entry["method"] == "np"
    assert entry["set_fingerprint"] == _pinned_set().fingerprint()
    assert entry["match_threshold"] == 0.75
    assert entry["wraps"] == "RuleBasedModel"
    assert entry["gate_trips"] == []
    assert manifest.thresholds["forced_unsure"] is False
    assert manifest.floors is not None
    assert manifest.floors["per_attribute"]
    totals = manifest.status_totals
    assert manifest.decided_pairs == sum(totals.values())


def test_manifest_records_gate_forced_runs(flat_relation):
    calibrated = calibrate(
        weighted_model(), _drift_set(), target_fpr=0.05
    )
    assert calibrated.forced_unsure
    detector = DuplicateDetector(default_matcher(), calibrated)
    detector.detect(flat_relation, audit=True)
    manifest = detector.last_manifest
    assert manifest.thresholds["forced_unsure"] is True
    trips = manifest.calibration["gate_trips"]
    assert [trip["gate"] for trip in trips] == [GATE_MAX_FPR_DRIFT]
    assert manifest.status_totals["m"] == 0
    assert manifest.status_totals["u"] == 0
    assert manifest.status_totals["p"] == manifest.decided_pairs


def test_manifest_rejects_streamed_runs(flat_relation):
    detector = _audited_detector()
    with pytest.raises(ValueError, match="audit"):
        detector.detect(flat_relation, audit=True, stream=True)
    with pytest.raises(ValueError, match="audit"):
        detector.detect(
            flat_relation, audit=True, scheduling="striped"
        )


# ----------------------------------------------------------------------
# Chaos: deterministic gates and manifests under injected faults
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def chaos_dataset():
    return generate_dataset(
        DatasetConfig(entity_count=40, seed=7), flat=True
    )


def _chaos_detector():
    return DuplicateDetector(
        default_matcher(),
        weighted_model(),
        reducer=CertainKeyBlocking(BLOCK_KEY),
    )


def _skipping_run(relation, *, audit=False):
    detector = _chaos_detector()
    plan = detector.plan(relation)
    pair = FaultInjector(7).pick_pair(plan)
    with installed(crash_on(pair, attempts=(1, 2, 3))):
        result = detector.detect(
            relation,
            n_jobs=2,
            chunk_size=8,
            split_pairs=16,
            retry=RetryPolicy(max_attempts=2),
            on_error="skip",
            audit=audit,
        )
    return detector, result


def test_gate_trips_deterministic_under_injected_faults(chaos_dataset):
    """Same seed → same skipped partitions → same shrunken set → same
    trips: the chaos job's contract for the calibration layer."""
    relation = chaos_dataset.relation
    truth = chaos_dataset.true_matches
    clean = CalibrationSet.from_result(
        _chaos_detector().detect(relation), truth
    )
    _, first_result = _skipping_run(relation)
    _, second_result = _skipping_run(relation)
    first = CalibrationSet.from_result(first_result, truth)
    second = CalibrationSet.from_result(second_result, truth)
    assert first.fingerprint() == second.fingerprint()
    assert len(first.nonmatch_scores) < len(clean.nonmatch_scores)

    # A gate sized to the clean run trips on the faulted set — on both
    # runs, with identical trip records — and not on the clean set.
    gates = SafetyGates(
        min_calibration_size=len(clean.nonmatch_scores),
        max_fpr_drift=None,
    )
    trip_sets = []
    for shrunken in (first, second):
        calibrated = calibrate(
            weighted_model(), shrunken, target_fpr=0.05, gates=gates
        )
        assert calibrated.forced_unsure
        assert _gate_names(calibrated.gate_trips) == [
            GATE_MIN_CALIBRATION_SIZE
        ]
        trip_sets.append(calibrated.gate_trips)
    assert trip_sets[0] == trip_sets[1]
    intact = calibrate(
        weighted_model(), clean, target_fpr=0.05, gates=gates
    )
    assert not intact.forced_unsure


def test_manifest_records_skipped_partitions(chaos_dataset):
    relation = chaos_dataset.relation
    detector, _ = _skipping_run(relation, audit=True)
    manifest = detector.last_manifest
    failed = sorted(
        failure.partition for failure in detector.last_report.failures
    )
    assert failed
    assert list(manifest.failures) == failed
    for label in failed:
        assert label not in manifest.partition_counts
    # And the failure set is part of the fingerprinted payload: a
    # faulted run never masquerades as the clean one.
    clean_detector = _chaos_detector()
    clean_detector.detect(relation, audit=True)
    assert manifest.fingerprint() != (
        clean_detector.last_manifest.fingerprint()
    )


# ----------------------------------------------------------------------
# Sessions: calibration + incremental detection + audit
# ----------------------------------------------------------------------


def _split_scenario(relation):
    rows = list(relation)
    keep = max(1, len(rows) // 6)
    base_rows, tail = rows[: len(rows) - keep], rows[len(rows) - keep :]
    adds = [
        XTuple(f"delta-{i}", xt.alternatives)
        for i, xt in enumerate(tail)
    ]
    modify = XTuple(base_rows[0].tuple_id, base_rows[-1].alternatives)
    deletes = [base_rows[1].tuple_id]
    base = XRelation(
        f"{relation.name}-base", relation.schema.attributes, base_rows
    )
    return base, [modify] + adds, deletes


def _materialized_union(base, upserts, deletes):
    upsert_map = {xt.tuple_id: xt for xt in upserts}
    deleted = set(deletes)
    rows = []
    for xt in base:
        if xt.tuple_id in deleted:
            continue
        rows.append(upsert_map.pop(xt.tuple_id, xt))
    rows.extend(xt for xt in upserts if xt.tuple_id in upsert_map)
    return XRelation(
        f"{base.name}+delta", base.schema.attributes, rows
    )


def test_session_ingest_with_calibrated_model_matches_scratch(
    flat_relation,
):
    base, upserts, deletes = _split_scenario(flat_relation)
    session = DuplicateDetector(
        default_matcher(), _pinned_calibrated()
    ).session(base)
    initial = session.detect()
    scratch_base = DuplicateDetector(
        default_matcher(), _pinned_calibrated()
    ).detect(base)
    assert _triples(initial) == _triples(scratch_base)

    result = session.ingest(upserts, deletes=deletes)
    union = _materialized_union(base, upserts, deletes)
    scratch = DuplicateDetector(
        default_matcher(), _pinned_calibrated()
    ).detect(union)
    assert _triples(result) == _triples(scratch)
    assert session.stats.gate_trips == 0


def test_session_gate_trips_surface_in_stats(flat_relation):
    gated = calibrate(weighted_model(), _drift_set(), target_fpr=0.05)
    session = DuplicateDetector(default_matcher(), gated).session(
        flat_relation
    )
    result = session.detect()
    assert all(
        d.status is MatchStatus.POSSIBLE for d in result.decisions
    )
    assert session.gate_trips
    assert session.stats.gate_trips == len(session.gate_trips)
    assert "gate trips" in session.stats.summary()


def test_session_manifest_matches_detect_manifest(
    flat_relation, tmp_path
):
    base, upserts, deletes = _split_scenario(flat_relation)
    audit_dir = tmp_path / "audit"
    session = DuplicateDetector(
        default_matcher(), weighted_model()
    ).session(base, audit=str(audit_dir))
    session.detect()
    session.ingest(upserts, deletes=deletes)
    assert len(session.manifests) == 2

    from_scratch_base = DuplicateDetector(
        default_matcher(), weighted_model()
    )
    from_scratch_base.detect(base, audit=True)
    assert session.manifests[0].verify_against(
        from_scratch_base.last_manifest
    )

    union = _materialized_union(base, upserts, deletes)
    from_scratch_union = DuplicateDetector(
        default_matcher(), weighted_model()
    )
    from_scratch_union.detect(union, audit=True)
    assert session.manifests[1].verify_against(
        from_scratch_union.last_manifest
    )

    written = sorted(audit_dir.glob("manifest-*.json"))
    assert len(written) == 2
    for path, manifest in zip(written, session.manifests):
        loaded = load_manifest(path)
        assert loaded.verify_against(manifest)


# ----------------------------------------------------------------------
# The CLI front end and the E3 study
# ----------------------------------------------------------------------


def _production_calibration_set(flat_dataset) -> CalibrationSet:
    result = DuplicateDetector(
        default_matcher(), weighted_model()
    ).detect(flat_dataset.relation)
    return CalibrationSet.from_result(
        result, flat_dataset.true_matches
    )


def test_cli_detect_with_calibration_and_audit(
    flat_dataset, tmp_path, capsys
):
    base = str(tmp_path / "base.json")
    pdb_io.dump(flat_dataset.relation, base)
    calibration_file = str(tmp_path / "calibration.json")
    _production_calibration_set(flat_dataset).save(calibration_file)
    audit_dir = str(tmp_path / "audit")

    code = cli_main(
        [
            "detect",
            "--base",
            base,
            "--calibration",
            calibration_file,
            "--calibration-method",
            "conformal",
            "--target-fpr",
            "0.05",
            "--audit",
            audit_dir,
        ]
    )
    assert code == 0
    document = json.loads(capsys.readouterr().out.strip())
    assert document["stats"]["gate_trips"] == 0
    assert "gate_trips" not in document  # no trips → no trip report
    manifest_files = sorted(
        (tmp_path / "audit").glob("manifest-*.json")
    )
    assert manifest_files
    manifest = load_manifest(manifest_files[-1])
    assert manifest.fingerprint() == document["manifest"]
    assert manifest.calibration["method"] == "conformal"


def test_cli_gate_trips_reported(flat_dataset, tmp_path, capsys):
    base = str(tmp_path / "base.json")
    pdb_io.dump(flat_dataset.relation, base)
    calibration_file = str(tmp_path / "tiny.json")
    CalibrationSet(
        [CalibrationPair(f"n{i}", i / 10, False) for i in range(5)]
    ).save(calibration_file)

    code = cli_main(
        ["detect", "--base", base, "--calibration", calibration_file]
    )
    assert code == 0
    document = json.loads(capsys.readouterr().out.strip())
    assert document["stats"]["gate_trips"] >= 1
    assert document["gate_trips"]
    assert any(
        GATE_MIN_CALIBRATION_SIZE in line
        for line in document["gate_trips"]
    )
    assert document["matches"] == []


def test_e3_calibration_study_rows():
    rows = run_e3_calibration(entity_count=60, seed=11)
    assert len(rows) == 6  # two methods × three targets
    for row in rows:
        assert row.feasible
        assert row.gate_trips == ()
        document = row.as_dict()
        assert set(document) >= {
            "method",
            "target_fpr",
            "threshold",
            "holdout_fpr",
        }
    by_method = {}
    for row in rows:
        by_method.setdefault(row.method, []).append(row)
    for method, method_rows in by_method.items():
        ordered = sorted(method_rows, key=lambda r: r.target_fpr)
        thresholds = [r.threshold for r in ordered]
        assert thresholds == sorted(thresholds, reverse=True), method
