"""Choosing a search-space reduction strategy for probabilistic data.

Section V adapts the Sorted-Neighborhood method and blocking to
probabilistic data but gives no measurements.  This example compares all
strategies on one generated x-relation, reporting for each:

* reduction ratio   — how much of the n(n-1)/2 pair space is pruned,
* pairs completeness — how many true duplicate pairs survive pruning,
* the harmonic mean of the two,

then shows the window-size trade-off for the SNM variants.

Run:  python examples/search_space_tuning.py
"""

from repro.datagen import DatasetConfig, generate_dataset
from repro.experiments import (
    evaluate_strategy,
    render_mapping_table,
    strategy_table,
)
from repro.reduction import SortedNeighborhood, SubstringKey, UncertainKeySNM

KEY = SubstringKey([("name", 3), ("job", 2)])


def main() -> None:
    dataset = generate_dataset(
        DatasetConfig(entity_count=150, duplicate_rate=0.5, seed=17)
    )
    relation = dataset.relation
    print(
        f"{len(relation)} x-tuples, "
        f"{len(relation) * (len(relation) - 1) // 2} total pairs, "
        f"{len(dataset.true_matches)} true duplicate pairs\n"
    )

    rows = []
    for name, factory in strategy_table(key=KEY, window=5).items():
        row = evaluate_strategy(
            factory(), relation, dataset.true_matches, name=name
        )
        rows.append(row.as_dict())
    print(render_mapping_table(rows, title="Strategy comparison (window=5)"))

    sweep_rows = []
    for window in (2, 3, 5, 8, 12):
        for name, strategy in (
            ("snm_certain_key", SortedNeighborhood(KEY, window)),
            ("snm_uncertain_ranked", UncertainKeySNM(KEY, window)),
        ):
            row = evaluate_strategy(
                strategy, relation, dataset.true_matches, name=name
            )
            sweep_rows.append({"window": window, **row.as_dict()})
    print()
    print(render_mapping_table(sweep_rows, title="SNM window sweep"))

    print(
        "\nReading: larger windows buy pairs completeness with a lower "
        "reduction ratio.  Note the measured ordering: sorting "
        "alternatives (V-A.3) wins on completeness because a tuple is "
        "filed under every alternative key, while the expected-rank "
        "uncertain-key SNM (V-A.4) actually trails the certain-key "
        "strategy — averaging key positions destroys the lexicographic "
        "locality the window relies on.  The paper called the "
        "uncertain-key handling 'more promising' but never measured it; "
        "see EXPERIMENTS.md for the discussion."
    )


if __name__ == "__main__":
    main()
