"""The complete integration pipeline, including the paper's outlook.

Runs all four integration steps of Section I on the paper's own example
relations ℛ3 and ℛ4 (schema matching/mapping are trivial here — both
sources share the (name, job) schema):

1. duplicate detection with the Figure-6 decision procedure,
2. transitive clustering of the match decisions,
3. **data fusion** of every definite cluster (step (d), [17]),
4. **uncertain result representation**: possible matches are *not*
   forced into a binary decision — following the paper's conclusion,
   each becomes a merge hypothesis represented as mutually exclusive
   tuple sets tied together by ULDB-style lineage over an auxiliary
   decision variable.

Run:  python examples/full_integration.py
"""

from repro.experiments import (
    paper_matcher,
    relation_r3,
    relation_r4,
)
from repro.fusion import build_uncertain_resolution, fuse_relation
from repro.matching import (
    CombinedDecisionModel,
    DuplicateDetector,
    ThresholdClassifier,
    WeightedSum,
)


def main() -> None:
    r3, r4 = relation_r3(), relation_r4()
    print("Source ℛ3:")
    print(r3.pretty())
    print("\nSource ℛ4:")
    print(r4.pretty())

    # A slightly looser threshold pair than the worked example so the
    # (t32, t42) pair lands in the possible band — the interesting case
    # for the uncertain result.
    classifier = ThresholdClassifier(0.8, 0.4)
    model = CombinedDecisionModel(
        WeightedSum({"name": 0.8, "job": 0.2}), classifier
    )
    detector = DuplicateDetector(paper_matcher(), model)
    relation = r3.union(r4, "R34")
    result = detector.detect(relation)

    print("\nPairwise decisions:")
    for decision in result.decisions:
        print(
            f"  ({decision.left_id}, {decision.right_id}): "
            f"sim={decision.similarity:.4f} ⇒ η={decision.status}"
        )

    # Hard integration result: fuse definite clusters only.
    clustering = result.clusters()
    fused = fuse_relation(relation, clustering)
    print(f"\nHard fusion: {len(relation)} source tuples → "
          f"{len(fused)} consolidated tuples")

    # Probabilistic integration result (the paper's outlook).
    resolution = build_uncertain_resolution(relation, result, classifier)
    print(f"\nUncertain resolution: {resolution!r}")
    for decision_id, hypothesis in resolution.hypotheses.items():
        members = ", ".join(hypothesis.member_ids)
        print(
            f"  hypothesis {decision_id}: merge({members}) "
            f"with confidence {hypothesis.confidence:.3f}"
        )
    print("  mutually exclusive tuple sets:")
    for left, right in resolution.exclusive_pairs():
        print(f"    {left}  ⊕  {right}")
    print(
        f"  expected result size: "
        f"{resolution.expected_tuple_count():.2f} tuples"
    )

    print("\nMost probable resolved world:")
    print(resolution.instantiate().pretty())


if __name__ == "__main__":
    main()
