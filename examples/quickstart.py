"""Quickstart: detect duplicates in a generated probabilistic relation.

Run:  python examples/quickstart.py
"""

from repro.datagen import DatasetConfig, generate_dataset, JOBS
from repro.matching import (
    AttributeMatcher,
    CombinedDecisionModel,
    DuplicateDetector,
    ThresholdClassifier,
    WeightedSum,
)
from repro.similarity import (
    JARO_WINKLER,
    PatternPolicy,
    UncertainValueComparator,
)
from repro.verification import PossiblePolicy, evaluate_detection


def main() -> None:
    # 1. A probabilistic relation with known duplicate ground truth:
    #    300-ish person records with uncertain names/jobs, maybe-tuples,
    #    missing values (⊥) and the occasional mu*-style pattern value.
    dataset = generate_dataset(
        DatasetConfig(entity_count=150, duplicate_rate=0.5, seed=42)
    )
    print(f"relation: {len(dataset.relation)} x-tuples, "
          f"{len(dataset.true_matches)} true duplicate pairs")

    # 2. Attribute value matching (Equation 5): Jaro-Winkler lifted to
    #    uncertain values; job values may be prefix patterns, expanded
    #    against the corpus lexicon.
    matcher = AttributeMatcher({
        "name": UncertainValueComparator(JARO_WINKLER),
        "job": UncertainValueComparator(
            JARO_WINKLER,
            pattern_policy=PatternPolicy.EXPAND,
            pattern_lexicon=JOBS,
        ),
    })

    # 3. Decision model (Figure 3): combination function plus the
    #    two-threshold classification of Figure 2.
    model = CombinedDecisionModel(
        WeightedSum({"name": 0.5, "job": 0.5}),
        ThresholdClassifier(0.9, 0.8),
    )

    # 4. The five-step pipeline; x-tuple pairs are decided with the
    #    similarity-based derivation (Equation 6) by default.
    detector = DuplicateDetector(matcher, model)
    result = detector.detect(dataset.relation)

    print(f"compared {len(result.compared_pairs)} pairs: "
          f"{len(result.matches)} matches, "
          f"{len(result.possible_matches)} possible (clerical review), "
          f"{len(result.unmatches)} non-matches")

    # 5. Verification (Section III-E).
    report = evaluate_detection(
        result,
        dataset.true_matches,
        possible_policy=PossiblePolicy.EXCLUDE,
    )
    print(f"precision={report.precision:.3f} recall={report.recall:.3f} "
          f"F1={report.f1:.3f}")

    # 6. Duplicate clusters via transitive closure.
    clusters = result.clusters()
    print(f"{len(clusters.clusters)} duplicate clusters, "
          f"{len(clusters.singletons)} singletons, "
          f"{len(clusters.conflicts)} conflicts")
    for cluster in clusters.clusters[:5]:
        print("  cluster:", ", ".join(cluster))


if __name__ == "__main__":
    main()
