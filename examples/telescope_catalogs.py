"""Consolidating two probabilistic sky-survey catalogs.

The paper's motivating scenario (Section I): "unifying data produced by
different space telescopes" requires duplicate detection over
*probabilistic* source data [1].  This example builds two synthetic
survey catalogs whose extraction pipelines emit uncertain values:

* ``designation`` — the source name, sometimes with OCR-style readout
  alternatives;
* ``spectral_class`` — a discrete distribution produced by an uncertain
  classifier (e.g. {G2V: 0.6, G5V: 0.4}), occasionally non-existent (⊥)
  when the spectrum was too noisy;
* maybe-tuples — sources whose detection itself is uncertain.

It then identifies which catalog entries refer to the same star, using
numeric proximity for coordinates and Equation 5 for the uncertain
classifications.

Run:  python examples/telescope_catalogs.py
"""

import random

from repro.matching import (
    AttributeMatcher,
    CombinedDecisionModel,
    DuplicateDetector,
    ThresholdClassifier,
    WeightedSum,
)
from repro.pdb import Schema, XRelation, XTuple
from repro.similarity import (
    JARO_WINKLER,
    NamedComparator,
    UncertainValueComparator,
    numeric_similarity,
)
from repro.verification import evaluate_detection

SCHEMA = Schema(("designation", "spectral_class", "magnitude"))

SPECTRAL_CLASSES = (
    "O5V", "B0V", "B5V", "A0V", "A5V", "F0V", "F5V",
    "G0V", "G2V", "G5V", "K0V", "K5V", "M0V", "M5V",
)


def make_catalogs(
    star_count: int = 120, seed: int = 7
) -> tuple[XRelation, XRelation, frozenset]:
    """Two catalogs observing an overlapping star population."""
    rng = random.Random(seed)
    alpha_rows: list[XTuple] = []
    beta_rows: list[XTuple] = []
    gold: set[tuple[str, str]] = set()

    for star in range(star_count):
        designation = f"HD {100000 + star * 17}"
        true_class = rng.choice(SPECTRAL_CLASSES)
        magnitude = round(rng.uniform(2.0, 14.0), 2)

        alpha_id = f"a{star:04d}"
        alpha_rows.append(
            _observe(alpha_id, designation, true_class, magnitude, rng)
        )

        # ~70% of stars are also seen by the second telescope.
        if rng.random() < 0.7:
            beta_id = f"b{star:04d}"
            beta_rows.append(
                _observe(beta_id, designation, true_class, magnitude, rng)
            )
            gold.add((alpha_id, beta_id))

    return (
        XRelation("SurveyAlpha", SCHEMA, alpha_rows),
        XRelation("SurveyBeta", SCHEMA, beta_rows),
        frozenset(gold),
    )


def _observe(
    tuple_id: str,
    designation: str,
    true_class: str,
    magnitude: float,
    rng: random.Random,
) -> XTuple:
    """One catalog entry: the extraction pipeline's uncertain view."""
    # Designation: occasionally an OCR confusion of the catalog number.
    if rng.random() < 0.2:
        confused = designation.replace("0", "O", 1)
        name_value = {designation: 0.8, confused: 0.2}
    else:
        name_value = designation

    # Spectral class: uncertain classifier output; sometimes missing.
    if rng.random() < 0.1:
        class_value = None  # ⊥ — spectrum too noisy to classify
    elif rng.random() < 0.5:
        index = SPECTRAL_CLASSES.index(true_class)
        neighbor = SPECTRAL_CLASSES[
            max(0, min(len(SPECTRAL_CLASSES) - 1, index + rng.choice((-1, 1))))
        ]
        confidence = rng.uniform(0.55, 0.85)
        class_value = {true_class: confidence, neighbor: 1.0 - confidence}
    else:
        class_value = true_class

    # Magnitude: photometric noise.
    observed_magnitude = round(magnitude + rng.gauss(0.0, 0.1), 2)

    # Detection confidence: faint sources are maybe-tuples.
    membership = 1.0 if magnitude < 12.0 else rng.uniform(0.6, 0.95)

    return XTuple.build(
        tuple_id,
        [
            (
                {
                    "designation": name_value,
                    "spectral_class": class_value,
                    "magnitude": observed_magnitude,
                },
                membership,
            )
        ],
    )


def main() -> None:
    alpha, beta, gold = make_catalogs()
    print(f"{alpha.name}: {len(alpha)} sources; "
          f"{beta.name}: {len(beta)} sources; "
          f"{len(gold)} true cross-matches")

    magnitude_comparator = NamedComparator(
        "magnitude", lambda a, b: numeric_similarity(a, b, scale=0.5)
    )
    matcher = AttributeMatcher({
        "designation": UncertainValueComparator(JARO_WINKLER),
        "spectral_class": UncertainValueComparator(JARO_WINKLER),
        "magnitude": UncertainValueComparator(magnitude_comparator),
    })
    model = CombinedDecisionModel(
        WeightedSum(
            {"designation": 0.6, "spectral_class": 0.15, "magnitude": 0.25}
        ),
        ThresholdClassifier(0.93, 0.85),
    )
    detector = DuplicateDetector(matcher, model)

    result = detector.detect_between(alpha, beta)
    report = evaluate_detection(result, gold)
    print(f"compared {len(result.compared_pairs)} pairs "
          f"(cross- and intra-catalog)")
    print(f"matches: {len(result.matches)}, "
          f"possible: {len(result.possible_matches)}")
    print(f"precision={report.precision:.3f} recall={report.recall:.3f} "
          f"F1={report.f1:.3f}")

    print("\nSample consolidated identifications:")
    for left, right in result.matches[:5]:
        print(f"  {left} ≡ {right}")


if __name__ == "__main__":
    main()
