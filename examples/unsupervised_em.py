"""Unsupervised Fellegi–Sunter: estimate m/u probabilities with EM.

The paper's probabilistic decision model (Section III-D) needs the
conditional probabilities m(c⃗) and u(c⃗); [26] estimates them without
labeled data via the EM algorithm.  This example:

1. generates a probabilistic relation with ground truth (used only for
   the final scoring, never for training),
2. collects comparison vectors over SNM candidates,
3. runs EM to estimate per-attribute m/u probabilities and the match
   prevalence,
4. plugs the estimates into a FellegiSunterModel and detects duplicates,
5. scores the automatic decisions (possible matches go to clerical
   review, per Figure 2).

Run:  python examples/unsupervised_em.py
"""

from repro.datagen import DatasetConfig, JOBS, LIGHT_UNCERTAINTY, generate_dataset
from repro.matching import (
    AttributeMatcher,
    DuplicateDetector,
    FellegiSunterModel,
    ThresholdClassifier,
    estimate_em,
)
from repro.reduction import SortedNeighborhood, SubstringKey
from repro.similarity import (
    JARO_WINKLER,
    PatternPolicy,
    UncertainValueComparator,
)
from repro.verification import PossiblePolicy, evaluate_detection

KEY = SubstringKey([("name", 3), ("job", 2)])
AGREEMENT = 0.85


def main() -> None:
    dataset = generate_dataset(
        DatasetConfig(
            entity_count=120,
            duplicate_rate=0.5,
            record_error_rate=0.4,
            profile=LIGHT_UNCERTAINTY,
            seed=23,
        ),
        flat=True,
    )
    relation = dataset.relation
    print(f"{len(relation)} tuples, {len(dataset.true_matches)} true pairs")

    matcher = AttributeMatcher({
        "name": UncertainValueComparator(JARO_WINKLER),
        "job": UncertainValueComparator(
            JARO_WINKLER,
            pattern_policy=PatternPolicy.EXPAND,
            pattern_lexicon=JOBS,
        ),
    })

    # Training pool: SNM candidates (no labels involved).
    candidates = list(SortedNeighborhood(KEY, window=8).pairs(relation))
    vectors = [
        matcher.compare_rows(
            relation.get(left).alternatives[0],
            relation.get(right).alternatives[0],
        )
        for left, right in candidates
    ]
    print(f"EM training pool: {len(vectors)} comparison vectors")

    estimate = estimate_em(vectors, agreement_threshold=AGREEMENT)
    print(f"EM converged after {estimate.iterations} iterations")
    print(f"  match prevalence π = {estimate.prevalence:.3f}")
    for attribute in ("name", "job"):
        print(
            f"  {attribute}: m={estimate.m_probabilities[attribute]:.3f} "
            f"u={estimate.u_probabilities[attribute]:.3f}"
        )

    model = FellegiSunterModel(
        estimate.m_probabilities,
        estimate.u_probabilities,
        ThresholdClassifier(20.0, 1.0),
        agreement_threshold=AGREEMENT,
    )
    result = DuplicateDetector(matcher, model).detect(relation)

    report = evaluate_detection(
        result, dataset.true_matches, possible_policy=PossiblePolicy.EXCLUDE
    )
    print(f"\nautomatic decisions: {len(result.matches)} matches, "
          f"{len(result.possible_matches)} sent to clerical review")
    print(f"precision={report.precision:.3f} recall={report.recall:.3f} "
          f"F1={report.f1:.3f}")


if __name__ == "__main__":
    main()
