"""Walk through every worked example of the paper, printing each figure.

Reproduces, with library calls only (no hard-coded results):

* Figure 4 / §IV-A — attribute value matching on flat tuples (Eq. 5),
* Figure 5 / Figure 7 — x-relations and their possible worlds,
* §IV-B — similarity-based (Eq. 6) and decision-based (Eqs. 7-9)
  derivations,
* Figures 9-13 — the Sorted-Neighborhood adaptations,
* Figure 14 — blocking with alternative keys.

Run:  python examples/paper_walkthrough.py
"""

from repro.experiments import (
    figure_7_possible_worlds,
    figure_9_sorted_world_orders,
    figure_10_certain_key_order,
    figure_11_sorted_alternatives,
    figure_13_uncertain_key_ranking,
    figure_14_alternative_key_blocking,
    paper_matcher,
    paper_model,
    relation_r1,
    relation_r2,
    relation_r3,
    relation_r4,
    section_4a_flat_example,
    section_4b_derivations,
)


def heading(text: str) -> None:
    print(f"\n{'-' * 64}\n{text}\n{'-' * 64}")


def main() -> None:
    heading("Figure 4: the probabilistic relations R1 and R2")
    print(relation_r1().pretty())
    print()
    print(relation_r2().pretty())

    heading("§IV-A: attribute value matching on (t11, t22)")
    flat = section_4a_flat_example()
    print(f"sim(t11.name, t22.name) = {flat.name_similarity:.4f}  (paper: 0.9)")
    print(f"sim(t11.job,  t22.job)  = {flat.job_similarity:.4f}  (paper: 0.59)")
    print(f"sim(t11, t22)           = {flat.tuple_similarity:.4f}  (paper: 0.838)")

    heading("Figure 5: the x-relations R3 and R4")
    print(relation_r3().pretty())
    print()
    print(relation_r4().pretty())

    heading("Figure 7: possible worlds of {t32, t42}")
    worlds = figure_7_possible_worlds()
    for index, probability in enumerate(worlds.world_probabilities):
        print(f"P(I{index + 1}) = {probability:.2f}")
    print(f"P(B) = {worlds.presence_probability:.2f}  (paper: 0.72)")
    print(
        "conditional: "
        + ", ".join(f"{p:.4f}" for p in worlds.conditional_probabilities)
        + "  (paper: 3/9, 2/9, 4/9)"
    )

    heading("§IV-B: derivations on (t32, t42)")
    derivation = section_4b_derivations()
    for i, sim in enumerate(derivation.alternative_similarities):
        print(f"sim(t32^{i + 1}, t42) = {sim:.4f}")
    print(f"similarity-based (Eq. 6):  {derivation.similarity_based:.4f}  (paper: 7/15)")
    print(f"statuses: {derivation.alternative_statuses}  (paper: m, p, u)")
    print(f"decision-based (Eq. 7):    {derivation.decision_based:.4f}  (paper: 0.75)")
    print(f"expected matching result:  {derivation.expected_matching_result:.4f}")

    heading("The full Figure-6 decision for (t32, t42)")
    from repro.experiments import xtuple_t32, xtuple_t42
    from repro.matching import MatchingWeight, XTupleDecisionProcedure

    procedure = XTupleDecisionProcedure(
        paper_matcher(), paper_model(), MatchingWeight()
    )
    decision = procedure.decide(xtuple_t32(), xtuple_t42())
    print(f"sim(t32, t42) = {decision.similarity:.4f} ⇒ η = {decision.status}")

    heading("Figure 9: multi-pass SNM orders for worlds I1 and I2")
    for world, order in figure_9_sorted_world_orders().items():
        print(f"{world}: {' '.join(order)}")

    heading("Figure 10: certain keys (most probable alternative)")
    for key, tuple_id in figure_10_certain_key_order():
        print(f"{key:8s} {tuple_id}")

    heading("Figures 11/12: sorting alternatives")
    fig11 = figure_11_sorted_alternatives()
    for key, tuple_id in fig11["deduped_entries"]:
        print(f"{key:8s} {tuple_id}")
    print(
        "matchings (window 2): "
        + ", ".join(f"({a},{b})" for a, b in fig11["matchings"])
    )

    heading("Figure 13: ranking by uncertain keys")
    fig13 = figure_13_uncertain_key_ranking()
    for tuple_id, distribution in fig13["key_distributions"]:
        rendered = ", ".join(f"{k}: {p:g}" for k, p in distribution)
        print(f"{tuple_id}: {rendered}")
    print("ranked: " + " ".join(fig13["ranked_ids"]))

    heading("Figure 14: blocking with alternative keys")
    fig14 = figure_14_alternative_key_blocking()
    for key, members in fig14["blocks"].items():
        print(f"block {key:4s}: {' '.join(members)}")
    print(
        "matchings: "
        + ", ".join(f"({a},{b})" for a, b in fig14["matchings"])
    )


if __name__ == "__main__":
    main()
