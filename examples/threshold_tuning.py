"""Threshold tuning → derived cutoffs → pruned detection.

The Section III-E feedback loop, extended with PR-4 threshold pushdown:

1. run detection with first-guess thresholds over a paper-style person
   relation with known ground truth;
2. sweep candidate thresholds on the labeled similarities and let
   ``recommend_thresholds`` pick T_μ (best F1) and T_λ (clerical-review
   recall) — Figure 2's two-threshold classification, data-driven;
3. invert the tuned decision configuration into per-attribute
   ``min_similarity`` cutoffs (``detector.attribute_floors()``) and
   re-run detection with ``min_similarity="auto"`` — identical
   decisions, pruned kernels;
4. sanity-check the same pushdown on the paper's own ℛ34 x-relation.

Run:  python examples/threshold_tuning.py
"""

import time

from repro.datagen import JOBS, DatasetConfig, generate_dataset
from repro.experiments.paper_data import MU_JOBS, relation_r34
from repro.matching import (
    AttributeMatcher,
    DuplicateDetector,
    FellegiSunterModel,
    ThresholdClassifier,
)
from repro.pdb.relations import XRelation
from repro.similarity import (
    FAST_LEVENSHTEIN,
    PatternPolicy,
    UncertainValueComparator,
)
from repro.verification import (
    evaluate_detection,
    normalize_pairs,
    recommend_thresholds,
    threshold_sweep,
)


def matcher() -> AttributeMatcher:
    """Levenshtein matching (bandable kernels), pattern-aware jobs."""
    return AttributeMatcher(
        {
            "name": UncertainValueComparator(FAST_LEVENSHTEIN, cache=True),
            "job": UncertainValueComparator(
                FAST_LEVENSHTEIN,
                cache=True,
                pattern_policy=PatternPolicy.EXPAND,
                pattern_lexicon=JOBS,
            ),
        }
    )


def model(classifier: ThresholdClassifier) -> FellegiSunterModel:
    return FellegiSunterModel(
        m_probabilities={"name": 0.92, "job": 0.7},
        u_probabilities={"name": 0.03, "job": 0.05},
        classifier=classifier,
        agreement_threshold=0.75,
    )


def main() -> None:
    dataset = generate_dataset(
        DatasetConfig(entity_count=150, duplicate_rate=0.5, seed=23),
        flat=True,
    )
    relation = dataset.relation
    gold = normalize_pairs(dataset.true_matches)

    # 1. First pass with guessed ratio thresholds.
    first = DuplicateDetector(matcher(), model(ThresholdClassifier(100.0, 100.0)))
    result = first.detect(relation)
    report = evaluate_detection(result, dataset.true_matches)
    print(f"first pass (T_mu = T_lambda = 100): "
          f"precision={report.precision:.3f} recall={report.recall:.3f} "
          f"f1={report.f1:.3f}")

    # 2. Sweep the labeled similarities, pick T_mu / T_lambda.
    samples = [
        (d.similarity, tuple(sorted((d.left_id, d.right_id))) in gold)
        for d in result.decisions
    ]
    sweep = threshold_sweep(samples)
    print(f"swept {len(sweep)} candidate thresholds "
          f"(similarity range of the matching weight R)")
    tuned = recommend_thresholds(samples, review_recall=0.95)
    print(f"recommended: T_mu={tuned.match_threshold:.3g}, "
          f"T_lambda={tuned.unmatch_threshold:.3g}")

    # 3. The tuned configuration inverts into per-attribute cutoffs:
    #    Fellegi–Sunter observes similarities only through
    #    gamma_a = [c_a >= agreement_threshold], so every comparison may
    #    stop once it provably falls below that floor — for any T_lambda.
    detector = DuplicateDetector(matcher(), model(tuned))
    floors = detector.attribute_floors()
    print(f"derived min_similarity cutoffs: {floors}")

    start = time.perf_counter()
    exact = detector.detect(relation, keep_derivations=False)
    exact_seconds = time.perf_counter() - start
    start = time.perf_counter()
    pruned = detector.detect(
        relation, min_similarity="auto", keep_derivations=False
    )
    pruned_seconds = time.perf_counter() - start

    identical = [
        (d.left_id, d.right_id, d.status, d.similarity)
        for d in exact.decisions
    ] == [
        (d.left_id, d.right_id, d.status, d.similarity)
        for d in pruned.decisions
    ]
    print(f"exact {exact_seconds:.3f}s vs pruned {pruned_seconds:.3f}s — "
          f"decisions bitwise identical: {identical}")
    assert identical, "pushdown must never change a decision"
    tuned_report = evaluate_detection(pruned, dataset.true_matches)
    print(f"tuned pass: precision={tuned_report.precision:.3f} "
          f"recall={tuned_report.recall:.3f} f1={tuned_report.f1:.3f}")

    # 4. The paper's own x-relation (ℛ34), patterns expanded.
    r34 = XRelation(
        "R34x",
        ("name", "job"),
        [
            xt.expand_patterns({"job": MU_JOBS}).expand()
            for xt in relation_r34()
        ],
    )
    exact_r34 = detector.detect(r34)
    pruned_r34 = detector.detect(r34, min_similarity="auto")
    assert [
        (d.status, d.similarity) for d in exact_r34.decisions
    ] == [(d.status, d.similarity) for d in pruned_r34.decisions]
    print(f"paper relation ℛ34: {len(pruned_r34.decisions)} pairs decided, "
          f"{len(pruned_r34.matches)} matches — pushdown exact")


if __name__ == "__main__":
    main()
