"""Bench: threshold pushdown (``min_similarity``) vs exact matching.

The PR-4 pushdown threads the decision model's classifier structure
down to the banded edit-distance kernels: a Fellegi–Sunter model reads
attribute similarities only through ``γ_a = [c_a ≥ agreement]``, so
every comparison may stop as soon as the similarity provably falls
below the agreement threshold.  These benches track that

* cutoff-aware detection (``min_similarity="auto"``) stays measurably
  ahead of the exact path on a blocking workload whose attribute
  strings are long enough for the kernels to matter, while producing
  the identical decisions (pinned bitwise by
  ``tests/test_threshold_pushdown.py``);
* the kernel-level cutoff band itself stays ahead of the exact DP on
  the workload's vocabulary pairs.

The workload differs deliberately from the planner bench: longer
attribute values (full names, multi-word affiliations) shift cost into
the comparison kernels — exactly the regime the paper's "compute only
what the thresholds can observe" argument targets.  Short-string
workloads (the generated-corpus benches) are cache- and
pipeline-bound; pushdown neither helps nor hurts them.
"""

from __future__ import annotations

import itertools
import os
import random

import pytest

#: compare_bench.py --quick exports BENCH_QUICK=1; pedantic benches drop
#: to one round then so the CI smoke stays fast.
ROUNDS = 1 if os.environ.get("BENCH_QUICK") else 3

from repro.matching import (
    AttributeMatcher,
    DuplicateDetector,
    FellegiSunterModel,
    ThresholdClassifier,
)
from repro.pdb.relations import XRelation
from repro.pdb.xtuples import TupleAlternative, XTuple
from repro.reduction import CertainKeyBlocking, SubstringKey
from repro.similarity import (
    FAST_LEVENSHTEIN,
    UncertainValueComparator,
    banded_levenshtein_similarity,
)

BLOCK_KEY = SubstringKey([("name", 1)])
AGREEMENT = 0.85

_FIRST = [
    "alexander", "bernadette", "christopher", "dominique", "elisabeth",
    "francesca", "gwendolyn", "henrietta", "immanuel", "jacqueline",
    "konstantin", "leopoldine", "maximilian", "nathanael", "ottoline",
    "persephone", "quentin", "rosalinde", "sebastian", "theodora",
]
_LAST = [
    "abramowitz", "blumenthal", "castellano", "delacroix", "eisenhower",
    "fitzgerald", "goldschmidt", "hutchinson", "iannucci", "jankowski",
    "kaltenbrunner", "lichtenstein", "montgomery", "neumayer",
    "oppenheimer", "pellegrini", "quarshie", "rosenberger",
    "schwarzenegger", "tchaikovsky",
]
_AFFILIATIONS = [
    "institute of probabilistic databases",
    "department of record linkage",
    "laboratory for uncertain data",
    "center for data integration",
    "school of information systems",
    "faculty of computer science",
    "observatory of data quality",
    "bureau of entity resolution",
]


def _corrupt(rng: random.Random, text: str) -> str:
    letters = list(text)
    for _ in range(rng.randint(1, 2)):
        index = rng.randrange(len(letters))
        roll = rng.random()
        if roll < 0.5:
            letters[index] = chr(97 + rng.randrange(26))
        elif roll < 0.75:
            letters.insert(index, chr(97 + rng.randrange(26)))
        else:
            del letters[index]
    return "".join(letters)


def _build_relation(size: int, seed: int = 29) -> XRelation:
    """Flat person records with long string attributes and duplicates."""
    rng = random.Random(seed)
    tuples: list[XTuple] = []
    counter = 0
    while len(tuples) < size:
        name = f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
        affiliation = rng.choice(_AFFILIATIONS)
        copies = 2 if rng.random() < 0.35 else 1
        for copy in range(copies):
            if copy == 0:
                observed_name, observed_affiliation = name, affiliation
            else:
                observed_name = _corrupt(rng, name)
                observed_affiliation = (
                    affiliation
                    if rng.random() < 0.6
                    else _corrupt(rng, affiliation)
                )
            tuples.append(
                XTuple(
                    f"t{counter}",
                    (
                        TupleAlternative(
                            {
                                "name": observed_name,
                                "affil": observed_affiliation,
                            },
                            1.0,
                        ),
                    ),
                )
            )
            counter += 1
    return XRelation("people", ("name", "affil"), tuples[:size])


@pytest.fixture(scope="module")
def cutoff_relation():
    return _build_relation(1200)


def _detector() -> DuplicateDetector:
    matcher = AttributeMatcher(
        {
            "name": UncertainValueComparator(FAST_LEVENSHTEIN, cache=True),
            "affil": UncertainValueComparator(
                FAST_LEVENSHTEIN, cache=True
            ),
        }
    )
    model = FellegiSunterModel(
        m_probabilities={"name": 0.9, "affil": 0.75},
        u_probabilities={"name": 0.02, "affil": 0.1},
        classifier=ThresholdClassifier(40.0, 2.0),
        agreement_threshold=AGREEMENT,
    )
    return DuplicateDetector(
        matcher, model, reducer=CertainKeyBlocking(BLOCK_KEY)
    )


@pytest.mark.parametrize("mode", ["exact", "auto"])
def test_bench_cutoff_detection(benchmark, cutoff_relation, mode):
    """Blocking workload, serial: exact vs derivation-aware cutoffs."""
    min_similarity = None if mode == "exact" else "auto"

    def run():
        return _detector().detect(
            cutoff_relation,
            min_similarity=min_similarity,
            keep_derivations=False,
        )

    result = benchmark.pedantic(run, iterations=1, rounds=ROUNDS)
    assert len(result.decisions) > 0
    assert len(result.matches) > 0


def test_bench_cutoff_detection_results_agree(cutoff_relation):
    """Shape pin riding the bench data: same matches, either path.

    (Bitwise equivalence over all ten reducers and every execution
    mode lives in ``tests/test_threshold_pushdown.py``.)
    """
    exact = _detector().detect(cutoff_relation, keep_derivations=False)
    pruned = _detector().detect(
        cutoff_relation, min_similarity="auto", keep_derivations=False
    )
    assert [
        (d.left_id, d.right_id, d.status, d.similarity)
        for d in exact.decisions
    ] == [
        (d.left_id, d.right_id, d.status, d.similarity)
        for d in pruned.decisions
    ]


def test_bench_cutoff_kernel_band(benchmark, cutoff_relation):
    """The kernel-level effect: banded cutoff DP on vocabulary pairs."""
    names = sorted(
        {
            str(alternative.value("name").certain_value)
            for xtuple in cutoff_relation
            for alternative in xtuple.alternatives
        }
    )
    pairs = list(
        itertools.islice(itertools.combinations(names, 2), 30_000)
    )

    def run():
        total = 0.0
        for left, right in pairs:
            total += banded_levenshtein_similarity(
                left, right, min_similarity=AGREEMENT
            )
        return total

    total = benchmark(run)
    assert total >= 0.0
