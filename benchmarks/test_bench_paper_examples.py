"""Bench: Figure 4 and the Section IV-A worked example.

Regenerates the flat-model reference numbers (0.9 / 53/90 / 377/450) and
times attribute value matching over the paper's relations ℛ1 × ℛ2.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    paper_matcher,
    paper_model,
    relation_r1,
    relation_r2,
    section_4a_flat_example,
)


def test_bench_section_4a_numbers(benchmark):
    """Recompute the three §IV-A reference values."""
    example = benchmark(section_4a_flat_example)
    assert example.name_similarity == pytest.approx(0.9)
    assert example.job_similarity == pytest.approx(53 / 90)
    assert example.tuple_similarity == pytest.approx(377 / 450)


def test_bench_figure4_cross_source_matching(benchmark):
    """Time the full ℛ1 × ℛ2 attribute-matching sweep (9 pairs)."""
    r1, r2 = relation_r1(), relation_r2()
    matcher = paper_matcher()
    model = paper_model()

    def run():
        similarities = {}
        for left in r1:
            for right in r2:
                vector = matcher.compare_rows(left, right)
                similarities[(left.tuple_id, right.tuple_id)] = (
                    model.similarity(vector)
                )
        return similarities

    similarities = benchmark(run)
    assert len(similarities) == 9
    # The headline pair of the worked example is the most similar one.
    best_pair = max(similarities, key=similarities.get)
    assert best_pair == ("t11", "t22")
    assert similarities[("t11", "t22")] == pytest.approx(377 / 450)


def test_bench_equation5_scaling(benchmark):
    """Equation 5 cost grows with support sizes; time a 10×10 support."""
    from repro.pdb import ProbabilisticValue
    from repro.similarity import HAMMING, UncertainValueComparator

    left = ProbabilisticValue(
        {f"value{i:02d}": 0.1 for i in range(10)}
    )
    right = ProbabilisticValue(
        {f"value{i:02d}x": 0.1 for i in range(10)}
    )
    comparator = UncertainValueComparator(HAMMING)
    result = benchmark(comparator, left, right)
    assert 0.0 <= result <= 1.0
