"""Bench: Tier-B experiment E3 — reduction ratio vs pairs completeness.

Runs every search-space reduction strategy of Section V on a generated
x-relation with ground truth and asserts the qualitative trade-off the
paper argues for:

* every heuristic prunes most of the pair space (high reduction ratio);
* the probabilistic adaptations (alternatives / uncertain keys) retain
  at least as many true matches as the naive certain-key strategies;
* growing the SNM window increases pairs completeness monotonically
  (up to noise) while reduction ratio falls.
"""

from __future__ import annotations

from repro.experiments import run_e3_reduction, run_e3_window_sweep


def _row(rows, name):
    for row in rows:
        if row.strategy == name:
            return row
    raise AssertionError(f"strategy {name} missing")


def test_bench_e3_strategy_table(benchmark):
    rows = benchmark.pedantic(
        run_e3_reduction,
        kwargs={"entity_count": 100, "seed": 17, "window": 5},
        iterations=1,
        rounds=1,
    )

    full = _row(rows, "full_comparison")
    assert full.reduction_ratio == 0.0
    assert full.pairs_completeness == 1.0

    for name in (
        "snm_certain_key",
        "snm_alternatives",
        "snm_uncertain_ranked",
        "blocking_certain_key",
        "blocking_alternative_keys",
    ):
        row = _row(rows, name)
        assert row.reduction_ratio > 0.6, name
        assert row.pairs_completeness > 0.3, name

    # Probabilistic adaptations keep at least the certain-key matches.
    assert (
        _row(rows, "snm_alternatives").pairs_completeness
        >= _row(rows, "snm_certain_key").pairs_completeness - 0.05
    )
    assert (
        _row(rows, "blocking_alternative_keys").pairs_completeness
        >= _row(rows, "blocking_certain_key").pairs_completeness - 1e-9
    )


def test_bench_e3_window_sweep(benchmark):
    rows = benchmark.pedantic(
        run_e3_window_sweep,
        kwargs={"entity_count": 100, "seed": 17, "windows": (2, 5, 10)},
        iterations=1,
        rounds=1,
    )
    by_strategy: dict[str, list[dict]] = {}
    for row in rows:
        by_strategy.setdefault(row["strategy"], []).append(row)

    for strategy, strategy_rows in by_strategy.items():
        strategy_rows.sort(key=lambda r: r["window"])
        completenesses = [r["pairs_completeness"] for r in strategy_rows]
        ratios = [r["reduction_ratio"] for r in strategy_rows]
        # Wider window ⇒ completeness non-decreasing, reduction falls.
        assert completenesses == sorted(completenesses), strategy
        assert ratios == sorted(ratios, reverse=True), strategy
