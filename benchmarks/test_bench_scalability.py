"""Bench: Tier-B experiment E4 — scalability.

* full pipeline wall-time with and without reduction (the motivation of
  Section V: full comparison is quadratic, reduced pipelines near-linear
  in candidates);
* the O(n log n) uncertain-key ranking claim (Section V-A.4, [37]).
"""

from __future__ import annotations

import pytest

from repro.datagen import DatasetConfig, generate_dataset
from repro.experiments.quality import default_matcher, weighted_model
from repro.matching import DuplicateDetector
from repro.reduction import (
    SortedNeighborhood,
    SubstringKey,
    UncertainKeySNM,
)

KEY = SubstringKey([("name", 3), ("job", 2)])


@pytest.mark.parametrize("entities", [50, 100, 200])
def test_bench_full_pipeline(benchmark, entities):
    """Unreduced detection: quadratic pair growth."""
    dataset = generate_dataset(
        DatasetConfig(entity_count=entities, seed=41), flat=True
    )
    detector = DuplicateDetector(default_matcher(), weighted_model())
    result = benchmark.pedantic(
        detector.detect, args=(dataset.relation,), iterations=1, rounds=1
    )
    n = result.relation_size
    assert len(result.compared_pairs) == n * (n - 1) // 2


@pytest.mark.parametrize("entities", [50, 100, 200])
def test_bench_reduced_pipeline(benchmark, entities):
    """SNM-reduced detection: candidate count linear in n·window."""
    dataset = generate_dataset(
        DatasetConfig(entity_count=entities, seed=41), flat=True
    )
    detector = DuplicateDetector(
        default_matcher(),
        weighted_model(),
        reducer=SortedNeighborhood(KEY, window=5),
    )
    result = benchmark.pedantic(
        detector.detect, args=(dataset.relation,), iterations=1, rounds=1
    )
    n = result.relation_size
    assert len(result.compared_pairs) <= n * 4


@pytest.mark.parametrize("entities", [200, 400, 800])
def test_bench_uncertain_key_ranking_scaling(benchmark, entities):
    """Expected-rank sorting of uncertain keys: O(n log n) (Sec. V-A.4)."""
    dataset = generate_dataset(
        DatasetConfig(entity_count=entities, seed=43)
    )
    snm = UncertainKeySNM(KEY, window=3)

    def run():
        return len(snm.ranked_ids(dataset.relation))

    count = benchmark(run)
    assert count == len(dataset.relation)
