"""Bench: Section IV-B — the derivation functions on x-tuple pairs.

Regenerates the worked example (similarity-based 7/15, decision-based
0.75, expected matching result 8/9) and compares the per-pair cost of
every derivation on larger synthetic x-tuples.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    paper_matcher,
    paper_model,
    section_4b_derivations,
    xtuple_t32,
    xtuple_t42,
)
from repro.matching import (
    ExpectedMatchingResult,
    ExpectedSimilarity,
    MatchingWeight,
    MostProbableWorldSimilarity,
    XTupleDecisionProcedure,
)
from repro.pdb import XTuple


def test_bench_section_4b_reproduction(benchmark):
    """All §IV-B reference numbers in one pass."""
    example = benchmark(section_4b_derivations)
    assert example.similarity_based == pytest.approx(7 / 15)
    assert example.decision_based == pytest.approx(0.75)
    assert example.expected_matching_result == pytest.approx(8 / 9)
    assert example.alternative_statuses == ("m", "p", "u")


def _wide_xtuple(tid: str, width: int) -> XTuple:
    share = 0.9 / width
    return XTuple.build(
        tid,
        [
            ({"name": f"Name{i:03d}", "job": f"job{i % 7}"}, share)
            for i in range(width)
        ],
    )


@pytest.mark.parametrize(
    "derivation_name,derivation",
    [
        ("expected_similarity", ExpectedSimilarity()),
        ("matching_weight", MatchingWeight()),
        ("expected_matching_result", ExpectedMatchingResult()),
        ("most_probable_world", MostProbableWorldSimilarity()),
    ],
)
def test_bench_derivation_cost_10x10(benchmark, derivation_name, derivation):
    """Per-pair cost of ϑ on a 10×10 comparison matrix.

    All derivations are O(k·l) over the matrix; the decision-based ones
    additionally classify each cell.  The bench records the constant-
    factor differences.
    """
    matcher = paper_matcher()
    model = paper_model()
    procedure = XTupleDecisionProcedure(matcher, model, derivation)
    left = _wide_xtuple("L", 10)
    right = _wide_xtuple("R", 10)
    result = benchmark(procedure.similarity, left, right)
    assert result >= 0.0


def test_bench_paper_pair_decision(benchmark):
    """Full Figure-6 decision on the paper's (t32, t42) pair."""
    matcher = paper_matcher()
    model = paper_model()
    procedure = XTupleDecisionProcedure(matcher, model, MatchingWeight())
    t32, t42 = xtuple_t32(), xtuple_t42()
    decision = benchmark(procedure.decide, t32, t42)
    assert decision.similarity == pytest.approx(0.75)
    assert decision.status.value == "m"  # 0.75 > T_mu=0.7


def test_bench_flat_embedding_overhead(benchmark):
    """The 1×1-matrix special case should cost ~one vector comparison."""
    from repro.pdb import ProbabilisticTuple

    matcher = paper_matcher()
    model = paper_model()
    procedure = XTupleDecisionProcedure(matcher, model)
    left = ProbabilisticTuple("a", {"name": "Tim", "job": "pilot"})
    right = ProbabilisticTuple("b", {"name": "Tom", "job": "pilot"})
    decision = benchmark(procedure.decide_flat, left, right)
    assert decision.similarity > 0.5
