"""Bench: Figure 7 — possible-world enumeration and conditioning.

Regenerates the eight worlds of {t32, t42} with the paper's exact
probabilities and P(B) = 0.72, then times world enumeration at growing
relation sizes (the blow-up that motivates Section V's heuristics).
"""

from __future__ import annotations

import pytest

from repro.experiments import figure_7_possible_worlds, xtuple_t32
from repro.pdb import (
    XTuple,
    enumerate_full_worlds,
    enumerate_worlds,
    world_count,
)


def test_bench_figure7_reproduction(benchmark):
    """Eight worlds, paper order, P(B)=0.72, conditional probs 3/9 2/9 4/9."""
    worlds = benchmark(figure_7_possible_worlds)
    assert worlds.world_probabilities == pytest.approx(
        (0.24, 0.16, 0.32, 0.08, 0.06, 0.04, 0.08, 0.02)
    )
    assert worlds.presence_probability == pytest.approx(0.72)
    assert worlds.conditional_probabilities == pytest.approx(
        (3 / 9, 2 / 9, 4 / 9)
    )


def _chain(length: int) -> list[XTuple]:
    return [
        XTuple.build(
            f"t{i}",
            [({"a": "x"}, 0.4), ({"a": "y"}, 0.3), ({"a": "z"}, 0.2)],
        )
        for i in range(length)
    ]


@pytest.mark.parametrize("size", [4, 6, 8])
def test_bench_world_enumeration_blowup(benchmark, size):
    """Exhaustive enumeration is exponential: 4^n worlds for maybe
    3-alternative x-tuples — the cost Section V-A.1 warns about."""
    xtuples = _chain(size)
    expected = world_count(xtuples)

    def run():
        return sum(1 for _ in enumerate_worlds(xtuples))

    count = benchmark(run)
    assert count == expected == 4**size


def test_bench_full_world_conditioning(benchmark):
    """Conditioning on presence keeps 3^n of 4^n worlds (n=6)."""
    xtuples = _chain(6)
    full = benchmark(enumerate_full_worlds, xtuples)
    assert len(full) == 3**6
    assert sum(w.probability for w in full) == pytest.approx(1.0)


def test_bench_figure7_pair_worlds_scaling(benchmark):
    """Per-pair world work (the Figure-6 inner loop) stays tiny: k×l."""
    t32 = xtuple_t32()

    def run():
        return len(list(enumerate_worlds([t32, t32, t32])))

    count = benchmark(run)
    assert count == 4**3
