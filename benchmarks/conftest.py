"""Shared fixtures for the benchmark harness.

Benchmarks double as the experiment regeneration harness: each module
covers one figure or Tier-B experiment of the paper (see DESIGN.md's
experiment index) and asserts the qualitative *shape* of the result
(who wins, what reproduces) while pytest-benchmark records the timing.
Human-readable tables are produced by ``python -m repro.experiments.runner``.
"""

from __future__ import annotations

import pytest

from repro.datagen import DatasetConfig, generate_dataset


@pytest.fixture(scope="session")
def small_dataset():
    """A small flat dataset shared by decision-model benches."""
    return generate_dataset(
        DatasetConfig(entity_count=60, seed=101), flat=True
    )


@pytest.fixture(scope="session")
def medium_dataset():
    """A medium x-tuple dataset shared by reduction benches."""
    return generate_dataset(DatasetConfig(entity_count=150, seed=103))
