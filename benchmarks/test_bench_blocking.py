"""Bench: Figure 14 — blocking variants on ℛ34 and generated data.

Regenerates the six-block alternative-key partition and compares the
candidate-generation cost of the four blocking adaptations of
Section V-B.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    BLOCKING_KEY,
    figure_14_alternative_key_blocking,
)
from repro.reduction import (
    AlternativeKeyBlocking,
    CertainKeyBlocking,
    MultiPassBlocking,
    SubstringKey,
    UncertainKeyClusteringBlocking,
)


def test_bench_figure14_reproduction(benchmark):
    """Six blocks; three matchings; in-block dedup (Figure 14)."""
    result = benchmark(figure_14_alternative_key_blocking)
    assert result["block_count"] == 6
    assert len(result["matchings"]) == 3


@pytest.mark.parametrize(
    "strategy_name,factory",
    [
        ("certain_key", lambda: CertainKeyBlocking(BLOCKING_KEY)),
        ("alternative_keys", lambda: AlternativeKeyBlocking(BLOCKING_KEY)),
        (
            "uncertain_clustering",
            lambda: UncertainKeyClusteringBlocking(
                SubstringKey([("name", 3), ("job", 2)]), radius=0.34
            ),
        ),
    ],
)
def test_bench_blocking_on_generated_data(
    benchmark, medium_dataset, strategy_name, factory
):
    """Candidate generation cost of each blocking variant."""
    strategy = factory()
    relation = medium_dataset.relation

    def run():
        return sum(1 for _ in strategy.pairs(relation))

    candidates = benchmark(run)
    total = len(relation) * (len(relation) - 1) // 2
    assert 0 < candidates < total, "blocking must prune the pair space"


def test_bench_multipass_blocking_paper_relation(benchmark):
    """Multi-pass blocking over diversified worlds of ℛ34."""
    from repro.experiments.paper_examples import _expand_r34

    relation = _expand_r34()
    blocking = MultiPassBlocking(
        BLOCKING_KEY, selection="diverse", world_count=3
    )

    def run():
        return set(blocking.pairs(relation))

    pairs = benchmark(run)
    assert pairs


def test_bench_alternative_vs_certain_coverage(medium_dataset):
    """Shape check: alternative-key blocking always covers at least the
    certain-key candidates (more blocks per tuple ⇒ superset)."""
    relation = medium_dataset.relation
    certain = set(CertainKeyBlocking(BLOCKING_KEY).pairs(relation))
    alternative = set(AlternativeKeyBlocking(BLOCKING_KEY).pairs(relation))
    assert certain <= alternative
