"""Bench: incremental delta refresh vs full recompute.

The incremental service's headline claim (PR-8 acceptance): on a
skewed-block workload, ingesting a ~1% delta re-executes only the
partitions the delta touched and lands ≥5× faster than a from-scratch
detection over the materialized union, with bitwise-identical
decisions.

Three bench families:

* ``ingest_delta`` — wall clock of one ingest of a 1%-of-tuples batch
  against a warm :class:`~repro.service.DetectionSession`.  Each round
  rewrites the same handful of tuples with fresh content, so every
  round re-executes the same touched blocks and splices the rest.
* ``full_union`` — the baseline being displaced: a from-scratch
  ``detect`` over the materialized base ⊎ delta.
* ``delta_speedup`` — the explicit acceptance assertion, measured
  inside one test so the ratio is taken on the same host under the
  same load: ≥5× and bitwise equality.
"""

from __future__ import annotations

import os
import random
import time

import pytest

#: compare_bench.py --quick exports BENCH_QUICK=1; pedantic benches drop
#: to one round then so the CI smoke stays fast.
ROUNDS = 1 if os.environ.get("BENCH_QUICK") else 3

from repro.experiments.quality import default_matcher, weighted_model
from repro.matching import DuplicateDetector
from repro.pdb.relations import XRelation
from repro.pdb.xtuples import TupleAlternative, XTuple
from repro.reduction import CertainKeyBlocking, SubstringKey

BLOCK_KEY = SubstringKey([("name", 1)])

#: 16 blocks × 30 members = 480 tuples; every block carries 435 pairs,
#: skewed only by content length — the delta below touches one block.
BLOCK_LETTERS = "abcdefghijklmnop"
BLOCK_MEMBERS = 30
#: ~1% of the tuples, all in the 'a' block.
DELTA_SIZE = 5


def _word(rng: random.Random, prefix: str, length: int = 14) -> str:
    return prefix + "".join(
        rng.choice("aeioubcdfgstlmnr") for _ in range(length)
    )


def _blocked_relation(seed: int = 20810) -> XRelation:
    rng = random.Random(seed)
    tuples = []
    for block, letter in enumerate(BLOCK_LETTERS):
        tuples.extend(
            XTuple(
                f"t{block:02d}{i:03d}",
                (
                    TupleAlternative(
                        {
                            "name": _word(rng, letter),
                            "job": _word(rng, "r"),
                        },
                        1.0,
                    ),
                ),
            )
            for i in range(BLOCK_MEMBERS)
        )
    return XRelation("blocked", ("name", "job"), tuples)


def _delta(relation: XRelation, salt: int) -> list[XTuple]:
    """Rewrite DELTA_SIZE tuples of the 'a' block with fresh content."""
    rng = random.Random(90_000 + salt)
    victims = [f"t00{i:03d}" for i in range(DELTA_SIZE)]
    return [
        XTuple(
            tuple_id,
            (
                TupleAlternative(
                    {"name": _word(rng, "a"), "job": _word(rng, "r")},
                    1.0,
                ),
            ),
        )
        for tuple_id in victims
    ]


def _apply(relation: XRelation, delta: list[XTuple]) -> XRelation:
    overlay = {xt.tuple_id: xt for xt in delta}
    return XRelation(
        "blocked+delta",
        relation.schema.attributes,
        [overlay.get(xt.tuple_id, xt) for xt in relation],
    )


def _detector() -> DuplicateDetector:
    return DuplicateDetector(
        default_matcher(),
        weighted_model(),
        reducer=CertainKeyBlocking(BLOCK_KEY),
    )


@pytest.fixture(scope="module")
def blocked_relation():
    return _blocked_relation()


def test_bench_incremental_ingest_delta(benchmark, blocked_relation):
    """One 1% ingest against a warm session: touched block only."""
    session = _detector().session(
        blocked_relation, keep_derivations=False
    )
    session.detect()
    planned = session.stats.partitions_planned
    salt = iter(range(1_000))

    def run():
        return session.ingest(_delta(blocked_relation, next(salt)))

    result = benchmark.pedantic(run, iterations=1, rounds=ROUNDS)
    assert result.relation_size == len(blocked_relation)
    # Every round re-executed the touched block and spliced the rest.
    assert session.last_report.partitions == 1
    assert session.stats.partitions_reused > planned


def test_bench_incremental_full_union(benchmark, blocked_relation):
    """The displaced baseline: from-scratch detect over base ⊎ delta."""
    union = _apply(blocked_relation, _delta(blocked_relation, 0))
    detector = _detector()

    def run():
        return detector.detect(union, keep_derivations=False)

    result = benchmark.pedantic(run, iterations=1, rounds=ROUNDS)
    assert result.relation_size == len(union)


def test_incremental_delta_speedup_and_equality(blocked_relation):
    """Acceptance: ≥5× vs full recompute, bitwise-identical decisions."""
    session = _detector().session(
        blocked_relation, keep_derivations=False
    )
    session.detect()
    delta = _delta(blocked_relation, 0)

    started = time.perf_counter()
    incremental = session.ingest(delta)
    ingest_elapsed = time.perf_counter() - started

    union = _apply(blocked_relation, delta)
    detector = _detector()
    started = time.perf_counter()
    scratch = detector.detect(union, keep_derivations=False)
    full_elapsed = time.perf_counter() - started

    assert [
        (d.left_id, d.right_id, d.status, d.similarity)
        for d in incremental.decisions
    ] == [
        (d.left_id, d.right_id, d.status, d.similarity)
        for d in scratch.decisions
    ]
    assert incremental.compared_pairs == scratch.compared_pairs
    # 1/16 of the plan re-executes; even with refresh overhead the
    # margin over the acceptance floor is wide.
    assert full_elapsed / ingest_elapsed >= 5.0, (
        f"delta refresh {ingest_elapsed:.3f}s vs full "
        f"{full_elapsed:.3f}s — below the 5× acceptance floor"
    )
