"""Bench: in-memory vs spilled detection — wall clock and peak RSS.

The out-of-core promise is a *memory* bound, not a speed win: detection
over a :class:`~repro.pdb.storage.SpillingXTupleStore` must keep peak
additional RSS bounded by the page cache plus one partition's working
set — not by relation size — while staying within sight of the
in-memory wall clock.  Wall clock is tracked by pytest-benchmark on the
same blocking workload the planner benches use; peak RSS is measured
in fresh subprocesses (``ru_maxrss`` is a process-lifetime high-water
mark, so each backend gets its own interpreter) and stashed into the
benchmark JSON via ``extra_info``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

#: compare_bench.py --quick exports BENCH_QUICK=1; the workload shrinks
#: and pedantic benches drop to one round so the CI smoke stays fast.
QUICK = bool(os.environ.get("BENCH_QUICK"))
ROUNDS = 1 if QUICK else 3
ENTITIES = 300 if QUICK else 1200

from repro.datagen import DatasetConfig, generate_dataset
from repro.experiments.quality import default_matcher, weighted_model
from repro.matching import DuplicateDetector
from repro.pdb.io import open_store
from repro.reduction import CertainKeyBlocking, SubstringKey, plan_candidates

#: Blocking key spec, shipped to the measurement subprocess via argv so
#: the child always measures the same workload as the in-process bench.
KEY_SPEC = [("name", 1), ("job", 1)]
BLOCK_KEY = SubstringKey(KEY_SPEC)

#: Page-cache knobs for the spilled runs: at most 4 × 64 decoded tuples
#: resident, far below the n=1200 relation.
STORE_OPTIONS = {"page_size": 64, "max_pages": 4}

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Runs one detection pass in a fresh interpreter and reports the
#: decision count, process RSS high-water marks (KB) and — because the
#: ~50 MB interpreter+numpy import baseline dwarfs this workload's data
#: and saturates ``ru_maxrss`` before any tuple is decoded — exact
#: Python-heap figures from tracemalloc: bytes resident after loading
#: the backend and the peak additional bytes detection allocated.
_CHILD_SCRIPT = """
import json, resource, sys, time, tracemalloc
from repro.experiments.quality import default_matcher, weighted_model
from repro.matching import DuplicateDetector
from repro.pdb.io import open_store
from repro.reduction import CertainKeyBlocking, SubstringKey

path, mode = sys.argv[1], sys.argv[2]
options = json.loads(sys.argv[3]) if mode == "spilled" else {}
key_spec = [tuple(part) for part in json.loads(sys.argv[4])]
tracemalloc.start()
relation = open_store(path, **options)
load_bytes, _ = tracemalloc.get_traced_memory()
tracemalloc.reset_peak()
detector = DuplicateDetector(
    default_matcher(),
    weighted_model(),
    reducer=CertainKeyBlocking(SubstringKey(key_spec)),
)
start = time.perf_counter()
decisions = 0
for piece in detector.detect(
    relation,
    stream=True,
    keep_derivations=False,
    keep_compared_pairs=False,
):
    decisions += len(piece.decisions)
wall = time.perf_counter() - start
current_bytes, peak_bytes = tracemalloc.get_traced_memory()
tracemalloc.stop()
print(json.dumps({
    "mode": mode,
    "decisions": decisions,
    "load_bytes": load_bytes,
    "detect_peak_bytes": peak_bytes,
    "peak_bytes": load_bytes + peak_bytes,
    "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "wall_s": wall,
}))
"""


@pytest.fixture(scope="module")
def storage_workload(tmp_path_factory):
    """The blocking workload in both on-disk forms: spilled + plain JSON."""
    from repro.pdb import io as pdb_io

    relation = generate_dataset(
        DatasetConfig(entity_count=ENTITIES, seed=47), flat=True
    ).relation
    root = tmp_path_factory.mktemp("bench_storage")
    spill_path = str(root / "spilled")
    json_path = str(root / "relation.json")
    relation.spill(spill_path, **STORE_OPTIONS)
    pdb_io.dump(relation, json_path, indent=None)
    expected = plan_candidates(
        CertainKeyBlocking(BLOCK_KEY), relation
    ).total_pairs
    return {
        "relation": relation,
        "spill_path": spill_path,
        "json_path": json_path,
        "expected_pairs": expected,
    }


def _detector():
    return DuplicateDetector(
        default_matcher(),
        weighted_model(),
        reducer=CertainKeyBlocking(BLOCK_KEY),
    )


def _measure_subprocess(path: str, mode: str) -> dict:
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + environment["PYTHONPATH"]
        if environment.get("PYTHONPATH")
        else ""
    )
    output = subprocess.run(
        [
            sys.executable,
            "-c",
            _CHILD_SCRIPT,
            path,
            mode,
            json.dumps(STORE_OPTIONS),
            json.dumps(KEY_SPEC),
        ],
        env=environment,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(output.stdout.strip().splitlines()[-1])


@pytest.mark.parametrize("backend", ["in_memory", "spilled"])
def test_bench_storage_streamed_detection(
    benchmark, storage_workload, backend
):
    """Wall clock of streamed blocking detection, both backends."""
    if backend == "in_memory":
        relation = storage_workload["relation"]
    else:
        relation = open_store(
            storage_workload["spill_path"], **STORE_OPTIONS
        )

    def run():
        total = 0
        for piece in _detector().detect(
            relation,
            stream=True,
            keep_derivations=False,
            keep_compared_pairs=False,
        ):
            total += len(piece.decisions)
        return total

    total = benchmark.pedantic(run, iterations=1, rounds=ROUNDS)
    assert total == storage_workload["expected_pairs"]


def test_bench_storage_peak_rss(benchmark, storage_workload):
    """Peak memory: the spilled run must not pay for the whole relation.

    Each backend runs in a fresh interpreter.  ``ru_maxrss`` is
    recorded for the trajectory, but the load-bearing assertion uses
    the tracemalloc figures: the spilled backend's resident load
    footprint (ids + offsets) must undercut the decoded relation, its
    whole-run peak must stay below the in-memory peak, and the extra
    memory detection allocates on top of the loaded backend must be
    bounded by cache + working-set structures — not relation size.
    """
    spilled = _measure_subprocess(
        storage_workload["spill_path"], "spilled"
    )
    in_memory = _measure_subprocess(
        storage_workload["json_path"], "in_memory"
    )
    assert (
        spilled["decisions"]
        == in_memory["decisions"]
        == storage_workload["expected_pairs"]
    )

    benchmark.extra_info.update(
        {
            "entities": ENTITIES,
            "spilled": spilled,
            "in_memory": in_memory,
        }
    )
    # Record a cheap single-pass timing so the result lands in the
    # benchmark table alongside the memory extra_info.
    benchmark.pedantic(
        lambda: _measure_subprocess(
            storage_workload["spill_path"], "spilled"
        ),
        iterations=1,
        rounds=1,
    )
    # Loading the store costs metadata only — a fraction of decoding
    # the relation into memory.
    assert spilled["load_bytes"] < in_memory["load_bytes"] / 2
    # End-to-end, the spilled run's heap peak stays below the
    # in-memory run's (which starts from the whole decoded relation).
    assert spilled["peak_bytes"] < in_memory["peak_bytes"]
    if not QUICK:
        # The additional memory the spilled detection touches (page
        # cache + per-partition working sets + similarity caches) is
        # shared-structure-bound, not relation-bound: both backends
        # allocate nearly the same during detection, so the spilled
        # run never rebuilds the relation behind the scenes.
        assert (
            spilled["detect_peak_bytes"]
            < in_memory["detect_peak_bytes"]
            + in_memory["load_bytes"] / 4
        )
