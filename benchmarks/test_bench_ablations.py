"""Bench: Tier-B experiment E5 — ablations of the design choices.

Each ablation toggles one mechanism DESIGN.md calls out and asserts the
direction of the effect:

* ⊥ semantics — treating ⊥ like a regular (always-dissimilar) value
  loses the sim(⊥,⊥)=1 signal for jointly missing properties;
* conditioning — skipping the p(t)-normalization makes maybe tuples
  systematically less similar (membership leaks into matching);
* most-probable-world selection redundancy — the diverse selector picks
  less mutually overlapping worlds than the top-k selector (Sec. V-A.1);
* alternative count — more alternatives per x-tuple grow the comparison
  matrix quadratically.
"""

from __future__ import annotations

import pytest

from repro.experiments import paper_matcher, paper_model
from repro.matching import (
    DerivationInput,
    ExpectedSimilarity,
    XTupleDecisionProcedure,
)
from repro.pdb import ProbabilisticValue, XTuple, enumerate_full_worlds
from repro.reduction import (
    average_pairwise_overlap,
    select_diverse_worlds,
    select_probable_worlds,
)
from repro.similarity import HAMMING, UncertainValueComparator


class TestNullSemanticsAblation:
    def test_shared_null_signal(self, benchmark):
        """With the paper's semantics, two mostly-missing values are
        similar; without sim(⊥,⊥)=1 they would score near 0."""
        left = ProbabilisticValue({"pilot": 0.1})  # ⊥ mass 0.9
        right = ProbabilisticValue({"pilot": 0.1})
        comparator = UncertainValueComparator(HAMMING)
        with_null = benchmark(comparator, left, right)
        # Paper semantics: 0.81·1 (both ⊥) + 0.01·1 (both pilot) = 0.82.
        assert with_null == pytest.approx(0.82)
        # Ablated semantics (⊥ similar to nothing, not even ⊥):
        ablated = 0.1 * 0.1 * 1.0
        assert with_null > ablated * 5


class TestConditioningAblation:
    def _procedure(self):
        return XTupleDecisionProcedure(
            paper_matcher(), paper_model(), ExpectedSimilarity()
        )

    def test_unconditioned_weights_punish_maybe_tuples(self, benchmark):
        """Equation 6 without the p(t)-normalization underestimates the
        similarity of maybe tuples — exactly what Section IV forbids."""
        procedure = self._procedure()
        maybe = XTuple.build(
            "m", [({"name": "Tim", "job": "pilot"}, 0.5)]
        )
        certain = XTuple.certain("c", {"name": "Tim", "job": "pilot"})

        conditioned = benchmark(procedure.similarity, maybe, certain)
        assert conditioned == pytest.approx(1.0)

        matrix = procedure.comparison_matrix(maybe, certain)
        data = procedure.derivation_input(matrix)
        unconditioned = DerivationInput(
            similarities=data.similarities,
            statuses=data.statuses,
            weights=((0.5,),),  # raw p(t^i)·p(t^j), no scaling
        )
        assert ExpectedSimilarity()(unconditioned) == pytest.approx(0.5)
        assert conditioned > ExpectedSimilarity()(unconditioned)


class TestWorldSelectionAblation:
    def _worlds(self):
        xtuples = [
            XTuple.build(
                f"t{i}",
                [
                    ({"a": "x"}, 0.6),
                    ({"a": "y"}, 0.25),
                    ({"a": "z"}, 0.15),
                ],
            )
            for i in range(4)
        ]
        return enumerate_full_worlds(xtuples)

    def test_diverse_selection_less_redundant(self, benchmark):
        """Section V-A.1's prediction: top-probability worlds are nearly
        identical; the greedy diverse selection lowers mean overlap."""
        worlds = self._worlds()

        def run():
            probable = select_probable_worlds(worlds, 4)
            diverse = select_diverse_worlds(
                worlds, 4, diversity_weight=1.0
            )
            return (
                average_pairwise_overlap(probable),
                average_pairwise_overlap(diverse),
            )

        probable_overlap, diverse_overlap = benchmark(run)
        assert diverse_overlap < probable_overlap


class TestMatrixGrowthAblation:
    @pytest.mark.parametrize("width", [2, 4, 8, 16])
    def test_bench_matrix_growth(self, benchmark, width):
        """k×l growth of the Figure-6 inner loop."""
        procedure = XTupleDecisionProcedure(
            paper_matcher(), paper_model(), ExpectedSimilarity()
        )
        share = 0.9 / width
        left = XTuple.build(
            "L",
            [({"name": f"N{i}", "job": "pilot"}, share) for i in range(width)],
        )
        right = XTuple.build(
            "R",
            [({"name": f"N{i}", "job": "pilot"}, share) for i in range(width)],
        )
        similarity = benchmark(procedure.similarity, left, right)
        assert 0.0 <= similarity <= 1.0
