"""Bench: skew-aware work stealing vs partitioned scheduling.

The workload is the planner's worst case: one giant block holding ~50%
of all candidate pairs next to many small blocks.  Partitioned
scheduling handles it by serially pre-warming every partition's full
pairwise similarity table in the parent before forking — on the skewed
plan that serial section is a large fraction of all kernel work, so it
bounds any parallel speedup (Amdahl), and past the warm budget it is
abandoned half-done with the caches left unfrozen.  The stealing
scheduler subdivides the giant block by refined sub-key
(``CertainKeyBlocking.split_partition``), dispatches the work units
largest-first through the pool's shared queue, and skips parent-side
warming entirely — its serialized section is the subdivision itself,
milliseconds instead of seconds.

Three bench families:

* ``skewed_fanout`` — end-to-end wall clock of the three scheduling
  modes at ``n_jobs=2`` on the skewed workload.  On multi-core hosts
  the stealing mode's near-zero serial section is the headline; on a
  single-CPU container (this repo's CI) wall clock equals total work,
  so partitioned and stealing record within noise of each other — read
  them together with the ``serial_section`` pair below.
* ``skew_serial_section`` — the pre-fork serialized section of each
  mode on the same skewed plan: ``prewarm_plan`` (partitioned's warm)
  vs work-unit subdivision (stealing's split).  This is the
  hardware-independent witness of the skew win: the section a second
  worker cannot help with shrinks by ~two orders of magnitude.
* ``multisource_between`` — the ℛ1/ℛ2 consolidation scenario:
  ``detect_between`` over the two-source view vs materializing the
  union first; the view must cost no measurable premium.
"""

from __future__ import annotations

import os
import random

import pytest

#: compare_bench.py --quick exports BENCH_QUICK=1; pedantic benches drop
#: to one round then so the CI smoke stays fast.
ROUNDS = 1 if os.environ.get("BENCH_QUICK") else 3

from repro.experiments.quality import default_matcher, weighted_model
from repro.matching import DuplicateDetector
from repro.matching.executor import (
    ExecutionEngine,
    ExecutionSettings,
    prewarm_plan,
)
from repro.pdb.relations import XRelation
from repro.pdb.xtuples import TupleAlternative, XTuple
from repro.reduction import (
    CertainKeyBlocking,
    SubstringKey,
    plan_candidates,
)

BLOCK_KEY = SubstringKey([("name", 1)])

#: Giant-block members; the block carries ~50% of all candidate pairs.
GIANT_MEMBERS = 160
#: Small blocks: one per letter, GIANT/4 members each.
SMALL_LETTERS = "abcdefghijklmnop"
SMALL_MEMBERS = 40


def _skewed_relation(seed: int = 20100) -> XRelation:
    """One 160-member block ('z…') plus 16 small 40-member blocks.

    Values are long random words so the similarity kernels dominate,
    and every value is distinct — the adversarial case for cache
    pre-warming, since no table entry is ever reused across pairs.
    """
    rng = random.Random(seed)

    def word(prefix: str, length: int = 14) -> str:
        return prefix + "".join(
            rng.choice("aeioubcdfgstlmnr") for _ in range(length)
        )

    tuples = [
        XTuple(
            f"g{i:04d}",
            (TupleAlternative({"name": word("z"), "job": word("q")}, 1.0),),
        )
        for i in range(GIANT_MEMBERS)
    ]
    for block, letter in enumerate(SMALL_LETTERS):
        tuples.extend(
            XTuple(
                f"s{block:02d}{i:03d}",
                (
                    TupleAlternative(
                        {"name": word(letter), "job": word("r")}, 1.0
                    ),
                ),
            )
            for i in range(SMALL_MEMBERS)
        )
    rng.shuffle(tuples)
    return XRelation("skewed", ("name", "job"), tuples)


@pytest.fixture(scope="module")
def skewed_relation():
    relation = _skewed_relation()
    plan = plan_candidates(CertainKeyBlocking(BLOCK_KEY), relation)
    largest = max(len(partition) for partition in plan)
    assert largest / plan.total_pairs > 0.45  # the skew premise
    return relation


def _detector():
    return DuplicateDetector(
        default_matcher(),
        weighted_model(),
        reducer=CertainKeyBlocking(BLOCK_KEY),
    )


@pytest.mark.parametrize(
    "scheduling", ["striped", "partitioned", "stealing"]
)
def test_bench_scheduler_skewed_fanout(
    benchmark, skewed_relation, scheduling
):
    """Same skewed workload, n_jobs=2, all three scheduling modes."""
    expected = plan_candidates(
        CertainKeyBlocking(BLOCK_KEY), skewed_relation
    ).total_pairs

    def run():
        return _detector().detect(
            skewed_relation,
            scheduling=scheduling,
            n_jobs=2,
            keep_derivations=False,
        )

    result = benchmark.pedantic(run, iterations=1, rounds=ROUNDS)
    assert len(result.decisions) == expected


def test_bench_scheduler_serial_section_partitioned(
    benchmark, skewed_relation
):
    """Partitioned's pre-fork serial section: warming the skewed plan.

    Everything measured here happens in the parent while the pool would
    sit idle — the giant block's full pairwise table dominates, so this
    section scales with the square of the skew and caps any parallel
    speedup.
    """
    plan = plan_candidates(CertainKeyBlocking(BLOCK_KEY), skewed_relation)

    def run():
        return prewarm_plan(default_matcher(), skewed_relation, plan)

    warmed, _ = benchmark.pedantic(run, iterations=1, rounds=ROUNDS)
    assert warmed > 0


def test_bench_scheduler_serial_section_stealing(
    benchmark, skewed_relation
):
    """Stealing's pre-fork serial section: sub-key work-unit subdivision.

    The direct counterpart of the partitioned warm above — the only
    work stealing does before workers start.  The recorded gap between
    the two serial sections is the hardware-independent skew win: it is
    the part of the run ``n_jobs=2`` cannot halve.
    """
    reducer = CertainKeyBlocking(BLOCK_KEY)
    plan = plan_candidates(reducer, skewed_relation)
    total = plan.total_pairs

    def run():
        engine = ExecutionEngine(
            _detector().procedure,
            ExecutionSettings(scheduling="stealing"),
            splitter=reducer,
        )
        unit_pairs, _, _, _ = engine._stealing_units(
            skewed_relation, plan
        )
        return unit_pairs

    unit_pairs = benchmark(run)
    assert sum(len(pairs) for pairs in unit_pairs) == total
    assert len(unit_pairs) > len(plan.partitions)  # the giant block split


def test_bench_scheduler_multisource_between(benchmark, skewed_relation):
    """Consolidating two sources through the view vs the union copy."""
    ids = skewed_relation.tuple_ids
    half = len(ids) // 2
    left = XRelation(
        "L",
        skewed_relation.schema,
        [skewed_relation.get(i) for i in ids[:half]],
    )
    right = XRelation(
        "R",
        skewed_relation.schema,
        [skewed_relation.get(i) for i in ids[half:]],
    )
    expected = len(
        _detector().detect(left.union(right), keep_derivations=False).decisions
    )

    def run():
        return _detector().detect_between(
            left, right, keep_derivations=False
        )

    result = benchmark.pedantic(run, iterations=1, rounds=ROUNDS)
    assert len(result.decisions) == expected
