"""Bench: Figures 8–13 — the Sorted-Neighborhood family on ℛ34.

Regenerates every SNM figure (per-world orders, certain-key order,
sorting alternatives with its five matchings, the uncertain-key
ranking) and times each strategy on the paper relation and on a
generated x-relation.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    SORTING_KEY,
    figure_9_sorted_world_orders,
    figure_10_certain_key_order,
    figure_11_sorted_alternatives,
    figure_13_uncertain_key_ranking,
)
from repro.reduction import (
    AlternativeSorting,
    MultiPassSNM,
    SortedNeighborhood,
    UncertainKeySNM,
)


def test_bench_figure9_multipass_orders(benchmark):
    """Both Figure-8 worlds found; their Figure-9 orders reproduced."""
    orders = benchmark(figure_9_sorted_world_orders)
    assert orders["I1"] == ["t31", "t41", "t43", "t32", "t42"]
    assert orders["I2"] == ["t32", "t43", "t31", "t41", "t42"]


def test_bench_figure10_certain_keys(benchmark):
    """Figure 10's sorted key column."""
    rows = benchmark(figure_10_certain_key_order)
    assert rows == [
        ("Jimba", "t32"),
        ("Johpi", "t31"),
        ("Johpi", "t41"),
        ("Seapi", "t43"),
        ("Tomme", "t42"),
    ]


def test_bench_figure11_sorting_alternatives(benchmark):
    """Figure 11/12: 9 entries, neighbor dedup, exactly 5 matchings."""
    result = benchmark(figure_11_sorted_alternatives)
    assert len(result["sorted_entries"]) == 9
    assert len(result["deduped_entries"]) == 7
    assert len(result["matchings"]) == 5


def test_bench_figure13_uncertain_ranking(benchmark):
    """Figure 13: expected-rank order over uncertain keys."""
    result = benchmark(figure_13_uncertain_key_ranking)
    assert result["ranked_ids"] == ["t32", "t31", "t41", "t43", "t42"]


@pytest.mark.parametrize(
    "strategy_name,factory",
    [
        ("snm_certain_key", lambda: SortedNeighborhood(SORTING_KEY, 5)),
        ("snm_alternatives", lambda: AlternativeSorting(SORTING_KEY, 5)),
        ("snm_uncertain_ranked", lambda: UncertainKeySNM(SORTING_KEY, 5)),
    ],
)
def test_bench_snm_on_generated_data(
    benchmark, medium_dataset, strategy_name, factory
):
    """Candidate generation cost of each SNM variant (n≈300 x-tuples)."""
    strategy = factory()
    relation = medium_dataset.relation

    def run():
        return sum(1 for _ in strategy.pairs(relation))

    candidates = benchmark(run)
    total = len(relation) * (len(relation) - 1) // 2
    assert 0 < candidates < total, "SNM must prune the pair space"


def test_bench_multipass_diverse_selection(benchmark):
    """Multi-pass with greedy diverse world selection on ℛ34."""
    from repro.experiments.paper_examples import _expand_r34

    relation = _expand_r34()
    multipass = MultiPassSNM(
        SORTING_KEY, window=2, selection="diverse", world_count=3
    )

    def run():
        return set(multipass.pairs(relation))

    pairs = benchmark(run)
    assert pairs  # the example relation yields candidates
