"""Bench: the performance core — banded kernels, caches, trusted paths.

Times the fast comparison kernels against the reference dynamic
programs, and cached against uncached attribute matching, so the speedup
claims of the kernel layer are tracked by the benchmark harness:

* banded + early-exit Levenshtein/Damerau vs the full reference DP at a
  realistic duplicate-detection cutoff;
* the Myers bit-parallel kernels and the numpy batch scorer vs both of
  the above, with bitwise-agreement sanity asserts — the CI smoke runs
  this module per backend, so any divergence from the ``"python"``
  reference fails the build;
* memoized (``SimilarityCache``) vs uncached Equation-5 matching on the
  same pair workload;
* comparison-matrix construction with the precomputed weight matrix.
"""

from __future__ import annotations

import random

import pytest

from repro.datagen import DatasetConfig, generate_dataset
from repro.datagen.corpus import JOBS
from repro.matching.comparison import AttributeMatcher
from repro.similarity.backends import numpy_backend
from repro.similarity.backends.bitparallel import (
    bitparallel_damerau_levenshtein,
    bitparallel_levenshtein,
)
from repro.similarity.edit import (
    damerau_levenshtein_distance,
    levenshtein_distance,
)
from repro.similarity.jaro import JARO_WINKLER
from repro.similarity.kernels import (
    banded_damerau_levenshtein,
    banded_levenshtein,
    banded_levenshtein_similarity,
)
from repro.similarity.uncertain import (
    PatternPolicy,
    UncertainValueComparator,
)

#: Cutoff used by the banded benchmarks: at similarity threshold 0.75 on
#: ~12-char strings, distances above 3 can never classify as a match.
CUTOFF = 3


def _word_pairs(count: int, seed: int = 17) -> list[tuple[str, str]]:
    rng = random.Random(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    words = [
        "".join(rng.choice(alphabet) for _ in range(rng.randint(6, 14)))
        for _ in range(count)
    ]
    # Half the pairs are corrupted near-duplicates (the interesting
    # case for early exit), half are unrelated strings.
    pairs = []
    for index, word in enumerate(words):
        if index % 2 == 0:
            corrupted = list(word)
            corrupted[rng.randrange(len(corrupted))] = rng.choice(alphabet)
            pairs.append((word, "".join(corrupted)))
        else:
            pairs.append((word, words[(index + 7) % len(words)]))
    return pairs


@pytest.fixture(scope="module")
def word_pairs():
    return _word_pairs(400)


def test_bench_reference_levenshtein(benchmark, word_pairs):
    """Baseline: the reference two-row DP over 400 pairs."""

    def run():
        return sum(
            levenshtein_distance(a, b) for a, b in word_pairs
        )

    total = benchmark(run)
    assert total > 0


def test_bench_banded_levenshtein(benchmark, word_pairs):
    """Banded kernel with cutoff: must beat the reference DP."""

    def run():
        return sum(
            banded_levenshtein(a, b, CUTOFF) for a, b in word_pairs
        )

    total = benchmark(run)
    assert total > 0


def test_bench_reference_damerau(benchmark, word_pairs):
    """Baseline: the full-matrix reference Damerau DP."""

    def run():
        return sum(
            damerau_levenshtein_distance(a, b) for a, b in word_pairs
        )

    total = benchmark(run)
    assert total > 0


def test_bench_banded_damerau(benchmark, word_pairs):
    """Banded Damerau kernel with cutoff."""

    def run():
        return sum(
            banded_damerau_levenshtein(a, b, CUTOFF) for a, b in word_pairs
        )

    total = benchmark(run)
    assert total > 0


def test_bench_bitparallel_levenshtein(benchmark, word_pairs):
    """Myers bit-parallel kernel with the same cutoff."""

    def run():
        return sum(
            bitparallel_levenshtein(a, b, max_distance=CUTOFF)
            for a, b in word_pairs
        )

    total = benchmark(run)
    assert total > 0


def test_bench_bitparallel_damerau(benchmark, word_pairs):
    """Bit-parallel Damerau (Hyyrö transposition term) with cutoff."""

    def run():
        return sum(
            bitparallel_damerau_levenshtein(a, b, max_distance=CUTOFF)
            for a, b in word_pairs
        )

    total = benchmark(run)
    assert total > 0


@pytest.fixture(scope="module")
def warm_batch():
    """A prewarm-shaped workload: one partition vocabulary crossed.

    This is what the pair-aware prewarm hands the batch scorer — a few
    thousand pairs drawn from a modest vocabulary, so shape groups are
    large enough for vectorization to amortize array setup.
    """
    rng = random.Random(23)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    words = [
        "".join(rng.choice(alphabet) for _ in range(rng.randint(6, 14)))
        for _ in range(60)
    ]
    # Half the vocabulary is one-edit corruptions — the cross product
    # then mixes near-duplicates with unrelated pairs like a real block.
    for word in list(words):
        corrupted = list(word)
        corrupted[rng.randrange(len(corrupted))] = rng.choice(alphabet)
        words.append("".join(corrupted))
    return [
        (words[i], words[j])
        for i in range(len(words))
        for j in range(i + 1, len(words))
    ]


def test_bench_perpair_similarity_python(benchmark, warm_batch):
    """Baseline for the batch scorer: per-pair banded similarities."""

    def run():
        return sum(
            banded_levenshtein_similarity(a, b, min_similarity=0.75)
            for a, b in warm_batch
        )

    total = benchmark(run)
    assert total > 0


@pytest.mark.skipif(
    not numpy_backend.available(), reason="numpy not installed"
)
def test_bench_numpy_batch_similarities(benchmark, warm_batch):
    """Partition-vectorized scoring of the whole warm batch at once."""

    def run():
        return sum(
            numpy_backend.batch_levenshtein_similarities(
                warm_batch, min_similarity=0.75
            )
        )

    total = benchmark(run)
    assert total > 0


def test_banded_equals_reference_on_bench_data(word_pairs):
    """Sanity: within the cutoff the kernels are exact on the bench data."""
    for a, b in word_pairs:
        reference = levenshtein_distance(a, b)
        banded = banded_levenshtein(a, b, CUTOFF)
        assert banded == (reference if reference <= CUTOFF else CUTOFF + 1)


def test_backends_agree_bitwise_on_bench_data(word_pairs):
    """The CI divergence gate: every backend pins to the reference.

    Runs inside the ``--quick`` smoke (this module matches the
    ``kernels`` selector), so a backend drifting from the ``"python"``
    kernels fails the benchmark job, not just the unit suite.
    """
    for a, b in word_pairs:
        reference = levenshtein_distance(a, b)
        capped = bitparallel_levenshtein(a, b, max_distance=CUTOFF)
        if reference <= CUTOFF:
            assert capped == reference
        else:
            assert capped > CUTOFF
        assert bitparallel_levenshtein(a, b) == reference
        assert bitparallel_damerau_levenshtein(a, b) == (
            damerau_levenshtein_distance(a, b)
        )
    if numpy_backend.available():
        assert numpy_backend.batch_levenshtein_similarities(
            word_pairs, min_similarity=0.75
        ) == [
            banded_levenshtein_similarity(a, b, min_similarity=0.75)
            for a, b in word_pairs
        ]
        assert numpy_backend.batch_edit_distances(word_pairs) == [
            levenshtein_distance(a, b) for a, b in word_pairs
        ]


def _matcher(cache: bool) -> AttributeMatcher:
    return AttributeMatcher(
        {
            "name": UncertainValueComparator(JARO_WINKLER, cache=cache),
            "job": UncertainValueComparator(
                JARO_WINKLER,
                pattern_policy=PatternPolicy.EXPAND,
                pattern_lexicon=JOBS,
                cache=cache,
            ),
        }
    )


@pytest.fixture(scope="module")
def matching_workload():
    dataset = generate_dataset(
        DatasetConfig(entity_count=60, seed=101), flat=True
    )
    relation = dataset.relation
    ids = relation.tuple_ids
    pairs = [
        (relation.get(ids[i]).alternatives[0], relation.get(ids[j]).alternatives[0])
        for i in range(0, min(50, len(ids)))
        for j in range(i + 1, min(i + 11, len(ids)))
    ][:500]
    return pairs


@pytest.mark.parametrize("cached", [False, True], ids=["uncached", "cached"])
def test_bench_matching_cache(benchmark, matching_workload, cached):
    """Equation-5 matching over 500 row pairs, with and without memo."""
    matcher = _matcher(cached)

    def run():
        total = 0.0
        for left, right in matching_workload:
            total += matcher.compare_rows(left, right)[0]
        return total

    total = benchmark(run)
    assert total >= 0.0


def test_cached_equals_uncached_on_bench_data(matching_workload):
    """Sanity: the memo never changes a comparison result."""
    plain = _matcher(False)
    cached = _matcher(True)
    for left, right in matching_workload:
        assert (
            cached.compare_rows(left, right).values
            == plain.compare_rows(left, right).values
        )


def test_bench_matrix_construction(benchmark, matching_workload):
    """x-tuple comparison matrices with precomputed weight matrices."""
    matcher = _matcher(True)
    dataset = generate_dataset(DatasetConfig(entity_count=40, seed=103))
    relation = dataset.relation
    ids = relation.tuple_ids[:40]
    xtuples = [relation.get(tid) for tid in ids]
    pairs = [
        (xtuples[i], xtuples[j])
        for i in range(len(xtuples))
        for j in range(i + 1, min(i + 6, len(xtuples)))
    ]

    def run():
        checksum = 0.0
        for left, right in pairs:
            matrix = matcher.compare_xtuples(left, right)
            checksum += matrix.conditional_weight(0, 0)
        return checksum

    checksum = benchmark(run)
    assert checksum > 0.0
