"""Bench: Figures 1–3 — decision models (rules, Fellegi–Sunter, EM).

Times the per-pair decision cost of the knowledge-based and probabilistic
models on identical comparison vectors, plus EM parameter estimation —
the machinery behind Figure 2's threshold classification.
"""

from __future__ import annotations

import random

import pytest

from repro.experiments.quality import (
    default_matcher,
    fellegi_sunter_model,
    knowledge_model,
    weighted_model,
)
from repro.matching import ComparisonVector, estimate_em


def _vectors(count: int, seed: int = 7) -> list[ComparisonVector]:
    rng = random.Random(seed)
    vectors = []
    for _ in range(count):
        vectors.append(
            ComparisonVector(
                ("name", "job"),
                (rng.random(), rng.random()),
            )
        )
    return vectors


@pytest.mark.parametrize(
    "model_name,factory",
    [
        ("knowledge_rules", knowledge_model),
        ("fellegi_sunter", fellegi_sunter_model),
        ("weighted_sum", weighted_model),
    ],
)
def test_bench_decision_cost(benchmark, model_name, factory):
    """Per-1000-pairs decision cost of each model family."""
    model = factory()
    vectors = _vectors(1000)

    def run():
        return sum(
            1 for v in vectors if model.decide(v).status.value == "m"
        )

    matches = benchmark(run)
    assert 0 <= matches <= 1000


def test_bench_em_estimation(benchmark):
    """EM over 2000 three-attribute agreement vectors."""
    rng = random.Random(13)
    vectors = []
    for _ in range(2000):
        is_match = rng.random() < 0.2
        m = (0.9, 0.75, 0.85) if is_match else (0.05, 0.15, 0.1)
        vectors.append(
            ComparisonVector(
                ("name", "job", "city"),
                tuple(1.0 if rng.random() < p else 0.0 for p in m),
            )
        )
    estimate = benchmark(
        estimate_em, vectors, agreement_threshold=0.5
    )
    assert estimate.converged
    assert estimate.m_probabilities["name"] > estimate.u_probabilities["name"]


def test_bench_attribute_matching_cost(benchmark, small_dataset):
    """Equation-5 attribute matching over 500 generated pairs."""
    matcher = default_matcher()
    relation = small_dataset.relation
    ids = relation.tuple_ids
    pairs = [
        (ids[i], ids[j])
        for i in range(0, min(50, len(ids)))
        for j in range(i + 1, min(i + 11, len(ids)))
    ][:500]

    def run():
        total = 0.0
        for left, right in pairs:
            vector = matcher.compare_rows(
                relation.get(left).alternatives[0],
                relation.get(right).alternatives[0],
            )
            total += vector[0]
        return total

    total = benchmark(run)
    assert total >= 0.0
