"""Bench: block-aware execution planner vs legacy striped fan-out.

The PR-1 fan-out striped anonymous chunks of the flat candidate stream
across workers, so every fork re-learned the same similarity table.  The
planner schedules whole block partitions per worker (disjoint cache
working sets) and pre-warms the shared caches from the per-partition
vocabulary before forking — these benches track that the partitioned
path stays ahead of striping on the same blocking workload, and that
plan construction and streaming stay cheap.
"""

from __future__ import annotations

import os

import pytest

#: compare_bench.py --quick exports BENCH_QUICK=1; pedantic benches drop
#: to one round then so the CI smoke stays fast.
ROUNDS = 1 if os.environ.get("BENCH_QUICK") else 3

from repro.datagen import DatasetConfig, generate_dataset
from repro.experiments.quality import default_matcher, weighted_model
from repro.matching import DuplicateDetector
from repro.reduction import (
    CertainKeyBlocking,
    SubstringKey,
    plan_candidates,
)
from repro.reduction.plan import partition_vocabulary

BLOCK_KEY = SubstringKey([("name", 1), ("job", 1)])


@pytest.fixture(scope="module")
def planner_dataset():
    """Large enough that worker compute dominates fork overhead."""
    return generate_dataset(
        DatasetConfig(entity_count=1200, seed=47), flat=True
    )


def _detector():
    return DuplicateDetector(
        default_matcher(),
        weighted_model(),
        reducer=CertainKeyBlocking(BLOCK_KEY),
    )


@pytest.mark.parametrize("scheduling", ["striped", "partitioned"])
def test_bench_planner_blocking_fanout(
    benchmark, planner_dataset, scheduling
):
    """Same blocking workload, n_jobs=2: partitions vs blind stripes."""
    relation = planner_dataset.relation
    expected = plan_candidates(
        CertainKeyBlocking(BLOCK_KEY), relation
    ).total_pairs

    def run():
        return _detector().detect(
            relation,
            scheduling=scheduling,
            n_jobs=2,
            keep_derivations=False,
        )

    result = benchmark.pedantic(run, iterations=1, rounds=ROUNDS)
    assert len(result.decisions) == expected


def test_bench_planner_plan_construction(benchmark, planner_dataset):
    """Planning itself must stay a sliver of detection time."""
    relation = planner_dataset.relation
    reducer = CertainKeyBlocking(BLOCK_KEY)
    plan = benchmark(lambda: plan_candidates(reducer, relation))
    assert plan.total_pairs > 0


def test_bench_planner_streamed_detection(benchmark, planner_dataset):
    """Streaming per-partition slices without the global pair set."""
    relation = planner_dataset.relation

    def run():
        total = 0
        for piece in _detector().detect(
            relation,
            stream=True,
            keep_derivations=False,
            keep_compared_pairs=False,
        ):
            total += len(piece.decisions)
        return total

    total = benchmark.pedantic(run, iterations=1, rounds=ROUNDS)
    assert total > 0


def test_bench_planner_cache_prewarm(benchmark, planner_dataset):
    """Warming the whole plan's vocabulary into fresh caches."""
    relation = planner_dataset.relation
    plan = plan_candidates(CertainKeyBlocking(BLOCK_KEY), relation)
    vocabularies = [
        partition_vocabulary(relation, partition) for partition in plan
    ]

    def run():
        matcher = default_matcher()
        warmed = 0
        for vocabulary in vocabularies:
            warmed += matcher.warm(vocabulary)[0]
        return warmed

    warmed = benchmark.pedantic(run, iterations=1, rounds=ROUNDS)
    assert warmed > 0
