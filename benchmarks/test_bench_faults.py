"""Bench: what fault tolerance costs when nothing goes wrong.

The fault layer's contract is that it is pay-as-you-go: with the
default policy the scheduler keeps its unsupervised dispatch paths and
a spilled store keeps its single-pass reads, so runs that never fault
must not slow down.  These benches put numbers on that claim, on the
same adversarial skewed-block workload as the scheduler benches (one
giant block holding ~50% of all candidate pairs):

* ``clean_path`` — end-to-end skewed detect at ``n_jobs=2``,
  unsupervised vs supervised (retry budget + generous timeout that
  never fires).  Supervision swaps ``imap`` for ``apply_async`` with
  per-dispatch deadlines; the pair of rows records that a clean
  supervised run stays within noise of the unsupervised one.
* ``recovery`` — the same supervised run with one injected crash on
  the first attempt: the marginal price of an actual retry (one extra
  dispatch of one chunk) on top of the clean path.
* ``checksum_stream`` — streaming a spilled copy of the workload with
  segment CRC verification on vs off: the integrity tax on out-of-core
  reads (one ``zlib.crc32`` fold per line, no extra read pass).
"""

from __future__ import annotations

import os

import pytest

from test_bench_scheduler import BLOCK_KEY, _detector, _skewed_relation

from repro.matching.executor import RetryPolicy
from repro.pdb.storage import SpillingXTupleStore
from repro.reduction import CertainKeyBlocking, plan_candidates
from repro.testing import FaultInjector, installed

ROUNDS = 1 if os.environ.get("BENCH_QUICK") else 3

#: Never fires on a healthy dispatch — clean-path cost only.
SUPERVISED = RetryPolicy(max_attempts=2, timeout=60.0)


@pytest.fixture(scope="module")
def skewed_relation():
    return _skewed_relation()


@pytest.fixture(scope="module")
def expected_pairs(skewed_relation):
    return plan_candidates(
        CertainKeyBlocking(BLOCK_KEY), skewed_relation
    ).total_pairs


@pytest.mark.parametrize("supervision", ["unsupervised", "supervised"])
def test_bench_faults_clean_path(
    benchmark, skewed_relation, expected_pairs, supervision
):
    """Skewed detect, n_jobs=2: supervised dispatch vs the raw path."""
    supervised = supervision == "supervised"

    def run():
        detector = _detector()
        result = detector.detect(
            skewed_relation,
            n_jobs=2,
            keep_derivations=False,
            retry=SUPERVISED if supervised else None,
        )
        return detector, result

    detector, result = benchmark.pedantic(run, iterations=1, rounds=ROUNDS)
    assert len(result.decisions) == expected_pairs
    if supervised:
        report = detector.last_report
        # Clean path: supervision engaged, but nothing ever faulted.
        assert report.worker_crashes == 0
        assert report.worker_timeouts == 0
        assert report.retried_dispatches == 0
        assert not report.failures


def test_bench_faults_recovery(
    benchmark, skewed_relation, expected_pairs
):
    """Clean path plus one injected crash: the price of one retry."""
    detector = _detector()
    hook = FaultInjector(7).partition_crash(detector.plan(skewed_relation))

    def run():
        fresh = _detector()
        with installed(hook):
            result = fresh.detect(
                skewed_relation,
                n_jobs=2,
                keep_derivations=False,
                retry=SUPERVISED,
            )
        return fresh, result

    fresh, result = benchmark.pedantic(run, iterations=1, rounds=ROUNDS)
    assert len(result.decisions) == expected_pairs
    assert fresh.last_report.retried_dispatches >= 1
    assert fresh.last_report.recovered


@pytest.mark.parametrize("checksums", ["verified", "unverified"])
def test_bench_faults_checksum_stream(
    benchmark, tmp_path_factory, skewed_relation, checksums
):
    """Full streaming read of a spilled store, CRC folding on vs off."""
    path = str(tmp_path_factory.mktemp("faults") / f"store-{checksums}")
    skewed_relation.spill(path, segment_size=64).close()
    verify = checksums == "verified"

    def run():
        # A fresh store each round: verified segments are remembered per
        # instance, so reusing one would measure the fold only once.
        store = SpillingXTupleStore(path, verify_checksums=verify)
        count = sum(1 for _ in store)
        store.close()
        return count

    count = benchmark.pedantic(run, iterations=1, rounds=ROUNDS)
    assert count == len(skewed_relation)
