"""Benchmark trajectory tracker: run the suite, diff against last run.

Runs the pytest-benchmark suite with ``--benchmark-json``, writes the
result compactly to ``BENCH_<n>.json`` at the repository root (n
increments per run), and prints a regression table against the previous
``BENCH_*.json`` so the performance trajectory is tracked from PR to PR.

Usage::

    python benchmarks/compare_bench.py              # full suite
    python benchmarks/compare_bench.py -k kernels   # forward pytest args
    python benchmarks/compare_bench.py --quick      # CI smoke subset

``--quick`` runs only the kernel and planner benches with minimal
rounds and writes ``BENCH_quick.json`` (outside the numbered
trajectory), so CI can smoke the harness in well under a minute.

Exit status is the pytest exit status; the table marks every benchmark
whose mean moved more than ``THRESHOLD`` in either direction.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

#: Relative mean-time change below which a benchmark counts as unchanged.
THRESHOLD = 0.15

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATTERN = re.compile(r"BENCH_(\d+)\.json$")

#: Pytest arguments selecting the CI smoke subset.  The round flags only
#: affect non-pedantic benches; pedantic benches (the planner fan-out)
#: honor the ``BENCH_QUICK`` environment variable instead, which
#: :func:`run_suite` exports in quick mode.
QUICK_ARGS = [
    "-k",
    "kernels or planner or storage",
    "--benchmark-min-rounds=1",
    "--benchmark-max-time=0.1",
]


def existing_runs() -> list[tuple[int, Path]]:
    """All ``BENCH_<n>.json`` files at the repo root, ordered by n."""
    runs = []
    for path in REPO_ROOT.glob("BENCH_*.json"):
        match = BENCH_PATTERN.search(path.name)
        if match:
            runs.append((int(match.group(1)), path))
    return sorted(runs)


def load_means(path: Path) -> dict[str, float]:
    """``{benchmark fullname: mean seconds}`` from a benchmark JSON."""
    data = json.loads(path.read_text())
    return {
        bench["fullname"]: bench["stats"]["mean"]
        for bench in data.get("benchmarks", [])
    }


def run_suite(
    json_path: Path, pytest_args: list[str], *, quick: bool = False
) -> int:
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(REPO_ROOT / "benchmarks"),
        f"--benchmark-json={json_path}",
        *pytest_args,
    ]
    env = dict(os.environ)
    if quick:
        env["BENCH_QUICK"] = "1"
    print("$", " ".join(command))
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


def format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    return f"{seconds * 1000.0:8.3f}ms"


def print_table(previous: dict[str, float], current: dict[str, float]) -> None:
    shared = sorted(set(previous) & set(current))
    if not shared:
        print("no overlapping benchmarks to compare")
        return
    name_width = max(len(_short(name)) for name in shared)
    header = (
        f"{'benchmark':<{name_width}}  {'previous':>10}  {'current':>10}"
        f"  {'ratio':>7}  verdict"
    )
    print(header)
    print("-" * len(header))
    regressions = 0
    for name in shared:
        old, new = previous[name], current[name]
        ratio = new / old if old > 0 else float("inf")
        if ratio > 1.0 + THRESHOLD:
            verdict = "REGRESSED"
            regressions += 1
        elif ratio < 1.0 - THRESHOLD:
            verdict = "improved"
        else:
            verdict = "~"
        print(
            f"{_short(name):<{name_width}}  {format_seconds(old)}"
            f"  {format_seconds(new)}  {ratio:6.2f}x  {verdict}"
        )
    added = sorted(set(current) - set(previous))
    removed = sorted(set(previous) - set(current))
    print("-" * len(header))
    print(
        f"{len(shared)} compared, {regressions} regressed, "
        f"{len(added)} new, {len(removed)} removed"
    )


def _short(fullname: str) -> str:
    """Strip the ``benchmarks/`` prefix for narrower tables."""
    return fullname.removeprefix("benchmarks/")


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    argv = [argument for argument in argv if argument != "--quick"]
    if quick:
        argv = QUICK_ARGS + argv
    runs = existing_runs()
    if quick:
        target = REPO_ROOT / "BENCH_quick.json"
    else:
        next_index = runs[-1][0] + 1 if runs else 0
        target = REPO_ROOT / f"BENCH_{next_index}.json"
    with tempfile.TemporaryDirectory() as tmp:
        scratch = Path(tmp) / "bench.json"
        status = run_suite(scratch, argv, quick=quick)
        if not scratch.exists():
            print("benchmark run produced no JSON; nothing written")
            return status or 1
        # Compact re-serialization: pytest-benchmark pretty-prints >100k
        # lines; one line per run keeps the committed artifacts small.
        data = json.loads(scratch.read_text())
        target.write_text(
            json.dumps(data, separators=(",", ":"), sort_keys=True) + "\n"
        )
    print(f"\nwrote {target.name}")
    if quick:
        # Single-round quick means are not comparable to full-length
        # trajectory runs; diffing them would flag bogus regressions.
        print("quick smoke run — trajectory comparison skipped")
    elif runs:
        previous_path = runs[-1][1]
        print(f"comparing against {previous_path.name}:\n")
        print_table(load_means(previous_path), load_means(target))
    else:
        print("no previous BENCH_*.json — this run is the baseline")
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
