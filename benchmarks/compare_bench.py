"""Benchmark trajectory tracker: run the suite, diff against all runs.

Runs the pytest-benchmark suite with ``--benchmark-json``, writes the
result compactly to ``BENCH_<n>.json`` at the repository root (n
increments per run), and prints two tables:

* a **regression table** against the immediately previous
  ``BENCH_*.json`` (ratio + REGRESSED/improved verdict per benchmark);
* the full **trajectory table** ``BENCH_0 → BENCH_N``: one row per
  benchmark of the current run, one column per recorded run, so the
  whole performance history is reviewable per PR — not just the last
  hop.

Usage::

    python benchmarks/compare_bench.py              # full suite
    python benchmarks/compare_bench.py -k kernels   # forward pytest args
    python benchmarks/compare_bench.py --quick      # CI smoke subset
    python benchmarks/compare_bench.py --quick --backend bitparallel

``--quick`` runs only the kernel, planner, storage, cutoff, scheduler
and fault benches with minimal rounds and writes ``BENCH_quick.json``
(outside the numbered trajectory), so CI can smoke the harness
quickly.

``--backend <name>`` exports ``REPRO_KERNEL_BACKEND`` for the bench
process, steering every detection bench through that comparison-kernel
backend; CI smokes each registered backend this way, and the bitwise
sanity asserts inside the kernel bench module turn any divergence from
the ``"python"`` reference into a failed run.

Exit status is the pytest exit status; the regression table marks every
benchmark whose mean moved more than ``THRESHOLD`` in either direction.

BENCH JSON schema
-----------------

``BENCH_<n>.json`` is pytest-benchmark's ``--benchmark-json`` output,
re-serialized to a single line (``json.dumps(..., separators=(",", ":"),
sort_keys=True)``).  The fields this tracker and the benches rely on:

``benchmarks``
    List of run benchmarks.  Per entry:

    ``fullname``
        ``"benchmarks/<module>.py::<test>[<param>]"`` — the stable key
        the trajectory is joined on across runs.
    ``stats``
        Timing statistics in **seconds**; this tracker reads
        ``stats.mean`` only, but ``min``/``max``/``stddev``/
        ``median``/``rounds``/``iterations`` are preserved for manual
        analysis.
    ``params`` / ``name`` / ``group``
        pytest-benchmark bookkeeping, preserved verbatim.

``machine_info`` / ``commit_info``
    Provenance of the run (hostname, Python build, git revision).
    Means are only comparable within one machine generation; the
    README's benchmark section records which machine produced which
    artifact.
``datetime`` / ``version``
    Run timestamp and pytest-benchmark schema version.
``kernel_backend``
    Added by this tracker: the comparison-kernel backend the run was
    steered through (``--backend``/``REPRO_KERNEL_BACKEND``, or
    ``"auto"``).  The trajectory table prints one legend line per run
    so per-backend artifacts stay distinguishable.

Anything else pytest-benchmark emits is carried along untouched —
consumers must tolerate unknown keys.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

#: Relative mean-time change below which a benchmark counts as unchanged.
THRESHOLD = 0.15

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATTERN = re.compile(r"BENCH_(\d+)\.json$")

#: Pytest arguments selecting the CI smoke subset.  The round flags only
#: affect non-pedantic benches; pedantic benches (the planner fan-out)
#: honor the ``BENCH_QUICK`` environment variable instead, which
#: :func:`run_suite` exports in quick mode.
QUICK_ARGS = [
    "-k",
    "kernels or planner or storage or columnar or cutoffs or scheduler or faults",
    "--benchmark-min-rounds=1",
    "--benchmark-max-time=0.1",
]


def existing_runs() -> list[tuple[int, Path]]:
    """All ``BENCH_<n>.json`` files at the repo root, ordered by n."""
    runs = []
    for path in REPO_ROOT.glob("BENCH_*.json"):
        match = BENCH_PATTERN.search(path.name)
        if match:
            runs.append((int(match.group(1)), path))
    return sorted(runs)


def load_means(path: Path) -> dict[str, float]:
    """``{benchmark fullname: mean seconds}`` from a benchmark JSON."""
    data = json.loads(path.read_text())
    return {
        bench["fullname"]: bench["stats"]["mean"]
        for bench in data.get("benchmarks", [])
    }


def load_backend(path: Path) -> str:
    """The kernel backend a recorded run was steered through."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return "auto"
    return data.get("kernel_backend", "auto")


def run_suite(
    json_path: Path,
    pytest_args: list[str],
    *,
    quick: bool = False,
    backend: str | None = None,
) -> int:
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(REPO_ROOT / "benchmarks"),
        f"--benchmark-json={json_path}",
        *pytest_args,
    ]
    env = dict(os.environ)
    if quick:
        env["BENCH_QUICK"] = "1"
    if backend is not None:
        env["REPRO_KERNEL_BACKEND"] = backend
    print("$", " ".join(command))
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


def format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    return f"{seconds * 1000.0:8.3f}ms"


def print_table(previous: dict[str, float], current: dict[str, float]) -> None:
    shared = sorted(set(previous) & set(current))
    if not shared:
        print("no overlapping benchmarks to compare")
        return
    name_width = max(len(_short(name)) for name in shared)
    header = (
        f"{'benchmark':<{name_width}}  {'previous':>10}  {'current':>10}"
        f"  {'ratio':>7}  verdict"
    )
    print(header)
    print("-" * len(header))
    regressions = 0
    for name in shared:
        old, new = previous[name], current[name]
        ratio = new / old if old > 0 else float("inf")
        if ratio > 1.0 + THRESHOLD:
            verdict = "REGRESSED"
            regressions += 1
        elif ratio < 1.0 - THRESHOLD:
            verdict = "improved"
        else:
            verdict = "~"
        print(
            f"{_short(name):<{name_width}}  {format_seconds(old)}"
            f"  {format_seconds(new)}  {ratio:6.2f}x  {verdict}"
        )
    added = sorted(set(current) - set(previous))
    removed = sorted(set(previous) - set(current))
    print("-" * len(header))
    print(
        f"{len(shared)} compared, {regressions} regressed, "
        f"{len(added)} new, {len(removed)} removed"
    )


def print_trajectory(
    runs: list[tuple[int, Path]], current_index: int, current: dict[str, float]
) -> None:
    """The full BENCH_0 → BENCH_N history of the current benchmarks.

    One row per benchmark of the *current* run, one column per recorded
    run (missing cells — benchmarks that did not exist yet, or were
    retired and re-added — print as ``—``), so a PR review sees the
    whole trajectory instead of only the last hop.
    """
    history: list[tuple[int, dict[str, float]]] = [
        (index, load_means(path)) for index, path in runs
    ]
    history.append((current_index, current))
    names = sorted(current)
    if not names:
        print("no benchmarks in the current run")
        return
    name_width = max(len(_short(name)) for name in names)
    columns = [f"BENCH_{index}" for index, _ in history]
    header = f"{'benchmark':<{name_width}}  " + "  ".join(
        f"{column:>10}" for column in columns
    )
    print(header)
    print("-" * len(header))
    for name in names:
        cells = []
        for _, means in history:
            mean = means.get(name)
            cells.append(
                f"{format_seconds(mean):>10}" if mean is not None else
                f"{'—':>10}"
            )
        print(f"{_short(name):<{name_width}}  " + "  ".join(cells))
    print("-" * len(header))
    legend = ", ".join(
        f"BENCH_{index}={load_backend(path)}" for index, path in runs
    )
    current_backend = os.environ.get("REPRO_KERNEL_BACKEND") or "auto"
    if legend:
        legend += ", "
    print(
        f"kernel backends: {legend}BENCH_{current_index}={current_backend}"
    )


def _short(fullname: str) -> str:
    """Strip the ``benchmarks/`` prefix for narrower tables."""
    return fullname.removeprefix("benchmarks/")


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    argv = [argument for argument in argv if argument != "--quick"]
    backend = None
    if "--backend" in argv:
        flag = argv.index("--backend")
        try:
            backend = argv[flag + 1]
        except IndexError:
            print("--backend requires a value (e.g. --backend bitparallel)")
            return 2
        del argv[flag : flag + 2]
        os.environ["REPRO_KERNEL_BACKEND"] = backend
    if quick:
        argv = QUICK_ARGS + argv
    runs = existing_runs()
    if quick:
        suffix = f"_{backend}" if backend else ""
        target = REPO_ROOT / f"BENCH_quick{suffix}.json"
    else:
        next_index = runs[-1][0] + 1 if runs else 0
        target = REPO_ROOT / f"BENCH_{next_index}.json"
    with tempfile.TemporaryDirectory() as tmp:
        scratch = Path(tmp) / "bench.json"
        status = run_suite(scratch, argv, quick=quick, backend=backend)
        if not scratch.exists():
            print("benchmark run produced no JSON; nothing written")
            return status or 1
        # Compact re-serialization: pytest-benchmark pretty-prints >100k
        # lines; one line per run keeps the committed artifacts small.
        data = json.loads(scratch.read_text())
        data["kernel_backend"] = (
            backend or os.environ.get("REPRO_KERNEL_BACKEND") or "auto"
        )
        target.write_text(
            json.dumps(data, separators=(",", ":"), sort_keys=True) + "\n"
        )
    print(f"\nwrote {target.name}")
    if quick:
        # Single-round quick means are not comparable to full-length
        # trajectory runs; diffing them would flag bogus regressions.
        print("quick smoke run — trajectory comparison skipped")
    elif runs:
        current = load_means(target)
        previous_path = runs[-1][1]
        print(f"comparing against {previous_path.name}:\n")
        print_table(load_means(previous_path), current)
        next_index = runs[-1][0] + 1
        print(f"\nfull trajectory BENCH_0 → BENCH_{next_index}:\n")
        print_trajectory(runs, next_index, current)
    else:
        print("no previous BENCH_*.json — this run is the baseline")
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
