"""Bench: Tier-B experiments E1/E2 — detection quality studies.

The paper defines precision/recall/F1 (Section III-E) but reports no
measurements; these benches run the full studies and assert the
qualitative shape:

* E1 — every decision model beats chance by a wide margin on light
  uncertainty, and quality degrades as uncertainty grows;
* E2 — the probability-aware derivations (expected similarity, matching
  weight) beat the probability-blind maximum-similarity baseline on
  precision.
"""

from __future__ import annotations

from repro.experiments import run_e1_decision_models, run_e2_derivations


def _by(rows, **filters):
    matching = [
        row
        for row in rows
        if all(getattr(row, key) == value for key, value in filters.items())
    ]
    assert matching, f"no rows for {filters}"
    return matching


def test_bench_e1_decision_models(benchmark):
    """E1: knowledge rules vs Fellegi–Sunter vs weighted sum."""
    rows = benchmark.pedantic(
        run_e1_decision_models,
        kwargs={"entity_count": 60, "seed": 11},
        iterations=1,
        rounds=1,
    )
    assert len(rows) == 9  # 3 models × 3 profiles

    for configuration in (
        "knowledge_rules",
        "fellegi_sunter",
        "weighted_sum",
    ):
        light = _by(rows, configuration=configuration, profile="light")[0]
        assert light.report.recall > 0.3, configuration
        assert light.report.precision > 0.2, configuration

    # Shape: heavy uncertainty must not *improve* F1 for the FS model.
    fs_light = _by(rows, configuration="fellegi_sunter", profile="light")[0]
    fs_heavy = _by(rows, configuration="fellegi_sunter", profile="heavy")[0]
    assert fs_heavy.report.f1 <= fs_light.report.f1 + 0.1


def test_bench_e2_derivations(benchmark):
    """E2: derivation functions on x-relations."""
    rows = benchmark.pedantic(
        run_e2_derivations,
        kwargs={"entity_count": 50, "seed": 13},
        iterations=1,
        rounds=1,
    )
    assert len(rows) == 15  # 5 derivations × 3 profiles

    # Shape: the probability-blind maximum-similarity baseline buys
    # recall by giving up precision relative to expected similarity.
    for profile in ("light", "default"):
        expected = _by(
            rows, configuration="expected_similarity", profile=profile
        )[0]
        maximum = _by(
            rows, configuration="maximum_similarity", profile=profile
        )[0]
        assert maximum.report.recall >= expected.report.recall - 1e-9
        assert expected.report.precision >= maximum.report.precision - 0.02
