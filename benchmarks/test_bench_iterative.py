"""Bench: Swoosh-style iterative match-merge vs detect-then-cluster.

Compares the two entity-resolution control flows on the same generated
relation:

* **batch** — pairwise detection over all pairs, then transitive
  clustering, then fusion (this library's pipeline);
* **iterative** — R-Swoosh-style match-merge ([18]), which merges on
  first match and re-compares fused tuples.

Shape assertions: both resolve the relation (fewer tuples than input),
and the iterative resolver performs at most the full-comparison count
plus merge-induced re-comparisons.
"""

from __future__ import annotations

import pytest

from repro.datagen import DatasetConfig, generate_dataset
from repro.experiments.quality import default_matcher, weighted_model
from repro.fusion import fuse_relation
from repro.matching import (
    DuplicateDetector,
    IterativeResolver,
    XTupleDecisionProcedure,
)


@pytest.fixture(scope="module")
def resolution_dataset():
    return generate_dataset(
        DatasetConfig(entity_count=60, seed=83), flat=True
    )


def test_bench_batch_resolution(benchmark, resolution_dataset):
    """Detect → cluster → fuse."""
    relation = resolution_dataset.relation
    detector = DuplicateDetector(default_matcher(), weighted_model())

    def run():
        result = detector.detect(relation)
        clustering = result.clusters()
        return fuse_relation(relation, clustering)

    fused = benchmark.pedantic(run, iterations=1, rounds=1)
    assert len(fused) < len(relation)


def test_bench_iterative_resolution(benchmark, resolution_dataset):
    """R-Swoosh match-merge to fixpoint."""
    relation = resolution_dataset.relation
    resolver = IterativeResolver(
        XTupleDecisionProcedure(default_matcher(), weighted_model())
    )
    outcome = benchmark.pedantic(
        resolver.resolve, args=(relation,), iterations=1, rounds=1
    )
    assert len(outcome.relation) < len(relation)
    n = len(relation)
    # Comparisons bounded by full comparison plus merge re-comparisons.
    assert outcome.comparisons <= n * (n - 1) // 2 + outcome.merged_count * n


def test_bench_control_flows_agree(resolution_dataset):
    """Both control flows should find broadly the same entities."""
    relation = resolution_dataset.relation
    detector = DuplicateDetector(default_matcher(), weighted_model())
    batch = fuse_relation(relation, detector.detect(relation).clusters())

    resolver = IterativeResolver(
        XTupleDecisionProcedure(default_matcher(), weighted_model())
    )
    iterative = resolver.resolve(relation).relation

    # Principled tolerance, not determinism: both control flows are
    # deterministic under the bench seed, but they legitimately disagree
    # at the margin in *either* direction.  Iterative resolution can
    # merge more (fused distributions accumulate evidence and expose
    # matches neither source tuple exhibited) or fewer (an early merge
    # can dilute an attribute distribution below the match threshold
    # for a partner that batch detection, which always compares the
    # *original* tuples, still catches — the seed run resolves 81 vs 80
    # entities exactly this way).  We therefore bound the symmetric
    # disagreement at 10% of the input instead of asserting an order
    # between the two counts.
    assert abs(len(batch) - len(iterative)) <= max(2, 0.1 * len(relation))
