"""Bench: columnar planning scans and statistics-driven source pruning.

The columnar backend's two plan-time promises, asserted (not just
timed):

* **projection beats row decode** — a key-extraction pass over a wide
  spilled relation reads only the key column through
  :func:`~repro.reduction.plan.planning_view`, so building the same
  plan must be at least 3× faster than over the row store, which
  decodes every fat payload column of every tuple just to read a one
  character block key;
* **zone maps prune before any fetch** — consolidating sources whose
  first-key-part ranges are provably disjoint drops those sources from
  ``detect_between(within_sources=False)`` planning entirely: at least
  half the partitions disappear, and the pruning decision itself
  touches statistics only — zero tuple fetches, zero scans.

Both assertions ride the same wall-clock tracking as every other bench
(pytest-benchmark JSON + ``extra_info``), so regressions show up in
``compare_bench.py`` trajectories too.
"""

from __future__ import annotations

import os
import string
import time

import pytest

from repro.matching.executor import (
    plan_sources,
    prune_disjoint_sources,
)
from repro.pdb.relations import XRelation
from repro.pdb.storage import combine_sources
from repro.pdb.xtuples import XTuple
from repro.reduction import CertainKeyBlocking, SubstringKey, plan_candidates

#: compare_bench.py --quick exports BENCH_QUICK=1; the workload shrinks
#: and the timing loops drop to one round so the CI smoke stays fast.
QUICK = bool(os.environ.get("BENCH_QUICK"))
ROUNDS = 1 if QUICK else 3
WIDE_TUPLES = 240 if QUICK else 600

#: The wide workload: 2 key-ish columns + 12 fat payload columns the
#: planning pass never needs, 3 alternatives per tuple.  Row planning
#: decodes all of it; columnar planning reads the name column plus the
#: thin structure file.
NOTE_COLUMNS = 12
ALTERNATIVES = 3
PAYLOAD = "q" * 160

BLOCK_KEY = SubstringKey([("name", 1)])

#: Floor asserted on the row/columnar planning-time ratio.  Measured
#: ~3.7× on the reference workload; 3.0 is the acceptance criterion.
MIN_PLANNING_SPEEDUP = 3.0

STORE_OPTIONS = {"segment_size": 64, "page_size": 32, "max_pages": 2}


def _wide_relation() -> XRelation:
    letters = string.ascii_lowercase
    rows = []
    for i in range(WIDE_TUPLES):
        name = letters[i % 26] + f"name-{i:05d}"
        alternatives = []
        for a in range(ALTERNATIVES):
            values = {"name": name, "job": f"job-{i % 7}-{a}"}
            for k in range(NOTE_COLUMNS):
                values[f"note{k}"] = f"payload-{k}-{a}-{PAYLOAD}"
            alternatives.append((values, round(1.0 / ALTERNATIVES, 6)))
        rows.append(XTuple.build(f"t{i:05d}", alternatives))
    schema = ("name", "job") + tuple(
        f"note{k}" for k in range(NOTE_COLUMNS)
    )
    return XRelation("wide", schema, rows)


@pytest.fixture(scope="module")
def wide_stores(tmp_path_factory):
    """The wide workload spilled in both layouts."""
    relation = _wide_relation()
    root = tmp_path_factory.mktemp("bench_columnar")
    row = relation.spill(str(root / "rows"), **STORE_OPTIONS)
    columnar = relation.spill(
        str(root / "columnar"), layout="columnar", **STORE_OPTIONS
    )
    return {"row": row, "columnar": columnar}


def _best_plan_time(store, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        plan_candidates(CertainKeyBlocking(BLOCK_KEY), store)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_columnar_planning_scan_beats_row_decode(
    benchmark, wide_stores
):
    """Plan construction over the columnar projection is ≥3× faster
    than over the row store — and builds the identical plan."""
    row, columnar = wide_stores["row"], wide_stores["columnar"]
    row_plan = plan_candidates(CertainKeyBlocking(BLOCK_KEY), row)
    columnar_plan = plan_candidates(
        CertainKeyBlocking(BLOCK_KEY), columnar
    )
    assert [p.label for p in columnar_plan] == [
        p.label for p in row_plan
    ]
    assert [p.pairs for p in columnar_plan] == [
        p.pairs for p in row_plan
    ]
    # Warm-up above also paid the one-time per-file CRC verification;
    # the timed rounds below measure steady-state planning.
    row_s = _best_plan_time(row, ROUNDS)
    columnar_s = _best_plan_time(columnar, ROUNDS)
    speedup = row_s / columnar_s
    assert speedup >= MIN_PLANNING_SPEEDUP, (
        f"columnar planning speedup {speedup:.2f}× over row decode is "
        f"below the {MIN_PLANNING_SPEEDUP}× floor "
        f"(row {row_s * 1000:.1f} ms, columnar {columnar_s * 1000:.1f} ms)"
    )
    benchmark.extra_info["row_plan_s"] = row_s
    benchmark.extra_info["columnar_plan_s"] = columnar_s
    benchmark.extra_info["speedup"] = speedup
    benchmark.pedantic(
        lambda: plan_candidates(CertainKeyBlocking(BLOCK_KEY), columnar),
        iterations=1,
        rounds=ROUNDS,
    )


# ----------------------------------------------------------------------
# Zone-map source pruning
# ----------------------------------------------------------------------


class _FetchSpy:
    """Counts every tuple-touching call on a wrapped store."""

    def __init__(self, store) -> None:
        self._store = store
        self.touches = 0

    def fetch(self, tuple_ids):
        self.touches += 1
        return self._store.fetch(tuple_ids)

    def get(self, tuple_id):
        self.touches += 1
        return self._store.get(tuple_id)

    def __iter__(self):
        self.touches += 1
        return iter(self._store)

    def __len__(self):
        return len(self._store)

    def __getattr__(self, attribute):
        return getattr(self._store, attribute)


def _source(name: str, letters: str, per_letter: int) -> XRelation:
    rows = [
        XTuple.build(
            f"{name}-{letter}{i}",
            [({"name": f"{letter}{name}-{i}", "job": "clerk"}, 1.0)],
        )
        for letter in letters
        for i in range(per_letter)
    ]
    return XRelation(name, ("name", "job"), rows)


@pytest.fixture(scope="module")
def consolidation_sources(tmp_path_factory):
    """Four columnar sources: A/B overlap on a–f, C and D are disjoint
    from everything (n–r and s–w)."""
    root = tmp_path_factory.mktemp("bench_prune")
    stores = {}
    for name, letters in (
        ("A", "abcdef"),
        ("B", "abcdef"),
        ("C", "nopqr"),
        ("D", "stuvw"),
    ):
        relation = _source(name, letters, 4)
        stores[name] = relation.spill(
            str(root / name), layout="columnar", segment_size=8
        )
    return stores


def test_bench_columnar_zone_maps_prune_before_fetch(
    benchmark, consolidation_sources
):
    """Disjoint-key-range sources are dropped before planning: ≥50%
    of the partitions vanish and the decision reads statistics only."""
    from repro.experiments.quality import default_matcher, weighted_model
    from repro.matching import DuplicateDetector

    reducer = CertainKeyBlocking(BLOCK_KEY)
    spies = {
        name: _FetchSpy(store)
        for name, store in consolidation_sources.items()
    }
    view = combine_sources(list(spies.values()))
    full_plan = plan_sources(reducer, view)
    for spy in spies.values():
        spy.touches = 0
    pruned_view, pruned = prune_disjoint_sources(view, reducer)
    assert pruned == ("C", "D")
    assert all(spy.touches == 0 for spy in spies.values()), (
        "pruning must decide from spill-time statistics alone"
    )
    pruned_plan = plan_sources(reducer, pruned_view)
    fraction = 1.0 - len(pruned_plan.partitions) / len(
        full_plan.partitions
    )
    assert fraction >= 0.5, (
        f"zone-map pruning removed only {fraction:.0%} of the "
        f"{len(full_plan.partitions)} partitions; the floor is 50%"
    )
    # C and D contribute no cross-source pairs, so consolidating all
    # four sources equals consolidating just A and B — bitwise.
    def _detector():
        return DuplicateDetector(
            default_matcher(),
            weighted_model(),
            reducer=CertainKeyBlocking(BLOCK_KEY),
        )

    def triples(result):
        return [
            (d.left_id, d.right_id, d.status, d.similarity)
            for d in result.decisions
        ]

    stores = consolidation_sources
    all_four = _detector().detect_between(
        stores["A"],
        stores["B"],
        stores["C"],
        stores["D"],
        within_sources=False,
    )
    two = _detector().detect_between(
        stores["A"], stores["B"], within_sources=False
    )
    assert triples(all_four) == triples(two)
    benchmark.extra_info["partitions_full"] = len(full_plan.partitions)
    benchmark.extra_info["partitions_pruned"] = len(
        pruned_plan.partitions
    )
    benchmark.extra_info["pruned_fraction"] = fraction
    detector = _detector()
    benchmark.pedantic(
        lambda: detector.detect_between(
            stores["A"],
            stores["B"],
            stores["C"],
            stores["D"],
            within_sources=False,
        ),
        iterations=1,
        rounds=ROUNDS,
    )
