"""Bench: data fusion and the uncertain result representation.

Covers the paper's integration step (d) and the conclusion's outlook:
fusion throughput over detected clusters, and construction cost of the
probabilistic resolution with mutually exclusive tuple sets.
"""

from __future__ import annotations

import pytest

from repro.datagen import DatasetConfig, generate_dataset
from repro.experiments.quality import default_matcher, weighted_model
from repro.fusion import (
    build_uncertain_resolution,
    decide_most_probable,
    fuse_relation,
    mediate_mixture,
)
from repro.matching import DuplicateDetector, ThresholdClassifier


@pytest.fixture(scope="module")
def detected():
    dataset = generate_dataset(
        DatasetConfig(entity_count=100, seed=71), flat=True
    )
    model = weighted_model()
    detector = DuplicateDetector(default_matcher(), model)
    result = detector.detect(dataset.relation)
    return dataset, result, model.classifier


@pytest.mark.parametrize(
    "strategy_name,strategy",
    [
        ("mixture", mediate_mixture),
        ("most_probable", decide_most_probable),
    ],
)
def test_bench_fuse_relation(benchmark, detected, strategy_name, strategy):
    """Relation-level fusion with both strategy families."""
    dataset, result, _ = detected
    clustering = result.clusters()

    fused = benchmark(
        fuse_relation,
        dataset.relation,
        clustering,
        value_fusion=strategy,
    )
    assert len(fused) < len(dataset.relation)
    # Every definite cluster collapsed into exactly one tuple.
    expected = len(dataset.relation) - sum(
        len(cluster) - 1 for cluster in clustering.clusters
    )
    assert len(fused) == expected


def test_bench_uncertain_resolution(benchmark, detected):
    """Building the probabilistic result (outlook of the paper)."""
    dataset, result, classifier = detected
    resolution = benchmark(
        build_uncertain_resolution,
        dataset.relation,
        result,
        classifier,
    )
    # Consistency: expected size lies between all-merged and all-separate.
    merged_size = len(
        resolution.instantiate(
            {d: 0 for d in resolution.hypotheses}
        )
    )
    separate_size = len(
        resolution.instantiate(
            {d: 1 for d in resolution.hypotheses}
        )
    )
    expected = resolution.expected_tuple_count()
    assert merged_size <= expected <= separate_size


def test_bench_e6_fusion_quality(benchmark):
    """E6: deciding strategies concentrate mass on the true value;
    mixture fusion is mass-preserving (a weighted average cannot move
    the mean) — its role is calibration, not point accuracy."""
    from repro.experiments import run_e6_fusion_quality

    rows = benchmark.pedantic(
        run_e6_fusion_quality,
        kwargs={"entity_count": 100, "seed": 19},
        iterations=1,
        rounds=1,
    )
    by_name = {row.strategy: row for row in rows}
    assert by_name["most_probable"].gain > 0.0
    assert abs(by_name["mixture"].gain) < 0.05


def test_bench_exclusive_pair_extraction(benchmark, detected):
    """Cost of listing the mutually exclusive tuple sets."""
    dataset, result, classifier = detected
    resolution = build_uncertain_resolution(
        dataset.relation, result, classifier
    )
    exclusive = benchmark(resolution.exclusive_pairs)
    # Every hypothesis contributes ≥ 2 exclusive pairs (fused vs members).
    assert len(exclusive) >= 2 * len(resolution.hypotheses)
