"""Deterministic fault injection for the execution and storage layers.

Chaos testing is only useful when it is *reproducible*: a fault that
appears once in a thousand runs proves nothing about recovery.  This
module injects the three production failure modes the fault-tolerance
layer defends against — worker death, hung dispatch, bit rot — at
seed-chosen but fully deterministic targets:

* **content-addressed dispatch hooks** — the executor's supervised
  paths consult an installed hook once per dispatch attempt with the
  attempt number and the dispatch's candidate pairs
  (:func:`repro.matching.executor.workers.set_fault_hook`).  Hooks
  built here fire when a chosen *target pair* is part of the dispatch,
  so the same pair misbehaves wherever scheduling happens to place it —
  across ``"partitioned"`` / ``"stealing"``, any worker count, any
  chunking.  The attempt number travels in the dispatch payload, so
  ``attempts=(1,)`` injectors fail the first attempt and let the retry
  succeed no matter which worker process the retry lands on;
* **on-disk byte flips** — :meth:`FaultInjector.flip_byte` corrupts a
  seed-chosen byte of a seed-chosen segment of a spilled store, for
  exercising checksum verification and quarantine.

The hooks are installed in the parent *before* the engine forks its
pool, so every worker inherits them (fork start method; the platforms
the pipeline fans out on).  The degraded in-process fallback
deliberately bypasses the hook — recovery must not re-trigger the
fault it recovers from.

Example — first attempt of whatever dispatch carries ``pair`` crashes,
the retry completes the run bitwise-identically::

    injector = FaultInjector(seed=7)
    pair = injector.pick_pair(plan)
    with installed(crash_on(pair)):
        result = detector.detect(
            relation, n_jobs=2,
            retry=RetryPolicy(max_attempts=2), on_error="raise",
        )
"""

from __future__ import annotations

import os
import random
import time
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import parent_process

from repro.matching.executor.workers import set_fault_hook

#: Hook signature the executor consults: ``(attempt, pairs) -> None``;
#: raising (or not returning) is the injection.
FaultHook = Callable[[int, Sequence[tuple[str, str]]], None]


class InjectedWorkerCrash(RuntimeError):
    """The exception :func:`crash_on` injectors raise inside a worker."""


@contextmanager
def installed(hook: FaultHook) -> Iterator[FaultHook]:
    """Install *hook* for the duration of a ``with`` block.

    Install *before* the detect call so the engine's forked workers
    inherit it; always cleared on exit, even when the run raises.
    """
    set_fault_hook(hook)
    try:
        yield hook
    finally:
        set_fault_hook(None)


def _targets(
    pair: tuple[str, str], attempts: Sequence[int]
) -> Callable[[int, Sequence[tuple[str, str]]], bool]:
    target = tuple(pair)
    wanted = frozenset(attempts)

    def matches(attempt: int, pairs: Sequence[tuple[str, str]]) -> bool:
        return attempt in wanted and any(
            tuple(candidate) == target for candidate in pairs
        )

    return matches


def crash_on(
    pair: tuple[str, str], *, attempts: Sequence[int] = (1,)
) -> FaultHook:
    """Raise :class:`InjectedWorkerCrash` in the dispatch carrying *pair*.

    Models a work unit whose execution raises (poison input, transient
    resource failure): the exception travels back through the pool's
    error callback and surfaces as a
    :class:`~repro.matching.executor.WorkerCrash` — detected
    immediately, no timeout needed.
    """
    matches = _targets(pair, attempts)

    def hook(attempt: int, pairs: Sequence[tuple[str, str]]) -> None:
        if matches(attempt, pairs):
            raise InjectedWorkerCrash(
                f"injected crash for pair {tuple(pair)!r} "
                f"on attempt {attempt}"
            )

    return hook


def kill_on(
    pair: tuple[str, str], *, attempts: Sequence[int] = (1,)
) -> FaultHook:
    """Kill the worker process handling the dispatch that carries *pair*.

    Models hard process death (OOM killer, SIGKILL): ``os._exit`` skips
    every handler, so the task is simply lost and the pool respawns a
    replacement worker — detection therefore requires a
    ``RetryPolicy(timeout=...)`` deadline, after which the unit
    surfaces as a :class:`~repro.matching.executor.WorkerTimeout`.
    When consulted *in-process* (serial supervision — there is no
    worker process to lose), it degenerates to an
    :class:`InjectedWorkerCrash` instead of killing the test run.
    """
    matches = _targets(pair, attempts)

    def hook(attempt: int, pairs: Sequence[tuple[str, str]]) -> None:
        if matches(attempt, pairs):
            if parent_process() is None:
                raise InjectedWorkerCrash(
                    f"injected kill for pair {tuple(pair)!r} on attempt "
                    f"{attempt} (in-process: no worker to kill)"
                )
            os._exit(1)

    return hook


def stall_on(
    pair: tuple[str, str],
    seconds: float,
    *,
    attempts: Sequence[int] = (1,),
) -> FaultHook:
    """Stall the dispatch carrying *pair* for *seconds*.

    Models a hung comparison (pathological input, stuck I/O): the
    worker stays alive but the dispatch misses its deadline and is
    retried as a :class:`~repro.matching.executor.WorkerTimeout`; the
    stalled attempt's late result is discarded as stale.  Keep
    *seconds* comfortably above the policy's ``timeout`` but bounded —
    the sleeping worker occupies its pool slot until it wakes.
    """
    matches = _targets(pair, attempts)

    def hook(attempt: int, pairs: Sequence[tuple[str, str]]) -> None:
        if matches(attempt, pairs):
            time.sleep(seconds)

    return hook


def compose(*hooks: FaultHook) -> FaultHook:
    """One hook running several injectors in order (first raise wins)."""

    def hook(attempt: int, pairs: Sequence[tuple[str, str]]) -> None:
        for inner in hooks:
            inner(attempt, pairs)

    return hook


@dataclass(frozen=True)
class FlippedByte:
    """Receipt of one on-disk byte flip (enough to undo it)."""

    #: Absolute path of the segment file that was corrupted.
    path: str
    #: Byte offset that was flipped.
    offset: int
    #: The byte's original value.
    original: int
    #: The value written in its place (``original ^ 0xFF``).
    flipped: int

    def restore(self) -> None:
        """Write the original byte back (undo the corruption)."""
        with open(self.path, "r+b") as handle:
            handle.seek(self.offset)
            handle.write(bytes([self.original]))


class FaultInjector:
    """Seeded chooser of *where* to inject — same seed, same faults.

    All randomness flows through one ``random.Random(seed)``: given the
    same plan/store and the same call sequence, every chosen partition,
    pair and byte is identical across runs — the property the chaos CI
    matrix relies on.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Target selection
    # ------------------------------------------------------------------

    def pick_partition(self, plan):
        """A seed-chosen non-empty partition of *plan*."""
        candidates = [
            partition for partition in plan.partitions if partition.pairs
        ]
        if not candidates:
            raise ValueError("plan has no partitions with pairs")
        return self._rng.choice(candidates)

    def pick_pair(self, plan) -> tuple[str, str]:
        """A seed-chosen candidate pair of a seed-chosen partition."""
        partition = self.pick_partition(plan)
        return tuple(self._rng.choice(partition.pairs))

    # ------------------------------------------------------------------
    # Executor faults (content-addressed dispatch hooks)
    # ------------------------------------------------------------------

    def worker_kill(
        self, plan, *, attempts: Sequence[int] = (1,)
    ) -> FaultHook:
        """Kill the worker handling a seed-chosen pair's dispatch."""
        return kill_on(self.pick_pair(plan), attempts=attempts)

    def partition_crash(
        self, plan, *, attempts: Sequence[int] = (1,)
    ) -> FaultHook:
        """Crash the dispatch carrying a seed-chosen pair."""
        return crash_on(self.pick_pair(plan), attempts=attempts)

    def partition_stall(
        self, plan, seconds: float, *, attempts: Sequence[int] = (1,)
    ) -> FaultHook:
        """Stall the dispatch carrying a seed-chosen pair."""
        return stall_on(self.pick_pair(plan), seconds, attempts=attempts)

    # ------------------------------------------------------------------
    # Storage faults (on-disk corruption)
    # ------------------------------------------------------------------

    def flip_byte(
        self, store, *, segment: int | None = None
    ) -> FlippedByte:
        """Flip one seed-chosen byte of one segment of a spilled store.

        *store* is a :class:`~repro.pdb.storage.SpillingXTupleStore`
        (any object exposing ``_segment_files``); *segment* pins the
        segment index, otherwise it is seed-chosen.  Returns a
        :class:`FlippedByte` receipt that can :meth:`~FlippedByte.restore`
        the original byte.
        """
        files = list(store._segment_files)
        if not files:
            raise ValueError("store has no segments to corrupt")
        if segment is None:
            segment = self._rng.randrange(len(files))
        path = files[segment]
        size = os.path.getsize(path)
        if size == 0:
            raise ValueError(f"segment {path!r} is empty")
        offset = self._rng.randrange(size)
        with open(path, "r+b") as handle:
            handle.seek(offset)
            original = handle.read(1)[0]
            handle.seek(offset)
            handle.write(bytes([original ^ 0xFF]))
        return FlippedByte(
            path=path,
            offset=offset,
            original=original,
            flipped=original ^ 0xFF,
        )


__all__ = [
    "FaultHook",
    "FaultInjector",
    "FlippedByte",
    "InjectedWorkerCrash",
    "compose",
    "crash_on",
    "installed",
    "kill_on",
    "stall_on",
]
