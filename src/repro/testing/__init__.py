"""Test harnesses shipped with the library.

Currently one: :mod:`repro.testing.faults`, the deterministic
fault-injection harness behind the chaos suite — seeded injectors that
kill the worker handling a chosen dispatch, stall it past its deadline,
crash it outright, or flip a byte of a spilled segment on disk.  Lives
in the package (not ``tests/``) so downstream deployments can chaos-test
their own configurations with the same tools CI uses.
"""

from repro.testing.faults import (
    FaultHook,
    FaultInjector,
    FlippedByte,
    InjectedWorkerCrash,
    compose,
    crash_on,
    installed,
    kill_on,
    stall_on,
)

__all__ = [
    "FaultHook",
    "FaultInjector",
    "FlippedByte",
    "InjectedWorkerCrash",
    "compose",
    "crash_on",
    "installed",
    "kill_on",
    "stall_on",
]
