"""Data preparation: cleaning of easy-to-recognize errors (Section III-A).

Cleaning differs from standardization in that it *repairs* values rather
than re-encoding them: control characters, placeholder strings that
actually denote missing data ("n/a", "-", "unknown"), and empty strings
are normalized to proper non-existence (⊥), keeping the probabilistic
interpretation intact (mass of repaired outcomes moves to ⊥ or merges).
"""

from __future__ import annotations

import re
from collections.abc import Iterable
from typing import Any

from repro.pdb.relations import XRelation
from repro.pdb.values import NULL, ProbabilisticValue
from repro.pdb.xtuples import TupleAlternative, XTuple

#: Strings commonly used as ad-hoc missing-data markers.
DEFAULT_MISSING_MARKERS = frozenset(
    {"", "-", "?", "n/a", "na", "null", "none", "unknown", "missing"}
)

_CONTROL = re.compile(r"[\x00-\x1f\x7f]")


def remove_control_characters(value: Any) -> Any:
    """Strip ASCII control characters from strings."""
    if not isinstance(value, str):
        return value
    return _CONTROL.sub("", value)


def missing_marker_to_null(
    value: Any,
    markers: frozenset[str] = DEFAULT_MISSING_MARKERS,
) -> Any:
    """Map placeholder strings to the proper ⊥ marker."""
    if isinstance(value, str) and value.strip().casefold() in markers:
        return NULL
    return value


def clean_value(
    value: ProbabilisticValue,
    *,
    markers: frozenset[str] = DEFAULT_MISSING_MARKERS,
) -> ProbabilisticValue:
    """Clean every outcome of an uncertain value.

    Control characters are removed first; outcomes that then read as
    missing-data markers become ⊥ (their mass joins the ⊥ mass).
    """
    return value.map(
        lambda outcome: missing_marker_to_null(
            remove_control_characters(outcome), markers
        )
    )


def clean_xtuple(
    xtuple: XTuple,
    *,
    attributes: Iterable[str] | None = None,
    markers: frozenset[str] = DEFAULT_MISSING_MARKERS,
) -> XTuple:
    """Clean selected attributes of every alternative."""
    targets = (
        tuple(attributes)
        if attributes is not None
        else xtuple.attributes
    )
    updated: list[TupleAlternative] = []
    for alternative in xtuple.alternatives:
        values = dict(alternative.values())
        for attribute in targets:
            if attribute in values:
                values[attribute] = clean_value(
                    values[attribute], markers=markers
                )
        updated.append(TupleAlternative(values, alternative.probability))
    return XTuple(xtuple.tuple_id, updated)


def clean_relation(
    relation: XRelation,
    *,
    attributes: Iterable[str] | None = None,
    markers: frozenset[str] = DEFAULT_MISSING_MARKERS,
) -> XRelation:
    """Clean a whole x-relation."""
    return XRelation(
        relation.name,
        relation.schema,
        [
            clean_xtuple(xtuple, attributes=attributes, markers=markers)
            for xtuple in relation
        ],
    )
