"""Data preparation (Section III-A): standardization and cleaning."""

from repro.preparation.cleaning import (
    DEFAULT_MISSING_MARKERS,
    clean_relation,
    clean_value,
    clean_xtuple,
    missing_marker_to_null,
    remove_control_characters,
)
from repro.preparation.standardize import (
    DEFAULT_STANDARDIZATION,
    apply_replacements,
    apply_token_replacements,
    casefold_value,
    compose,
    normalize_whitespace,
    standardize_relation,
    standardize_xtuple,
    strip_accents,
)

__all__ = [
    "DEFAULT_MISSING_MARKERS",
    "DEFAULT_STANDARDIZATION",
    "apply_replacements",
    "apply_token_replacements",
    "casefold_value",
    "clean_relation",
    "clean_value",
    "clean_xtuple",
    "compose",
    "missing_marker_to_null",
    "normalize_whitespace",
    "remove_control_characters",
    "standardize_relation",
    "standardize_xtuple",
    "strip_accents",
]
