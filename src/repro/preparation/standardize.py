"""Data preparation: standardization (Section III-A).

"Data is standardized (e.g., unification of conventions and units) and
cleaned … to obtain a homogeneous representation of all source data."

For probabilistic data, standardization must respect distributions: a
transformation is applied to *every outcome* of an uncertain value, with
colliding outcomes merging their probability mass (two spellings that
standardize to the same string become one alternative) — implemented via
:meth:`repro.pdb.values.ProbabilisticValue.map`.
"""

from __future__ import annotations

import re
import unicodedata
from collections.abc import Callable, Iterable, Mapping
from typing import Any

from repro.pdb.relations import XRelation
from repro.pdb.xtuples import TupleAlternative, XTuple

#: A value-level standardization step.
ValueTransform = Callable[[Any], Any]

_WHITESPACE = re.compile(r"\s+")


def normalize_whitespace(value: Any) -> Any:
    """Trim and collapse internal whitespace runs of strings."""
    if not isinstance(value, str):
        return value
    return _WHITESPACE.sub(" ", value).strip()


def casefold_value(value: Any) -> Any:
    """Case-normalize strings (full Unicode casefold)."""
    if not isinstance(value, str):
        return value
    return value.casefold()


def strip_accents(value: Any) -> Any:
    """Remove combining marks: ``'Müller' → 'Muller'``."""
    if not isinstance(value, str):
        return value
    decomposed = unicodedata.normalize("NFKD", value)
    return "".join(c for c in decomposed if not unicodedata.combining(c))


def apply_replacements(
    replacements: Mapping[str, str],
) -> ValueTransform:
    """Transform factory: exact-match convention unification.

    E.g. ``{"Dr.": "doctor", "eng.": "engineer"}`` — the mapping is
    applied to whole values (use :func:`apply_token_replacements` for
    within-string token rewriting).
    """
    table = dict(replacements)

    def _replace(value: Any) -> Any:
        if isinstance(value, str) and value in table:
            return table[value]
        return value

    return _replace


def apply_token_replacements(
    replacements: Mapping[str, str],
) -> ValueTransform:
    """Transform factory: token-wise abbreviation expansion."""
    table = {k.casefold(): v for k, v in replacements.items()}

    def _replace(value: Any) -> Any:
        if not isinstance(value, str):
            return value
        tokens = value.split()
        return " ".join(table.get(t.casefold(), t) for t in tokens)

    return _replace


def compose(*transforms: ValueTransform) -> ValueTransform:
    """Chain several value transforms left to right."""

    def _composed(value: Any) -> Any:
        for transform in transforms:
            value = transform(value)
        return value

    return _composed


#: A sensible default pipeline: whitespace, accents, case.
DEFAULT_STANDARDIZATION = compose(
    normalize_whitespace, strip_accents, casefold_value
)


def standardize_xtuple(
    xtuple: XTuple,
    transforms: Mapping[str, ValueTransform],
) -> XTuple:
    """Apply per-attribute transforms to every alternative's outcomes.

    Outcomes that collide after transformation merge probability mass —
    e.g. alternatives ``{"Tim": 0.6, "tim": 0.4}`` standardize to the
    certain value ``"tim"``.
    """
    updated: list[TupleAlternative] = []
    for alternative in xtuple.alternatives:
        current = alternative
        for attribute, transform in transforms.items():
            if attribute in current.attributes:
                current = current.map_values(attribute, transform)
        updated.append(current)
    return XTuple(xtuple.tuple_id, updated)


def standardize_relation(
    relation: XRelation,
    transforms: Mapping[str, ValueTransform] | None = None,
    *,
    attributes: Iterable[str] | None = None,
) -> XRelation:
    """Standardize a whole x-relation.

    Parameters
    ----------
    relation:
        The relation to standardize.
    transforms:
        Per-attribute transforms; when omitted,
        :data:`DEFAULT_STANDARDIZATION` is applied to *attributes*.
    attributes:
        Attributes to default-standardize (all schema attributes when
        omitted); ignored if *transforms* is given.
    """
    if transforms is None:
        targets = (
            tuple(attributes)
            if attributes is not None
            else relation.schema.attributes
        )
        transforms = {
            attribute: DEFAULT_STANDARDIZATION for attribute in targets
        }
    return XRelation(
        relation.name,
        relation.schema,
        [standardize_xtuple(xtuple, transforms) for xtuple in relation],
    )
