"""Byte-reproducible audit manifests for detection runs.

A production merge decision must be *defensible*: given only the
manifest of a run, an auditor can (a) verify the manifest file itself
was not edited (self-digest), (b) verify a re-run of the same inputs
produced the same decisions (semantic fingerprint), and (c) see every
input that determined the outcome — calibration-set fingerprints,
resolved thresholds and pushdown floors, the plan's per-partition
content fingerprints, and the per-partition η counts.

The **semantic payload** deliberately excludes how the run was
executed — worker count, scheduling mode, kernel backend, storage
backend — because the execution layers are all pinned bitwise to the
serial reference: a spilled ``n_jobs=2`` stealing run over the same
data with the same model *must* produce the same manifest fingerprint
as an in-memory serial run, and ``tests/test_calibration.py`` holds the
system to that.  Execution details are still recorded, as
non-fingerprinted ``environment`` metadata.

Serialization is canonical JSON (sorted keys, no whitespace, shortest
round-trip floats), so equal payloads are equal *bytes* — the
fingerprint is a blake2b over exactly those bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

#: Manifest schema version.
MANIFEST_FORMAT = 1

#: Digest size (bytes) of manifest fingerprints and self-digests.
_DIGEST_BYTES = 16


class ManifestIntegrityError(ValueError):
    """A manifest file's content does not match its recorded digest."""


def _canonical_bytes(document) -> bytes:
    """Canonical JSON bytes: equal documents ⇒ equal bytes."""
    return json.dumps(
        document,
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    ).encode("utf-8")


def _digest(payload: bytes) -> str:
    return hashlib.blake2b(
        payload, digest_size=_DIGEST_BYTES
    ).hexdigest()


@dataclass(frozen=True)
class AuditManifest:
    """One detection run, reduced to its reproducible essence.

    Attributes
    ----------
    thresholds:
        Resolved classifier state: ``{"match": T_μ, "unmatch": T_λ,
        "forced_unsure": bool}``.
    floors:
        Pushdown floors in force (``{"per_attribute": {...},
        "default": x}``), or ``None`` when the run was exact.
    calibration:
        The calibrated model's audit entry (method, target FPR,
        calibration-set fingerprint, gate trips …), or ``None`` for an
        uncalibrated model.
    plan_fingerprints:
        Per-partition content fingerprints
        (:func:`repro.reduction.plan.plan_fingerprints`), in plan
        order — pinning *which data* each partition decided.
    partition_counts:
        Per-partition η counts ``{label: [matches, possibles,
        unmatches]}`` over the partitions that produced results.
    status_totals:
        Run-wide η counts ``{"m": …, "p": …, "u": …}``.
    decided_pairs:
        Total pairs decided.
    failures:
        Labels of partitions dropped by ``on_error="skip"``, sorted.
    environment:
        Execution metadata (n_jobs, scheduling, kernel backend,
        storage class, model repr) — recorded for forensics, **excluded
        from the fingerprint** (see module docstring).
    digest:
        The self-digest recorded in a loaded file; ``None`` for
        freshly built manifests (computed on write).
    """

    thresholds: Mapping
    floors: Mapping | None
    calibration: Mapping | None
    plan_fingerprints: tuple[str, ...]
    partition_counts: Mapping[str, Sequence[int]]
    status_totals: Mapping[str, int]
    decided_pairs: int
    failures: tuple[str, ...] = ()
    environment: Mapping = field(default_factory=dict)
    format: int = MANIFEST_FORMAT
    digest: str | None = None

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------

    def payload(self) -> dict:
        """The semantic content — everything that *should* reproduce."""
        return {
            "format": self.format,
            "thresholds": dict(self.thresholds),
            "floors": dict(self.floors) if self.floors is not None else None,
            "calibration": (
                dict(self.calibration)
                if self.calibration is not None
                else None
            ),
            "plan_fingerprints": list(self.plan_fingerprints),
            "partition_counts": {
                label: list(counts)
                for label, counts in dict(self.partition_counts).items()
            },
            "status_totals": dict(self.status_totals),
            "decided_pairs": self.decided_pairs,
            "failures": list(self.failures),
        }

    def payload_bytes(self) -> bytes:
        """Canonical bytes of :meth:`payload` — the fingerprint input."""
        return _canonical_bytes(self.payload())

    def fingerprint(self) -> str:
        """Semantic fingerprint: equal iff the runs are equivalent."""
        return _digest(self.payload_bytes())

    def verify_against(self, other: "AuditManifest") -> bool:
        """Whether two runs are semantically byte-identical."""
        return self.payload_bytes() == other.payload_bytes()

    def diff(self, other: "AuditManifest") -> tuple[str, ...]:
        """Top-level payload keys on which two manifests disagree."""
        mine, theirs = self.payload(), other.payload()
        return tuple(
            sorted(
                key
                for key in set(mine) | set(theirs)
                if mine.get(key) != theirs.get(key)
            )
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_document(self) -> dict:
        """Full JSON document: payload + environment + self-digest.

        The digest covers payload *and* environment, so editing either
        in the file is detected; the semantic fingerprint still covers
        the payload only.
        """
        document = {
            "payload": self.payload(),
            "environment": dict(self.environment),
        }
        document["digest"] = _digest(_canonical_bytes(document))
        return document

    def write(self, path: str | os.PathLike) -> str:
        """Write the manifest JSON; returns the recorded digest."""
        document = self.to_document()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True, indent=2)
            handle.write("\n")
        return document["digest"]

    def verify_integrity(self) -> bool:
        """Whether a loaded manifest still matches its recorded digest.

        Freshly built manifests (no recorded digest) verify trivially.
        """
        if self.digest is None:
            return True
        document = {
            "payload": self.payload(),
            "environment": dict(self.environment),
        }
        return _digest(_canonical_bytes(document)) == self.digest

    @classmethod
    def from_document(cls, document: Mapping) -> "AuditManifest":
        payload = document.get("payload", {})
        return cls(
            thresholds=payload.get("thresholds", {}),
            floors=payload.get("floors"),
            calibration=payload.get("calibration"),
            plan_fingerprints=tuple(
                payload.get("plan_fingerprints", ())
            ),
            partition_counts={
                str(label): list(counts)
                for label, counts in payload.get(
                    "partition_counts", {}
                ).items()
            },
            status_totals=dict(payload.get("status_totals", {})),
            decided_pairs=int(payload.get("decided_pairs", 0)),
            failures=tuple(payload.get("failures", ())),
            environment=dict(document.get("environment", {})),
            format=int(payload.get("format", MANIFEST_FORMAT)),
            digest=document.get("digest"),
        )


def load_manifest(
    path: str | os.PathLike, *, verify: bool = True
) -> AuditManifest:
    """Load a manifest file; by default refuse tampered files.

    With ``verify=True`` (default) a file whose content no longer
    matches its recorded digest raises :class:`ManifestIntegrityError`;
    pass ``verify=False`` to load it anyway and inspect
    :meth:`AuditManifest.verify_integrity` manually.
    """
    with open(path, "r", encoding="utf-8") as handle:
        manifest = AuditManifest.from_document(json.load(handle))
    if verify and not manifest.verify_integrity():
        raise ManifestIntegrityError(
            f"{os.fspath(path)}: content does not match recorded "
            f"digest {manifest.digest} — the file was edited"
        )
    return manifest


def build_manifest(
    *,
    procedure,
    plan_fingerprints: Sequence[str],
    partition_counts: Mapping[str, Sequence[int]],
    floors=None,
    failures: Sequence[str] = (),
    environment: Mapping | None = None,
) -> AuditManifest:
    """Assemble a manifest from a run's resolved configuration.

    *procedure* is the :class:`~repro.matching.engine.
    XTupleDecisionProcedure` the run executed with — its final
    classifier supplies the thresholds and a calibrated model its
    calibration audit entry.  *floors* are the pushdown floors the run
    actually resolved (``None`` for an exact run) — passed explicitly
    because the procedure can only report what *could* be pruned, not
    what was.
    """
    classifier = procedure.final_classifier
    thresholds = {
        "match": classifier.match_threshold,
        "unmatch": classifier.unmatch_threshold,
        "forced_unsure": bool(getattr(classifier, "trips", ())),
    }
    floors_entry = None
    if floors is not None and not floors.is_exact:
        floors_entry = {
            "per_attribute": dict(floors.per_attribute),
            "default": floors.default,
        }
    model = procedure.model
    entry_supplier = getattr(model, "audit_entry", None)
    calibration = entry_supplier() if callable(entry_supplier) else None

    totals = {"m": 0, "p": 0, "u": 0}
    counts_by_label: dict[str, list[int]] = {}
    decided = 0
    for label, counts in dict(partition_counts).items():
        matches, possibles, unmatches = counts
        counts_by_label[str(label)] = [matches, possibles, unmatches]
        totals["m"] += matches
        totals["p"] += possibles
        totals["u"] += unmatches
        decided += matches + possibles + unmatches

    return AuditManifest(
        thresholds=thresholds,
        floors=floors_entry,
        calibration=calibration,
        plan_fingerprints=tuple(plan_fingerprints),
        partition_counts=counts_by_label,
        status_totals=totals,
        decided_pairs=decided,
        failures=tuple(sorted(failures)),
        environment=dict(environment or {}),
    )


__all__ = [
    "MANIFEST_FORMAT",
    "AuditManifest",
    "ManifestIntegrityError",
    "build_manifest",
    "load_manifest",
]
