"""Audit manifests: byte-reproducible records of detection runs."""

from repro.audit.manifest import (
    MANIFEST_FORMAT,
    AuditManifest,
    ManifestIntegrityError,
    build_manifest,
    load_manifest,
)

__all__ = [
    "MANIFEST_FORMAT",
    "AuditManifest",
    "ManifestIntegrityError",
    "build_manifest",
    "load_manifest",
]
