"""Probabilistic result representation of uncertain match decisions.

The paper's closing outlook: "by using a probabilistic data model for
the target schema, any kind of uncertainty arising in the duplicate
detection process (e.g., two tuples are duplicates with only a less
confidence) can be directly modeled in the resulting data by creating
mutually exclusive sets of tuples.  For that purpose, the used
probabilistic data model must be able to represent dependencies between
multiple sets of tuples … in the ULDB model [this] can be realized by
the concept of lineage."

This module implements exactly that:

* definite matches (η = m) are fused unconditionally;
* every connected component of *possible* matches (η = p) becomes a
  **merge hypothesis**: an auxiliary boolean decision x-tuple with
  alternatives ``merge`` (confidence q) and ``separate`` (1 − q);
* the result relation contains, per hypothesis, the fused tuple carrying
  lineage ``decision[merge]`` *and* the individual tuples carrying
  lineage ``decision[separate]`` — mutually exclusive sets of tuples in
  the ULDB sense;
* the result can be instantiated for any assignment of the decision
  variables, and expected statistics (e.g. expected tuple count) are
  available in closed form.

Merge confidence is calibrated from the derived similarity by a linear
ramp between the classifier's thresholds (T_λ ↦ 0, T_μ ↦ 1), the
natural reading of "duplicates with only a less confidence".
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

from repro.fusion.fuse import ValueFusion, fuse_cluster
from repro.fusion.strategies import mediate_mixture
from repro.matching.clustering import UnionFind
from repro.matching.decision.base import MatchStatus, ThresholdClassifier
from repro.matching.pipeline import DetectionResult
from repro.pdb.lineage import Lineage, LineageAtom, mutually_exclusive
from repro.pdb.relations import XRelation
from repro.pdb.xtuples import TupleAlternative, XTuple

#: Alternative indices of a decision x-tuple.
MERGE, SEPARATE = 0, 1


def ramp_confidence(
    similarity: float, classifier: ThresholdClassifier
) -> float:
    """Linear T_λ↦0, T_μ↦1 calibration of a similarity into a confidence.

    Infinite similarities (decision-based derivation with P(u)=0) map
    to 1; a collapsed band (T_λ = T_μ) maps everything at/above the
    threshold to 1.
    """
    if math.isinf(similarity):
        return 1.0 if similarity > 0 else 0.0
    low = classifier.unmatch_threshold
    high = classifier.match_threshold
    if high <= low:
        return 1.0 if similarity >= high else 0.0
    return min(1.0, max(0.0, (similarity - low) / (high - low)))


@dataclass(frozen=True)
class MergeHypothesis:
    """One uncertain merge: a tuple group that may or may not be fused.

    Attributes
    ----------
    decision_id:
        Id of the auxiliary decision x-tuple.
    member_ids:
        The source tuples involved (sorted).
    confidence:
        P(merge) — calibrated from the pair similarities.
    """

    decision_id: str
    member_ids: tuple[str, ...]
    confidence: float


@dataclass(frozen=True)
class ResultTuple:
    """One tuple of the probabilistic result with its lineage."""

    xtuple: XTuple
    lineage: Lineage

    @property
    def is_conditional(self) -> bool:
        """Whether the tuple depends on a merge decision."""
        return not self.lineage.is_empty


class UncertainResolution:
    """The probabilistic deduplication result (ULDB-style).

    Attributes
    ----------
    tuples:
        All result tuples with lineage; unconditional ones first.
    hypotheses:
        The merge hypotheses, keyed by decision id.
    decisions:
        The auxiliary decision x-relation (one boolean x-tuple per
        hypothesis; alternative 0 = merge, 1 = separate).
    """

    def __init__(
        self,
        schema,
        tuples: list[ResultTuple],
        hypotheses: dict[str, MergeHypothesis],
        decisions: XRelation,
    ) -> None:
        self.schema = schema
        self.tuples = tuples
        self.hypotheses = hypotheses
        self.decisions = decisions

    # ------------------------------------------------------------------
    # Consistency
    # ------------------------------------------------------------------

    def exclusive_pairs(self) -> list[tuple[str, str]]:
        """All pairs of result tuples that can never coexist.

        The "mutually exclusive sets of tuples" of the paper's outlook:
        a fused tuple and its members have contradictory lineage.
        """
        pairs: list[tuple[str, str]] = []
        for i, left in enumerate(self.tuples):
            for right in self.tuples[i + 1 :]:
                if mutually_exclusive(left.lineage, right.lineage):
                    pairs.append(
                        (left.xtuple.tuple_id, right.xtuple.tuple_id)
                    )
        return pairs

    # ------------------------------------------------------------------
    # Probabilities
    # ------------------------------------------------------------------

    def tuple_probability(self, result_tuple: ResultTuple) -> float:
        """Marginal probability that the result tuple exists.

        The product of the lineage atoms' decision probabilities
        (decision variables are independent across hypotheses).
        """
        probability = 1.0
        for atom in result_tuple.lineage.atoms:
            hypothesis = self.hypotheses[atom.tuple_id]
            if atom.alternative_index == MERGE:
                probability *= hypothesis.confidence
            else:
                probability *= 1.0 - hypothesis.confidence
        return probability

    def expected_tuple_count(self) -> float:
        """Expected size of the result over all decision outcomes."""
        return sum(self.tuple_probability(t) for t in self.tuples)

    # ------------------------------------------------------------------
    # Instantiation
    # ------------------------------------------------------------------

    def instantiate(
        self, choices: Mapping[str, int] | None = None, *, name: str = "resolved"
    ) -> XRelation:
        """Materialize one decision world as a plain x-relation.

        Parameters
        ----------
        choices:
            ``decision id → MERGE|SEPARATE``; missing hypotheses default
            to their modal outcome (merge iff confidence ≥ 0.5).
        """
        resolved: dict[str, int] = {}
        for decision_id, hypothesis in self.hypotheses.items():
            default = MERGE if hypothesis.confidence >= 0.5 else SEPARATE
            resolved[decision_id] = (
                choices.get(decision_id, default)
                if choices is not None
                else default
            )
        kept: list[XTuple] = []
        for result_tuple in self.tuples:
            consistent = all(
                resolved[atom.tuple_id] == atom.alternative_index
                for atom in result_tuple.lineage.atoms
            )
            if consistent:
                kept.append(result_tuple.xtuple)
        return XRelation(name, self.schema, kept)

    def __repr__(self) -> str:
        conditional = sum(1 for t in self.tuples if t.is_conditional)
        return (
            f"UncertainResolution({len(self.tuples)} tuples, "
            f"{conditional} conditional, "
            f"{len(self.hypotheses)} hypotheses)"
        )


def _possible_components(
    result: DetectionResult, merged_away: set[str]
) -> list[tuple[tuple[str, ...], float]]:
    """Connected components of possible-match pairs with mean similarity."""
    uf = UnionFind()
    similarities: dict[tuple[str, str], float] = {}
    for decision in result.decisions:
        if decision.status is not MatchStatus.POSSIBLE:
            continue
        left, right = decision.left_id, decision.right_id
        if left in merged_away or right in merged_away:
            # Already part of a definite cluster; the definite merge wins.
            continue
        uf.union(left, right)
        key = (left, right) if left <= right else (right, left)
        similarities[key] = decision.similarity
    components: list[tuple[tuple[str, ...], float]] = []
    for group in uf.groups():
        if len(group) < 2:
            continue
        members = tuple(sorted(group))
        sims = [
            sim
            for (a, b), sim in similarities.items()
            if a in group and b in group
        ]
        finite = [s for s in sims if not math.isinf(s)]
        mean_similarity = (
            sum(finite) / len(finite) if finite else float("inf")
        )
        components.append((members, mean_similarity))
    components.sort()
    return components


def build_uncertain_resolution(
    relation: XRelation,
    result: DetectionResult,
    classifier: ThresholdClassifier,
    *,
    value_fusion: ValueFusion = mediate_mixture,
) -> UncertainResolution:
    """Turn a detection result into a probabilistic target relation.

    Definite matches are fused outright; each possible-match component
    becomes a merge hypothesis with calibrated confidence, represented
    by mutually exclusive result tuples tied together by lineage over an
    auxiliary decision x-tuple.
    """
    clusters = result.clusters()
    merged_away: set[str] = {
        tuple_id for cluster in clusters.clusters for tuple_id in cluster
    }

    tuples: list[ResultTuple] = []
    consumed: set[str] = set()

    # 1. Definite clusters: unconditional fused tuples.
    for cluster in clusters.clusters:
        members = [relation.get(tuple_id) for tuple_id in cluster]
        fused = fuse_cluster(members, value_fusion=value_fusion)
        tuples.append(ResultTuple(fused, Lineage()))
        consumed.update(cluster)

    # 2. Possible components: decision variable + exclusive tuple sets.
    hypotheses: dict[str, MergeHypothesis] = {}
    decision_tuples: list[XTuple] = []
    for index, (members, mean_similarity) in enumerate(
        _possible_components(result, merged_away)
    ):
        confidence = ramp_confidence(mean_similarity, classifier)
        confidence = min(max(confidence, 1e-6), 1.0 - 1e-6)
        decision_id = f"merge_{index:03d}"
        hypotheses[decision_id] = MergeHypothesis(
            decision_id, members, confidence
        )
        decision_tuples.append(
            XTuple.build(
                decision_id,
                [
                    ({"choice": "merge"}, confidence),
                    ({"choice": "separate"}, 1.0 - confidence),
                ],
            )
        )
        member_tuples = [relation.get(tuple_id) for tuple_id in members]
        fused = fuse_cluster(member_tuples, value_fusion=value_fusion)
        tuples.append(
            ResultTuple(
                fused, Lineage([LineageAtom(decision_id, MERGE)])
            )
        )
        for xtuple in member_tuples:
            tuples.append(
                ResultTuple(
                    xtuple, Lineage([LineageAtom(decision_id, SEPARATE)])
                )
            )
        consumed.update(members)

    # 3. Everything else passes through unconditionally.
    for xtuple in relation:
        if xtuple.tuple_id not in consumed:
            tuples.append(ResultTuple(xtuple, Lineage()))

    decisions = XRelation(
        "decisions", ("choice",), decision_tuples
    )
    return UncertainResolution(
        relation.schema, tuples, hypotheses, decisions
    )
