"""Conflict resolution strategies for probabilistic values ([17]).

Data fusion (step (d) of the paper's integration process) reconciles the
attribute values of tuples identified as duplicates.  Section V-A.2
already borrows these strategies for certain-key creation ("according to
a metadata based deciding strategy the most probable alternative can be
chosen"); this module provides them for full fusion of probabilistic
values, following Bleiholder & Naumann's taxonomy:

* **deciding** strategies pick one input value —
  :func:`decide_most_probable`, :func:`decide_first`,
  :func:`decide_least_uncertain`;
* **mediating** strategies build a new value from all inputs —
  :func:`mediate_mixture` (confidence-weighted average of the
  distributions, the canonical probabilistic fusion),
  :func:`mediate_intersection` (keep only outcomes all sources support).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.pdb.errors import EmptyDistributionError
from repro.pdb.values import ProbabilisticValue

#: A fusion input: one value per source, with a source weight.
WeightedValue = tuple[ProbabilisticValue, float]


def _check_inputs(values: Sequence[WeightedValue]) -> None:
    if not values:
        raise ValueError("fusion needs at least one input value")
    if any(weight <= 0.0 for _, weight in values):
        raise ValueError("source weights must be positive")


def decide_most_probable(
    values: Sequence[WeightedValue],
) -> ProbabilisticValue:
    """Deciding / metadata-based: the outcome with the highest weighted
    probability across all sources becomes certain.

    This is the fusion analogue of the Section V-A.2 key strategy.
    """
    _check_inputs(values)
    best_outcome = None
    best_score = -1.0
    for value, weight in values:
        for outcome, probability in value.items():
            score = weight * probability
            if score > best_score:
                best_outcome, best_score = outcome, score
    return ProbabilisticValue({best_outcome: 1.0})


def decide_first(values: Sequence[WeightedValue]) -> ProbabilisticValue:
    """Deciding / trust-your-first-source: keep the first input as-is."""
    _check_inputs(values)
    return values[0][0]


def decide_least_uncertain(
    values: Sequence[WeightedValue],
) -> ProbabilisticValue:
    """Deciding / prefer-certain: keep the input with minimal entropy.

    Ties fall back to source order; a certain value always wins over any
    uncertain one.
    """
    _check_inputs(values)
    best_value, best_entropy = values[0][0], values[0][0].entropy()
    for value, _ in values[1:]:
        entropy = value.entropy()
        if entropy < best_entropy - 1e-12:
            best_value, best_entropy = value, entropy
    return best_value


def mediate_mixture(
    values: Sequence[WeightedValue],
) -> ProbabilisticValue:
    """Mediating: the weight-normalized mixture of the distributions.

    ``P(d) = Σ_s w_s · P_s(d) / Σ_s w_s`` — outcome masses combine
    across sources, so corroborated outcomes gain probability.  This is
    the natural fusion for probabilistic source data (cf. Tseng [10]).
    """
    _check_inputs(values)
    total_weight = sum(weight for _, weight in values)
    mixture: dict[object, float] = {}
    for value, weight in values:
        share = weight / total_weight
        for outcome, probability in value.items():
            mixture[outcome] = (
                mixture.get(outcome, 0.0) + share * probability
            )
    return ProbabilisticValue(mixture)


def mediate_intersection(
    values: Sequence[WeightedValue],
) -> ProbabilisticValue:
    """Mediating: keep outcomes in *every* source's support, renormalized.

    Conservative fusion: an outcome survives only when all sources grant
    it positive probability; the mixture masses are then rescaled.

    Raises
    ------
    EmptyDistributionError
        If the supports are disjoint (no common outcome).
    """
    _check_inputs(values)
    common = set(values[0][0].support)
    for value, _ in values[1:]:
        common &= set(value.support)
    if not common:
        raise EmptyDistributionError(
            "intersection fusion over disjoint supports"
        )
    mixture = mediate_mixture(values)
    return mixture.filter(lambda outcome: outcome in common)


#: Registry by name, for configuration.
FUSION_STRATEGIES = {
    "most_probable": decide_most_probable,
    "first": decide_first,
    "least_uncertain": decide_least_uncertain,
    "mixture": mediate_mixture,
    "intersection": mediate_intersection,
}
