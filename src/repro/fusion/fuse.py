"""Fusing duplicate clusters of x-tuples into consolidated tuples.

Completes the paper's integration pipeline (Section I, step (d)): after
duplicate detection has grouped tuples representing the same real-world
entity, fusion merges every cluster into a single representation.

Fusion of probabilistic tuples follows the same conditioning discipline
as matching: alternatives are first conditioned on presence (membership
must not bias the fused *values*), each attribute's per-source
distributions are combined by a configurable conflict-resolution
strategy, and the fused tuple's membership probability is derived from
the sources' (``any``: 1 - Π(1-p)  — present if any source tuple is —
or ``max``/``mean``).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import TYPE_CHECKING

from repro.fusion.strategies import WeightedValue, mediate_mixture
from repro.pdb.relations import XRelation

if TYPE_CHECKING:  # import only for annotations: avoids a cycle with
    # repro.matching, whose iterative resolver imports this module.
    from repro.matching.clustering import ClusteringResult
from repro.pdb.values import ProbabilisticValue
from repro.pdb.xtuples import TupleAlternative, XTuple

#: A value-fusion strategy.
ValueFusion = Callable[[Sequence[WeightedValue]], ProbabilisticValue]


class MembershipRule:
    """How the fused tuple's p(t) derives from the sources'."""

    ANY = "any"
    MAX = "max"
    MEAN = "mean"

    ALL = (ANY, MAX, MEAN)


def collapse_xtuple(xtuple: XTuple) -> dict[str, ProbabilisticValue]:
    """One distribution per attribute, marginalizing the alternatives.

    The x-tuple's alternatives are conditioned on presence and their
    attribute distributions are mixed with the conditional weights —
    the attribute-wise marginal of the tuple's appearance distribution.
    """
    marginals: dict[str, ProbabilisticValue] = {}
    conditioned = xtuple.conditioned_alternatives()
    for attribute in xtuple.attributes:
        inputs: list[WeightedValue] = [
            (alternative.value(attribute), weight)
            for alternative, weight in conditioned
        ]
        marginals[attribute] = mediate_mixture(inputs)
    return marginals


def fused_membership(
    xtuples: Sequence[XTuple], rule: str = MembershipRule.ANY
) -> float:
    """The fused tuple's membership probability."""
    if rule not in MembershipRule.ALL:
        raise ValueError(f"unknown membership rule {rule!r}")
    probabilities = [xt.probability for xt in xtuples]
    if rule == MembershipRule.MAX:
        return max(probabilities)
    if rule == MembershipRule.MEAN:
        return sum(probabilities) / len(probabilities)
    absent = 1.0
    for probability in probabilities:
        absent *= 1.0 - probability
    return min(1.0, 1.0 - absent)


def fuse_cluster(
    xtuples: Sequence[XTuple],
    *,
    tuple_id: str | None = None,
    value_fusion: ValueFusion = mediate_mixture,
    source_weights: Sequence[float] | None = None,
    membership_rule: str = MembershipRule.ANY,
) -> XTuple:
    """Fuse one duplicate cluster into a single 1-alternative x-tuple.

    Parameters
    ----------
    xtuples:
        The cluster members (≥ 1, same schema).
    tuple_id:
        Id of the fused tuple; defaults to the members' ids joined by
        ``+``.
    value_fusion:
        Conflict-resolution strategy applied per attribute.
    source_weights:
        Optional per-source trust weights (default: all equal).
    membership_rule:
        How to derive the fused p(t).
    """
    if not xtuples:
        raise ValueError("cannot fuse an empty cluster")
    weights = (
        [float(w) for w in source_weights]
        if source_weights is not None
        else [1.0] * len(xtuples)
    )
    if len(weights) != len(xtuples):
        raise ValueError(
            f"{len(weights)} weights for {len(xtuples)} cluster members"
        )
    attributes = xtuples[0].attributes
    collapsed = [collapse_xtuple(xt) for xt in xtuples]
    fused_values: dict[str, ProbabilisticValue] = {}
    for attribute in attributes:
        inputs: list[WeightedValue] = [
            (marginals[attribute], weight)
            for marginals, weight in zip(collapsed, weights)
        ]
        fused_values[attribute] = value_fusion(inputs)
    return XTuple(
        tuple_id or "+".join(xt.tuple_id for xt in xtuples),
        [
            TupleAlternative(
                fused_values,
                fused_membership(xtuples, membership_rule),
            )
        ],
    )


def fuse_relation(
    relation: XRelation,
    clustering: ClusteringResult,
    *,
    value_fusion: ValueFusion = mediate_mixture,
    membership_rule: str = MembershipRule.ANY,
    name: str | None = None,
) -> XRelation:
    """Fuse every duplicate cluster of *relation*; keep singletons as-is.

    The result is the consolidated relation of the paper's integration
    scenario: one tuple per detected real-world entity.
    """
    fused: list[XTuple] = []
    clustered_ids: set[str] = set()
    for cluster in clustering.clusters:
        members = [relation.get(tuple_id) for tuple_id in cluster]
        clustered_ids.update(cluster)
        fused.append(
            fuse_cluster(
                members,
                value_fusion=value_fusion,
                membership_rule=membership_rule,
            )
        )
    for xtuple in relation:
        if xtuple.tuple_id not in clustered_ids:
            fused.append(xtuple)
    return XRelation(
        name or f"fused({relation.name})", relation.schema, fused
    )


def fusion_summary(
    relation: XRelation, fused: XRelation
) -> dict[str, int | float]:
    """Before/after statistics for reports."""
    return {
        "source_tuples": len(relation),
        "fused_tuples": len(fused),
        "merged_away": len(relation) - len(fused),
        "compression": (
            1.0 - len(fused) / len(relation) if len(relation) else 0.0
        ),
    }


def iter_cluster_members(
    relation: XRelation, clustering: ClusteringResult
) -> Iterable[tuple[tuple[str, ...], list[XTuple]]]:
    """Yield ``(cluster ids, member x-tuples)`` pairs for inspection."""
    for cluster in clustering.clusters:
        yield cluster, [relation.get(tuple_id) for tuple_id in cluster]
