"""Data fusion (integration step (d)) and uncertain result representation.

* :mod:`repro.fusion.strategies` — conflict resolution for probabilistic
  values ([17], the strategies Section V-A.2 borrows for key creation);
* :mod:`repro.fusion.fuse` — fusing duplicate clusters into consolidated
  x-tuples and whole relations;
* :mod:`repro.fusion.uncertain_result` — the paper's outlook: modeling
  uncertain match decisions as mutually exclusive tuple sets tied by
  lineage (ULDB-style).
"""

from repro.fusion.fuse import (
    MembershipRule,
    collapse_xtuple,
    fuse_cluster,
    fuse_relation,
    fused_membership,
    fusion_summary,
    iter_cluster_members,
)
from repro.fusion.strategies import (
    FUSION_STRATEGIES,
    decide_first,
    decide_least_uncertain,
    decide_most_probable,
    mediate_intersection,
    mediate_mixture,
)
from repro.fusion.uncertain_result import (
    MERGE,
    SEPARATE,
    MergeHypothesis,
    ResultTuple,
    UncertainResolution,
    build_uncertain_resolution,
    ramp_confidence,
)

__all__ = [
    "FUSION_STRATEGIES",
    "MERGE",
    "SEPARATE",
    "MembershipRule",
    "MergeHypothesis",
    "ResultTuple",
    "UncertainResolution",
    "build_uncertain_resolution",
    "collapse_xtuple",
    "decide_first",
    "decide_least_uncertain",
    "decide_most_probable",
    "fuse_cluster",
    "fuse_relation",
    "fused_membership",
    "fusion_summary",
    "iter_cluster_members",
    "mediate_intersection",
    "mediate_mixture",
    "ramp_confidence",
]
