"""Vectorized batch edit-distance scoring over numpy arrays.

The prewarm path hands the cache *batches* of candidate value pairs
(:meth:`repro.similarity.kernels.SimilarityCache.warm_pairs`), and
per-pair kernels leave almost all of that batch structure on the table:
every pair pays the full Python interpreter overhead.  This module is
the columnar alternative the "massive probabilistic databases" line of
work motivates — encode every distinct string *once* into a packed
``uint32`` codepoint array, group the batch by operand shape, and
advance the edit DP for the whole group at once with ``O(len)`` numpy
row operations instead of ``O(len²)`` interpreted cell updates.

The serial dependency inside a DP row (each cell's insertion candidate
depends on its left neighbour) is handled with the classic min-plus
prefix scan: subtract the column index, take a running minimum, add the
column index back — ``current[j] = min_{i ≤ j}(candidate[i] + (j - i))``
in three vector operations.

Distances are exact integers, so the similarity wrappers reproduce the
banded kernels' results bit for bit (the ``min_similarity`` cutoff is
applied to the exact distance with the same one-row slack formula).

numpy is an optional runtime dependency: the module degrades to
``available() == False`` when the import fails, and the backend
registry (:mod:`repro.similarity.backends.base`) then auto-selects the
bit-parallel backend instead.  Per-pair calls delegate to
:mod:`repro.similarity.backends.bitparallel` — the batch path only pays
off when amortized over many pairs.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.similarity.base import as_strings, similarity_from_distance
from repro.similarity.backends.bitparallel import (
    bitparallel_damerau_levenshtein,
    bitparallel_damerau_levenshtein_similarity,
    bitparallel_levenshtein,
    bitparallel_levenshtein_similarity,
)

try:  # pragma: no cover - exercised via the availability flag
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def available() -> bool:
    """Whether the numpy batch path can run in this interpreter."""
    return _np is not None


def _encode(string: str) -> "Any":
    """A string as a packed ``uint32`` codepoint array."""
    return _np.frombuffer(string.encode("utf-32-le"), dtype=_np.uint32)


def _group_distances(
    lefts: Sequence[Any], rights: Sequence[Any], *, damerau: bool
) -> "Any":
    """Edit distances for one shape group (all ``len(a) × len(b)`` equal).

    *lefts* / *rights* are equal-shape codepoint arrays with
    ``len(left) ≥ len(right)``; returns an int64 vector of exact
    distances.  Row ``i`` of the DP is computed for the whole batch at
    once; the insertion chain is resolved with the min-plus prefix scan
    described in the module docstring.
    """
    batch = len(lefts)
    la = len(lefts[0])
    lb = len(rights[0])
    if lb == 0:
        return _np.full(batch, la, dtype=_np.int64)
    left = _np.stack(lefts)
    right = _np.stack(rights)
    columns = _np.arange(lb + 1, dtype=_np.int64)
    previous = _np.broadcast_to(columns, (batch, lb + 1)).copy()
    before_previous = None
    candidate = _np.empty((batch, lb + 1), dtype=_np.int64)
    spare = _np.empty((batch, lb + 1), dtype=_np.int64) if damerau else None
    for i in range(1, la + 1):
        mismatch = left[:, i - 1 : i] != right
        candidate[:, 0] = i
        _np.minimum(
            previous[:, 1:] + 1,
            previous[:, :-1] + mismatch,
            out=candidate[:, 1:],
        )
        if damerau and i >= 2 and lb >= 2:
            transposable = (left[:, i - 1 : i] == right[:, :-1]) & (
                left[:, i - 2 : i - 1] == right[:, 1:]
            )
            _np.copyto(
                candidate[:, 2:],
                _np.minimum(
                    candidate[:, 2:], before_previous[:, :-2] + 1
                ),
                where=transposable,
            )
        # Min-plus prefix scan folds the left-neighbour insertion chain.
        candidate -= columns
        _np.minimum.accumulate(candidate, axis=1, out=candidate)
        candidate += columns
        if damerau:
            # Three-buffer rotation: the old row i-2 buffer is free to
            # host the next row's scratch once i-1 takes its place.
            recycled = spare if before_previous is None else before_previous
            before_previous, previous, candidate = (
                previous,
                candidate,
                recycled,
            )
        else:
            previous, candidate = candidate, previous
    return previous[:, -1]


def batch_edit_distances(
    pairs: Sequence[tuple[str, str]], *, damerau: bool = False
) -> list[int]:
    """Exact edit distances for a batch of string pairs.

    Encodes each distinct string once, groups pairs by operand shape
    (order-normalized — both distances are symmetric), and runs one
    vectorized DP per group.  Matches the reference DPs exactly.
    """
    if _np is None:  # pragma: no cover - guarded by available()
        raise RuntimeError("numpy is not available")
    encoded: dict[str, Any] = {}
    groups: dict[tuple[int, int], list[tuple[int, str, str]]] = {}
    results: list[int] = [0] * len(pairs)
    for index, (left, right) in enumerate(pairs):
        if left == right:
            continue
        if len(left) < len(right):
            left, right = right, left
        groups.setdefault((len(left), len(right)), []).append(
            (index, left, right)
        )
    for (la, lb), members in groups.items():
        if lb == 0:
            for index, _, _ in members:
                results[index] = la
            continue
        lefts = []
        rights = []
        for _, left, right in members:
            code = encoded.get(left)
            if code is None:
                code = encoded[left] = _encode(left)
            lefts.append(code)
            code = encoded.get(right)
            if code is None:
                code = encoded[right] = _encode(right)
            rights.append(code)
        distances = _group_distances(lefts, rights, damerau=damerau)
        for (index, _, _), distance in zip(members, distances):
            results[index] = int(distance)
    return results


def _batch_similarities(
    pairs: Sequence[tuple[Any, Any]],
    *,
    damerau: bool,
    min_similarity: float = 0.0,
) -> list[float]:
    """Batch counterpart of the banded similarity wrappers.

    Computes exact distances vectorized, then applies the identical
    post-hoc cutoff: with the one-row slack ``cutoff = int((1 -
    min_similarity) * longest) + 1``, a distance beyond the cutoff reads
    0.0, anything else the exact normalized similarity — bitwise what
    the per-pair kernels return.
    """
    string_pairs = [as_strings(left, right) for left, right in pairs]
    distances = batch_edit_distances(string_pairs, damerau=damerau)
    results: list[float] = []
    for (left_str, right_str), distance in zip(string_pairs, distances):
        longest = max(len(left_str), len(right_str))
        if longest == 0:
            results.append(1.0)
            continue
        cutoff = int((1.0 - min_similarity) * longest) + 1
        if distance > cutoff:
            results.append(0.0)
        else:
            results.append(similarity_from_distance(distance, longest))
    return results


def batch_levenshtein_similarities(
    pairs: Sequence[tuple[Any, Any]], *, min_similarity: float = 0.0
) -> list[float]:
    """Vectorized :func:`bitparallel_levenshtein_similarity` over a batch."""
    return _batch_similarities(
        pairs, damerau=False, min_similarity=min_similarity
    )


def batch_damerau_levenshtein_similarities(
    pairs: Sequence[tuple[Any, Any]], *, min_similarity: float = 0.0
) -> list[float]:
    """Vectorized Damerau variant of the batch scorer."""
    return _batch_similarities(
        pairs, damerau=True, min_similarity=min_similarity
    )


# Per-pair entry points of the numpy backend: a single comparison cannot
# amortize array setup, so they delegate to the bit-parallel kernels
# (bitwise-identical results; module-level so comparator clones stay
# picklable across fork/spawn boundaries).


def numpy_levenshtein_similarity(
    left: Any, right: Any, *, min_similarity: float = 0.0
) -> float:
    """Per-pair Levenshtein similarity of the numpy backend."""
    return bitparallel_levenshtein_similarity(
        left, right, min_similarity=min_similarity
    )


def numpy_damerau_levenshtein_similarity(
    left: Any, right: Any, *, min_similarity: float = 0.0
) -> float:
    """Per-pair Damerau similarity of the numpy backend."""
    return bitparallel_damerau_levenshtein_similarity(
        left, right, min_similarity=min_similarity
    )


def numpy_levenshtein(
    left: str, right: str, max_distance: int | None = None
) -> int:
    """Per-pair Levenshtein distance of the numpy backend."""
    return bitparallel_levenshtein(left, right, max_distance)


def numpy_damerau_levenshtein(
    left: str, right: str, max_distance: int | None = None
) -> int:
    """Per-pair Damerau distance of the numpy backend."""
    return bitparallel_damerau_levenshtein(left, right, max_distance)
