"""Pluggable comparison-kernel backends (python / bitparallel / numpy).

See :mod:`repro.similarity.backends.base` for the registry and
selection rules, :mod:`repro.similarity.backends.bitparallel` for the
Myers bit-parallel kernels, and
:mod:`repro.similarity.backends.numpy_backend` for the vectorized
batch scorer.
"""

from repro.similarity.backends.base import (
    BACKEND_ENV_VAR,
    KERNEL_KINDS,
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    resolve_backend_name,
)
from repro.similarity.backends.bitparallel import (
    bitparallel_damerau_levenshtein,
    bitparallel_damerau_levenshtein_similarity,
    bitparallel_levenshtein,
    bitparallel_levenshtein_similarity,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "KERNEL_KINDS",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "resolve_backend_name",
    "bitparallel_damerau_levenshtein",
    "bitparallel_damerau_levenshtein_similarity",
    "bitparallel_levenshtein",
    "bitparallel_levenshtein_similarity",
]
