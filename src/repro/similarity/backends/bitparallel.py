"""Myers bit-parallel edit-distance kernels.

The banded DPs in :mod:`repro.similarity.kernels` touch every cell of a
diagonal band — ``O(k · n)`` Python-level operations per pair.  Myers'
bit-parallel algorithm [Myers 1999, in Hyyrö's formulation] encodes a
whole DP *column* in the bits of one integer and advances it with a
constant number of word operations per text character: ``O(n · ⌈m/w⌉)``
for word size ``w``.  CPython integers are arbitrary precision, so the
"block extension" for patterns longer than a machine word falls out for
free — one ``m``-bit integer per delta vector, however large ``m`` is —
while patterns ≤ 64 characters stay within a single machine word
internally.

Two kernels are provided:

* :func:`bitparallel_levenshtein` — plain Levenshtein (insert / delete /
  substitute), Hyyrö's ``D0/HP/HN/VP/VN`` recurrence;
* :func:`bitparallel_damerau_levenshtein` — the restricted
  Damerau–Levenshtein (OSA) variant via Hyyrö's transposition term
  [Hyyrö 2003]: a transposition is folded into ``D0`` from the previous
  column's match vector and diagonal vector.

Both honor exactly the contract of their banded counterparts — the exact
distance when it is ``≤ max_distance``, the sentinel ``max_distance + 1``
otherwise — including the early exit: the bottom-row score changes by at
most ±1 per text character, so once ``score - remaining > max_distance``
no suffix can bring the distance back under the cutoff.  The similarity
wrappers reproduce the ``min_similarity`` pushdown contract of
:func:`repro.similarity.kernels.banded_levenshtein_similarity` bit for
bit (property-pinned in ``tests/test_backends.py``).
"""

from __future__ import annotations

from typing import Any

from repro.similarity.base import as_strings, similarity_from_distance


def _pattern_masks(pattern: str) -> dict[str, int]:
    """Per-character match bitmasks (``peq``): bit *i* set ⇔ pattern[i]."""
    masks: dict[str, int] = {}
    bit = 1
    for char in pattern:
        masks[char] = masks.get(char, 0) | bit
        bit <<= 1
    return masks


def bitparallel_levenshtein(
    left: str, right: str, max_distance: int | None = None
) -> int:
    """Levenshtein distance via Myers' bit-parallel column automaton.

    Same contract as :func:`repro.similarity.kernels.banded_levenshtein`:
    the exact distance when it is ``≤ max_distance``, the sentinel
    ``max_distance + 1`` otherwise; ``None`` computes exactly.
    """
    if left == right:
        return 0
    if len(left) < len(right):
        left, right = right, left
    m, n = len(left), len(right)
    if max_distance is not None:
        if max_distance < 0:
            raise ValueError("max_distance must be non-negative")
        if m - n > max_distance:
            return max_distance + 1
    if n == 0:
        if max_distance is not None and m > max_distance:
            return max_distance + 1
        return m
    # Pattern = longer string: its length sets the word width, while the
    # shorter string drives the (Python-level, hence costly) iteration.
    peq = _pattern_masks(left)
    mask = (1 << m) - 1
    last = 1 << (m - 1)
    vp = mask
    vn = 0
    score = m
    remaining = n
    for char in right:
        eq = peq.get(char, 0)
        d0 = ((((eq & vp) + vp) ^ vp) | eq | vn) & mask
        hp = vn | (mask & ~(d0 | vp))
        hn = vp & d0
        if hp & last:
            score += 1
        elif hn & last:
            score -= 1
        hp = ((hp << 1) | 1) & mask
        hn = (hn << 1) & mask
        vp = hn | (mask & ~(d0 | hp))
        vn = hp & d0
        remaining -= 1
        if max_distance is not None and score - remaining > max_distance:
            return max_distance + 1
    if max_distance is not None and score > max_distance:
        return max_distance + 1
    return score


def bitparallel_damerau_levenshtein(
    left: str, right: str, max_distance: int | None = None
) -> int:
    """Restricted Damerau–Levenshtein (OSA) via Hyyrö's 2003 automaton.

    Same contract as
    :func:`repro.similarity.kernels.banded_damerau_levenshtein`.  The
    transposition term extends :func:`bitparallel_levenshtein`'s ``D0``
    with matches that cross the previous text character: a bit is added
    where the previous column did *not* lie on a diagonal match but the
    swapped character pair does.
    """
    if left == right:
        return 0
    if len(left) < len(right):
        left, right = right, left
    m, n = len(left), len(right)
    if max_distance is not None:
        if max_distance < 0:
            raise ValueError("max_distance must be non-negative")
        if m - n > max_distance:
            return max_distance + 1
    if n == 0:
        if max_distance is not None and m > max_distance:
            return max_distance + 1
        return m
    peq = _pattern_masks(left)
    mask = (1 << m) - 1
    last = 1 << (m - 1)
    vp = mask
    vn = 0
    d0 = 0
    eq_prev = 0
    score = m
    remaining = n
    for char in right:
        eq = peq.get(char, 0)
        # Transposition candidates: positions where the previous column
        # had no diagonal match (~d0) but matches this character, shifted
        # onto positions the previous character matches.
        tr = (((mask & ~d0) & eq) << 1) & eq_prev
        d0 = (((((eq & vp) + vp) ^ vp) | eq | vn) | tr) & mask
        hp = vn | (mask & ~(d0 | vp))
        hn = vp & d0
        if hp & last:
            score += 1
        elif hn & last:
            score -= 1
        hp = ((hp << 1) | 1) & mask
        hn = (hn << 1) & mask
        vp = hn | (mask & ~(d0 | hp))
        vn = hp & d0
        eq_prev = eq
        remaining -= 1
        if max_distance is not None and score - remaining > max_distance:
            return max_distance + 1
    if max_distance is not None and score > max_distance:
        return max_distance + 1
    return score


def bitparallel_levenshtein_similarity(
    left: Any, right: Any, *, min_similarity: float = 0.0
) -> float:
    """``1 - d/max(len)`` via the bit-parallel kernel.

    Pushdown contract of
    :func:`repro.similarity.kernels.banded_levenshtein_similarity`, bit
    for bit: exact at or above *min_similarity*, exact or 0.0 below it.
    """
    left_str, right_str = as_strings(left, right)
    longest = max(len(left_str), len(right_str))
    if longest == 0:
        return 1.0
    cutoff = int((1.0 - min_similarity) * longest) + 1
    distance = bitparallel_levenshtein(left_str, right_str, cutoff)
    if distance > cutoff:
        return 0.0
    return similarity_from_distance(distance, longest)


def bitparallel_damerau_levenshtein_similarity(
    left: Any, right: Any, *, min_similarity: float = 0.0
) -> float:
    """Damerau variant of :func:`bitparallel_levenshtein_similarity`."""
    left_str, right_str = as_strings(left, right)
    longest = max(len(left_str), len(right_str))
    if longest == 0:
        return 1.0
    cutoff = int((1.0 - min_similarity) * longest) + 1
    distance = bitparallel_damerau_levenshtein(left_str, right_str, cutoff)
    if distance > cutoff:
        return 0.0
    return similarity_from_distance(distance, longest)
