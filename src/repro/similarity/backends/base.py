"""Kernel-backend registry: pluggable comparison-kernel families.

A :class:`KernelBackend` bundles one implementation family of the edit
kernels — per-pair similarity functions honoring the ``min_similarity``
pushdown contract, per-pair distance functions honoring the
``max_distance`` sentinel contract, and (optionally) a batch scorer the
prewarm path can hand whole candidate batches to.  Three backends ship:

``"python"``
    The banded pure-Python DPs of :mod:`repro.similarity.kernels` — the
    reference implementation every other backend is pinned against.
``"bitparallel"``
    Myers bit-parallel automatons
    (:mod:`repro.similarity.backends.bitparallel`); pure Python, always
    available, ~an order of magnitude fewer interpreted operations.
``"numpy"``
    The bit-parallel per-pair kernels plus the vectorized batch scorer
    (:mod:`repro.similarity.backends.numpy_backend`); only available
    when numpy imports.

Selection is by name — ``DuplicateDetector.detect(kernel_backend=...)``
and :class:`repro.matching.executor.scheduler.ExecutionSettings` accept
any registered name or ``"auto"``.  ``"auto"`` resolves to the
``REPRO_KERNEL_BACKEND`` environment variable when set, otherwise to
the fastest available backend (``numpy`` if importable, else
``bitparallel``).  Every backend returns bitwise-identical results, so
switching is purely a performance decision; the golden suites in
``tests/test_backends.py`` enforce this.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Mapping, Sequence

from repro.similarity.backends import numpy_backend
from repro.similarity.backends.bitparallel import (
    bitparallel_damerau_levenshtein,
    bitparallel_damerau_levenshtein_similarity,
    bitparallel_levenshtein,
    bitparallel_levenshtein_similarity,
)

#: Environment override consulted by ``"auto"`` resolution.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Kernel kinds every backend must implement.
KERNEL_KINDS = ("levenshtein", "damerau_levenshtein")


class KernelBackend:
    """One comparison-kernel implementation family.

    Parameters
    ----------
    name:
        Registry key (``"python"``, ``"bitparallel"``, ``"numpy"``).
    similarity_fns:
        ``{kind: fn(left, right, *, min_similarity) -> float}`` for each
        kind in :data:`KERNEL_KINDS`; must honor the pushdown contract
        of :func:`repro.similarity.kernels.banded_levenshtein_similarity`.
    distance_fns:
        ``{kind: fn(left, right, max_distance) -> int}`` honoring the
        ``max_distance + 1`` sentinel contract.
    batch_fns:
        Optional ``{kind: fn(pairs, *, min_similarity) -> list[float]}``
        batch scorers; backends without one fall back to per-pair calls.
    is_available:
        Optional zero-argument probe; backends with unimportable
        dependencies report :attr:`available` ``False`` and are skipped
        by ``"auto"`` resolution.
    """

    __slots__ = (
        "name",
        "_similarity_fns",
        "_distance_fns",
        "_batch_fns",
        "_is_available",
    )

    def __init__(
        self,
        name: str,
        *,
        similarity_fns: Mapping[str, Callable[..., float]],
        distance_fns: Mapping[str, Callable[..., int]],
        batch_fns: Mapping[str, Callable[..., list[float]]] | None = None,
        is_available: Callable[[], bool] | None = None,
    ) -> None:
        missing = [kind for kind in KERNEL_KINDS if kind not in similarity_fns]
        if missing:
            raise ValueError(f"backend {name!r} missing kernels: {missing}")
        self.name = str(name)
        self._similarity_fns = dict(similarity_fns)
        self._distance_fns = dict(distance_fns)
        self._batch_fns = dict(batch_fns or {})
        self._is_available = is_available

    @property
    def available(self) -> bool:
        """Whether the backend can run in this interpreter."""
        return self._is_available is None or bool(self._is_available())

    def similarity_fn(self, kind: str) -> Callable[..., float]:
        """The per-pair similarity kernel for *kind*."""
        try:
            return self._similarity_fns[kind]
        except KeyError:
            raise ValueError(
                f"backend {self.name!r} has no kernel kind {kind!r}"
            ) from None

    def distance_fn(self, kind: str) -> Callable[..., int]:
        """The per-pair distance kernel for *kind*."""
        try:
            return self._distance_fns[kind]
        except KeyError:
            raise ValueError(
                f"backend {self.name!r} has no kernel kind {kind!r}"
            ) from None

    def batch_similarities(
        self,
        kind: str,
        pairs: Sequence[tuple[Any, Any]],
        *,
        min_similarity: float = 0.0,
    ) -> list[float] | None:
        """Score a whole batch at once, or ``None`` if unsupported.

        ``None`` tells the caller to fall back to per-pair calls; a
        returned list is positionally aligned with *pairs* and bitwise
        equal to what the per-pair kernel would produce.
        """
        batch = self._batch_fns.get(kind)
        if batch is None:
            return None
        return batch(pairs, min_similarity=min_similarity)

    def __repr__(self) -> str:
        status = "" if self.available else ", unavailable"
        return f"KernelBackend({self.name!r}{status})"


_REGISTRY: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add *backend* to the registry (last registration wins)."""
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Names of all backends that can run here, registration order."""
    return tuple(
        name for name, backend in _REGISTRY.items() if backend.available
    )


def resolve_backend_name(name: str | None = None) -> str:
    """Resolve a backend selector to a concrete registered name.

    ``None`` and ``"auto"`` consult :data:`BACKEND_ENV_VAR`, then prefer
    ``numpy`` when available, then ``bitparallel``.  Environment values
    are case-normalized (``REPRO_KERNEL_BACKEND=NumPy`` means
    ``numpy``) — an environment variable is typed by an operator, not
    an API caller — but a genuinely unknown value still fails loudly.
    Explicit names are validated loudly: an unknown name or an
    explicitly requested unavailable backend raises ``ValueError``
    rather than silently falling back.
    """
    if name is None or name == "auto":
        env = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
        if env and env != "auto":
            name = env
        else:
            for candidate in ("numpy", "bitparallel", "python"):
                backend = _REGISTRY.get(candidate)
                if backend is not None and backend.available:
                    return candidate
            raise RuntimeError("no kernel backend available")
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"registered: {sorted(_REGISTRY)}"
        )
    if not backend.available:
        raise ValueError(
            f"kernel backend {name!r} is not available here; "
            f"available: {list(available_backends())}"
        )
    return backend.name


def resolve_backend(name: str | None = None) -> KernelBackend:
    """The :class:`KernelBackend` for a selector (see
    :func:`resolve_backend_name`)."""
    return _REGISTRY[resolve_backend_name(name)]


def get_backend(name: str) -> KernelBackend:
    """Registry lookup by exact name (no ``"auto"`` handling)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"registered: {sorted(_REGISTRY)}"
        ) from None


def _register_builtin_backends() -> None:
    # Imported lazily: kernels.py consumes this module from inside
    # methods, so a module-level import here must not recurse.
    from repro.similarity.kernels import (
        banded_damerau_levenshtein,
        banded_damerau_levenshtein_similarity,
        banded_levenshtein,
        banded_levenshtein_similarity,
    )

    register_backend(
        KernelBackend(
            "python",
            similarity_fns={
                "levenshtein": banded_levenshtein_similarity,
                "damerau_levenshtein": banded_damerau_levenshtein_similarity,
            },
            distance_fns={
                "levenshtein": banded_levenshtein,
                "damerau_levenshtein": banded_damerau_levenshtein,
            },
        )
    )
    register_backend(
        KernelBackend(
            "bitparallel",
            similarity_fns={
                "levenshtein": bitparallel_levenshtein_similarity,
                "damerau_levenshtein": (
                    bitparallel_damerau_levenshtein_similarity
                ),
            },
            distance_fns={
                "levenshtein": bitparallel_levenshtein,
                "damerau_levenshtein": bitparallel_damerau_levenshtein,
            },
        )
    )
    register_backend(
        KernelBackend(
            "numpy",
            similarity_fns={
                "levenshtein": numpy_backend.numpy_levenshtein_similarity,
                "damerau_levenshtein": (
                    numpy_backend.numpy_damerau_levenshtein_similarity
                ),
            },
            distance_fns={
                "levenshtein": numpy_backend.numpy_levenshtein,
                "damerau_levenshtein": numpy_backend.numpy_damerau_levenshtein,
            },
            batch_fns={
                "levenshtein": numpy_backend.batch_levenshtein_similarities,
                "damerau_levenshtein": (
                    numpy_backend.batch_damerau_levenshtein_similarities
                ),
            },
            is_available=numpy_backend.available,
        )
    )


_register_builtin_backends()
