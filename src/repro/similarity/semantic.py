"""Semantic similarity via glossaries and synonym groups.

Section III-C: "attribute value similarity is quantified by syntactic
(e.g., n-grams, edit- or jaro distance) and semantic (e.g., glossaries or
ontologies) means."  A :class:`Glossary` records that e.g. *confectioner*
and *confectionist* denote the same occupation, or that *mechanic* and
*machinist* are closely related, and turns such domain knowledge into a
normalized comparison function — optionally backed off to a syntactic
comparator for unknown pairs.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

from repro.similarity.base import Comparator, NamedComparator


class Glossary:
    """Domain knowledge as synonym groups plus scored related pairs.

    Parameters
    ----------
    synonym_groups:
        Iterable of groups (iterables of terms); every pair of terms within
        a group has similarity 1.0.
    related:
        Mapping from unordered term pairs (given as 2-tuples) to a
        similarity score in ``[0, 1]``.
    case_sensitive:
        Whether lookup distinguishes case; off by default, matching the
        usual glossary convention.
    """

    def __init__(
        self,
        synonym_groups: Iterable[Iterable[str]] = (),
        related: Mapping[tuple[str, str], float] | None = None,
        *,
        case_sensitive: bool = False,
    ) -> None:
        self._case_sensitive = case_sensitive
        self._group_of: dict[str, int] = {}
        for group_id, group in enumerate(synonym_groups):
            for term in group:
                self._group_of[self._key(term)] = group_id
        self._related: dict[frozenset[str], float] = {}
        for (left, right), score in (related or {}).items():
            if not 0.0 <= score <= 1.0:
                raise ValueError(
                    f"related score for ({left!r}, {right!r}) "
                    f"outside [0, 1]: {score}"
                )
            self._related[
                frozenset((self._key(left), self._key(right)))
            ] = score

    def _key(self, term: str) -> str:
        term = str(term)
        return term if self._case_sensitive else term.casefold()

    def lookup(self, left: Any, right: Any) -> float | None:
        """Glossary-backed similarity, or ``None`` when unknown.

        Equal terms score 1.0, members of the same synonym group 1.0,
        explicitly related pairs their recorded score.
        """
        left_key, right_key = self._key(left), self._key(right)
        if left_key == right_key:
            return 1.0
        left_group = self._group_of.get(left_key)
        if left_group is not None and left_group == self._group_of.get(
            right_key
        ):
            return 1.0
        return self._related.get(frozenset((left_key, right_key)))

    def comparator(
        self, fallback: Comparator | None = None
    ) -> Comparator:
        """A comparison function backed by this glossary.

        Unknown pairs are delegated to *fallback* (default: similarity 0,
        the conservative choice for purely semantic matching).
        """

        def _compare(left: Any, right: Any) -> float:
            known = self.lookup(left, right)
            if known is not None:
                return known
            if fallback is None:
                return 0.0
            return fallback(left, right)

        return NamedComparator("glossary", _compare)

    def __contains__(self, term: str) -> bool:
        return self._key(term) in self._group_of

    def __repr__(self) -> str:
        groups = len(set(self._group_of.values()))
        return (
            f"Glossary({groups} synonym groups, "
            f"{len(self._related)} related pairs)"
        )
