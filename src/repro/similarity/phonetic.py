"""Phonetic encodings and comparators (Soundex, NYSIIS).

Phonetic codes are a record-linkage staple for person names (the paper's
running attribute): two spellings of the same spoken name receive the
same code, making phonetic equality a strong semantic comparator and a
robust *blocking key* (misspellings rarely change the code).

Implemented:

* :func:`soundex` — the classic 4-character American Soundex;
* :func:`nysiis` — the New York State Identification and Intelligence
  System code (better for non-Anglo names);
* :func:`soundex_similarity` / :func:`nysiis_similarity` — exact-match
  comparators over the codes;
* blended comparators that back off to an edit similarity when codes
  differ.
"""

from __future__ import annotations

from typing import Any

from repro.similarity.base import Comparator, NamedComparator, as_strings
from repro.similarity.edit import levenshtein_similarity

_SOUNDEX_CODES = {
    **dict.fromkeys("BFPV", "1"),
    **dict.fromkeys("CGJKQSXZ", "2"),
    **dict.fromkeys("DT", "3"),
    **dict.fromkeys("L", "4"),
    **dict.fromkeys("MN", "5"),
    **dict.fromkeys("R", "6"),
}

#: Letters Soundex skips entirely (vowels break runs; H/W do not).
_SOUNDEX_IGNORED = set("AEIOUY")


def soundex(text: str) -> str:
    """American Soundex code (letter + 3 digits, zero padded).

    Non-alphabetic characters are ignored; empty input maps to ``0000``.
    """
    letters = [c for c in text.upper() if c.isalpha()]
    if not letters:
        return "0000"
    first = letters[0]
    digits = [_SOUNDEX_CODES.get(first, "")]
    for letter in letters[1:]:
        code = _SOUNDEX_CODES.get(letter)
        if code is None:
            # H and W are transparent (do not break runs); vowels break.
            if letter in _SOUNDEX_IGNORED:
                digits.append("")
            continue
        if digits and digits[-1] == code:
            continue
        digits.append(code)
    encoded = "".join(d for d in digits[1:] if d)
    return (first + encoded + "000")[:4]


def nysiis(text: str) -> str:
    """NYSIIS phonetic code (classic rules, unbounded length).

    Follows the original 1970 algorithm: head/tail substitutions, vowel
    flattening to ``A``, consonant transformations, duplicate collapse
    and tail cleanup.
    """
    letters = [c for c in text.upper() if c.isalpha()]
    if not letters:
        return ""
    word = "".join(letters)

    for prefix, replacement in (
        ("MAC", "MCC"),
        ("KN", "NN"),
        ("K", "C"),
        ("PH", "FF"),
        ("PF", "FF"),
        ("SCH", "SSS"),
    ):
        if word.startswith(prefix):
            word = replacement + word[len(prefix):]
            break
    for suffix, replacement in (
        ("EE", "Y"),
        ("IE", "Y"),
        ("DT", "D"),
        ("RT", "D"),
        ("RD", "D"),
        ("NT", "D"),
        ("ND", "D"),
    ):
        if word.endswith(suffix):
            word = word[: -len(suffix)] + replacement
            break

    key = [word[0]]
    i = 1
    while i < len(word):
        chunk = word[i:]
        if chunk.startswith("EV"):
            replacement, step = "AF", 2
        elif word[i] in "AEIOU":
            replacement, step = "A", 1
        elif chunk.startswith("KN"):
            replacement, step = "NN", 2
        elif word[i] == "Q":
            replacement, step = "G", 1
        elif word[i] == "Z":
            replacement, step = "S", 1
        elif word[i] == "M":
            replacement, step = "N", 1
        elif chunk.startswith("SCH"):
            replacement, step = "SSS", 3
        elif chunk.startswith("PH"):
            replacement, step = "FF", 2
        elif word[i] == "K":
            replacement, step = "C", 1
        elif (
            word[i] == "H"
            and (
                word[i - 1] not in "AEIOU"
                or (i + 1 < len(word) and word[i + 1] not in "AEIOU")
            )
        ):
            replacement, step = word[i - 1], 1
        elif word[i] == "W" and word[i - 1] in "AEIOU":
            replacement, step = word[i - 1], 1
        else:
            replacement, step = word[i], 1
        for char in replacement:
            if key[-1] != char:
                key.append(char)
        i += step

    # Tail cleanup: drop trailing S and A, rewrite trailing AY to Y.
    while len(key) > 1 and key[-1] == "S":
        key.pop()
    if len(key) >= 2 and key[-2:] == ["A", "Y"]:
        key = key[:-2] + ["Y"]
    while len(key) > 1 and key[-1] == "A":
        key.pop()
    return "".join(key)


def soundex_similarity(left: Any, right: Any) -> float:
    """1.0 when the Soundex codes agree, else 0.0."""
    left_str, right_str = as_strings(left, right)
    return 1.0 if soundex(left_str) == soundex(right_str) else 0.0


def nysiis_similarity(left: Any, right: Any) -> float:
    """1.0 when the NYSIIS codes agree, else 0.0."""
    left_str, right_str = as_strings(left, right)
    code_left, code_right = nysiis(left_str), nysiis(right_str)
    if not code_left and not code_right:
        return 1.0
    return 1.0 if code_left == code_right else 0.0


def phonetic_backoff(
    phonetic: Comparator, fallback: Comparator | None = None
) -> Comparator:
    """Phonetic agreement, else the fallback's (dampened) similarity.

    The standard blend: phonetically equal names score 1.0; otherwise
    the fallback similarity (Levenshtein by default) is scaled by 0.9 so
    phonetic agreement strictly dominates.
    """
    base = fallback if fallback is not None else levenshtein_similarity

    def _blend(left: Any, right: Any) -> float:
        if phonetic(left, right) >= 1.0:
            return 1.0
        return 0.9 * base(left, right)

    return NamedComparator("phonetic_backoff", _blend)


#: Ready-to-use named comparator instances.
SOUNDEX = NamedComparator("soundex", soundex_similarity)
NYSIIS = NamedComparator("nysiis", nysiis_similarity)
SOUNDEX_LEVENSHTEIN = phonetic_backoff(soundex_similarity)
