"""Exact, numeric and token-set comparison functions.

These round out the comparator toolbox for non-string or structured
attributes: exact equality (the degenerate comparison function), absolute
and relative numeric proximity, and Jaccard similarity over token sets
(useful for multi-word values such as addresses).
"""

from __future__ import annotations

import math
from typing import Any

from repro.similarity.base import NamedComparator, clamp01


def exact_similarity(left: Any, right: Any) -> float:
    """1.0 when the operands are equal, else 0.0."""
    return 1.0 if left == right else 0.0


def numeric_similarity(
    left: Any,
    right: Any,
    *,
    scale: float = 1.0,
) -> float:
    """Exponentially decaying similarity of two numbers.

    ``sim = exp(-|a - b| / scale)`` — 1 for equal numbers, ~0.37 when the
    difference equals *scale*.  Non-numeric operands compare as 0.
    """
    if scale <= 0.0:
        raise ValueError(f"scale must be positive, got {scale}")
    try:
        left_num = float(left)
        right_num = float(right)
    except (TypeError, ValueError):
        return 0.0
    if math.isnan(left_num) or math.isnan(right_num):
        return 0.0
    return clamp01(math.exp(-abs(left_num - right_num) / scale))


def relative_numeric_similarity(left: Any, right: Any) -> float:
    """``1 - |a-b| / max(|a|, |b|)``; 1 when both are zero."""
    try:
        left_num = float(left)
        right_num = float(right)
    except (TypeError, ValueError):
        return 0.0
    denominator = max(abs(left_num), abs(right_num))
    if denominator == 0.0:
        return 1.0
    return clamp01(1.0 - abs(left_num - right_num) / denominator)


def token_jaccard_similarity(left: Any, right: Any) -> float:
    """Jaccard similarity of whitespace-token sets (case-folded)."""
    left_tokens = {token.casefold() for token in str(left).split()}
    right_tokens = {token.casefold() for token in str(right).split()}
    union = left_tokens | right_tokens
    if not union:
        return 1.0
    return len(left_tokens & right_tokens) / len(union)


#: Ready-to-use named comparator instances.
EXACT = NamedComparator("exact", exact_similarity)
NUMERIC = NamedComparator("numeric", numeric_similarity)
RELATIVE_NUMERIC = NamedComparator(
    "relative_numeric", relative_numeric_similarity
)
TOKEN_JACCARD = NamedComparator("token_jaccard", token_jaccard_similarity)
