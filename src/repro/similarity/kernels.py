"""Fast comparison kernels: banded edit distances and memoization.

The Figure-6 procedure multiplies attribute-matching work by ``k × l``
comparison-matrix cells per x-tuple pair, so the domain-element
comparators underneath are the hottest code in the whole pipeline.  This
module provides the performance core:

* :func:`banded_levenshtein` / :func:`banded_damerau_levenshtein` —
  drop-in replacements for the reference dynamic programs in
  :mod:`repro.similarity.edit` with two classic accelerations:

  - **length-difference pruning** — ``d(a, b) ≥ ||a| - |b||``, so a
    cutoff can be answered without touching the matrix;
  - **banded DP with early exit** — any cell ``(i, j)`` on an edit path
    costs at least ``|i - j|``, so with a cutoff ``max_distance`` only
    the diagonal band of half-width ``max_distance`` needs computing,
    and the scan stops as soon as a whole band row exceeds the cutoff.

  Both return the *exact* distance when it is ``≤ max_distance`` and the
  sentinel ``max_distance + 1`` otherwise (property tests in
  ``tests/test_kernels.py`` pin this equivalence to the reference DP).

* :class:`BandedEditComparator` — the *bandable* comparator wrapper
  behind threshold pushdown: :meth:`BandedEditComparator.with_min_similarity`
  produces a clone whose kernel runs with a true cutoff band and
  answers "below cutoff" (0.0) instead of the exact value whenever the
  similarity provably falls under the configured floor.  The decision
  layer derives safe floors from its classifier thresholds
  (:mod:`repro.matching.pushdown`) and the pipeline threads them down
  here, so the hottest comparisons stop as soon as a pair can no
  longer influence any matching decision.

* :class:`SimilarityCache` — memoizes a symmetric comparator on
  *unordered* pairs of domain elements.  Duplicate detection re-compares
  the same element pairs constantly (identical values recur across
  alternatives, x-tuples and candidate pairs), so hit rates are high;
  the cache turns a Jaro–Winkler or Levenshtein evaluation into one
  dict lookup.  For block-partitioned execution the cache also supports
  **pre-warming** (:meth:`SimilarityCache.warm` fills the table from an
  observed vocabulary before any candidate pair is decided) and
  **freezing** (:meth:`SimilarityCache.freeze` makes the table
  read-only, so forked workers share the warmed pages copy-on-write
  without ever dirtying them).  Cutoff-pruned results are *banded*:
  each cache records the similarity floor its base comparator was
  configured with (:attr:`SimilarityCache.band`), and
  :meth:`SimilarityCache.banded` hands out one derived cache per active
  band, so pruned entries can never be served to an exact lookup (or
  vice versa).
"""

from __future__ import annotations

from itertools import combinations
from typing import Any, Iterable, Iterator

from repro.similarity.base import (
    Comparator,
    as_strings,
    similarity_from_distance,
)


def banded_levenshtein(
    left: str, right: str, max_distance: int | None = None
) -> int:
    """Levenshtein distance with length pruning, banding and early exit.

    Parameters
    ----------
    left, right:
        The strings to compare.
    max_distance:
        Optional cutoff.  When given, the return value is the exact
        distance if it is ``≤ max_distance`` and ``max_distance + 1``
        (meaning "at least this much") otherwise.  ``None`` computes the
        exact distance with the plain two-row DP.
    """
    if left == right:
        return 0
    if len(left) < len(right):
        left, right = right, left
    m, n = len(left), len(right)
    if max_distance is None:
        if n == 0:
            return m
        return _levenshtein_two_row(left, right)
    if max_distance < 0:
        raise ValueError("max_distance must be non-negative")
    cap = max_distance + 1
    if m - n > max_distance:
        return cap
    if n == 0:
        return m if m <= max_distance else cap
    k = max_distance
    # Row 0: distance to the empty prefix is the column index.
    previous = [j if j <= k else cap for j in range(n + 1)]
    for i in range(1, m + 1):
        lo = max(1, i - k)
        hi = min(n, i + k)
        current = [cap] * (n + 1)
        current[0] = i if i <= k else cap
        left_char = left[i - 1]
        row_best = current[0]
        prev_row = previous
        for j in range(lo, hi + 1):
            above = prev_row[j] + 1
            left_cell = current[j - 1] + 1
            diag = prev_row[j - 1] + (0 if left_char == right[j - 1] else 1)
            best = diag if diag <= above else above
            if left_cell < best:
                best = left_cell
            if best > cap:
                best = cap
            current[j] = best
            if best < row_best:
                row_best = best
        if row_best >= cap:
            return cap
        previous = current
    distance = previous[n]
    return distance if distance <= k else cap


def _levenshtein_two_row(left: str, right: str) -> int:
    """Exact two-row Levenshtein DP (``len(left) >= len(right) > 0``)."""
    previous = list(range(len(right) + 1))
    for row, left_char in enumerate(left, start=1):
        current = [row]
        append = current.append
        diag = row - 1
        for col, right_char in enumerate(right, start=1):
            above = previous[col] + 1
            if left_char == right_char:
                best = previous[col - 1]
                if above < best:
                    best = above
            else:
                best = previous[col - 1] + 1
                if above < best:
                    best = above
            left_cell = current[col - 1] + 1
            append(left_cell if left_cell < best else best)
        previous = current
    return previous[-1]


def banded_damerau_levenshtein(
    left: str, right: str, max_distance: int | None = None
) -> int:
    """Restricted Damerau–Levenshtein (OSA) with banding and early exit.

    Same contract as :func:`banded_levenshtein`: exact when the distance
    is within ``max_distance``, the sentinel ``max_distance + 1`` beyond
    it.  The band argument carries over because every OSA edit
    (insert/delete cost 1, offset ±1; substitute/transpose cost ≥ 1,
    offset unchanged) keeps path cost ≥ ``|i - j|``.
    """
    if left == right:
        return 0
    if len(left) < len(right):
        left, right = right, left
    m, n = len(left), len(right)
    if max_distance is not None and max_distance < 0:
        raise ValueError("max_distance must be non-negative")
    if max_distance is not None and m - n > max_distance:
        return max_distance + 1
    if n == 0:
        if max_distance is None:
            return m
        return m if m <= max_distance else max_distance + 1
    k = max_distance if max_distance is not None else m + n
    cap = k + 1
    previous = [j if j <= k else cap for j in range(n + 1)]
    before_previous: list[int] | None = None
    for i in range(1, m + 1):
        lo = max(1, i - k)
        hi = min(n, i + k)
        current = [cap] * (n + 1)
        current[0] = i if i <= k else cap
        left_char = left[i - 1]
        row_best = current[0]
        for j in range(lo, hi + 1):
            right_char = right[j - 1]
            above = previous[j] + 1
            left_cell = current[j - 1] + 1
            diag = previous[j - 1] + (0 if left_char == right_char else 1)
            best = diag if diag <= above else above
            if left_cell < best:
                best = left_cell
            if (
                before_previous is not None
                and i > 1
                and j > 1
                and left_char == right[j - 2]
                and left[i - 2] == right_char
            ):
                transposed = before_previous[j - 2] + 1
                if transposed < best:
                    best = transposed
            if best > cap:
                best = cap
            current[j] = best
            if best < row_best:
                row_best = best
        if row_best >= cap:
            return cap
        before_previous = previous
        previous = current
    distance = previous[n]
    return distance if distance <= k else cap


def banded_levenshtein_similarity(
    left: Any, right: Any, *, min_similarity: float = 0.0
) -> float:
    """``1 - d/max(len)`` via the banded kernel.

    With a positive *min_similarity* the kernel may stop early: any pair
    whose similarity would fall below the floor returns 0.0, which is
    safe for threshold classifiers with ``T_λ ≥ min_similarity``.
    """
    left_str, right_str = as_strings(left, right)
    longest = max(len(left_str), len(right_str))
    if longest == 0:
        return 1.0
    # One row of slack guards the float boundary: a distance exactly on
    # the similarity floor is always computed exactly, never cut off.
    cutoff = int((1.0 - min_similarity) * longest) + 1
    distance = banded_levenshtein(left_str, right_str, cutoff)
    if distance > cutoff:
        return 0.0
    return similarity_from_distance(distance, longest)


def banded_damerau_levenshtein_similarity(
    left: Any, right: Any, *, min_similarity: float = 0.0
) -> float:
    """Damerau variant of :func:`banded_levenshtein_similarity`."""
    left_str, right_str = as_strings(left, right)
    longest = max(len(left_str), len(right_str))
    if longest == 0:
        return 1.0
    cutoff = int((1.0 - min_similarity) * longest) + 1
    distance = banded_damerau_levenshtein(left_str, right_str, cutoff)
    if distance > cutoff:
        return 0.0
    return similarity_from_distance(distance, longest)


class BandedEditComparator:
    """A banded edit-distance comparator with a configurable similarity floor.

    Callable like any comparator (``(left, right) -> float``) and
    additionally *bandable*: :meth:`with_min_similarity` returns a clone
    whose kernel computes with a true cutoff band.  The contract is the
    pushdown contract of :func:`banded_levenshtein_similarity`:

    * results **at or above** the floor are exact, bit for bit;
    * results **below** the floor are either exact or 0.0 ("below
      cutoff") — whichever the band boundary reaches first.

    That contract is what makes decision-layer pruning safe: a
    classifier whose weakest decisive threshold is at least the floor
    (see :func:`repro.matching.pushdown.derive_floors`) cannot
    distinguish the two below-floor answers.

    >>> exact = BandedEditComparator(
    ...     "fast_levenshtein", banded_levenshtein_similarity
    ... )
    >>> pruned = exact.with_min_similarity(0.8)
    >>> exact("meier", "meyer") == pruned("meier", "meyer") == 0.8
    True
    >>> round(exact("meier", "baker"), 2)
    0.4
    >>> pruned("meier", "baker")  # below the floor: early-exit band
    0.0

    Comparators built with a *kind* are additionally **backend-aware**:
    :meth:`with_backend` swaps the kernel implementation family (see
    :mod:`repro.similarity.backends`) while keeping name, floor and —
    because every backend is pinned bitwise to the reference DPs —
    results unchanged, and :meth:`batch_similarities` exposes the
    backend's vectorized batch scorer to the cache prewarm path.
    """

    __slots__ = ("name", "min_similarity", "_fn", "_kind", "_backend")

    def __init__(
        self,
        name: str,
        fn: Any,
        *,
        min_similarity: float = 0.0,
        kind: str | None = None,
        backend: str | None = None,
    ) -> None:
        if not 0.0 <= min_similarity <= 1.0:
            raise ValueError(
                f"min_similarity outside [0, 1]: {min_similarity}"
            )
        self.name = str(name)
        self.min_similarity = float(min_similarity)
        self._fn = fn
        self._kind = kind
        self._backend = backend if backend is not None else (
            "python" if kind is not None else None
        )

    def __call__(self, left: Any, right: Any) -> float:
        return self._fn(left, right, min_similarity=self.min_similarity)

    @property
    def kind(self) -> str | None:
        """The kernel kind (``"levenshtein"`` / ``"damerau_levenshtein"``)
        when backend-aware, else ``None``."""
        return self._kind

    @property
    def backend_name(self) -> str | None:
        """The kernel backend computing this comparator's results.

        ``None`` for comparators wrapping an opaque function — those
        cannot be switched and are treated as their own (anonymous)
        backend by the band-cache registry.
        """
        return self._backend

    def with_min_similarity(self, min_similarity: float) -> "BandedEditComparator":
        """A clone computing with the given similarity floor.

        The clone prunes at exactly *min_similarity* — raising,
        lowering, or (with ``0.0``) removing the current band; only a
        floor of ``0.0`` yields a comparator bitwise-equal to the exact
        kernel everywhere.
        """
        if min_similarity == self.min_similarity:
            return self
        return BandedEditComparator(
            self.name,
            self._fn,
            min_similarity=min_similarity,
            kind=self._kind,
            backend=self._backend,
        )

    def with_backend(self, backend: Any) -> "BandedEditComparator":
        """A clone whose kernel runs on *backend* (name or instance).

        Results are unchanged — every registered backend is pinned
        bitwise to the reference DPs — so this is purely a performance
        selection.  Comparators without a :attr:`kind` (opaque wrapped
        functions) return themselves unchanged.
        """
        if self._kind is None:
            return self
        from repro.similarity.backends.base import resolve_backend

        resolved = (
            backend
            if hasattr(backend, "similarity_fn")
            else resolve_backend(backend)
        )
        if resolved.name == self._backend:
            return self
        return BandedEditComparator(
            self.name,
            resolved.similarity_fn(self._kind),
            min_similarity=self.min_similarity,
            kind=self._kind,
            backend=resolved.name,
        )

    def batch_similarities(
        self, pairs: Any
    ) -> list[float] | None:
        """Score a batch of pairs via the backend's vectorized path.

        Returns ``None`` when the configured backend has no batch
        scorer (the caller then loops per pair); a returned list is
        positionally aligned with *pairs* and bitwise equal to calling
        the comparator on each pair.
        """
        if self._kind is None:
            return None
        from repro.similarity.backends.base import get_backend

        backend = get_backend(self._backend)
        if not backend.available:
            return None
        return backend.batch_similarities(
            self._kind, pairs, min_similarity=self.min_similarity
        )

    def __repr__(self) -> str:
        if self.min_similarity > 0.0:
            return (
                f"BandedEditComparator({self.name!r}, "
                f"min_similarity={self.min_similarity:g})"
            )
        return f"BandedEditComparator({self.name!r})"


#: Soft bound on derived band caches memoized per exact cache; on
#: overflow the registry is cleared wholesale (derived caches are
#: re-derivable, and live references keep working — they just stop
#: being shared with future clones).
_MAX_BANDS = 8


def _pair_key(left: Any, right: Any) -> tuple[Any, Any]:
    """Canonical unordered-pair key for a symmetric comparator.

    Orders the operands so ``(a, b)`` and ``(b, a)`` share one cache
    entry.  Strings (the dominant domain) are keyed directly; other
    operands are keyed together with their type, because Python treats
    cross-type equalities like ``1 == 1.0`` as dict-key collisions even
    though their string forms — and hence comparator results — differ.
    Falls back to hash ordering for incomparable operand types; a hash
    tie keeps the given order (costs at most a duplicate entry, never a
    wrong result, because the key stores the actual operands).
    """
    if type(left) is str and type(right) is str:
        return (left, right) if left <= right else (right, left)
    try:
        if right < left:
            left, right = right, left
    except TypeError:
        if hash(right) < hash(left):
            left, right = right, left
    return ((type(left), left), (type(right), right))


#: Public alias: the canonical unordered-pair key, used by pair-aware
#: prewarm collection (:func:`repro.reduction.plan.partition_value_pairs`)
#: to deduplicate candidate value pairs exactly as the cache would.
pair_key = _pair_key


class SimilarityCache:
    """Memoize a symmetric domain-element comparator.

    Wraps any normalized comparison function and caches results under
    unordered-pair keys, so ``sim(a, b)`` and ``sim(b, a)`` share one
    entry.  Equal operands *of the same type* short-circuit to 1.0
    without touching the dictionary (every normalized similarity is
    reflexive; the type guard keeps cross-type equalities like
    ``1 == 1.0`` — whose string forms differ — out of the shortcut).

    Parameters
    ----------
    base:
        The comparator to memoize.
    max_entries:
        Soft capacity bound.  When the store would exceed it, the cache
        is cleared wholesale (cheap, and the working set repopulates in
        one pass) — a deliberate trade against LRU bookkeeping on the
        hot path.
    reflexive_value:
        The result for equal same-type operands, answered without
        touching the dictionary.  1.0 (default) fits normalized
        similarities; pass 0.0 to memoize a *distance* function.
    band:
        The similarity floor the *base* comparator is configured with
        (0.0 for an exact comparator).  Entries of a banded cache hold
        cutoff-pruned results — exact at or above the band, possibly
        0.0 below it — so caches of different bands never share a
        store; :meth:`banded` is the constructor that keeps one derived
        cache per active band.
    """

    __slots__ = (
        "base",
        "max_entries",
        "hits",
        "misses",
        "warmed",
        "reflexive_value",
        "band",
        "_bands",
        "_frozen",
        "_store",
    )

    def __init__(
        self,
        base: Comparator,
        *,
        max_entries: int = 1_000_000,
        reflexive_value: float = 1.0,
        band: float = 0.0,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if not 0.0 <= band <= 1.0:
            raise ValueError(f"band outside [0, 1]: {band}")
        self.base = base
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self.warmed = 0
        self.reflexive_value = float(reflexive_value)
        self.band = float(band)
        self._bands: dict[
            tuple[float, str | None], "SimilarityCache"
        ] = {}
        self._frozen = False
        self._store: dict[tuple[Any, Any], float] = {}

    def __call__(self, left: Any, right: Any) -> float:
        if left is right or (type(left) is type(right) and left == right):
            return self.reflexive_value
        key = _pair_key(left, right)
        store = self._store
        cached = store.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = self.base(left, right)
        if not self._frozen:
            if len(store) >= self.max_entries:
                store.clear()
            store[key] = result
        return result

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Pre-warm / freeze (block-partitioned execution support)
    # ------------------------------------------------------------------

    def warm(
        self, values: Any, *, budget: int | None = None
    ) -> int:
        """Precompute all pairwise results of a vocabulary.

        Fills the table with ``base(a, b)`` for every unordered pair of
        distinct *values*, skipping pairs already stored, so a plan
        scheduler can build the shared similarity table once in the
        parent before forking workers.  Warming never changes a result —
        entries hold exactly what a cold lookup would compute.

        Parameters
        ----------
        values:
            The observed vocabulary (duplicates are collapsed, input
            order preserved so warming is deterministic).
        budget:
            Optional bound on the number of pairs *examined* (stored or
            already present).  Warming stops once the budget or
            :attr:`max_entries` is reached; it never triggers the
            wholesale clear that a hot-path overflow would.

        Returns
        -------
        int
            Number of entries newly stored (always 0 while frozen —
            warming is a write and respects the read-only contract).
        """
        unique = dict.fromkeys(values)
        return self.warm_pairs(combinations(unique, 2), budget=budget)

    def warm_pairs(
        self,
        pairs: Iterable[tuple[Any, Any]],
        *,
        budget: int | None = None,
    ) -> int:
        """Precompute results for an explicit sequence of value pairs.

        The pair-aware counterpart of :meth:`warm`: instead of the full
        vocabulary square, only the given candidate combinations are
        examined (duplicates and reflexive same-type-equal pairs — which
        the lookup path short-circuits anyway — are skipped).  When the
        base comparator exposes a vectorized ``batch_similarities`` hook
        (see :meth:`BandedEditComparator.batch_similarities`), all
        missing entries of the batch are scored in one call instead of
        pair by pair — results are identical either way, the hook is
        purely a throughput lever.

        Same bookkeeping contract as :meth:`warm`: *budget* bounds the
        number of pairs examined, warming stops at :attr:`max_entries`
        without triggering the wholesale clear, and the return value is
        the number of entries newly stored (0 while frozen).
        """
        if self._frozen:
            return 0
        store = self._store
        max_entries = self.max_entries
        examined = 0
        pending: dict[tuple[Any, Any], tuple[Any, Any]] = {}
        for left, right in pairs:
            if budget is not None and examined >= budget:
                break
            examined += 1
            if left is right or (
                type(left) is type(right) and left == right
            ):
                continue
            key = _pair_key(left, right)
            if key in store or key in pending:
                continue
            if len(store) + len(pending) >= max_entries:
                break
            pending[key] = (left, right)
        if not pending:
            return 0
        results: list[float] | None = None
        batch = getattr(self.base, "batch_similarities", None)
        if callable(batch):
            results = batch(list(pending.values()))
        if results is None:
            base = self.base
            results = [base(left, right) for left, right in pending.values()]
        for key, result in zip(pending, results):
            store[key] = result
        self.warmed += len(pending)
        return len(pending)

    @property
    def frozen(self) -> bool:
        """Whether the table is read-only (lookups only, no inserts)."""
        return self._frozen

    def freeze(self) -> None:
        """Make the table read-only.

        A frozen cache still answers hits and still computes misses —
        it just stops storing new entries, so the warmed table can be
        shared copy-on-write across forked workers without any page
        ever being dirtied (and without the overflow clear wiping the
        shared table mid-run).
        """
        self._frozen = True

    def thaw(self) -> None:
        """Re-enable inserts after :meth:`freeze`."""
        self._frozen = False

    def banded(self, band: float, base: Comparator) -> "SimilarityCache":
        """The derived cache for one cutoff band.

        Returns a cache whose entries hold the results of *base* (the
        band's cutoff-configured comparator) and whose :attr:`band`
        records the floor — one derived cache per distinct
        ``(band, backend)`` combination is memoized on this instance,
        so repeated pushdown configurations (re-running detection with
        the same derived floors, or switching kernel backends back and
        forth) reuse the same warmed banded table instead of silently
        dropping it.  Asking for this cache's own band *and* backend
        returns ``self``.

        Band stores are deliberately *not* shared across bands: an
        entry computed under a cutoff may read 0.0 where the exact
        table reads the true similarity, and serving one to the other
        would break the pushdown contract.  (Backends, by contrast,
        are bitwise-interchangeable — the per-backend keying exists so
        each derived cache keeps computing its misses with the backend
        it was requested for.)
        """
        band = float(band)
        backend = getattr(base, "backend_name", None)
        if band == self.band and backend == getattr(
            self.base, "backend_name", None
        ):
            return self
        key = (band, backend)
        derived = self._bands.get(key)
        if derived is None:
            derived = SimilarityCache(
                base,
                max_entries=self.max_entries,
                reflexive_value=self.reflexive_value,
                band=band,
            )
            # Soft bound (repo-wide cache policy: clear wholesale, no
            # LRU bookkeeping): a cutoff sweep over many distinct
            # floors must not retain one table per floor ever tried.
            if len(self._bands) >= _MAX_BANDS:
                self._bands.clear()
            self._bands[key] = derived
        return derived

    def with_base(self, base: Comparator) -> "SimilarityCache":
        """A view of this cache computing misses with *base* instead.

        Used by kernel-backend switching: the clone **shares** this
        cache's store, band registry and frozen flag (every registered
        backend returns bitwise-identical results, so sharing entries
        across backends is safe and keeps warmed tables warm), but
        scores cache misses with the new comparator.  Hit/miss
        statistics are tracked per view.
        """
        if base is self.base:
            return self
        clone = SimilarityCache(
            base,
            max_entries=self.max_entries,
            reflexive_value=self.reflexive_value,
            band=self.band,
        )
        clone._store = self._store
        clone._bands = self._bands
        clone._frozen = self._frozen
        return clone

    def export_entries(self) -> Iterator[tuple[str, str, float]]:
        """Stream the portable (string-keyed) entries of the table.

        Yields ``(left, right, similarity)`` triples for every entry
        whose operands are plain strings — the dominant domain, and the
        only one a session store can round-trip through JSON without a
        type codec.  Entries under composite keys (non-string operands)
        are simply not exported; they are re-derivable on demand.
        """
        for key, value in self._store.items():
            left, right = key
            if type(left) is str and type(right) is str:
                yield left, right, value

    def absorb(self, entries: Iterable[tuple[Any, Any, float]]) -> int:
        """Restore previously exported entries without recomputation.

        The persistence counterpart of :meth:`export_entries`: each
        ``(left, right, similarity)`` triple is stored under the
        canonical unordered-pair key, skipping pairs already present.
        Only values a prior run actually computed should be absorbed —
        the cache trusts them exactly as it trusts its own memoized
        results.  Respects :attr:`frozen` (absorbs nothing) and stops
        at :attr:`max_entries` without triggering the wholesale clear.
        Returns the number of entries newly stored.
        """
        if self._frozen:
            return 0
        store = self._store
        stored = 0
        for left, right, value in entries:
            if len(store) >= self.max_entries:
                break
            key = _pair_key(left, right)
            if key in store:
                continue
            store[key] = float(value)
            stored += 1
        self.warmed += stored
        return stored

    def clear(self) -> None:
        """Drop all entries and reset the statistics."""
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.warmed = 0

    @property
    def name(self) -> str:
        """Expose the wrapped comparator's name for reports."""
        return getattr(self.base, "name", "comparator")

    def __repr__(self) -> str:
        banded = f", band={self.band:g}" if self.band > 0.0 else ""
        return (
            f"SimilarityCache({self.name}, entries={len(self._store)}, "
            f"hit_rate={self.hit_rate:.2%}{banded})"
        )


#: Ready-to-use banded comparator instances (exact: cutoff disabled at
#: similarity floor 0, so they equal the reference comparators bit for
#: bit).  Both are *bandable*: ``with_min_similarity(floor)`` yields the
#: cutoff-pruned variant the threshold-pushdown layer threads through
#: :class:`~repro.similarity.uncertain.UncertainValueComparator`.
FAST_LEVENSHTEIN = BandedEditComparator(
    "fast_levenshtein",
    banded_levenshtein_similarity,
    kind="levenshtein",
    backend="python",
)
FAST_DAMERAU_LEVENSHTEIN = BandedEditComparator(
    "fast_damerau_levenshtein",
    banded_damerau_levenshtein_similarity,
    kind="damerau_levenshtein",
    backend="python",
)
