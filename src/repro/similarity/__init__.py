"""Comparison functions: syntactic, semantic, and probabilistic lifts.

The package mirrors Section III-C (attribute value matching) and
Section IV-A (matching of uncertain attribute values):

* certain-value comparators — :mod:`repro.similarity.hamming` (the
  paper's running example), :mod:`repro.similarity.edit`,
  :mod:`repro.similarity.jaro`, :mod:`repro.similarity.ngram`,
  :mod:`repro.similarity.basic`, :mod:`repro.similarity.semantic`;
* the probabilistic lift — :mod:`repro.similarity.uncertain`
  (Equations 4 and 5 with ⊥ and pattern-value semantics);
* pluggable comparison kernels — :mod:`repro.similarity.backends`
  (reference Python DPs, Myers bit-parallel kernels and a
  numpy-vectorized batch scorer, all pinned bitwise to each other).
"""

from repro.similarity.backends import (
    BACKEND_ENV_VAR,
    KERNEL_KINDS,
    KernelBackend,
    available_backends,
    bitparallel_damerau_levenshtein,
    bitparallel_damerau_levenshtein_similarity,
    bitparallel_levenshtein,
    bitparallel_levenshtein_similarity,
    get_backend,
    register_backend,
    resolve_backend,
    resolve_backend_name,
)
from repro.similarity.base import (
    Comparator,
    NamedComparator,
    as_strings,
    checked,
    clamp01,
    similarity_from_distance,
    symmetrized,
    weighted_mean,
)
from repro.similarity.basic import (
    EXACT,
    NUMERIC,
    RELATIVE_NUMERIC,
    TOKEN_JACCARD,
    exact_similarity,
    numeric_similarity,
    relative_numeric_similarity,
    token_jaccard_similarity,
)
from repro.similarity.edit import (
    DAMERAU_LEVENSHTEIN,
    LEVENSHTEIN,
    damerau_levenshtein_distance,
    damerau_levenshtein_similarity,
    levenshtein_distance,
    levenshtein_similarity,
)
from repro.similarity.hamming import (
    HAMMING,
    hamming_distance,
    normalized_hamming_similarity,
)
from repro.similarity.jaro import (
    FAST_JARO_WINKLER,
    JARO,
    JARO_WINKLER,
    BoundedJaroWinkler,
    jaro_similarity,
    jaro_winkler_similarity,
    jaro_winkler_upper_bound,
)
from repro.similarity.kernels import (
    FAST_DAMERAU_LEVENSHTEIN,
    FAST_LEVENSHTEIN,
    BandedEditComparator,
    SimilarityCache,
    banded_damerau_levenshtein,
    banded_damerau_levenshtein_similarity,
    banded_levenshtein,
    banded_levenshtein_similarity,
)
from repro.similarity.ngram import (
    BIGRAM,
    JACCARD_BIGRAM,
    TRIGRAM,
    bigram_similarity,
    jaccard_qgram_similarity,
    qgram_similarity,
    qgrams,
    trigram_similarity,
)
from repro.similarity.phonetic import (
    NYSIIS,
    SOUNDEX,
    SOUNDEX_LEVENSHTEIN,
    nysiis,
    nysiis_similarity,
    phonetic_backoff,
    soundex,
    soundex_similarity,
)
from repro.similarity.semantic import Glossary
from repro.similarity.uncertain import (
    EQUALITY_PROBABILITY,
    PatternPolicy,
    UncertainValueComparator,
    equality_probability,
    expected_similarity,
)

#: Registry of the certain-value comparators by name.
COMPARATORS = {
    comparator.name: comparator
    for comparator in (
        HAMMING,
        LEVENSHTEIN,
        DAMERAU_LEVENSHTEIN,
        FAST_LEVENSHTEIN,
        FAST_DAMERAU_LEVENSHTEIN,
        JARO,
        JARO_WINKLER,
        FAST_JARO_WINKLER,
        BIGRAM,
        TRIGRAM,
        JACCARD_BIGRAM,
        EXACT,
        NUMERIC,
        RELATIVE_NUMERIC,
        TOKEN_JACCARD,
        SOUNDEX,
        NYSIIS,
    )
}

__all__ = [
    "BACKEND_ENV_VAR",
    "BIGRAM",
    "COMPARATORS",
    "Comparator",
    "DAMERAU_LEVENSHTEIN",
    "EQUALITY_PROBABILITY",
    "EXACT",
    "BandedEditComparator",
    "BoundedJaroWinkler",
    "FAST_DAMERAU_LEVENSHTEIN",
    "FAST_JARO_WINKLER",
    "FAST_LEVENSHTEIN",
    "Glossary",
    "KERNEL_KINDS",
    "KernelBackend",
    "HAMMING",
    "JACCARD_BIGRAM",
    "JARO",
    "JARO_WINKLER",
    "LEVENSHTEIN",
    "NUMERIC",
    "NYSIIS",
    "NamedComparator",
    "PatternPolicy",
    "RELATIVE_NUMERIC",
    "SOUNDEX",
    "SOUNDEX_LEVENSHTEIN",
    "SimilarityCache",
    "TOKEN_JACCARD",
    "TRIGRAM",
    "UncertainValueComparator",
    "as_strings",
    "available_backends",
    "banded_damerau_levenshtein",
    "banded_damerau_levenshtein_similarity",
    "banded_levenshtein",
    "banded_levenshtein_similarity",
    "bigram_similarity",
    "bitparallel_damerau_levenshtein",
    "bitparallel_damerau_levenshtein_similarity",
    "bitparallel_levenshtein",
    "bitparallel_levenshtein_similarity",
    "checked",
    "clamp01",
    "damerau_levenshtein_distance",
    "damerau_levenshtein_similarity",
    "equality_probability",
    "exact_similarity",
    "expected_similarity",
    "get_backend",
    "hamming_distance",
    "jaccard_qgram_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "jaro_winkler_upper_bound",
    "levenshtein_distance",
    "levenshtein_similarity",
    "normalized_hamming_similarity",
    "numeric_similarity",
    "nysiis",
    "nysiis_similarity",
    "phonetic_backoff",
    "soundex",
    "soundex_similarity",
    "qgram_similarity",
    "qgrams",
    "register_backend",
    "relative_numeric_similarity",
    "resolve_backend",
    "resolve_backend_name",
    "similarity_from_distance",
    "symmetrized",
    "token_jaccard_similarity",
    "trigram_similarity",
    "weighted_mean",
]
