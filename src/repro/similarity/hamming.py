"""Normalized Hamming similarity — the paper's running comparator.

The worked examples of Section IV use "the normalized hamming distance":
strings are compared position by position, the shorter string is
implicitly padded so every surplus position counts as a mismatch, and the
mismatch count is divided by the length of the longer string.

The paper's reference values, all reproduced by tests:

* ``sim(Tim, Kim) = 2/3``
* ``sim(Tim, Tom) = 2/3``
* ``sim(Jim, Tom) = 1/3``
* ``sim(machinist, mechanic) = 5/9``
* ``sim(baker, mechanic) = 0``
"""

from __future__ import annotations

from typing import Any

from repro.similarity.base import NamedComparator, as_strings


def hamming_distance(left: str, right: str) -> int:
    """Positional mismatch count, padding the shorter operand.

    ``hamming_distance("abc", "abcd") == 1`` — the unmatched trailing
    character counts as one mismatch.
    """
    longer, shorter = (left, right) if len(left) >= len(right) else (right, left)
    mismatches = len(longer) - len(shorter)
    for left_char, right_char in zip(longer, shorter):
        if left_char != right_char:
            mismatches += 1
    return mismatches


def normalized_hamming_similarity(left: Any, right: Any) -> float:
    """``1 - hamming_distance / max(len)``, in ``[0, 1]``.

    Two empty strings are identical (similarity 1).
    """
    left_str, right_str = as_strings(left, right)
    longest = max(len(left_str), len(right_str))
    if longest == 0:
        return 1.0
    return 1.0 - hamming_distance(left_str, right_str) / longest


#: Ready-to-use named comparator instance.
HAMMING = NamedComparator("normalized_hamming", normalized_hamming_similarity)
