"""Similarity of *uncertain* attribute values — Equations 4 and 5.

This is the paper's first technical contribution (Section IV-A): lifting
a normalized comparison function on domain elements to probabilistic
values.

* **Error-free data** (Equation 4): similarity is the probability that
  both values are equal, ``sim(a1, a2) = P(a1 = a2)``.
* **Erroneous data** (Equation 5): domain-element similarity is folded
  into the expectation,
  ``sim(a1, a2) = Σ_{d1} Σ_{d2} P(a1=d1, a2=d2) · sim(d1, d2)``.

Non-existence semantics (both equations): ``sim(⊥, ⊥) = 1`` — two
non-existent values refer to the same real-world fact — and
``sim(a, ⊥) = sim(⊥, a) = 0`` for existing ``a``.

Pattern values (``mu*``) are handled either by expansion against a
lexicon (exact, preferred) or by a documented prefix heuristic for
lexicon-free use.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from repro.pdb.values import NULL, PatternValue, ProbabilisticValue
from repro.similarity.base import Comparator, NamedComparator
from repro.similarity.kernels import SimilarityCache, pair_key


class PatternPolicy:
    """How to compare :class:`PatternValue` outcomes.

    ``expand``
        Expand patterns against the configured lexicon before comparing
        (exact semantics; requires a lexicon).
    ``prefix``
        Compare the pattern's fixed prefix against the equally long prefix
        of the other operand with the base comparator.  A heuristic for
        lexicon-free operation: it preserves the intuition that ``mu*`` is
        similar to ``musician`` and dissimilar to ``baker``.
    ``strict``
        Raise on any pattern encounter (default — silent guessing is worse
        than a loud error).
    """

    EXPAND = "expand"
    PREFIX = "prefix"
    STRICT = "strict"

    ALL = (EXPAND, PREFIX, STRICT)


def _prefix_pattern_similarity(
    base: Comparator, pattern: PatternValue, other: Any
) -> float:
    """Prefix-heuristic similarity between a pattern and a plain value."""
    if isinstance(other, PatternValue):
        return base(pattern.prefix, other.prefix)
    other_str = str(other)
    prefix = pattern.prefix
    if not pattern.is_wildcard():
        return base(pattern.pattern, other_str)
    return base(prefix, other_str[: len(prefix)])


class UncertainValueComparator:
    """Lift a domain comparator to probabilistic values (Eq. 4 / Eq. 5).

    Parameters
    ----------
    base:
        Normalized comparison function on certain domain elements.  When
        ``None``, exact equality is used and the comparator computes
        Equation 4 (the error-free case) instead of Equation 5.
    pattern_policy:
        One of :class:`PatternPolicy`'s constants.
    pattern_lexicon:
        Lexicon used by the ``expand`` policy.
    cache:
        Optional memoization of domain-element comparisons.  Pass a
        :class:`~repro.similarity.kernels.SimilarityCache` to share one
        across comparators, or ``True`` to create a private one.
        Identical domain elements recur constantly across alternatives
        and candidate pairs, so hit rates are high; ignored for the
        error-free Equation 4 (plain equality needs no memo).  The
        value-level memo assumes each attribute's domain uses one
        consistent value type (mixing e.g. ``1`` and ``1.0`` outcomes
        inside uncertain values can alias memo entries, since Python
        treats cross-type numeric equals as the same dict key).
    min_similarity:
        Threshold-pushdown floor.  With a positive floor and a
        *bandable* base comparator (one exposing
        ``with_min_similarity``, e.g.
        :data:`~repro.similarity.kernels.FAST_LEVENSHTEIN`), the
        **certain-value fast path** runs the cutoff-banded kernel:
        results at or above the floor stay exact bit for bit, results
        below it may come back as 0.0 ("below cutoff") without paying
        for the full dynamic program.  The Equation-5 expectation over
        genuinely uncertain values always uses *exact* domain
        similarities — a convex combination of clamped terms could
        cross a decision step the exact expectation does not, so
        pruning inside the expectation would be unsound.  Floors are
        normally derived from the decision model
        (:func:`repro.matching.pushdown.derive_floors`) rather than
        chosen by hand.
    """

    def __init__(
        self,
        base: Comparator | None = None,
        *,
        pattern_policy: str = PatternPolicy.STRICT,
        pattern_lexicon: Iterable[str] | None = None,
        cache: SimilarityCache | bool | None = None,
        min_similarity: float = 0.0,
    ) -> None:
        if pattern_policy not in PatternPolicy.ALL:
            raise ValueError(
                f"unknown pattern policy {pattern_policy!r}; "
                f"expected one of {PatternPolicy.ALL}"
            )
        if pattern_policy == PatternPolicy.EXPAND and pattern_lexicon is None:
            raise ValueError("expand policy requires a pattern_lexicon")
        self._base = base
        self._policy = pattern_policy
        self._lexicon = (
            tuple(pattern_lexicon) if pattern_lexicon is not None else None
        )
        # Explicit None/False test: a freshly created SimilarityCache is
        # empty and therefore falsy (it defines __len__), but passing
        # one must still enable caching.
        enabled = cache is not None and cache is not False
        self._memoize = enabled
        self._cache: SimilarityCache | None = None
        if enabled and base is not None:
            self._cache = (
                cache
                if isinstance(cache, SimilarityCache)
                else SimilarityCache(base)
            )
        # Value-level memos (enabled together with the element cache):
        # full Equation-5 results keyed by the ordered value pair, and
        # pattern expansions keyed by the unexpanded value.
        self._pair_cache: dict[Any, float] = {}
        self._prepared_cache: dict[ProbabilisticValue, ProbabilisticValue] = {}
        # Threshold pushdown: a positive floor plus a bandable base
        # arms the certain-value fast path with the cutoff-banded
        # kernel and its band-keyed cache.
        self._floor = float(min_similarity)
        if not 0.0 <= self._floor <= 1.0:
            raise ValueError(
                f"min_similarity outside [0, 1]: {min_similarity}"
            )
        self._banded_base: Comparator | None = None
        self._banded_cache: SimilarityCache | None = None
        if self._floor > 0.0 and base is not None:
            maker = getattr(base, "with_min_similarity", None)
            if callable(maker):
                self._banded_base = maker(self._floor)
                if self._cache is not None:
                    self._banded_cache = self._cache.banded(
                        self._floor, self._banded_base
                    )

    def with_min_similarity(self, floor: float) -> "UncertainValueComparator":
        """A clone whose certain-value fast path prunes below *floor*.

        The clone shares this comparator's *exact* domain-element cache
        (the Equation-5 expectation still needs exact similarities) and
        draws its banded cache from
        :meth:`SimilarityCache.banded`, so repeated pushdown
        configurations reuse one warmed table per band.  Returns
        ``self`` unchanged when pruning cannot apply: a floor equal to
        the current one, the error-free Equation 4 (results are
        already 0/1 steps), or a base comparator without a cutoff band
        (no ``with_min_similarity``) — cloning those would cost warm
        value-level memos without skipping any work.
        """
        floor = float(floor)
        if not 0.0 <= floor <= 1.0:
            raise ValueError(f"min_similarity outside [0, 1]: {floor}")
        if floor == self._floor or self._base is None:
            return self
        if floor > 0.0 and not callable(
            getattr(self._base, "with_min_similarity", None)
        ):
            return self
        return UncertainValueComparator(
            self._base,
            pattern_policy=self._policy,
            pattern_lexicon=self._lexicon,
            cache=self._cache if self._cache is not None else self._memoize,
            min_similarity=floor,
        )

    def with_backend(self, backend: Any) -> "UncertainValueComparator":
        """A clone whose base comparator runs on a different kernel backend.

        Kernel backends are pinned bitwise to the reference DPs (see
        :mod:`repro.similarity.backends`), so the clone returns exactly
        the same similarities — only faster.  The domain-element cache
        is therefore *shared* with this comparator
        (:meth:`SimilarityCache.with_base` — same store, misses scored
        by the new backend), keeping warmed tables warm across backend
        switches.  Returns ``self`` when the base comparator is not
        backend-aware (e.g. Jaro–Winkler) or already runs on *backend*.
        """
        if self._base is None:
            return self
        switch = getattr(self._base, "with_backend", None)
        if not callable(switch):
            return self
        base = switch(backend)
        if base is self._base:
            return self
        return UncertainValueComparator(
            base,
            pattern_policy=self._policy,
            pattern_lexicon=self._lexicon,
            cache=(
                self._cache.with_base(base)
                if self._cache is not None
                else self._memoize
            ),
            min_similarity=self._floor,
        )

    @property
    def is_error_free(self) -> bool:
        """Whether this comparator implements Equation 4 (no base sim)."""
        return self._base is None

    @property
    def min_similarity(self) -> float:
        """The configured pushdown floor (0.0 means exact everywhere)."""
        return self._floor

    @property
    def cache(self) -> SimilarityCache | None:
        """The domain-element memo the fast path uses, when enabled.

        For a floor-configured comparator with a bandable base this is
        the *banded* cache (entries keyed by the active band via one
        cache instance per band); :attr:`exact_cache` exposes the
        shared exact table the Equation-5 expectation reads.
        """
        if self._banded_cache is not None:
            return self._banded_cache
        return self._cache

    @property
    def exact_cache(self) -> SimilarityCache | None:
        """The exact (band-0) domain-element memo, when enabled."""
        return self._cache

    def cacheable_vocabulary(self, values: Iterable[Any]) -> tuple[Any, ...]:
        """The concrete elements the element cache may be queried with.

        Maps an observed vocabulary (which may contain pattern values)
        to the operands that can actually reach :attr:`cache`: under the
        ``expand`` policy a pattern contributes its lexicon expansions —
        those are what Equation 5 compares after expansion — while under
        the other policies patterns bypass the cache (prefix heuristic
        calls the base comparator directly; strict raises) and are
        dropped.  Used by cache pre-warming so a warmed-then-frozen
        table covers every lookup the partition can make.
        """
        concrete: dict[Any, None] = {}
        for value in values:
            if isinstance(value, PatternValue):
                if self._policy == PatternPolicy.EXPAND:
                    for expansion in value.expansions(self._lexicon or ()):
                        concrete.setdefault(expansion, None)
                continue
            concrete.setdefault(value, None)
        return tuple(concrete)

    def _cacheable_elements(self, value: Any) -> tuple[Any, ...]:
        """The concrete operands *value* can put in front of the cache."""
        if isinstance(value, PatternValue):
            if self._policy == PatternPolicy.EXPAND:
                return tuple(value.expansions(self._lexicon or ()))
            return ()
        return (value,)

    def cacheable_pairs(
        self, pairs: Iterable[tuple[Any, Any]]
    ) -> tuple[tuple[Any, Any], ...]:
        """The element pairs the cache may be queried with for *pairs*.

        The pair-level counterpart of :meth:`cacheable_vocabulary`:
        maps observed candidate *value* pairs to the domain-element
        pairs that can actually reach :attr:`cache` — expanding
        patterns under the ``expand`` policy (their expansions are what
        Equation 5 compares), dropping patterns under the other
        policies, and skipping reflexive same-type-equal pairs (the
        lookup path short-circuits those without touching the store).
        Deduplicated under the cache's unordered-pair key, first
        occurrence wins, so pair-aware pre-warming examines each
        distinct comparison exactly once.
        """
        concrete: dict[tuple[Any, Any], tuple[Any, Any]] = {}
        for left, right in pairs:
            left_options = self._cacheable_elements(left)
            if not left_options:
                continue
            right_options = self._cacheable_elements(right)
            for left_element in left_options:
                for right_element in right_options:
                    if left_element is right_element or (
                        type(left_element) is type(right_element)
                        and left_element == right_element
                    ):
                        continue
                    concrete.setdefault(
                        pair_key(left_element, right_element),
                        (left_element, right_element),
                    )
        return tuple(concrete.values())

    def _certain_similarity(self, left: Any, right: Any) -> float:
        """Fast-path similarity of two concrete elements, floor-aware.

        The only place pruning may engage: both operands are certain,
        so the domain-element similarity *is* the attribute similarity
        and the banded kernel's "exact at or above the floor, possibly
        0.0 below" contract holds end to end.  Pattern values keep the
        exact path (their prefix heuristic slices operands before
        comparing, which the band math does not model).
        """
        if (
            self._banded_base is not None
            and not isinstance(left, PatternValue)
            and not isinstance(right, PatternValue)
        ):
            cache = self._banded_cache
            if cache is not None:
                return cache(left, right)
            return self._banded_base(left, right)
        return self._domain_similarity(left, right)

    def _domain_similarity(self, left: Any, right: Any) -> float:
        """Similarity of two concrete (non-⊥) domain elements (exact)."""
        left_is_pattern = isinstance(left, PatternValue)
        right_is_pattern = isinstance(right, PatternValue)
        if left_is_pattern or right_is_pattern:
            if self._policy == PatternPolicy.STRICT:
                raise ValueError(
                    "encountered a PatternValue but pattern_policy is "
                    "'strict'; expand patterns or configure a policy"
                )
            base = self._base if self._base is not None else _equality
            if left_is_pattern:
                return _prefix_pattern_similarity(base, left, right)
            return _prefix_pattern_similarity(base, right, left)
        if self._base is None:
            return 1.0 if left == right else 0.0
        if self._cache is not None:
            return self._cache(left, right)
        return self._base(left, right)

    def _prepared(self, value: ProbabilisticValue) -> ProbabilisticValue:
        """Expand patterns when the policy requires it (memoized)."""
        if self._policy != PatternPolicy.EXPAND:
            return value
        if self._memoize:
            cached = self._prepared_cache.get(value)
            if cached is not None:
                return cached
        prepared = value
        if any(isinstance(v, PatternValue) for v in value.support):
            prepared = value.expand_patterns(self._lexicon or ())
        if self._memoize:
            if len(self._prepared_cache) >= _VALUE_MEMO_CAP:
                self._prepared_cache.clear()
            self._prepared_cache[value] = prepared
        return prepared

    def __call__(
        self,
        left: ProbabilisticValue | Any,
        right: ProbabilisticValue | Any,
    ) -> float:
        """Expected similarity of two (possibly certain) attribute values.

        Plain Python values are coerced to certain probabilistic values so
        the comparator can be used uniformly.  Two *certain* values — the
        dominant case for flat relations — skip coercion, pattern
        expansion and the double loop of Equation 5 entirely and go
        straight to the domain comparator.
        """
        left_plain = self._plain_element(left)
        if left_plain is not _UNCERTAIN:
            right_plain = self._plain_element(right)
            if right_plain is not _UNCERTAIN:
                if left_plain is NULL or right_plain is NULL:
                    return 1.0 if left_plain is right_plain else 0.0
                return self._certain_similarity(left_plain, right_plain)
        left_value = _coerce(left)
        right_value = _coerce(right)
        if self._memoize:
            # Memoize whole Equation-5 results on the *ordered* value
            # pair: uncertain values recur across candidate pairs, and
            # the ordered key keeps memoized results bit-identical to
            # the uncached double loop.
            key = (left_value, right_value)
            cached = self._pair_cache.get(key)
            if cached is not None:
                return cached
            result = self._prepared(left_value).expected_similarity(
                self._prepared(right_value), self._domain_similarity
            )
            if len(self._pair_cache) >= _VALUE_MEMO_CAP:
                self._pair_cache.clear()
            self._pair_cache[key] = result
            return result
        return self._prepared(left_value).expected_similarity(
            self._prepared(right_value), self._domain_similarity
        )

    def _plain_element(self, value: Any) -> Any:
        """The single domain element behind *value*, or ``_UNCERTAIN``.

        Maps ``None`` to ⊥ and unwraps certain probabilistic values.
        Pattern values are only treated as plain when no expansion is
        configured (``expand`` must go through the Equation-5 path).
        """
        if value is None or value is NULL:
            return NULL
        if isinstance(value, ProbabilisticValue):
            if not value.is_certain:
                return _UNCERTAIN
            value = value.certain_value
            if value is NULL:
                return NULL
        if (
            isinstance(value, PatternValue)
            and self._policy == PatternPolicy.EXPAND
        ):
            return _UNCERTAIN
        return value

    def __repr__(self) -> str:
        base_name = (
            "equality"
            if self._base is None
            else getattr(self._base, "name", "comparator")
        )
        floored = (
            f", min_similarity={self._floor:g}" if self._floor > 0.0 else ""
        )
        return (
            f"UncertainValueComparator(base={base_name}, "
            f"patterns={self._policy}{floored})"
        )


#: Sentinel returned by ``_plain_element`` when a value is genuinely
#: uncertain and must take the full Equation-5 path.
_UNCERTAIN = object()

#: Soft capacity of the per-comparator value-level memos; on overflow
#: they are cleared wholesale (see SimilarityCache for the rationale).
_VALUE_MEMO_CAP = 1 << 20


def _equality(left: Any, right: Any) -> float:
    return 1.0 if left == right else 0.0


def _coerce(value: Any) -> ProbabilisticValue:
    if isinstance(value, ProbabilisticValue):
        return value
    if value is None or value is NULL:
        return ProbabilisticValue.missing()
    return ProbabilisticValue.certain(value)


def equality_probability(
    left: ProbabilisticValue | Any, right: ProbabilisticValue | Any
) -> float:
    """Equation 4 as a plain function: ``P(a1 = a2)``."""
    return _coerce(left).equality_probability(_coerce(right))


def expected_similarity(
    left: ProbabilisticValue | Any,
    right: ProbabilisticValue | Any,
    base: Comparator,
) -> float:
    """Equation 5 as a plain function, strict about patterns."""
    return UncertainValueComparator(base)(left, right)


#: Equation-4 comparator ready for registry use.
EQUALITY_PROBABILITY = NamedComparator(
    "equality_probability", equality_probability
)
