"""Jaro and Jaro–Winkler similarities.

The Jaro distance is named by Section III-C among the standard syntactic
comparison functions [15]; Jaro–Winkler adds the prefix bonus that Winkler
introduced for census name matching [27].
"""

from __future__ import annotations

from typing import Any

from repro.similarity.base import NamedComparator, as_strings, clamp01


def jaro_similarity(left: Any, right: Any) -> float:
    """Classic Jaro similarity in ``[0, 1]``.

    Characters match when equal and within half the longer length
    (rounded down, minus one) of each other; the score combines the match
    counts and transposition count in Jaro's formula.
    """
    left_str, right_str = as_strings(left, right)
    if left_str == right_str:
        return 1.0
    left_len, right_len = len(left_str), len(right_str)
    if left_len == 0 or right_len == 0:
        return 0.0
    window = max(left_len, right_len) // 2 - 1
    window = max(window, 0)

    left_matched = [False] * left_len
    right_matched = [False] * right_len
    matches = 0
    for i, char in enumerate(left_str):
        start = max(0, i - window)
        stop = min(i + window + 1, right_len)
        for j in range(start, stop):
            if right_matched[j] or right_str[j] != char:
                continue
            left_matched[i] = True
            right_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i in range(left_len):
        if not left_matched[i]:
            continue
        while not right_matched[j]:
            j += 1
        if left_str[i] != right_str[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / left_len
        + matches / right_len
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(
    left: Any,
    right: Any,
    *,
    prefix_scale: float = 0.1,
    max_prefix: int = 4,
) -> float:
    """Jaro similarity with Winkler's common-prefix bonus.

    ``sim = jaro + ℓ · p · (1 - jaro)`` where ``ℓ`` is the length of the
    common prefix (capped at *max_prefix*) and ``p`` the *prefix_scale*
    (0.1 by default, keeping results ≤ 1 for prefixes up to 4).
    """
    if not 0.0 <= prefix_scale * max_prefix <= 1.0:
        raise ValueError("prefix_scale * max_prefix must stay within [0, 1]")
    left_str, right_str = as_strings(left, right)
    jaro = jaro_similarity(left_str, right_str)
    prefix = 0
    for left_char, right_char in zip(left_str, right_str):
        if left_char != right_char or prefix >= max_prefix:
            break
        prefix += 1
    return clamp01(jaro + prefix * prefix_scale * (1.0 - jaro))


def jaro_winkler_upper_bound(
    left_str: str,
    right_str: str,
    *,
    prefix_scale: float = 0.1,
    max_prefix: int = 4,
) -> float:
    """A cheap upper bound on the Jaro–Winkler similarity.

    Matches are at most ``min(len(a), len(b))`` and the transposition
    term is at most 1, so ``jaro ≤ (mn/la + mn/lb + 1) / 3``; Winkler's
    bonus is monotone in the Jaro score, so substituting the bound and
    the *actual* common prefix (``O(max_prefix)`` to compute) bounds the
    final similarity.  Costs a handful of arithmetic operations versus
    the ``O(la · lb)`` match window scan — the pushdown layer uses it to
    skip the scan entirely when a pair provably falls below a floor.
    """
    if left_str == right_str:
        return 1.0
    left_len, right_len = len(left_str), len(right_str)
    if left_len == 0 or right_len == 0:
        return 0.0
    shortest = min(left_len, right_len)
    jaro_bound = (shortest / left_len + shortest / right_len + 1.0) / 3.0
    prefix = 0
    for left_char, right_char in zip(left_str, right_str):
        if left_char != right_char or prefix >= max_prefix:
            break
        prefix += 1
    return clamp01(jaro_bound + prefix * prefix_scale * (1.0 - jaro_bound))


class BoundedJaroWinkler:
    """A Jaro–Winkler comparator with a pushdown similarity floor.

    Callable like any comparator and *bandable* like
    :class:`repro.similarity.kernels.BandedEditComparator`: clones from
    :meth:`with_min_similarity` first evaluate
    :func:`jaro_winkler_upper_bound` and answer 0.0 without running the
    ``O(la · lb)`` match scan whenever the bound proves the pair falls
    below the floor.  Same pushdown contract as the edit kernels —
    exact at or above the floor, exact or 0.0 below it — so decision
    models with ``T_λ ≥ min_similarity`` cannot observe the pruning.
    """

    __slots__ = ("name", "min_similarity", "_scale", "_max_prefix")

    def __init__(
        self,
        name: str = "fast_jaro_winkler",
        *,
        min_similarity: float = 0.0,
        prefix_scale: float = 0.1,
        max_prefix: int = 4,
    ) -> None:
        if not 0.0 <= min_similarity <= 1.0:
            raise ValueError(
                f"min_similarity outside [0, 1]: {min_similarity}"
            )
        self.name = str(name)
        self.min_similarity = float(min_similarity)
        self._scale = float(prefix_scale)
        self._max_prefix = int(max_prefix)

    def __call__(self, left: Any, right: Any) -> float:
        left_str, right_str = as_strings(left, right)
        if self.min_similarity > 0.0:
            bound = jaro_winkler_upper_bound(
                left_str,
                right_str,
                prefix_scale=self._scale,
                max_prefix=self._max_prefix,
            )
            if bound < self.min_similarity:
                return 0.0
        return jaro_winkler_similarity(
            left_str,
            right_str,
            prefix_scale=self._scale,
            max_prefix=self._max_prefix,
        )

    def with_min_similarity(
        self, min_similarity: float
    ) -> "BoundedJaroWinkler":
        """A clone pruning at exactly *min_similarity* (0.0 disables)."""
        if min_similarity == self.min_similarity:
            return self
        return BoundedJaroWinkler(
            self.name,
            min_similarity=min_similarity,
            prefix_scale=self._scale,
            max_prefix=self._max_prefix,
        )

    def __repr__(self) -> str:
        if self.min_similarity > 0.0:
            return (
                f"BoundedJaroWinkler({self.name!r}, "
                f"min_similarity={self.min_similarity:g})"
            )
        return f"BoundedJaroWinkler({self.name!r})"


#: Ready-to-use named comparator instances.
JARO = NamedComparator("jaro", jaro_similarity)
JARO_WINKLER = NamedComparator("jaro_winkler", jaro_winkler_similarity)

#: The bandable Jaro–Winkler: exact (bitwise equal to
#: :data:`JARO_WINKLER`) until the threshold-pushdown layer hands it a
#: floor, after which provably-below-floor pairs short-circuit to 0.0.
FAST_JARO_WINKLER = BoundedJaroWinkler()
