"""Comparison-function protocol and shared helpers.

Section III-C quantifies attribute value similarity "by syntactic (e.g.,
n-grams, edit- or jaro distance) and semantic (e.g., glossaries or
ontologies) means" and the paper restricts itself to *normalized*
comparison functions, i.e. ``sim : D × D → [0, 1]``.

A comparison function here is simply a callable ``(a, b) -> float``; the
classes in this package add introspection (a name), validation and
composition helpers on top.  Plain functions can be used anywhere a
:class:`Comparator` is expected.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class Comparator(Protocol):
    """Anything that maps a value pair to a similarity in ``[0, 1]``."""

    def __call__(self, left: Any, right: Any) -> float:  # pragma: no cover
        ...


class NamedComparator:
    """A comparison function with a name, for reports and registries."""

    __slots__ = ("name", "_fn")

    def __init__(self, name: str, fn: Comparator) -> None:
        self.name = str(name)
        self._fn = fn

    def __call__(self, left: Any, right: Any) -> float:
        return self._fn(left, right)

    def __repr__(self) -> str:
        return f"NamedComparator({self.name!r})"


def clamp01(value: float) -> float:
    """Clamp *value* into ``[0, 1]`` (guards float round-off)."""
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value


def as_strings(left: Any, right: Any) -> tuple[str, str]:
    """Coerce both operands to ``str`` for string comparators."""
    return str(left), str(right)


def similarity_from_distance(
    distance: float, normalizer: float
) -> float:
    """Turn an absolute distance into a normalized similarity.

    ``sim = 1 - distance / normalizer`` clamped to ``[0, 1]``; a
    *normalizer* of 0 means both operands are empty ⇒ similarity 1.
    """
    if normalizer <= 0.0:
        return 1.0
    return clamp01(1.0 - distance / normalizer)


def checked(fn: Comparator, *, name: str | None = None) -> Comparator:
    """Wrap *fn* so results outside ``[0, 1]`` raise immediately.

    The paper's formulas require normalized comparison functions; this
    wrapper converts silent violations into loud errors during testing.
    """

    label = name or getattr(fn, "name", getattr(fn, "__name__", "comparator"))

    def _checked(left: Any, right: Any) -> float:
        result = fn(left, right)
        if not 0.0 <= result <= 1.0:
            raise ValueError(
                f"{label} returned {result!r} outside [0, 1] "
                f"for ({left!r}, {right!r})"
            )
        return result

    return NamedComparator(f"checked({label})", _checked)


def symmetrized(fn: Comparator) -> Comparator:
    """Force symmetry by averaging ``fn(a, b)`` and ``fn(b, a)``."""

    def _sym(left: Any, right: Any) -> float:
        return 0.5 * (fn(left, right) + fn(right, left))

    return NamedComparator(
        f"symmetrized({getattr(fn, 'name', 'comparator')})", _sym
    )


def weighted_mean(
    comparators: list[tuple[Comparator, float]],
) -> Comparator:
    """Combine several comparators into one by weighted averaging.

    Weights must be positive; they are normalized to sum to 1 so the
    result is again a normalized comparison function.
    """
    if not comparators:
        raise ValueError("need at least one comparator")
    total = sum(weight for _, weight in comparators)
    if total <= 0.0:
        raise ValueError("weights must sum to a positive value")
    scaled: list[tuple[Comparator, float]] = [
        (fn, weight / total) for fn, weight in comparators
    ]

    def _mean(left: Any, right: Any) -> float:
        return sum(weight * fn(left, right) for fn, weight in scaled)

    return NamedComparator("weighted_mean", _mean)


ComparatorFactory = Callable[[], Comparator]
