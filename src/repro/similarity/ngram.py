"""n-gram (q-gram) based similarities.

n-grams are the first syntactic comparison means Section III-C names.  We
provide

* :func:`qgrams` — the padded q-gram multiset of a string;
* :func:`qgram_similarity` — Dice coefficient over q-gram multisets;
* :func:`jaccard_qgram_similarity` — Jaccard coefficient over q-gram sets;
* :func:`trigram_similarity` / :func:`bigram_similarity` — common presets.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.similarity.base import NamedComparator, as_strings

#: Padding character used to mark word boundaries in q-grams.
PAD = "\x01"


def qgrams(text: str, q: int = 2, *, pad: bool = True) -> Counter:
    """The multiset of q-grams of *text*.

    With ``pad=True`` the string is framed by ``q-1`` sentinel characters
    on each side so leading/trailing characters get full weight — the
    standard construction in record linkage.
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    if not text:
        return Counter()
    if pad and q > 1:
        text = PAD * (q - 1) + text + PAD * (q - 1)
    if len(text) < q:
        return Counter({text: 1})
    return Counter(text[i : i + q] for i in range(len(text) - q + 1))


def qgram_similarity(left: Any, right: Any, q: int = 2) -> float:
    """Dice coefficient of the q-gram multisets: ``2·|∩| / (|A|+|B|)``."""
    left_str, right_str = as_strings(left, right)
    if left_str == right_str:
        return 1.0
    left_grams = qgrams(left_str, q)
    right_grams = qgrams(right_str, q)
    total = sum(left_grams.values()) + sum(right_grams.values())
    if total == 0:
        return 1.0
    shared = sum((left_grams & right_grams).values())
    return 2.0 * shared / total


def jaccard_qgram_similarity(left: Any, right: Any, q: int = 2) -> float:
    """Jaccard coefficient of the q-gram *sets*: ``|∩| / |∪|``."""
    left_str, right_str = as_strings(left, right)
    if left_str == right_str:
        return 1.0
    left_set = set(qgrams(left_str, q))
    right_set = set(qgrams(right_str, q))
    union = left_set | right_set
    if not union:
        return 1.0
    return len(left_set & right_set) / len(union)


def bigram_similarity(left: Any, right: Any) -> float:
    """Dice similarity over 2-grams."""
    return qgram_similarity(left, right, q=2)


def trigram_similarity(left: Any, right: Any) -> float:
    """Dice similarity over 3-grams."""
    return qgram_similarity(left, right, q=3)


#: Ready-to-use named comparator instances.
BIGRAM = NamedComparator("bigram_dice", bigram_similarity)
TRIGRAM = NamedComparator("trigram_dice", trigram_similarity)
JACCARD_BIGRAM = NamedComparator(
    "jaccard_bigram", jaccard_qgram_similarity
)
