"""Edit-distance based similarities (Levenshtein and Damerau variant).

Edit distance is one of the syntactic comparison functions Section III-C
lists [15].  We provide the classic Levenshtein distance (insertions,
deletions, substitutions) and the restricted Damerau–Levenshtein distance
(additionally adjacent transpositions — the dominant typo class, relevant
for the error model of :mod:`repro.datagen.corruption`), both with the
standard ``1 - d / max(len)`` normalization.
"""

from __future__ import annotations

from typing import Any

from repro.similarity.base import (
    NamedComparator,
    as_strings,
    similarity_from_distance,
)


def levenshtein_distance(left: str, right: str) -> int:
    """Minimum number of single-character edits turning *left* into *right*.

    Uses the two-row dynamic program: ``O(|left|·|right|)`` time,
    ``O(min(|left|,|right|))`` space.
    """
    if left == right:
        return 0
    if len(left) < len(right):
        left, right = right, left
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for row, left_char in enumerate(left, start=1):
        current = [row]
        for col, right_char in enumerate(right, start=1):
            cost = 0 if left_char == right_char else 1
            current.append(
                min(
                    previous[col] + 1,  # deletion
                    current[col - 1] + 1,  # insertion
                    previous[col - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def damerau_levenshtein_distance(left: str, right: str) -> int:
    """Levenshtein distance extended with adjacent transpositions.

    The *restricted* (optimal string alignment) variant: each substring
    may be edited at most once, which is the standard choice in duplicate
    detection tooling.
    """
    if left == right:
        return 0
    rows, cols = len(left) + 1, len(right) + 1
    if rows == 1:
        return cols - 1
    if cols == 1:
        return rows - 1
    matrix = [[0] * cols for _ in range(rows)]
    for row in range(rows):
        matrix[row][0] = row
    for col in range(cols):
        matrix[0][col] = col
    for row in range(1, rows):
        for col in range(1, cols):
            cost = 0 if left[row - 1] == right[col - 1] else 1
            best = min(
                matrix[row - 1][col] + 1,
                matrix[row][col - 1] + 1,
                matrix[row - 1][col - 1] + cost,
            )
            if (
                row > 1
                and col > 1
                and left[row - 1] == right[col - 2]
                and left[row - 2] == right[col - 1]
            ):
                best = min(best, matrix[row - 2][col - 2] + 1)
            matrix[row][col] = best
    return matrix[-1][-1]


def levenshtein_similarity(left: Any, right: Any) -> float:
    """``1 - levenshtein / max(len)`` in ``[0, 1]``."""
    left_str, right_str = as_strings(left, right)
    return similarity_from_distance(
        levenshtein_distance(left_str, right_str),
        max(len(left_str), len(right_str)),
    )


def damerau_levenshtein_similarity(left: Any, right: Any) -> float:
    """``1 - damerau_levenshtein / max(len)`` in ``[0, 1]``."""
    left_str, right_str = as_strings(left, right)
    return similarity_from_distance(
        damerau_levenshtein_distance(left_str, right_str),
        max(len(left_str), len(right_str)),
    )


#: Ready-to-use named comparator instances.
LEVENSHTEIN = NamedComparator("levenshtein", levenshtein_similarity)
DAMERAU_LEVENSHTEIN = NamedComparator(
    "damerau_levenshtein", damerau_levenshtein_similarity
)
