"""Conditioning (scaling) of probabilistic data, after [32] and [33].

Section IV-B removes tuple-membership uncertainty before matching by
conditioning the database on the event ``B`` that the considered tuples
belong to their relations: worlds violating ``B`` are dropped and the
remaining world probabilities are renormalized by ``P(B)``.

For independent x-tuples, ``P(B)`` factorizes into the product of the
x-tuples' membership probabilities — the paper's worked example computes
``P(B) = p(t32) · p(t42) = 0.9 · 0.8 = 0.72`` this way.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.pdb.errors import ConditioningError
from repro.pdb.worlds import PossibleWorld
from repro.pdb.xtuples import XTuple


def presence_probability(xtuples: Iterable[XTuple]) -> float:
    """``P(B)``: probability that every given x-tuple is present.

    X-tuples are independent, so this is the product of their membership
    probabilities ``p(t)``.
    """
    probability = 1.0
    for xtuple in xtuples:
        probability *= xtuple.probability
    return probability


def condition_worlds(
    worlds: Sequence[PossibleWorld],
    event: Callable[[PossibleWorld], bool],
) -> tuple[list[PossibleWorld], float]:
    """Condition a world set on an arbitrary event.

    Returns the retained worlds with renormalized probabilities together
    with the event probability ``P(B)`` (the normalization constant).

    Raises
    ------
    ConditioningError
        If the event has probability 0 in the given world set.
    """
    kept = [world for world in worlds if event(world)]
    mass = sum(world.probability for world in kept)
    if mass <= 0.0:
        raise ConditioningError("conditioning on a zero-probability event")
    renormalized = [
        PossibleWorld(world.selection, world.probability / mass)
        for world in kept
    ]
    return renormalized, mass


def condition_on_presence(
    worlds: Sequence[PossibleWorld],
    tuple_ids: Iterable[str],
) -> tuple[list[PossibleWorld], float]:
    """Condition on the event that all *tuple_ids* are present.

    This is the paper's event ``B``; for Figure 7's example it removes the
    worlds ``{I4, …, I8}`` and returns ``P(B) = 0.72``.
    """
    ids = tuple(tuple_ids)
    return condition_worlds(
        worlds, lambda world: all(world.contains(tid) for tid in ids)
    )
