"""Ranking of tuples by uncertain key values (Section V-A.4).

The fourth Sorted-Neighborhood adaptation keeps key values uncertain and
sorts tuples "by using a ranking function as proposed for probabilistic
databases" ([34]–[37]).  We implement three ranking semantics from that
literature, all running in ``O(n log n)`` over the number of key
alternatives, matching the complexity the paper cites for ``PRF^e``:

* :func:`expected_rank_order` — the *expected rank* of Cormode et al. [35]:
  each tuple is placed at the probability-weighted average position its
  key alternatives occupy in the global key order.  This is the default;
  it reproduces the paper's Figure 13 ordering exactly.
* :func:`most_probable_key_order` — ranks by each tuple's modal key value;
  coincides with the certain-key strategy of Section V-A.2 and is included
  for ablation comparisons.
* :func:`prf_e_order` — probabilistic ranking function with exponentially
  decaying positional weight (``PRF^e`` of Li, Saha and Deshpande [37]):
  score(t) = Σ_k P(k) · α^{pos(k)}, tuples sorted by descending score.

All functions accept ``(item, [(key, probability), …])`` pairs so they are
independent of how key distributions were produced.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from typing import Any, TypeVar

ItemT = TypeVar("ItemT", bound=Hashable)

#: A tuple's uncertain key: alternatives with probabilities.
KeyDistribution = Sequence[tuple[Any, float]]


def _normalized(distribution: KeyDistribution) -> list[tuple[Any, float]]:
    """Scale a key distribution to total mass 1 (conditioning on presence).

    Tuple membership must not influence duplicate detection (Section IV),
    so maybe-tuples' key mass is conditioned before ranking.
    """
    pairs = [(key, float(prob)) for key, prob in distribution]
    if not pairs:
        raise ValueError("empty key distribution")
    mass = sum(prob for _, prob in pairs)
    if mass <= 0.0:
        raise ValueError("key distribution has zero mass")
    return [(key, prob / mass) for key, prob in pairs]


def _global_key_positions(
    distributions: Sequence[KeyDistribution],
) -> dict[Any, int]:
    """Sorted positions of all distinct key values across all tuples."""
    distinct = {key for dist in distributions for key, _ in dist}
    ordered = sorted(distinct, key=lambda key: (str(key), repr(key)))
    return {key: position for position, key in enumerate(ordered)}


def expected_rank_order(
    items: Sequence[tuple[ItemT, KeyDistribution]],
) -> list[ItemT]:
    """Order items by the expected global position of their key values.

    For each item the score is ``Σ_k P(k|present) · pos(k)`` where
    ``pos(k)`` is the position of key ``k`` in the lexicographic order of
    all distinct keys.  Ties preserve input order (stable sort), which is
    the behaviour the paper's Figure 13 exhibits for the shared key
    ``Johpi``.
    """
    distributions = [dist for _, dist in items]
    positions = _global_key_positions(distributions)
    scored: list[tuple[float, int, ItemT]] = []
    for input_index, (item, dist) in enumerate(items):
        expected = sum(
            prob * positions[key] for key, prob in _normalized(dist)
        )
        scored.append((expected, input_index, item))
    scored.sort(key=lambda entry: (entry[0], entry[1]))
    return [item for _, _, item in scored]


def most_probable_key_order(
    items: Sequence[tuple[ItemT, KeyDistribution]],
) -> list[ItemT]:
    """Order items by their modal key value (ties by input order)."""
    scored: list[tuple[str, int, ItemT]] = []
    for input_index, (item, dist) in enumerate(items):
        best_key, _ = max(
            _normalized(dist), key=lambda pair: (pair[1], -len(str(pair[0])))
        )
        scored.append((str(best_key), input_index, item))
    scored.sort(key=lambda entry: (entry[0], entry[1]))
    return [item for _, _, item in scored]


def prf_e_order(
    items: Sequence[tuple[ItemT, KeyDistribution]],
    *,
    alpha: float = 0.95,
) -> list[ItemT]:
    """``PRF^e`` ranking: score by exponentially weighted key positions.

    ``score(t) = Σ_k P(k|present) · α^{pos(k)}`` with ``α ∈ (0, 1)``;
    higher scores rank earlier.  With α → 1 the order converges to the
    expected-rank order; small α emphasizes the best (earliest) keys.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    distributions = [dist for _, dist in items]
    positions = _global_key_positions(distributions)
    scored: list[tuple[float, int, ItemT]] = []
    for input_index, (item, dist) in enumerate(items):
        score = sum(
            prob * alpha ** positions[key]
            for key, prob in _normalized(dist)
        )
        scored.append((-score, input_index, item))
    scored.sort(key=lambda entry: (entry[0], entry[1]))
    return [item for _, _, item in scored]


#: Registry of ranking functions by name, for experiment configuration.
RANKING_FUNCTIONS = {
    "expected_rank": expected_rank_order,
    "most_probable_key": most_probable_key_order,
    "prf_e": prf_e_order,
}
