"""Probabilistic database substrate.

Implements the data models the paper operates on:

* attribute-value-level uncertainty — :class:`ProbabilisticValue`,
  the ⊥ non-existence marker :data:`NULL`, pattern values (``mu*``);
* tuple-level uncertainty — :class:`ProbabilisticTuple` (independence
  model, Section IV-A) and :class:`XTuple` / :class:`TupleAlternative`
  (ULDB x-tuple model, Section IV-B);
* relations — :class:`ProbabilisticRelation`, :class:`XRelation`,
  :class:`Schema`;
* possible-world semantics — enumeration, sampling, conditioning;
* ranking by uncertain keys (Section V-A.4);
* storage backends — the :class:`XTupleStore` protocol with the
  in-memory :class:`XRelation` and the out-of-core
  :class:`SpillingXTupleStore` (:mod:`repro.pdb.storage`).
"""

from repro.pdb.conditioning import (
    condition_on_presence,
    condition_worlds,
    presence_probability,
)
from repro.pdb.errors import (
    ConditioningError,
    DuplicateTupleIdError,
    EmptyDistributionError,
    InvalidProbabilityError,
    ProbabilisticDataError,
    SchemaMismatchError,
    UnknownAttributeError,
    WorldEnumerationError,
)
from repro.pdb.lineage import (
    Lineage,
    LineageAtom,
    mutually_exclusive,
)
from repro.pdb.ranking import (
    RANKING_FUNCTIONS,
    expected_rank_order,
    most_probable_key_order,
    prf_e_order,
)
from repro.pdb.relations import ProbabilisticRelation, Schema, XRelation
from repro.pdb.storage import (
    SpillingXTupleStore,
    StorageError,
    XTupleStore,
    fetch_tuples,
    spill_relation,
)
from repro.pdb.tuples import ProbabilisticTuple, has_null_support
from repro.pdb.values import (
    NULL,
    PROBABILITY_TOLERANCE,
    PatternValue,
    ProbabilisticValue,
)
from repro.pdb.worlds import (
    DEFAULT_MAX_WORLDS,
    PossibleWorld,
    enumerate_full_worlds,
    enumerate_worlds,
    most_probable_world,
    sample_world,
    value_in_world,
    world_count,
    world_overlap,
)
from repro.pdb.xtuples import TupleAlternative, XTuple

__all__ = [
    "NULL",
    "PROBABILITY_TOLERANCE",
    "DEFAULT_MAX_WORLDS",
    "RANKING_FUNCTIONS",
    "ConditioningError",
    "DuplicateTupleIdError",
    "EmptyDistributionError",
    "InvalidProbabilityError",
    "Lineage",
    "LineageAtom",
    "PatternValue",
    "PossibleWorld",
    "ProbabilisticDataError",
    "ProbabilisticRelation",
    "ProbabilisticTuple",
    "ProbabilisticValue",
    "Schema",
    "SchemaMismatchError",
    "SpillingXTupleStore",
    "StorageError",
    "TupleAlternative",
    "UnknownAttributeError",
    "WorldEnumerationError",
    "XRelation",
    "XTuple",
    "XTupleStore",
    "condition_on_presence",
    "condition_worlds",
    "enumerate_full_worlds",
    "enumerate_worlds",
    "expected_rank_order",
    "fetch_tuples",
    "has_null_support",
    "most_probable_key_order",
    "most_probable_world",
    "mutually_exclusive",
    "prf_e_order",
    "presence_probability",
    "sample_world",
    "spill_relation",
    "value_in_world",
    "world_count",
    "world_overlap",
]
