"""JSON serialization of probabilistic relations.

A portable, human-readable interchange format so datasets can be stored,
diffed and shared.  The format is self-describing:

.. code-block:: json

    {
      "name": "R3",
      "schema": ["name", "job"],
      "xtuples": [
        {
          "id": "t31",
          "alternatives": [
            {"p": 0.7, "values": {"name": "John", "job": "pilot"}},
            {"p": 0.3, "values": {"name": "Johan",
                                  "job": {"pattern": "mu*"}}}
          ]
        }
      ]
    }

Value encodings:

* plain JSON scalars — certain values;
* ``null`` — the ⊥ marker;
* ``{"pattern": "mu*"}`` — a pattern value;
* ``{"dist": {"Tim": 0.6, "Tom": 0.4}, "null": 0.0}`` — a distribution
  (the ``null`` key carries explicit ⊥ mass; residual mass is implied).

Distribution outcomes are stored as strings; non-string domain values
round-trip through their ``str`` form (documented limitation — the
paper's examples are string-valued).

Two distribution encodings exist:

* the **legacy** form above (``{"dist": ...}``), which groups outcomes
  by kind and therefore loses their original iteration order;
* the **exact** form ``{"outcomes": [[outcome, p], ...]}`` used by the
  segment files of :mod:`repro.pdb.storage` — it preserves outcome
  order bit for bit, so floating-point accumulations over a decoded
  value (Equations 4/5) reproduce the source relation's results
  exactly.  :func:`decode_value` accepts both.
"""

from __future__ import annotations

import itertools
import json
import os
from typing import Any

from repro.pdb.errors import ProbabilisticDataError, StorageError
from repro.pdb.relations import Schema, XRelation
from repro.pdb.values import NULL, PatternValue, ProbabilisticValue
from repro.pdb.xtuples import TupleAlternative, XTuple

#: Format identifier embedded in every document.
FORMAT_VERSION = 1

#: Per-process sequence distinguishing concurrent atomic writers.
_TEMP_COUNTER = itertools.count()


class SerializationError(ProbabilisticDataError):
    """Malformed document or unsupported value during (de)serialization."""


# ----------------------------------------------------------------------
# Values
# ----------------------------------------------------------------------


def encode_value(value: ProbabilisticValue) -> Any:
    """Encode one probabilistic value into its JSON form."""
    if value.is_null:
        return None
    if value.is_certain:
        outcome = value.certain_value
        if isinstance(outcome, PatternValue):
            return {"pattern": outcome.pattern}
        return outcome
    distribution: dict[str, float] = {}
    null_mass = 0.0
    patterns: dict[str, float] = {}
    for outcome, probability in value.items():
        if outcome is NULL:
            null_mass = probability
        elif isinstance(outcome, PatternValue):
            patterns[outcome.pattern] = probability
        else:
            distribution[str(outcome)] = probability
    encoded: dict[str, Any] = {"dist": distribution}
    if null_mass > 0.0:
        encoded["null"] = null_mass
    if patterns:
        encoded["patterns"] = patterns
    return encoded


def _encode_outcome(outcome: Any) -> Any:
    """One domain element of the exact (order-preserving) encoding."""
    if outcome is NULL:
        return None
    if isinstance(outcome, PatternValue):
        return {"pattern": outcome.pattern}
    if isinstance(outcome, (str, int, float, bool)):
        return outcome
    return str(outcome)


def _decode_outcome(encoded: Any) -> Any:
    if encoded is None:
        return NULL
    if isinstance(encoded, dict):
        try:
            return PatternValue(encoded["pattern"])
        except KeyError:
            raise SerializationError(
                f"unrecognized outcome document: {encoded!r}"
            ) from None
    return encoded


def encode_value_exact(value: ProbabilisticValue) -> Any:
    """Encode a value preserving the exact outcome iteration order.

    Certain values use the same compact forms as :func:`encode_value`;
    uncertain values become an ordered ``{"outcomes": [[outcome, p],
    ...]}`` list so that decoding rebuilds the distribution with
    identical iteration order — the property the out-of-core segment
    files need for bitwise-equal detection results.

    The compact certain forms apply only when the single outcome's
    probability is *exactly* 1.0: a probability one ulp below 1 is
    within tolerance (so the value still counts as certain) but must
    round-trip bit for bit, which only the ordered form preserves.
    """
    if value.is_null and value.null_probability == 1.0:
        return None
    if value.is_certain and value.probability(value.certain_value) == 1.0:
        outcome = value.certain_value
        if isinstance(outcome, PatternValue):
            return {"pattern": outcome.pattern}
        return outcome
    return {
        "outcomes": [
            [_encode_outcome(outcome), probability]
            for outcome, probability in value.items()
        ]
    }


def decode_value(encoded: Any) -> ProbabilisticValue:
    """Decode the JSON form back into a probabilistic value."""
    if encoded is None:
        return ProbabilisticValue.missing()
    if isinstance(encoded, dict):
        if "outcomes" in encoded:
            outcomes: dict[Any, float] = {}
            for outcome_doc, probability in encoded["outcomes"]:
                outcome = _decode_outcome(outcome_doc)
                if outcome in outcomes:
                    raise SerializationError(
                        f"outcome {outcome!r} listed twice"
                    )
                outcomes[outcome] = probability
            if not outcomes:
                raise SerializationError("empty distribution document")
            return ProbabilisticValue(outcomes)
        if "pattern" in encoded and "dist" not in encoded:
            return ProbabilisticValue.certain(
                PatternValue(encoded["pattern"])
            )
        if "dist" in encoded:
            outcomes: dict[Any, float] = dict(encoded["dist"])
            for pattern, probability in encoded.get(
                "patterns", {}
            ).items():
                outcomes[PatternValue(pattern)] = probability
            null_mass = encoded.get("null", 0.0)
            if null_mass:
                outcomes[NULL] = null_mass
            if not outcomes:
                raise SerializationError("empty distribution document")
            return ProbabilisticValue(outcomes)
        raise SerializationError(
            f"unrecognized value document: {encoded!r}"
        )
    return ProbabilisticValue.certain(encoded)


# ----------------------------------------------------------------------
# Tuples and relations
# ----------------------------------------------------------------------


def encode_xtuple(xtuple: XTuple, *, exact: bool = False) -> dict[str, Any]:
    """Encode one x-tuple.

    With ``exact=True`` uncertain attribute values use the
    order-preserving encoding of :func:`encode_value_exact` (the
    segment-file codec); the default keeps the legacy document form.
    """
    encode = encode_value_exact if exact else encode_value
    return {
        "id": xtuple.tuple_id,
        "alternatives": [
            {
                "p": alternative.probability,
                "values": {
                    attribute: encode(alternative.value(attribute))
                    for attribute in alternative.attributes
                },
            }
            for alternative in xtuple.alternatives
        ],
    }


def decode_xtuple(document: dict[str, Any]) -> XTuple:
    """Decode one x-tuple document."""
    try:
        tuple_id = document["id"]
        alternative_docs = document["alternatives"]
    except KeyError as missing:
        raise SerializationError(
            f"x-tuple document missing key {missing.args[0]!r}"
        ) from None
    alternatives = []
    for alternative_doc in alternative_docs:
        try:
            probability = alternative_doc["p"]
            values = alternative_doc["values"]
        except KeyError as missing:
            raise SerializationError(
                f"alternative document missing key {missing.args[0]!r}"
            ) from None
        alternatives.append(
            TupleAlternative(
                {
                    attribute: decode_value(encoded)
                    for attribute, encoded in values.items()
                },
                probability,
            )
        )
    return XTuple(tuple_id, alternatives)


def relation_to_dict(relation: XRelation) -> dict[str, Any]:
    """Encode a whole x-relation as a JSON-ready dictionary."""
    return {
        "format": FORMAT_VERSION,
        "name": relation.name,
        "schema": list(relation.schema.attributes),
        "xtuples": [encode_xtuple(xtuple) for xtuple in relation],
    }


def relation_from_dict(document: dict[str, Any]) -> XRelation:
    """Decode a dictionary document into an x-relation."""
    version = document.get("format", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {version!r}"
        )
    try:
        name = document["name"]
        schema = Schema(document["schema"])
        xtuple_docs = document["xtuples"]
    except KeyError as missing:
        raise SerializationError(
            f"relation document missing key {missing.args[0]!r}"
        ) from None
    return XRelation(
        name, schema, [decode_xtuple(doc) for doc in xtuple_docs]
    )


def dumps(relation: XRelation, *, indent: int | None = 2) -> str:
    """Serialize an x-relation to a JSON string."""
    return json.dumps(
        relation_to_dict(relation), indent=indent, ensure_ascii=False
    )


def loads(text: str) -> XRelation:
    """Deserialize an x-relation from a JSON string."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}") from error
    if not isinstance(document, dict):
        raise SerializationError("top-level JSON value must be an object")
    return relation_from_dict(document)


def write_text_atomic(path: str, text: str) -> None:
    """Write *text* to *path* so readers never see a partial file.

    The content lands in a temporary sibling first and is moved into
    place with :func:`os.replace`, so a crash mid-write leaves either
    the old file or the new one — never a truncated mix.  The temporary
    file is removed on failure.
    """
    # realpath: writing "through" a symlink must update its target (as
    # a plain open(path, "w") would), not replace the link itself.
    path = os.path.realpath(path)
    try:
        # Carry over an existing target's permissions so an atomic
        # rewrite doesn't silently change a shared file's mode.
        mode = os.stat(path).st_mode & 0o777
    except OSError:
        mode = None  # fresh file: the kernel applies the umask below
    # pid + per-process counter make the name unique among live
    # writers (threads included), so the EXCL open can only collide
    # with a stale leftover of a crashed earlier process — never with
    # a temp file another writer is still filling.
    temp_path = f"{path}.{os.getpid()}.{next(_TEMP_COUNTER)}.tmp"
    flags = os.O_CREAT | os.O_WRONLY | os.O_EXCL
    try:
        descriptor = os.open(temp_path, flags, 0o666)
    except FileExistsError:
        os.unlink(temp_path)  # stale leftover of a crashed writer
        descriptor = os.open(temp_path, flags, 0o666)
    try:
        if mode is not None:
            os.chmod(temp_path, mode)
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def dump(relation: XRelation, path: str, *, indent: int | None = 2) -> None:
    """Write an x-relation to a JSON file (atomically).

    The document is written to a temporary file in the target directory
    and renamed over *path*, so a crash mid-dump can never leave a
    truncated relation on disk.
    """
    write_text_atomic(path, dumps(relation, indent=indent))


def load(path: str) -> XRelation:
    """Read an x-relation from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return loads(handle.read())


def open_store(path: str, **store_options):
    """Open an on-disk relation as the matching storage backend.

    A directory is opened as the out-of-core store class its manifest
    declares — row-JSONL directories as a
    :class:`~repro.pdb.storage.SpillingXTupleStore`, columnar ones
    (``spill_relation(layout="columnar")``) as a
    :class:`~repro.pdb.storage.ColumnarXTupleStore` (``store_options``
    — e.g. ``page_size`` / ``max_pages`` — are forwarded); a file is
    read fully via :func:`load` into an in-memory
    :class:`~repro.pdb.relations.XRelation`.  Both returns satisfy the
    :class:`~repro.pdb.storage.XTupleStore` protocol the detection
    pipeline consumes, and detection over a spilled store is bitwise
    identical to the in-memory run (the exact value codec preserves
    outcome order and probability bits).

    >>> import tempfile, os.path
    >>> from repro.pdb.relations import XRelation
    >>> from repro.pdb.xtuples import TupleAlternative, XTuple
    >>> relation = XRelation("R", ("name",), [
    ...     XTuple(f"t{i}", (TupleAlternative({"name": n}, 1.0),))
    ...     for i, n in enumerate(["anna", "anne", "bob"])])
    >>> root = tempfile.mkdtemp()
    >>> store = relation.spill(os.path.join(root, "people"),
    ...                        page_size=2, max_pages=2)
    >>> reopened = open_store(os.path.join(root, "people"),
    ...                       page_size=2, max_pages=2)
    >>> len(reopened), reopened.tuple_ids == relation.tuple_ids
    (3, True)
    >>> reopened.get("t1").alternatives[0].value("name").certain_value
    'anne'
    >>> reopened.materialize().tuple_ids
    ('t0', 't1', 't2')
    """
    from repro.pdb.storage.columnar import (
        COLUMNAR_LAYOUT,
        ColumnarXTupleStore,
    )
    from repro.pdb.storage.spill import MANIFEST_NAME, SpillingXTupleStore

    if os.path.isdir(path):
        # The manifest's layout marker picks the store class; malformed
        # or missing manifests fall through to the row loader, whose
        # errors name the real problem.
        layout = "rows"
        try:
            with open(
                os.path.join(path, MANIFEST_NAME), encoding="utf-8"
            ) as handle:
                layout = json.load(handle).get("layout", "rows")
        except (OSError, json.JSONDecodeError):
            pass
        if layout == COLUMNAR_LAYOUT:
            return ColumnarXTupleStore(path, **store_options)
        return SpillingXTupleStore(path, **store_options)
    if not os.path.exists(path):
        raise StorageError(
            f"no relation file or store directory at {path!r}"
        )
    if store_options:
        raise TypeError(
            "store options apply only to spilled store directories, "
            f"but {path!r} is a plain relation file"
        )
    return load(path)
