"""JSON serialization of probabilistic relations.

A portable, human-readable interchange format so datasets can be stored,
diffed and shared.  The format is self-describing:

.. code-block:: json

    {
      "name": "R3",
      "schema": ["name", "job"],
      "xtuples": [
        {
          "id": "t31",
          "alternatives": [
            {"p": 0.7, "values": {"name": "John", "job": "pilot"}},
            {"p": 0.3, "values": {"name": "Johan",
                                  "job": {"pattern": "mu*"}}}
          ]
        }
      ]
    }

Value encodings:

* plain JSON scalars — certain values;
* ``null`` — the ⊥ marker;
* ``{"pattern": "mu*"}`` — a pattern value;
* ``{"dist": {"Tim": 0.6, "Tom": 0.4}, "null": 0.0}`` — a distribution
  (the ``null`` key carries explicit ⊥ mass; residual mass is implied).

Distribution outcomes are stored as strings; non-string domain values
round-trip through their ``str`` form (documented limitation — the
paper's examples are string-valued).
"""

from __future__ import annotations

import json
from typing import Any

from repro.pdb.errors import ProbabilisticDataError
from repro.pdb.relations import Schema, XRelation
from repro.pdb.values import NULL, PatternValue, ProbabilisticValue
from repro.pdb.xtuples import TupleAlternative, XTuple

#: Format identifier embedded in every document.
FORMAT_VERSION = 1


class SerializationError(ProbabilisticDataError):
    """Malformed document or unsupported value during (de)serialization."""


# ----------------------------------------------------------------------
# Values
# ----------------------------------------------------------------------


def encode_value(value: ProbabilisticValue) -> Any:
    """Encode one probabilistic value into its JSON form."""
    if value.is_null:
        return None
    if value.is_certain:
        outcome = value.certain_value
        if isinstance(outcome, PatternValue):
            return {"pattern": outcome.pattern}
        return outcome
    distribution: dict[str, float] = {}
    null_mass = 0.0
    patterns: dict[str, float] = {}
    for outcome, probability in value.items():
        if outcome is NULL:
            null_mass = probability
        elif isinstance(outcome, PatternValue):
            patterns[outcome.pattern] = probability
        else:
            distribution[str(outcome)] = probability
    encoded: dict[str, Any] = {"dist": distribution}
    if null_mass > 0.0:
        encoded["null"] = null_mass
    if patterns:
        encoded["patterns"] = patterns
    return encoded


def decode_value(encoded: Any) -> ProbabilisticValue:
    """Decode the JSON form back into a probabilistic value."""
    if encoded is None:
        return ProbabilisticValue.missing()
    if isinstance(encoded, dict):
        if "pattern" in encoded and "dist" not in encoded:
            return ProbabilisticValue.certain(
                PatternValue(encoded["pattern"])
            )
        if "dist" in encoded:
            outcomes: dict[Any, float] = dict(encoded["dist"])
            for pattern, probability in encoded.get(
                "patterns", {}
            ).items():
                outcomes[PatternValue(pattern)] = probability
            null_mass = encoded.get("null", 0.0)
            if null_mass:
                outcomes[NULL] = null_mass
            if not outcomes:
                raise SerializationError("empty distribution document")
            return ProbabilisticValue(outcomes)
        raise SerializationError(
            f"unrecognized value document: {encoded!r}"
        )
    return ProbabilisticValue.certain(encoded)


# ----------------------------------------------------------------------
# Tuples and relations
# ----------------------------------------------------------------------


def encode_xtuple(xtuple: XTuple) -> dict[str, Any]:
    """Encode one x-tuple."""
    return {
        "id": xtuple.tuple_id,
        "alternatives": [
            {
                "p": alternative.probability,
                "values": {
                    attribute: encode_value(alternative.value(attribute))
                    for attribute in alternative.attributes
                },
            }
            for alternative in xtuple.alternatives
        ],
    }


def decode_xtuple(document: dict[str, Any]) -> XTuple:
    """Decode one x-tuple document."""
    try:
        tuple_id = document["id"]
        alternative_docs = document["alternatives"]
    except KeyError as missing:
        raise SerializationError(
            f"x-tuple document missing key {missing.args[0]!r}"
        ) from None
    alternatives = []
    for alternative_doc in alternative_docs:
        try:
            probability = alternative_doc["p"]
            values = alternative_doc["values"]
        except KeyError as missing:
            raise SerializationError(
                f"alternative document missing key {missing.args[0]!r}"
            ) from None
        alternatives.append(
            TupleAlternative(
                {
                    attribute: decode_value(encoded)
                    for attribute, encoded in values.items()
                },
                probability,
            )
        )
    return XTuple(tuple_id, alternatives)


def relation_to_dict(relation: XRelation) -> dict[str, Any]:
    """Encode a whole x-relation as a JSON-ready dictionary."""
    return {
        "format": FORMAT_VERSION,
        "name": relation.name,
        "schema": list(relation.schema.attributes),
        "xtuples": [encode_xtuple(xtuple) for xtuple in relation],
    }


def relation_from_dict(document: dict[str, Any]) -> XRelation:
    """Decode a dictionary document into an x-relation."""
    version = document.get("format", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {version!r}"
        )
    try:
        name = document["name"]
        schema = Schema(document["schema"])
        xtuple_docs = document["xtuples"]
    except KeyError as missing:
        raise SerializationError(
            f"relation document missing key {missing.args[0]!r}"
        ) from None
    return XRelation(
        name, schema, [decode_xtuple(doc) for doc in xtuple_docs]
    )


def dumps(relation: XRelation, *, indent: int | None = 2) -> str:
    """Serialize an x-relation to a JSON string."""
    return json.dumps(
        relation_to_dict(relation), indent=indent, ensure_ascii=False
    )


def loads(text: str) -> XRelation:
    """Deserialize an x-relation from a JSON string."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}") from error
    if not isinstance(document, dict):
        raise SerializationError("top-level JSON value must be an object")
    return relation_from_dict(document)


def dump(relation: XRelation, path: str, *, indent: int | None = 2) -> None:
    """Write an x-relation to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(relation, indent=indent))


def load(path: str) -> XRelation:
    """Read an x-relation from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return loads(handle.read())
