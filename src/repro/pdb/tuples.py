"""Probabilistic tuples for models *without* attribute dependencies.

Section IV-A of the paper considers probabilistic relational models in
which every attribute value is an independent random variable (e.g. the
model of Barbará et al. [3]).  A :class:`ProbabilisticTuple` therefore
carries

* one :class:`~repro.pdb.values.ProbabilisticValue` per attribute
  (attribute-value-level uncertainty), and
* a membership probability ``p(t) ∈ (0, 1]`` (tuple-level uncertainty).

The paper's key observation (Section IV) is that tuple membership results
from the *application context* and must **not** influence duplicate
detection — only attribute-level uncertainty matters.  The matching layer
therefore never reads :attr:`ProbabilisticTuple.probability`; it is kept
here because it is part of the data model and is used by possible-world
enumeration.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Mapping
from typing import Any

from repro.pdb.errors import InvalidProbabilityError, UnknownAttributeError
from repro.pdb.values import NULL, ProbabilisticValue


def _coerce_value(raw: Any) -> ProbabilisticValue:
    """Accept plain values, mappings and ready-made probabilistic values."""
    if isinstance(raw, ProbabilisticValue):
        return raw
    if isinstance(raw, Mapping):
        return ProbabilisticValue(raw)
    if raw is None:
        return ProbabilisticValue.missing()
    return ProbabilisticValue.certain(raw)


class ProbabilisticTuple:
    """One row of a probabilistic relation in the independence model.

    Parameters
    ----------
    tuple_id:
        Identifier unique within the relation (e.g. ``"t11"``).
    values:
        Mapping from attribute name to the attribute value.  Values may be
        given as plain Python objects (interpreted as certain), mappings
        ``{value: probability}`` or :class:`ProbabilisticValue` instances.
        ``None`` is interpreted as certainly-missing (⊥).
    probability:
        The membership probability ``p(t)``; defaults to 1.0.
    """

    __slots__ = ("tuple_id", "_values", "probability")

    def __init__(
        self,
        tuple_id: str,
        values: Mapping[str, Any],
        probability: float = 1.0,
    ) -> None:
        probability = float(probability)
        if not 0.0 < probability <= 1.0:
            raise InvalidProbabilityError(
                f"p({tuple_id}) must lie in (0, 1], got {probability}"
            )
        self.tuple_id = str(tuple_id)
        self._values: dict[str, ProbabilisticValue] = {
            str(attr): _coerce_value(raw) for attr, raw in values.items()
        }
        self.probability = probability

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in declaration order."""
        return tuple(self._values.keys())

    def value(self, attribute: str) -> ProbabilisticValue:
        """The (possibly uncertain) value of *attribute*."""
        try:
            return self._values[attribute]
        except KeyError:
            raise UnknownAttributeError(attribute) from None

    def __getitem__(self, attribute: str) -> ProbabilisticValue:
        return self.value(attribute)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._values

    def values(self) -> Mapping[str, ProbabilisticValue]:
        """Read-only view of the attribute mapping."""
        return dict(self._values)

    @property
    def is_maybe(self) -> bool:
        """Whether membership of the tuple itself is uncertain."""
        return self.probability < 1.0

    @property
    def is_certain(self) -> bool:
        """Whether every attribute value is certain."""
        return all(value.is_certain for value in self._values.values())

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def possible_assignments(
        self,
    ) -> Iterator[tuple[dict[str, Any], float]]:
        """Enumerate all joint value assignments with their probabilities.

        Because attributes are independent (Section IV-A), the joint
        probability of an assignment is the product of the per-attribute
        probabilities.  The tuple membership probability is *not* folded
        in; callers that enumerate worlds multiply it themselves.

        Yields
        ------
        tuple
            ``(assignment, probability)`` where *assignment* maps each
            attribute to one concrete outcome (possibly :data:`NULL`).
        """
        attrs = list(self._values.keys())
        outcome_lists = [list(self._values[a].items()) for a in attrs]
        for combo in itertools.product(*outcome_lists):
            assignment = {attr: value for attr, (value, _) in zip(attrs, combo)}
            prob = 1.0
            for _, outcome_prob in combo:
                prob *= outcome_prob
            yield assignment, prob

    def assignment_count(self) -> int:
        """Number of distinct joint assignments (product of support sizes)."""
        count = 1
        for value in self._values.values():
            count *= value.alternative_count()
        return count

    def most_probable_assignment(self) -> dict[str, Any]:
        """The modal joint assignment (independent ⇒ per-attribute modes)."""
        return {
            attr: value.most_probable() for attr, value in self._values.items()
        }

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------

    def map_values(self, attribute: str, fn) -> "ProbabilisticTuple":
        """Return a copy with *fn* applied to every outcome of *attribute*."""
        updated = dict(self._values)
        updated[attribute] = self.value(attribute).map(fn)
        return ProbabilisticTuple(self.tuple_id, updated, self.probability)

    def with_probability(self, probability: float) -> "ProbabilisticTuple":
        """Return a copy with a different membership probability."""
        return ProbabilisticTuple(self.tuple_id, self._values, probability)

    # ------------------------------------------------------------------
    # Value protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProbabilisticTuple):
            return NotImplemented
        return (
            self.tuple_id == other.tuple_id
            and self._values == other._values
            and abs(self.probability - other.probability) <= 1e-9
        )

    def __hash__(self) -> int:
        return hash((self.tuple_id, frozenset(self._values.items())))

    def __repr__(self) -> str:
        body = ", ".join(
            f"{attr}={value.pretty()}" for attr, value in self._values.items()
        )
        return (
            f"ProbabilisticTuple({self.tuple_id}: {body}, "
            f"p={self.probability:g})"
        )

    def pretty(self) -> str:
        """Row rendering close to the paper's Figure 4."""
        cells = [value.pretty() for value in self._values.values()]
        return f"{self.tuple_id} | " + " | ".join(cells) + (
            f" | p={self.probability:g}"
        )


def has_null_support(tuple_: ProbabilisticTuple, attribute: str) -> bool:
    """Whether ⊥ has positive probability for *attribute* of *tuple_*."""
    return tuple_.value(attribute).probability(NULL) > 0.0
