"""Minimal ULDB-style lineage for derived x-tuples.

The paper's conclusion: "in the ULDB model dependencies between two or
more x-tuple sets can be realized by the concept of lineage" [29, 33].
Result alternatives produced by duplicate detection / fusion depend on
*which source alternatives are true*; lineage records that dependency so
result probabilities stay consistent with the source possible worlds.

We implement the fragment the paper's outlook needs:

* :class:`LineageAtom` — "source x-tuple ``t`` took alternative ``i``"
  (or, with ``alternative_index=None``, "``t`` is absent");
* conjunctive lineage per result alternative
  (:class:`Lineage` = a set of atoms, all of which must hold);
* evaluation against a possible world and probability computation under
  tuple independence.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.pdb.worlds import PossibleWorld
from repro.pdb.xtuples import XTuple


@dataclass(frozen=True)
class LineageAtom:
    """One source condition: x-tuple *tuple_id* resolved to an alternative.

    ``alternative_index is None`` denotes absence of the (maybe) tuple.
    """

    tuple_id: str
    alternative_index: int | None

    def holds_in(self, world: PossibleWorld) -> bool:
        """Whether the condition is true in *world*."""
        return world.alternative_index(self.tuple_id) == (
            self.alternative_index
        )

    def probability(self, sources: Mapping[str, XTuple]) -> float:
        """Marginal probability of the atom under independence."""
        xtuple = sources[self.tuple_id]
        if self.alternative_index is None:
            return xtuple.absence_probability
        return xtuple.alternatives[self.alternative_index].probability

    def __repr__(self) -> str:
        if self.alternative_index is None:
            return f"¬{self.tuple_id}"
        return f"{self.tuple_id}[{self.alternative_index}]"


class Lineage:
    """A conjunction of lineage atoms (the ULDB base case).

    Atoms over the same source tuple must agree (a conjunction demanding
    two different alternatives of one x-tuple is unsatisfiable and is
    rejected at construction).
    """

    __slots__ = ("_atoms",)

    def __init__(self, atoms: Iterable[LineageAtom] = ()) -> None:
        by_tuple: dict[str, LineageAtom] = {}
        for atom in atoms:
            existing = by_tuple.get(atom.tuple_id)
            if existing is not None and existing != atom:
                raise ValueError(
                    f"contradictory lineage: {existing} vs {atom}"
                )
            by_tuple[atom.tuple_id] = atom
        self._atoms: tuple[LineageAtom, ...] = tuple(by_tuple.values())

    @property
    def atoms(self) -> tuple[LineageAtom, ...]:
        """The conjunction's atoms (one per source tuple)."""
        return self._atoms

    @property
    def is_empty(self) -> bool:
        """Whether the lineage is unconditional (always true)."""
        return not self._atoms

    def holds_in(self, world: PossibleWorld) -> bool:
        """Whether every atom holds in *world*."""
        return all(atom.holds_in(world) for atom in self._atoms)

    def probability(self, sources: Mapping[str, XTuple]) -> float:
        """Joint probability under x-tuple independence."""
        probability = 1.0
        for atom in self._atoms:
            probability *= atom.probability(sources)
        return probability

    def conjoin(self, other: "Lineage") -> "Lineage":
        """The conjunction of two lineages (raises if contradictory)."""
        return Lineage(self._atoms + other._atoms)

    def mentions(self, tuple_id: str) -> bool:
        """Whether the lineage constrains *tuple_id*."""
        return any(atom.tuple_id == tuple_id for atom in self._atoms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Lineage):
            return NotImplemented
        return frozenset(self._atoms) == frozenset(other._atoms)

    def __hash__(self) -> int:
        return hash(frozenset(self._atoms))

    def __repr__(self) -> str:
        if not self._atoms:
            return "Lineage(⊤)"
        return "Lineage(" + " ∧ ".join(map(repr, self._atoms)) + ")"


def mutually_exclusive(left: Lineage, right: Lineage) -> bool:
    """Whether two lineages can never hold in the same world.

    True when they demand different alternatives of a shared source
    tuple — the structural condition behind the paper's "mutually
    exclusive sets of tuples".  (Disjoint lineages are *not* exclusive.)
    """
    left_map = {atom.tuple_id: atom for atom in left.atoms}
    for atom in right.atoms:
        other = left_map.get(atom.tuple_id)
        if other is not None and other != atom:
            return True
    return False
