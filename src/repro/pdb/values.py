"""Uncertain attribute values: discrete distributions over a domain plus ⊥.

This module implements the attribute-value-level uncertainty of the paper
(Section IV).  An uncertain attribute value is a discrete probability
distribution over domain elements.  Probability mass may be missing: the
residual mass is interpreted as *non-existence* of the property, written ⊥
in the paper and represented here by the :data:`NULL` sentinel.

Example from the paper (Figure 4): the ``job`` value of tuple ``t11`` is
``{machinist: 0.7, mechanic: 0.2}`` — "the person represented by tuple t11
is jobless with a probability of 10%", i.e. ``P(⊥) = 0.1``.

Pattern values such as ``mu*`` (Section IV-B) — a uniform distribution over
all domain elements matching a prefix pattern — are supported through
:class:`PatternValue` together with :meth:`ProbabilisticValue.expand_patterns`.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Iterator, Mapping
from typing import Any

from repro.pdb.errors import (
    EmptyDistributionError,
    InvalidProbabilityError,
)

#: Absolute tolerance used for all probability-mass arithmetic.
PROBABILITY_TOLERANCE = 1e-9


class _NonExistent:
    """Singleton sentinel for the paper's ⊥ ("the property does not exist").

    ⊥ is a first-class domain element: two non-existent values are maximally
    similar (they denote the same real-world fact), while ⊥ is maximally
    dissimilar to every existing value (Section IV-A).
    """

    _instance: "_NonExistent | None" = None

    def __new__(cls) -> "_NonExistent":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __reduce__(self) -> tuple[type, tuple[()]]:
        return (_NonExistent, ())

    def __hash__(self) -> int:
        return hash("_repro_pdb_non_existent_")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NonExistent)


#: The unique non-existence marker (the paper's ⊥).
NULL = _NonExistent()


class PatternValue:
    """A compact stand-in for a uniform distribution over a value family.

    The ULDB model cannot enumerate large or infinite alternative sets, so
    the paper represents e.g. "some job starting with ``mu``" as the pattern
    value ``mu*``.  A :class:`PatternValue` stores the prefix and can be
    *expanded* against a lexicon into an explicit uniform distribution.

    Parameters
    ----------
    pattern:
        The pattern string.  Only trailing-``*`` prefix patterns are
        supported, mirroring the paper's ``mu*`` example.  A pattern without
        ``*`` matches exactly itself.
    """

    __slots__ = ("pattern", "_prefix")

    def __init__(self, pattern: str) -> None:
        if not isinstance(pattern, str) or not pattern:
            raise ValueError("pattern must be a non-empty string")
        self.pattern = pattern
        self._prefix = pattern[:-1] if pattern.endswith("*") else pattern

    @property
    def prefix(self) -> str:
        """The fixed prefix of the pattern (``mu`` for ``mu*``)."""
        return self._prefix

    def is_wildcard(self) -> bool:
        """Whether the pattern ends in ``*`` and thus denotes a family."""
        return self.pattern.endswith("*")

    def matches(self, candidate: Any) -> bool:
        """Return ``True`` if *candidate* belongs to the pattern family."""
        if not isinstance(candidate, str):
            return False
        if self.is_wildcard():
            return candidate.startswith(self._prefix)
        return candidate == self.pattern

    def expansions(self, lexicon: Iterable[str]) -> list[str]:
        """All lexicon entries matched by this pattern, in lexicon order."""
        return [word for word in lexicon if self.matches(word)]

    def __repr__(self) -> str:
        return f"PatternValue({self.pattern!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PatternValue) and other.pattern == self.pattern

    def __hash__(self) -> int:
        return hash(("PatternValue", self.pattern))


def _validate_probability(prob: float, *, what: str) -> float:
    prob = float(prob)
    if math.isnan(prob) or prob <= 0.0 or prob > 1.0 + PROBABILITY_TOLERANCE:
        raise InvalidProbabilityError(
            f"{what} must lie in (0, 1], got {prob!r}"
        )
    return min(prob, 1.0)


class ProbabilisticValue:
    """An immutable discrete probability distribution over domain values.

    The distribution may include :data:`NULL` explicitly; any probability
    mass not accounted for by the given outcomes is assigned to
    :data:`NULL` implicitly, following the paper's reading of Figure 4.

    Instances behave as values: they are hashable, comparable for equality
    and safe to share between tuples.

    Parameters
    ----------
    outcomes:
        Mapping from domain element to probability.  Probabilities must lie
        in ``(0, 1]`` and sum to at most 1 (within tolerance).
    """

    __slots__ = ("_dist", "_hash")

    def __init__(self, outcomes: Mapping[Any, float]) -> None:
        if not outcomes:
            raise EmptyDistributionError(
                "a probabilistic value needs at least one outcome"
            )
        dist: dict[Any, float] = {}
        total = 0.0
        for value, prob in outcomes.items():
            prob = _validate_probability(prob, what=f"P({value!r})")
            if value in dist:
                raise InvalidProbabilityError(
                    f"outcome {value!r} listed twice"
                )
            dist[value] = prob
            total += prob
        if total > 1.0 + PROBABILITY_TOLERANCE:
            raise InvalidProbabilityError(
                f"total probability mass {total} exceeds 1"
            )
        residual = 1.0 - total
        if residual > PROBABILITY_TOLERANCE:
            dist[NULL] = dist.get(NULL, 0.0) + residual
        self._dist: dict[Any, float] = dist
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def certain(cls, value: Any) -> "ProbabilisticValue":
        """A distribution with all mass on a single domain element."""
        return cls({value: 1.0})

    @classmethod
    def missing(cls) -> "ProbabilisticValue":
        """The certainly-non-existent value (all mass on ⊥)."""
        return cls({NULL: 1.0})

    @classmethod
    def uniform(cls, values: Iterable[Any]) -> "ProbabilisticValue":
        """A uniform distribution over *values*."""
        values = list(values)
        if not values:
            raise EmptyDistributionError("uniform() over empty value set")
        share = 1.0 / len(values)
        return cls({value: share for value in values})

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[Any, float]]
    ) -> "ProbabilisticValue":
        """Build from ``(value, probability)`` pairs."""
        return cls(dict(pairs))

    @classmethod
    def from_pattern(
        cls, pattern: str, lexicon: Iterable[str]
    ) -> "ProbabilisticValue":
        """Expand a prefix pattern against *lexicon* into a uniform value.

        Mirrors the paper's ``mu*`` example: a uniform distribution over all
        lexicon entries starting with the prefix.
        """
        matches = PatternValue(pattern).expansions(lexicon)
        if not matches:
            raise EmptyDistributionError(
                f"pattern {pattern!r} matches nothing in the lexicon"
            )
        return cls.uniform(matches)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def items(self) -> Iterator[tuple[Any, float]]:
        """Iterate over ``(value, probability)`` pairs (⊥ included)."""
        return iter(self._dist.items())

    @property
    def support(self) -> tuple[Any, ...]:
        """All outcomes with positive probability, ⊥ included."""
        return tuple(self._dist.keys())

    @property
    def existing_support(self) -> tuple[Any, ...]:
        """All outcomes except ⊥."""
        return tuple(v for v in self._dist if v is not NULL)

    def probability(self, value: Any) -> float:
        """``P(X = value)``; 0.0 for outcomes outside the support."""
        return self._dist.get(value, 0.0)

    @property
    def null_probability(self) -> float:
        """``P(X = ⊥)`` — the probability the property does not exist."""
        return self._dist.get(NULL, 0.0)

    @property
    def is_certain(self) -> bool:
        """Whether all probability mass sits on a single outcome."""
        return len(self._dist) == 1

    @property
    def is_null(self) -> bool:
        """Whether the value is certainly non-existent."""
        return self.is_certain and NULL in self._dist

    @property
    def certain_value(self) -> Any:
        """The single outcome of a certain value.

        Raises
        ------
        ValueError
            If the value is uncertain.
        """
        if not self.is_certain:
            raise ValueError(f"{self!r} is not certain")
        return next(iter(self._dist))

    def most_probable(self) -> Any:
        """The modal outcome (ties broken by insertion order)."""
        best_value, best_prob = None, -1.0
        for value, prob in self._dist.items():
            if prob > best_prob + PROBABILITY_TOLERANCE:
                best_value, best_prob = value, prob
        return best_value

    def entropy(self) -> float:
        """Shannon entropy in bits; 0 for certain values."""
        return -sum(p * math.log2(p) for p in self._dist.values() if p > 0.0)

    def alternative_count(self) -> int:
        """Number of outcomes in the support (⊥ included)."""
        return len(self._dist)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any]) -> "ProbabilisticValue":
        """Apply *fn* to every existing outcome, merging collisions.

        ⊥ is preserved untouched.  Used by data preparation to standardize
        every alternative of an uncertain value at once.
        """
        merged: dict[Any, float] = {}
        for value, prob in self._dist.items():
            image = value if value is NULL else fn(value)
            merged[image] = merged.get(image, 0.0) + prob
        return ProbabilisticValue(merged)

    def filter(self, predicate: Callable[[Any], bool]) -> "ProbabilisticValue":
        """Condition the distribution on ``predicate(outcome)`` being true.

        Probabilities are renormalized (conditioning / scaling, [32, 33]).

        Raises
        ------
        EmptyDistributionError
            If no outcome satisfies the predicate.
        """
        kept = {v: p for v, p in self._dist.items() if predicate(v)}
        if not kept:
            raise EmptyDistributionError("conditioning removed every outcome")
        total = sum(kept.values())
        return ProbabilisticValue({v: p / total for v, p in kept.items()})

    def expand_patterns(self, lexicon: Iterable[str]) -> "ProbabilisticValue":
        """Replace every :class:`PatternValue` outcome by its expansion.

        The pattern's probability mass is divided uniformly among the
        lexicon entries it matches, mirroring the paper's reading of
        ``mu*`` as "a uniform distribution over all possible jobs starting
        with the characters 'mu'".
        """
        lexicon = list(lexicon)
        merged: dict[Any, float] = {}
        for value, prob in self._dist.items():
            if isinstance(value, PatternValue):
                matches = value.expansions(lexicon)
                if not matches:
                    raise EmptyDistributionError(
                        f"pattern {value.pattern!r} matches nothing"
                    )
                share = prob / len(matches)
                for word in matches:
                    merged[word] = merged.get(word, 0.0) + share
            else:
                merged[value] = merged.get(value, 0.0) + prob
        return ProbabilisticValue(merged)

    # ------------------------------------------------------------------
    # Probabilistic comparison (Equations 4 and 5 of the paper)
    # ------------------------------------------------------------------

    def equality_probability(self, other: "ProbabilisticValue") -> float:
        """Equation 4: ``P(a1 = a2)`` under independence.

        The probability that two independently drawn values are equal,
        with ⊥ = ⊥ counting as equal (same real-world fact).
        """
        total = 0.0
        for value, prob in self._dist.items():
            other_prob = other.probability(value)
            if other_prob > 0.0:
                total += prob * other_prob
        return total

    def expected_similarity(
        self,
        other: "ProbabilisticValue",
        similarity: Callable[[Any, Any], float],
    ) -> float:
        """Equation 5: expected similarity over the joint distribution.

        ``sim(a1,a2) = Σ_{d1} Σ_{d2} P(a1=d1) · P(a2=d2) · sim(d1,d2)``
        with the paper's ⊥ semantics handled here so that *similarity*
        only ever sees existing domain elements:

        * ``sim(⊥, ⊥) = 1``
        * ``sim(a, ⊥) = sim(⊥, a) = 0`` for every existing ``a``.
        """
        total = 0.0
        for left_value, left_prob in self._dist.items():
            for right_value, right_prob in other._dist.items():
                weight = left_prob * right_prob
                if left_value is NULL and right_value is NULL:
                    total += weight
                elif left_value is NULL or right_value is NULL:
                    continue
                else:
                    total += weight * similarity(left_value, right_value)
        return total

    # ------------------------------------------------------------------
    # Value protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProbabilisticValue):
            return NotImplemented
        if self._dist.keys() != other._dist.keys():
            return False
        return all(
            abs(prob - other._dist[value]) <= PROBABILITY_TOLERANCE
            for value, prob in self._dist.items()
        )

    def __hash__(self) -> int:
        if self._hash is None:
            rounded = frozenset(
                (value, round(prob, 9)) for value, prob in self._dist.items()
            )
            self._hash = hash(rounded)
        return self._hash

    def __repr__(self) -> str:
        if self.is_certain:
            return f"ProbabilisticValue.certain({next(iter(self._dist))!r})"
        body = ", ".join(
            f"{value!r}: {prob:g}" for value, prob in self._dist.items()
        )
        return f"ProbabilisticValue({{{body}}})"

    def pretty(self) -> str:
        """Compact human-readable rendering matching the paper's figures."""
        if self.is_certain:
            value = next(iter(self._dist))
            return "⊥" if value is NULL else str(value)
        body = ", ".join(
            f"{'⊥' if value is NULL else value}: {prob:g}"
            for value, prob in self._dist.items()
        )
        return "{" + body + "}"
