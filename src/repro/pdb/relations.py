"""Probabilistic relations and x-relations.

A relation bundles a :class:`Schema` with a sequence of tuples.  Two
relation flavours mirror the paper's two model families:

* :class:`ProbabilisticRelation` — tuples of the independence model
  (Section IV-A, Figure 4);
* :class:`XRelation` — x-tuples of the ULDB model (Section IV-B,
  Figure 5).  "Relations containing one or more x-tuples are called
  x-relations."

Both support union (the paper's ℛ34 = ℛ3 ∪ ℛ4 integration scenario),
lookup by tuple id and pretty printing that matches the figures.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Any

from repro.pdb.errors import (
    DuplicateTupleIdError,
    SchemaMismatchError,
    UnknownAttributeError,
)
from repro.pdb.tuples import ProbabilisticTuple
from repro.pdb.xtuples import XTuple


class Schema:
    """An ordered list of attribute names.

    The paper's examples use ``(name, job)``; domains are implicit.  The
    schema is a value object: relations with equal schemas can be unioned.
    """

    __slots__ = ("_attributes",)

    def __init__(self, attributes: Iterable[str]) -> None:
        attrs = tuple(str(a) for a in attributes)
        if not attrs:
            raise SchemaMismatchError("a schema needs at least one attribute")
        if len(set(attrs)) != len(attrs):
            raise SchemaMismatchError(f"duplicate attribute in {attrs}")
        self._attributes = attrs

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attribute names in order."""
        return self._attributes

    def index_of(self, attribute: str) -> int:
        """Position of *attribute* within the schema."""
        try:
            return self._attributes.index(attribute)
        except ValueError:
            raise UnknownAttributeError(attribute) from None

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._attributes

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        return f"Schema{self._attributes!r}"


def _check_tuple_schema(schema: Schema, attributes: Sequence[str], owner: str) -> None:
    if tuple(attributes) != schema.attributes:
        raise SchemaMismatchError(
            f"tuple {owner} has attributes {tuple(attributes)!r}, "
            f"expected {schema.attributes!r}"
        )


class _BaseRelation:
    """Shared container behaviour for both relation flavours."""

    __slots__ = ("name", "schema", "_tuples", "_by_id")

    def __init__(self, name: str, schema: Schema, tuples: Iterable[Any]) -> None:
        self.name = str(name)
        self.schema = schema
        self._tuples: list[Any] = []
        self._by_id: dict[str, Any] = {}
        for item in tuples:
            self._add(item)

    def _add(self, item: Any) -> None:
        if item.tuple_id in self._by_id:
            raise DuplicateTupleIdError(
                f"tuple id {item.tuple_id!r} already present in {self.name}"
            )
        _check_tuple_schema(self.schema, item.attributes, item.tuple_id)
        self._tuples.append(item)
        self._by_id[item.tuple_id] = item

    def __iter__(self) -> Iterator[Any]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, tuple_id: str) -> bool:
        return tuple_id in self._by_id

    def get(self, tuple_id: str) -> Any:
        """Tuple lookup by id; raises ``KeyError`` for unknown ids."""
        return self._by_id[tuple_id]

    def fetch(self, tuple_ids: Iterable[str]) -> dict[str, Any]:
        """Batch lookup of a working set (the storage-backend protocol).

        The in-memory backend just hands out its existing tuple objects;
        out-of-core backends decode segment pages instead (see
        :mod:`repro.pdb.storage`).
        """
        by_id = self._by_id
        return {tuple_id: by_id[tuple_id] for tuple_id in tuple_ids}

    @property
    def tuple_ids(self) -> tuple[str, ...]:
        """All tuple ids in insertion order."""
        return tuple(self._by_id.keys())

    def pretty(self) -> str:
        """Figure-style rendering of the whole relation."""
        header = f"{self.name}({', '.join(self.schema.attributes)})"
        rows = [header, "-" * len(header)]
        rows.extend(item.pretty() for item in self._tuples)
        return "\n".join(rows)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"{len(self._tuples)} tuples)"
        )


class ProbabilisticRelation(_BaseRelation):
    """A relation of :class:`ProbabilisticTuple` rows (independence model)."""

    def __init__(
        self,
        name: str,
        schema: Schema | Iterable[str],
        tuples: Iterable[ProbabilisticTuple] = (),
    ) -> None:
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        super().__init__(name, schema, tuples)

    @property
    def tuples(self) -> tuple[ProbabilisticTuple, ...]:
        """All tuples in insertion order."""
        return tuple(self._tuples)

    def union(
        self, other: "ProbabilisticRelation", name: str | None = None
    ) -> "ProbabilisticRelation":
        """Union of two relations over the same schema.

        Tuple ids must not collide — the paper's integration scenario
        unions autonomous sources whose ids are distinct by construction.
        """
        if self.schema != other.schema:
            raise SchemaMismatchError(
                f"cannot union {self.name} and {other.name}: schemas differ"
            )
        return ProbabilisticRelation(
            name or f"{self.name}∪{other.name}",
            self.schema,
            list(self._tuples) + list(other._tuples),
        )

    def to_x_relation(self, name: str | None = None) -> "XRelation":
        """Embed into the x-tuple model (1 alternative per tuple)."""
        return XRelation(
            name or self.name,
            self.schema,
            [XTuple.from_flat(t) for t in self._tuples],
        )


class XRelation(_BaseRelation):
    """A relation of :class:`XTuple` rows (ULDB model)."""

    def __init__(
        self,
        name: str,
        schema: Schema | Iterable[str],
        xtuples: Iterable[XTuple] = (),
    ) -> None:
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        super().__init__(name, schema, xtuples)

    @property
    def xtuples(self) -> tuple[XTuple, ...]:
        """All x-tuples in insertion order."""
        return tuple(self._tuples)

    def union(self, other: "XRelation", name: str | None = None) -> "XRelation":
        """Union of two x-relations over the same schema (the paper's ℛ34)."""
        if self.schema != other.schema:
            raise SchemaMismatchError(
                f"cannot union {self.name} and {other.name}: schemas differ"
            )
        return XRelation(
            name or f"{self.name}∪{other.name}",
            self.schema,
            list(self._tuples) + list(other._tuples),
        )

    def conditioned(self, name: str | None = None) -> "XRelation":
        """Condition every x-tuple on membership (scale probs to sum 1)."""
        return XRelation(
            name or self.name,
            self.schema,
            [xt.conditioned() for xt in self._tuples],
        )

    def expanded(self, name: str | None = None) -> "XRelation":
        """Expand uncertain attribute values into certain alternatives."""
        return XRelation(
            name or self.name,
            self.schema,
            [xt.expand() for xt in self._tuples],
        )

    def alternative_count(self) -> int:
        """Total number of alternatives across all x-tuples."""
        return sum(len(xt) for xt in self._tuples)

    def spill(self, path: str, **spill_options):
        """Write this relation to an out-of-core store directory.

        Returns the opened store; keyword options (``segment_size``,
        ``page_size``, ``max_pages``, ``max_open_segments``, and
        ``layout`` — ``"rows"`` for the JSONL row store, ``"columnar"``
        for the mmap-backed columnar store with spill-time zone maps)
        are forwarded to :func:`repro.pdb.storage.spill_relation`.
        """
        from repro.pdb.storage import spill_relation

        return spill_relation(self, path, **spill_options)
