"""Mutable session view + append-only journal for incremental detection.

A long-running detection session sees *deltas* — batches of new,
changed or retracted x-tuples arriving against a large, already-planned
base — but every storage backend in this package is read-only by
contract (forked workers share stores and only ever read).  This module
supplies the two pieces that reconcile the contracts:

* :class:`SessionStore` — a mutable *overlay* over any read-only
  :class:`~repro.pdb.storage.base.XTupleStore` (in-memory relation,
  spilled store, multi-source view).  Upserts of existing ids replace
  the base tuple in place, deletes hide it, and genuinely new ids are
  appended after the base — so the store's iteration order equals the
  order of the materialized union ``base ⊎ deltas``, which is what
  keeps incremental decisions bitwise-comparable to a from-scratch run
  over that union.  The view satisfies the full read protocol, so
  planning, fingerprinting and execution consume it like any relation.
  When the base is itself source-tagged (a
  :class:`~repro.pdb.storage.multi.MultiSourceStore`), the view
  forwards ``source_of``/``source_names`` and tags appended tuples with
  :data:`DELTA_SOURCE` — the ℛ1/ℛ2 consolidation scenario with the
  delta as the second source.

* :class:`SessionJournal` — the appendable on-disk form of a session: a
  JSONL journal of upsert/delete operations (appended per ingest, so a
  restart replays the exact overlay) plus an atomically-replaced
  snapshot document the service layer uses for its partition
  fingerprint index and similarity-cache entries.  Snapshot staleness
  is safe by construction: fingerprints cover the decision-relevant
  content, so a stale index simply fails to match and the refresh
  recomputes — never serves wrong retained state.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Iterator, Mapping

from repro.pdb.errors import SchemaMismatchError
from repro.pdb.io import (
    decode_xtuple,
    encode_xtuple,
    write_text_atomic,
)
from repro.pdb.storage.base import XTupleStore, project_xtuple
from repro.pdb.xtuples import XTuple

#: Source tag of tuples appended to a session (ids the base never
#: held), used when the base view is itself source-tagged.
DELTA_SOURCE = "Δ"

#: File names inside a session journal directory.
JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_NAME = "snapshot.json"


class SessionStore:
    """Mutable overlay view over a read-only x-tuple store.

    Iteration order — the order that fixes candidate-pair emission and
    therefore result order — is the base's insertion order with deleted
    ids skipped and replaced ids substituted in place, followed by
    appended ids in arrival order.  That is exactly the iteration order
    of the materialized union of the base with every applied delta, so
    detection over the view is bitwise-comparable to a from-scratch
    detection over that union.

    >>> from repro.pdb.relations import XRelation
    >>> from repro.pdb.xtuples import TupleAlternative, XTuple
    >>> def xt(t, n):
    ...     return XTuple(t, (TupleAlternative({"name": n}, 1.0),))
    >>> base = XRelation("R", ("name",), [xt("a", "anna"), xt("b", "bob")])
    >>> view = SessionStore(base)
    >>> view.upsert(xt("c", "carl"))
    >>> view.upsert(xt("b", "bert"))
    >>> view.delete("a")
    >>> [t.tuple_id for t in view], view.get("b").alternatives[0]["name"].support
    (['b', 'c'], ('bert',))
    >>> base.get("b").alternatives[0]["name"].support  # base untouched
    ('bob',)
    """

    def __init__(self, base: XTupleStore, *, name: str | None = None) -> None:
        self._base = base
        self.schema = base.schema
        self.name = name if name is not None else f"{base.name}+Δ"
        self._replaced: dict[str, XTuple] = {}
        self._added: dict[str, XTuple] = {}
        self._deleted: set[str] = set()
        self._ids_cache: tuple[str, ...] | None = None

    # ------------------------------------------------------------------
    # Mutation (the only writable surface in the storage package)
    # ------------------------------------------------------------------

    def _check_schema(self, xtuple: XTuple) -> None:
        expected = self.schema.attributes
        for alternative in xtuple.alternatives:
            if tuple(alternative.attributes) != expected:
                raise SchemaMismatchError(
                    f"x-tuple {xtuple.tuple_id!r} does not match session "
                    f"schema {expected}: alternative has "
                    f"{tuple(alternative.attributes)}"
                )

    def upsert(self, xtuple: XTuple) -> None:
        """Insert a new x-tuple, or replace the one holding its id.

        Ids the base holds are replaced *in place* (keeping their
        position in iteration order, un-hiding a previously deleted
        id); new ids append after the base in arrival order.
        """
        self._check_schema(xtuple)
        tuple_id = xtuple.tuple_id
        if tuple_id in self._added:
            self._added[tuple_id] = xtuple
            return
        if tuple_id in self._base:
            self._deleted.discard(tuple_id)
            self._replaced[tuple_id] = xtuple
            self._ids_cache = None
            return
        self._added[tuple_id] = xtuple
        self._ids_cache = None

    def delete(self, tuple_id: str) -> None:
        """Retract one x-tuple from the view (``KeyError`` if absent)."""
        if tuple_id in self._added:
            del self._added[tuple_id]
            self._ids_cache = None
            return
        if tuple_id in self._base and tuple_id not in self._deleted:
            self._deleted.add(tuple_id)
            self._replaced.pop(tuple_id, None)
            self._ids_cache = None
            return
        raise KeyError(tuple_id)

    def apply(self, operation: Mapping) -> None:
        """Apply one journal operation document (see :class:`SessionJournal`)."""
        kind = operation.get("op")
        if kind == "upsert":
            self.upsert(decode_xtuple(operation["tuple"]))
        elif kind == "delete":
            self.delete(operation["id"])
        else:
            raise ValueError(f"unknown session operation {kind!r}")

    @property
    def overlay_size(self) -> int:
        """Number of ids the overlay currently diverges from the base on."""
        return len(self._replaced) + len(self._added) + len(self._deleted)

    # ------------------------------------------------------------------
    # XTupleStore protocol
    # ------------------------------------------------------------------

    @property
    def tuple_ids(self) -> tuple[str, ...]:
        ids = self._ids_cache
        if ids is None:
            deleted = self._deleted
            ids = tuple(
                tuple_id
                for tuple_id in self._base.tuple_ids
                if tuple_id not in deleted
            ) + tuple(self._added)
            self._ids_cache = ids
        return ids

    def __iter__(self) -> Iterator[XTuple]:
        deleted = self._deleted
        replaced = self._replaced
        for xtuple in self._base:
            tuple_id = xtuple.tuple_id
            if tuple_id in deleted:
                continue
            yield replaced.get(tuple_id, xtuple)
        yield from self._added.values()

    def __len__(self) -> int:
        return len(self._base) - len(self._deleted) + len(self._added)

    def __contains__(self, tuple_id: str) -> bool:
        if tuple_id in self._added:
            return True
        if tuple_id in self._deleted:
            return False
        return tuple_id in self._base

    def get(self, tuple_id: str) -> XTuple:
        if tuple_id in self._added:
            return self._added[tuple_id]
        if tuple_id in self._deleted:
            raise KeyError(tuple_id)
        overlay = self._replaced.get(tuple_id)
        if overlay is not None:
            return overlay
        return self._base.get(tuple_id)

    def fetch(self, tuple_ids: Iterable[str]) -> Mapping[str, XTuple]:
        """Working-set fetch: overlay ids served here, the rest batched.

        Base ids are fetched through the base store in one batch (the
        spilling store groups them by segment page), then the merged
        mapping is re-keyed into request order.
        """
        requested = list(tuple_ids)
        base_ids: list[str] = []
        for tuple_id in requested:
            if tuple_id in self._deleted:
                raise KeyError(tuple_id)
            if (
                tuple_id not in self._added
                and tuple_id not in self._replaced
            ):
                base_ids.append(tuple_id)
        from_base = self._base.fetch(base_ids) if base_ids else {}
        working_set: dict[str, XTuple] = {}
        for tuple_id in requested:
            if tuple_id in self._added:
                working_set[tuple_id] = self._added[tuple_id]
            elif tuple_id in self._replaced:
                working_set[tuple_id] = self._replaced[tuple_id]
            else:
                working_set[tuple_id] = from_base[tuple_id]
        return working_set

    def project(self, attributes: Iterable[str]) -> "SessionProjection":
        """An overlay scan over a subset of attributes.

        The base's stretch comes through its own ``project`` (columnar
        bases serve it from the selected columns alone); overlay
        tuples — replaced in place, appended after — are projected in
        memory.  The scan reads the session's *live* overlay state at
        iteration time, like ``__iter__``.
        """
        selected = tuple(dict.fromkeys(attributes))
        known = set(self.schema.attributes)
        for attribute in selected:
            if attribute not in known:
                raise KeyError(
                    f"attribute {attribute!r} is not in the schema "
                    f"{self.schema.attributes!r}"
                )
        return SessionProjection(self, selected)

    # ------------------------------------------------------------------
    # Source tagging (consolidation-scenario support)
    # ------------------------------------------------------------------

    @property
    def source_names(self) -> tuple[str, ...]:
        """Source tags of the view: the base's, plus Δ once ids append.

        When the base is itself source-tagged (a multi-source view) its
        tags pass through; a plain base contributes its name.  The
        appended delta forms one additional source, so consolidation
        planning (``cross_source_plan``) can restrict a session plan to
        base-versus-delta pairs.
        """
        names = getattr(self._base, "source_names", None)
        base_names = tuple(names) if names is not None else (self._base.name,)
        if self._added:
            return base_names + (DELTA_SOURCE,)
        return base_names

    def source_of(self, tuple_id: str) -> str:
        """The source tag a tuple id belongs to (``KeyError`` if absent)."""
        if tuple_id in self._added:
            return DELTA_SOURCE
        if tuple_id in self._deleted or tuple_id not in self._base:
            raise KeyError(tuple_id)
        base_source = getattr(self._base, "source_of", None)
        if base_source is not None:
            return base_source(tuple_id)
        return self._base.name

    def __repr__(self) -> str:
        return (
            f"SessionStore({self._base.name!r}, tuples={len(self)}, "
            f"+{len(self._added)} ~{len(self._replaced)} "
            f"-{len(self._deleted)})"
        )


class SessionProjection:
    """A read-only overlay scan over a subset of attributes.

    Mirrors :meth:`SessionStore.__iter__` — deleted ids skipped,
    replaced ids substituted in place, appends last — with the base
    served column-wise when it can and overlay tuples projected via
    :func:`~repro.pdb.storage.base.project_xtuple`.
    """

    def __init__(
        self, session: SessionStore, attributes: tuple[str, ...]
    ) -> None:
        self._session = session
        self._attributes = attributes

    @property
    def name(self) -> str:
        return self._session.name

    @property
    def attributes(self) -> tuple[str, ...]:
        return self._attributes

    @property
    def tuple_ids(self) -> tuple[str, ...]:
        return self._session.tuple_ids

    def __len__(self) -> int:
        return len(self._session)

    def __iter__(self) -> Iterator[XTuple]:
        session = self._session
        base = session._base
        project = getattr(base, "project", None)
        if callable(project):
            try:
                scan = project(self._attributes)
            except (KeyError, TypeError):
                scan = base
        else:
            scan = base
        deleted = session._deleted
        replaced = session._replaced
        for xtuple in scan:
            tuple_id = xtuple.tuple_id
            if tuple_id in deleted:
                continue
            overlay = replaced.get(tuple_id)
            if overlay is not None:
                yield project_xtuple(overlay, self._attributes)
            else:
                yield xtuple
        for xtuple in session._added.values():
            yield project_xtuple(xtuple, self._attributes)

    def __repr__(self) -> str:
        return (
            f"SessionProjection({self._session.name!r}, "
            f"attributes={self._attributes!r})"
        )


class SessionJournal:
    """Appendable on-disk persistence of one detection session.

    Layout under *path*:

    * ``journal.jsonl`` — one JSON document per applied operation
      (``{"op": "upsert", "tuple": {...exact codec...}}`` /
      ``{"op": "delete", "id": ...}``), appended and flushed per
      ingest.  Replaying the journal over the base store rebuilds the
      session's overlay exactly.
    * ``snapshot.json`` — an atomically-replaced document the service
      layer owns (partition fingerprint index, portable
      similarity-cache entries, optionally retained decisions).  The
      journal never interprets it beyond JSON.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        os.makedirs(self.path, exist_ok=True)
        self._journal_path = os.path.join(self.path, JOURNAL_NAME)
        self._snapshot_path = os.path.join(self.path, SNAPSHOT_NAME)

    # -- operations ----------------------------------------------------

    @staticmethod
    def upsert_op(xtuple: XTuple) -> dict:
        """The journal document recording one upsert (exact codec)."""
        return {"op": "upsert", "tuple": encode_xtuple(xtuple, exact=True)}

    @staticmethod
    def delete_op(tuple_id: str) -> dict:
        """The journal document recording one delete."""
        return {"op": "delete", "id": tuple_id}

    def append_ops(self, operations: Iterable[Mapping]) -> int:
        """Append operation documents to the journal, flushed durably."""
        count = 0
        with open(self._journal_path, "a", encoding="utf-8") as journal:
            for operation in operations:
                # No sort_keys: encoded alternatives carry attribute
                # order, which replay must reproduce byte for byte.
                journal.write(json.dumps(operation, separators=(",", ":")))
                journal.write("\n")
                count += 1
            journal.flush()
            os.fsync(journal.fileno())
        return count

    def ops(self) -> Iterator[dict]:
        """Replay the journal's operations in append order."""
        if not os.path.exists(self._journal_path):
            return
        with open(self._journal_path, "r", encoding="utf-8") as journal:
            for line in journal:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def replay_into(self, store: SessionStore) -> int:
        """Apply every journaled operation to *store*; returns the count."""
        count = 0
        for operation in self.ops():
            store.apply(operation)
            count += 1
        return count

    # -- snapshot ------------------------------------------------------

    def save_snapshot(self, document: Mapping) -> None:
        """Atomically replace the snapshot document."""
        write_text_atomic(
            self._snapshot_path,
            json.dumps(document, separators=(",", ":"), sort_keys=True),
        )

    def load_snapshot(self) -> dict | None:
        """The last saved snapshot document, or ``None``."""
        if not os.path.exists(self._snapshot_path):
            return None
        with open(self._snapshot_path, "r", encoding="utf-8") as snapshot:
            return json.load(snapshot)


__all__ = [
    "DELTA_SOURCE",
    "JOURNAL_NAME",
    "SNAPSHOT_NAME",
    "SessionJournal",
    "SessionProjection",
    "SessionStore",
]
