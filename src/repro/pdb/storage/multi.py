"""A chained read-only view over several x-tuple stores.

The paper's headline scenario consolidates *autonomous* probabilistic
sources — ℛ34 = ℛ3 ∪ ℛ4 — yet materializing that union doubles resident
memory for in-memory relations and defeats the purpose of out-of-core
stores entirely.  :class:`MultiSourceStore` gives the execution layer
the union *view* instead: any number of backends satisfying
:class:`~repro.pdb.storage.base.XTupleStore` (in-memory
:class:`~repro.pdb.relations.XRelation`s, spilled
:class:`~repro.pdb.storage.spill.SpillingXTupleStore`s, or a mix)
behind one store whose iteration order is exactly the union's —
source 0's tuples, then source 1's, … — so detection over the view is
bitwise identical to detection over the materialized union.

Only *metadata* is combined: the view keeps a tuple-id → source index
map (ids it already holds as strings) and otherwise delegates.  A
working-set :meth:`fetch` splits the requested ids per backing store,
lets each store batch its own lookups (the spilling store groups by
segment page, the in-memory relation hands out resident objects), and
re-keys the merged result into request order — the *multi-store
working-set fetch* the execution engine loads partitions through.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.pdb.errors import DuplicateTupleIdError, SchemaMismatchError
from repro.pdb.storage.base import XTupleStore
from repro.pdb.xtuples import XTuple


class MultiSourceStore:
    """Union view over several stores, without materializing the union.

    Parameters
    ----------
    stores:
        The backing stores, in union order.  Schemas must agree and
        tuple ids must be disjoint — the paper's integration scenario
        unions autonomous sources whose ids are distinct by
        construction (:class:`DuplicateTupleIdError` otherwise).
    name:
        View name; defaults to ``"∪"``-joining the source names.

    Examples
    --------
    >>> from repro.pdb.relations import XRelation
    >>> from repro.pdb.xtuples import TupleAlternative, XTuple
    >>> def rel(name, *rows):
    ...     return XRelation(name, ("name",), [
    ...         XTuple(t, (TupleAlternative({"name": n}, 1.0),))
    ...         for t, n in rows])
    >>> view = MultiSourceStore([
    ...     rel("R1", ("a1", "anna")), rel("R2", ("b1", "anne"))])
    >>> view.name, len(view), view.tuple_ids
    ('R1∪R2', 2, ('a1', 'b1'))
    >>> view.source_of("b1")
    'R2'
    >>> sorted(view.fetch(["b1", "a1"]))
    ['a1', 'b1']
    """

    def __init__(
        self,
        stores: Sequence[XTupleStore],
        *,
        name: str | None = None,
    ) -> None:
        if not stores:
            raise ValueError("a multi-source view needs at least one store")
        self._stores: tuple[XTupleStore, ...] = tuple(stores)
        first = self._stores[0]
        for store in self._stores[1:]:
            if store.schema != first.schema:
                raise SchemaMismatchError(
                    f"cannot view {first.name} and {store.name} as one "
                    "relation: schemas differ"
                )
        self.schema = first.schema
        self._source_names = _distinct_names(self._stores)
        self.name = name or "∪".join(self._source_names)
        #: tuple id → index of the owning store.
        self._locate: dict[str, int] = {}
        for index, store in enumerate(self._stores):
            for tuple_id in store.tuple_ids:
                if tuple_id in self._locate:
                    raise DuplicateTupleIdError(
                        f"tuple id {tuple_id!r} appears in both "
                        f"{self._source_names[self._locate[tuple_id]]!r} "
                        f"and {self._source_names[index]!r}; sources of a "
                        "multi-source view must have disjoint ids"
                    )
                self._locate[tuple_id] = index

    # ------------------------------------------------------------------
    # Source introspection
    # ------------------------------------------------------------------

    @property
    def stores(self) -> tuple[XTupleStore, ...]:
        """The backing stores, in union order."""
        return self._stores

    @property
    def source_names(self) -> tuple[str, ...]:
        """One stable tag per source (names, disambiguated if equal)."""
        return self._source_names

    def source_of(self, tuple_id: str) -> str:
        """The source tag a tuple id belongs to (``KeyError`` if unknown)."""
        return self._source_names[self._locate[tuple_id]]

    def source_index(self, tuple_id: str) -> int:
        """Positional index of the owning source."""
        return self._locate[tuple_id]

    # ------------------------------------------------------------------
    # XTupleStore protocol
    # ------------------------------------------------------------------

    @property
    def tuple_ids(self) -> tuple[str, ...]:
        """All tuple ids in union (source-concatenation) order."""
        return tuple(self._locate.keys())

    def __len__(self) -> int:
        return len(self._locate)

    def __contains__(self, tuple_id: str) -> bool:
        return tuple_id in self._locate

    def __iter__(self) -> Iterator[XTuple]:
        """Stream every source's tuples, in union order."""
        for store in self._stores:
            yield from store

    def get(self, tuple_id: str) -> XTuple:
        """Delegate a single lookup to the owning store."""
        return self._stores[self._locate[tuple_id]].get(tuple_id)

    def project(self, attributes: Iterable[str]) -> "MultiSourceProjection":
        """A union scan over a subset of attributes.

        Each source that can project column-wise (columnar stores,
        nested views) serves its stretch of the union from the selected
        columns alone; sources without a ``project`` method stream
        whole tuples — key strategies read only the selected attributes
        either way, so the scan is planning-equivalent to iterating the
        full view.
        """
        selected = tuple(dict.fromkeys(attributes))
        known = set(self.schema.attributes)
        for attribute in selected:
            if attribute not in known:
                raise KeyError(
                    f"attribute {attribute!r} is not in the schema "
                    f"{self.schema.attributes!r}"
                )
        return MultiSourceProjection(self, selected)

    def statistics(self):
        """Merged zone maps of the sources, or ``None``.

        Available only when *every* source precomputes statistics (the
        columnar backend's spill-time zone maps) — the view never
        streams tuple data to synthesize them.
        """
        from repro.pdb.storage.stats import merge_statistics

        collected = []
        for store in self._stores:
            statistics = getattr(store, "statistics", None)
            if not callable(statistics):
                return None
            computed = statistics()
            if computed is None:
                return None
            collected.append(computed)
        return merge_statistics(self.name, collected)

    def fetch(self, tuple_ids: Iterable[str]) -> dict[str, XTuple]:
        """Multi-store working-set fetch.

        Ids are grouped per owning store so each backend services its
        share as one batch (page-grouped decodes for spilled stores),
        then the merged mapping is re-keyed into the caller's request
        order — the same contract as a single store's ``fetch``.
        """
        wanted = list(tuple_ids)
        by_store: dict[int, list[str]] = {}
        for tuple_id in wanted:
            by_store.setdefault(self._locate[tuple_id], []).append(tuple_id)
        merged: dict[str, XTuple] = {}
        for index in sorted(by_store):
            merged.update(self._stores[index].fetch(by_store[index]))
        return {tuple_id: merged[tuple_id] for tuple_id in wanted}

    def __repr__(self) -> str:
        return (
            f"MultiSourceStore({self.name!r}, {len(self._stores)} sources, "
            f"{len(self)} tuples)"
        )


class MultiSourceProjection:
    """A read-only union scan over a subset of attributes.

    Chains per-source projection scans in union order; sources that
    cannot project stream whole tuples (a planning-equivalent
    over-approximation — consumers read only the selected attributes).
    """

    def __init__(
        self, view: MultiSourceStore, attributes: tuple[str, ...]
    ) -> None:
        self._view = view
        self._attributes = attributes

    @property
    def name(self) -> str:
        return self._view.name

    @property
    def attributes(self) -> tuple[str, ...]:
        return self._attributes

    @property
    def tuple_ids(self) -> tuple[str, ...]:
        return self._view.tuple_ids

    def __len__(self) -> int:
        return len(self._view)

    def __iter__(self) -> Iterator[XTuple]:
        for store in self._view.stores:
            project = getattr(store, "project", None)
            if callable(project):
                try:
                    scan = project(self._attributes)
                except (KeyError, TypeError):
                    scan = store
            else:
                scan = store
            yield from scan

    def __repr__(self) -> str:
        return (
            f"MultiSourceProjection({self._view.name!r}, "
            f"attributes={self._attributes!r})"
        )


def _distinct_names(stores: Sequence[XTupleStore]) -> tuple[str, ...]:
    """Source tags: store names, ``#<i>``-suffixed on collision."""
    names = [str(store.name) for store in stores]
    seen: dict[str, int] = {}
    for name in names:
        seen[name] = seen.get(name, 0) + 1
    tags: list[str] = []
    used: set[str] = set()
    for index, name in enumerate(names):
        tag = name if seen[name] == 1 else f"{name}#{index}"
        while tag in used:  # a literal "name#1" may already exist
            tag = f"{tag}#{index}"
        used.add(tag)
        tags.append(tag)
    return tuple(tags)


def combine_sources(
    stores: Sequence[XTupleStore], *, name: str | None = None
) -> XTupleStore:
    """One store for N sources: the single store itself, else the view.

    The degenerate single-source case returns the store unchanged, so
    callers can treat "one or many sources" uniformly without paying
    for an id map they don't need.
    """
    if len(stores) == 1:
        return stores[0]
    return MultiSourceStore(stores, name=name)


__all__ = ["MultiSourceProjection", "MultiSourceStore", "combine_sources"]
