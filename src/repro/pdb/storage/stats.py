"""Zone maps and key histograms for x-tuple stores.

A *zone map* is the classic columnar-warehouse trick (Todor et al.,
"Making massive probabilistic databases practical"): per attribute,
keep the minimum and maximum value bytes plus null / uncertain counts,
so a reader can decide whether a segment — or a whole source — can
possibly contain a key *without touching any tuple data*.  The
probabilistic twist is that one attribute cell is a distribution, so
the map ranges over **every outcome** of every alternative:

* plain outcomes contribute their ``str`` form (the same form
  :class:`~repro.reduction.keys.SubstringKey` slices prefixes from);
* ⊥ contributes the empty string (⊥ keys as ``""``), tracked as
  ``null_count`` so the lower bound widens to ``""``;
* pattern values make the range *unbounded* — a pattern can expand to
  strings outside any recorded bounds, so a zone with patterns never
  licenses a prune.

Because string prefixing is order-monotone (``a <= b`` implies
``a[:n] <= b[:n]``), the per-attribute ``[min, max]`` interval soundly
bounds every first-key-part prefix a key strategy can produce from the
zone — the property :func:`AttributeStatistics.key_range` packages and
cross-source pruning relies on.  Multi-part keys concatenate pieces of
*different* lengths, so only the first part is boundable; pruning on it
is a sound over-approximation.

Histograms bucket plain outcomes by first character, giving the planner
a cheap density sketch per source (how many keys start with ``"m"``)
for cost decisions that pair counts alone cannot inform.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.pdb.values import NULL, PatternValue
from repro.pdb.xtuples import XTuple


@dataclass(frozen=True)
class AttributeStatistics:
    """Zone-map entry for one attribute of a store (or segment)."""

    attribute: str
    #: Smallest / largest plain outcome (``str`` form); ``None`` when no
    #: plain outcome was observed (all-⊥ or empty column).
    min_value: str | None
    max_value: str | None
    #: Attribute cells (alternative × attribute) with any ⊥ mass.
    null_count: int
    #: Attribute cells holding a distribution (more than one outcome).
    uncertain_count: int
    #: Pattern outcomes observed — any makes the range unbounded.
    pattern_count: int
    #: Attribute cells observed (one per alternative carrying the
    #: attribute).
    value_count: int
    #: Total ``str`` length of plain outcomes — with ``value_count``
    #: this feeds per-member cost estimates (string lengths drive
    #: comparison cost far more than pair counts alone).
    total_bytes: int

    @property
    def bounded(self) -> bool:
        """Whether ``[min, max]`` really bounds every possible key."""
        return self.pattern_count == 0

    def key_range(self, length: int | None = None) -> tuple[str, str] | None:
        """Sound bounds on this attribute's key pieces, or ``None``.

        Returns the ``(lo, hi)`` interval containing every prefix of
        ``length`` characters a :class:`SubstringKey` part can extract
        from values summarized here; ``None`` means unbounded (pattern
        values present), which must never license a prune.  ⊥ keys as
        the empty string, so any null mass pins the lower bound at
        ``""``.
        """
        if not self.bounded:
            return None
        lo = self.min_value if self.min_value is not None else ""
        hi = self.max_value if self.max_value is not None else ""
        if self.null_count > 0:
            lo = ""
        if length is not None:
            lo, hi = lo[:length], hi[:length]
        return (lo, hi)

    def to_dict(self) -> dict:
        return {
            "min": self.min_value,
            "max": self.max_value,
            "nulls": self.null_count,
            "uncertain": self.uncertain_count,
            "patterns": self.pattern_count,
            "values": self.value_count,
            "bytes": self.total_bytes,
        }

    @classmethod
    def from_dict(cls, attribute: str, doc: Mapping) -> "AttributeStatistics":
        return cls(
            attribute=attribute,
            min_value=doc.get("min"),
            max_value=doc.get("max"),
            null_count=doc.get("nulls", 0),
            uncertain_count=doc.get("uncertain", 0),
            pattern_count=doc.get("patterns", 0),
            value_count=doc.get("values", 0),
            total_bytes=doc.get("bytes", 0),
        )


def ranges_overlap(
    first: tuple[str, str] | None, second: tuple[str, str] | None
) -> bool:
    """Whether two key ranges can share a key (``None`` = unbounded)."""
    if first is None or second is None:
        return True
    return first[0] <= second[1] and second[0] <= first[1]


@dataclass(frozen=True)
class StoreStatistics:
    """Store-level statistics: zone maps + key histograms per attribute.

    Produced at spill time by the columnar backend (and on demand by
    :func:`relation_statistics` for in-memory relations), consumed by
    the planner's statistics hook (:mod:`repro.reduction.plan`) and the
    cross-source pruning of :mod:`repro.matching.executor.multisource`.
    """

    name: str
    #: X-tuples summarized.
    count: int
    #: Total alternatives across all x-tuples.
    alternative_count: int
    #: Zone map per schema attribute.
    attributes: Mapping[str, AttributeStatistics]
    #: First-character bucket counts of plain outcomes, per attribute.
    histograms: Mapping[str, Mapping[str, int]]

    def attribute_statistics(
        self, attribute: str
    ) -> AttributeStatistics | None:
        return self.attributes.get(attribute)

    def key_range(
        self, attribute: str, length: int | None = None
    ) -> tuple[str, str] | None:
        """Sound first-key-part bounds for *attribute* (``None`` =
        unbounded / unknown attribute — never prune on it)."""
        statistics = self.attributes.get(attribute)
        if statistics is None:
            return None
        return statistics.key_range(length)

    @property
    def mean_alternatives(self) -> float:
        """Average alternatives per x-tuple (≥ 1.0 for non-empty)."""
        if self.count == 0:
            return 1.0
        return self.alternative_count / self.count

    def mean_value_bytes(self, attribute: str) -> float:
        """Average plain-outcome length for *attribute* (0.0 unknown)."""
        statistics = self.attributes.get(attribute)
        if statistics is None or statistics.value_count == 0:
            return 0.0
        return statistics.total_bytes / statistics.value_count

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "alternatives": self.alternative_count,
            "zones": {
                attribute: statistics.to_dict()
                for attribute, statistics in self.attributes.items()
            },
            "histograms": {
                attribute: dict(buckets)
                for attribute, buckets in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, name: str, doc: Mapping) -> "StoreStatistics":
        return cls(
            name=name,
            count=doc.get("count", 0),
            alternative_count=doc.get("alternatives", 0),
            attributes={
                attribute: AttributeStatistics.from_dict(attribute, entry)
                for attribute, entry in doc.get("zones", {}).items()
            },
            histograms={
                attribute: dict(buckets)
                for attribute, buckets in doc.get("histograms", {}).items()
            },
        )


class StatisticsBuilder:
    """Single-pass accumulator feeding zone maps and histograms.

    One builder per scope (segment or whole store): call
    :meth:`observe` per x-tuple while streaming, then :meth:`build`.
    """

    def __init__(self, attributes: Iterable[str]) -> None:
        self._attributes = tuple(attributes)
        self._count = 0
        self._alternatives = 0
        self._min: dict[str, str | None] = dict.fromkeys(self._attributes)
        self._max: dict[str, str | None] = dict.fromkeys(self._attributes)
        self._nulls = dict.fromkeys(self._attributes, 0)
        self._uncertain = dict.fromkeys(self._attributes, 0)
        self._patterns = dict.fromkeys(self._attributes, 0)
        self._values = dict.fromkeys(self._attributes, 0)
        self._bytes = dict.fromkeys(self._attributes, 0)
        self._histograms: dict[str, dict[str, int]] = {
            attribute: {} for attribute in self._attributes
        }

    def observe(self, xtuple: XTuple) -> None:
        self._count += 1
        for alternative in xtuple.alternatives:
            self._alternatives += 1
            for attribute in alternative.attributes:
                if attribute not in self._values:
                    continue  # outside the summarized schema
                value = alternative.value(attribute)
                self._values[attribute] += 1
                outcomes = list(value.items())
                if len(outcomes) > 1:
                    self._uncertain[attribute] += 1
                for outcome, _probability in outcomes:
                    if outcome is NULL:
                        self._nulls[attribute] += 1
                        continue
                    if isinstance(outcome, PatternValue):
                        self._patterns[attribute] += 1
                        continue
                    text = str(outcome)
                    self._bytes[attribute] += len(text)
                    low = self._min[attribute]
                    if low is None or text < low:
                        self._min[attribute] = text
                    high = self._max[attribute]
                    if high is None or text > high:
                        self._max[attribute] = text
                    bucket = text[:1]
                    histogram = self._histograms[attribute]
                    histogram[bucket] = histogram.get(bucket, 0) + 1

    def build(self, name: str) -> StoreStatistics:
        return StoreStatistics(
            name=name,
            count=self._count,
            alternative_count=self._alternatives,
            attributes={
                attribute: AttributeStatistics(
                    attribute=attribute,
                    min_value=self._min[attribute],
                    max_value=self._max[attribute],
                    null_count=self._nulls[attribute],
                    uncertain_count=self._uncertain[attribute],
                    pattern_count=self._patterns[attribute],
                    value_count=self._values[attribute],
                    total_bytes=self._bytes[attribute],
                )
                for attribute in self._attributes
            },
            histograms={
                attribute: dict(self._histograms[attribute])
                for attribute in self._attributes
            },
        )


def merge_statistics(
    name: str, parts: Iterable[StoreStatistics]
) -> StoreStatistics | None:
    """Union statistics: counts add, ranges widen, histograms sum.

    Exactly the statistics a single pass over the concatenated sources
    would produce, computed from per-source zone maps alone — how a
    multi-source view answers ``statistics()`` without streaming.
    Returns ``None`` for an empty part list or non-statistics entries.
    """
    collected = list(parts)
    if not collected or any(
        not isinstance(part, StoreStatistics) for part in collected
    ):
        return None
    count = sum(part.count for part in collected)
    alternatives = sum(part.alternative_count for part in collected)
    attribute_names: dict[str, None] = {}
    for part in collected:
        for attribute in part.attributes:
            attribute_names[attribute] = None
    zones: dict[str, AttributeStatistics] = {}
    histograms: dict[str, dict[str, int]] = {}
    for attribute in attribute_names:
        entries = [
            part.attributes[attribute]
            for part in collected
            if attribute in part.attributes
        ]
        minima = [e.min_value for e in entries if e.min_value is not None]
        maxima = [e.max_value for e in entries if e.max_value is not None]
        zones[attribute] = AttributeStatistics(
            attribute=attribute,
            min_value=min(minima) if minima else None,
            max_value=max(maxima) if maxima else None,
            null_count=sum(e.null_count for e in entries),
            uncertain_count=sum(e.uncertain_count for e in entries),
            pattern_count=sum(e.pattern_count for e in entries),
            value_count=sum(e.value_count for e in entries),
            total_bytes=sum(e.total_bytes for e in entries),
        )
        buckets: dict[str, int] = {}
        for part in collected:
            for bucket, bucket_count in part.histograms.get(
                attribute, {}
            ).items():
                buckets[bucket] = buckets.get(bucket, 0) + bucket_count
        histograms[attribute] = buckets
    return StoreStatistics(
        name=name,
        count=count,
        alternative_count=alternatives,
        attributes=zones,
        histograms=histograms,
    )


def relation_statistics(relation) -> StoreStatistics:
    """Compute :class:`StoreStatistics` for any x-tuple store.

    Stores that precompute statistics at spill time (the columnar
    backend) answer through their own ``statistics()`` method instead;
    this fallback streams the relation once — values only, no pair
    work — so in-memory sources can join zone-map pruning too.
    """
    statistics = getattr(relation, "statistics", None)
    if callable(statistics):
        computed = statistics()
        if isinstance(computed, StoreStatistics):
            return computed
    builder = StatisticsBuilder(relation.schema.attributes)
    for xtuple in relation:
        builder.observe(xtuple)
    return builder.build(relation.name)


__all__ = [
    "AttributeStatistics",
    "StatisticsBuilder",
    "StoreStatistics",
    "merge_statistics",
    "ranges_overlap",
    "relation_statistics",
]
