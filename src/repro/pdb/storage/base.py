"""The x-tuple storage protocol: what the pipeline needs from a backend.

Everything downstream of the pdb layer — reducers, the execution
planner, ``DuplicateDetector`` — consumes relations through a narrow
read-only surface: sized iteration in insertion order, id membership,
id lookup, and batch lookup of a partition's working set.  This module
names that surface (:class:`XTupleStore`) so that the in-memory
:class:`~repro.pdb.relations.XRelation` and the out-of-core
:class:`~repro.pdb.storage.spill.SpillingXTupleStore` are
interchangeable everywhere a relation flows through the stack.

Contract (both implementations):

* ``iter(store)`` yields :class:`~repro.pdb.xtuples.XTuple` objects in
  insertion order — the order that fixes candidate-pair emission and
  therefore result order;
* ``store.get(tuple_id)`` returns the x-tuple for an id (``KeyError``
  for unknown ids);
* ``store.fetch(tuple_ids)`` returns a ``{tuple_id: XTuple}`` mapping
  for a *working set* — the ids of one plan partition or dispatch
  chunk.  Backends may service it however is cheapest (the in-memory
  relation hands out its existing objects; the spilling store groups
  ids by segment page so each page is decoded once);
* stores are read-only from the pipeline's perspective: forked workers
  may share one store and only ever read through it.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.pdb.relations import Schema
    from repro.pdb.xtuples import XTuple


@runtime_checkable
class XTupleStore(Protocol):
    """Read-only storage backend holding one x-relation's tuples."""

    name: str
    schema: "Schema"

    def __iter__(self) -> Iterator["XTuple"]:  # pragma: no cover
        ...

    def __len__(self) -> int:  # pragma: no cover
        ...

    def __contains__(self, tuple_id: str) -> bool:  # pragma: no cover
        ...

    def get(self, tuple_id: str) -> "XTuple":  # pragma: no cover
        ...

    @property
    def tuple_ids(self) -> tuple[str, ...]:  # pragma: no cover
        ...

    def fetch(
        self, tuple_ids: Iterable[str]
    ) -> Mapping[str, "XTuple"]:  # pragma: no cover
        ...


def project_xtuple(xtuple: "XTuple", attributes: Iterable[str]) -> "XTuple":
    """One x-tuple restricted to *attributes* (order-preserving).

    Each alternative keeps its probability and its own attribute order,
    filtered to the selection — the in-memory counterpart of a columnar
    projection scan, used by overlay/union views to project tuples the
    backing store cannot serve column-wise.
    """
    from repro.pdb.xtuples import TupleAlternative, XTuple

    selected = set(attributes)
    return XTuple(
        xtuple.tuple_id,
        tuple(
            TupleAlternative(
                {
                    attribute: alternative.value(attribute)
                    for attribute in alternative.attributes
                    if attribute in selected
                },
                alternative.probability,
            )
            for alternative in xtuple.alternatives
        ),
    )


def fetch_tuples(
    relation, tuple_ids: Iterable[str]
) -> Mapping[str, "XTuple"]:
    """One working set of *relation*, as a ``tuple_id → XTuple`` mapping.

    The seam the execution layer loads partitions through: backends with
    a ``fetch`` method (every :class:`XTupleStore`) choose their own
    batch strategy; anything else that merely satisfies the legacy
    ``get`` protocol is looked up id by id.
    """
    fetch = getattr(relation, "fetch", None)
    if fetch is not None:
        return fetch(tuple_ids)
    get = relation.get
    return {tuple_id: get(tuple_id) for tuple_id in tuple_ids}
