"""Columnar, mmap-backed x-relation storage with spill-time statistics.

A *columnar* store decomposes each segment of tuples into one
*structure* file plus one file per schema attribute:

.. code-block:: text

    store/
      manifest.json            # layout marker, offsets, zone maps,
                               # per-source key histograms, CRCs
      seg-00000.tuples.jsonl   # per tuple: id, alternative
                               # probabilities + attribute order
      seg-00000.col00.jsonl    # per tuple: exact-encoded values of
                               # schema attribute 0, one list per line
      seg-00000.col01.jsonl
      ...

The structure line records, per alternative, its probability and its
attribute *order* (``0`` when it equals the schema order) — the detail
that makes reassembled tuples bitwise-identical to the row backend:
per-alternative attribute iteration order survives the round trip just
like outcome order does (the exact value codec of
:func:`repro.pdb.io.encode_value_exact` is shared with the row layout).
A column line holds the values of the alternatives that carry the
attribute, in alternative order, so any subset of columns can be
reassembled without consulting the others.

Reads are **mmap-backed**: every file is mapped once per process and
lines are sliced straight out of the mapping, so OS-cached pages are
served without a read syscall or userspace buffering, and forked
workers share the page cache with their parent for free (a mapping has
no seek position, unlike the row backend's file handles).  Mappings
are pickled away (`__getstate__`), so shipping a store to a spawn-based
worker costs only metadata.

The payoff is **projection**: :meth:`ColumnarXTupleStore.project`
scans the structure file plus only the named attributes' columns —
key-extraction and planning passes over a wide relation decode a small
fraction of the stored bytes.  At spill time the writer also folds
per-segment **zone maps** (min/max value bytes, null / uncertain /
pattern counts) and per-source **key histograms**
(:mod:`repro.pdb.storage.stats`) into the manifest, so planners can
prune work whose key ranges cannot overlap before touching any tuple
data.

Integrity mirrors the row backend: a CRC32 per file, verified lazily
the first time a mapping is sliced (a projection pass therefore only
pays for the files it actually reads), :meth:`verify` for a whole-store
audit and :meth:`quarantine` to isolate a segment *family* — structure
file and all its columns move together, the manifest is rewritten
atomically first.
"""

from __future__ import annotations

import json
import mmap
import os
import zlib
from collections import OrderedDict
from collections.abc import Iterable, Iterator, Sequence

from repro.pdb.errors import SegmentCorruptionError, StorageError
from repro.pdb.io import (
    decode_value,
    encode_value_exact,
    write_text_atomic,
)
from repro.pdb.relations import Schema, XRelation
from repro.pdb.storage.spill import (
    DEFAULT_MAX_OPEN_SEGMENTS,
    DEFAULT_MAX_PAGES,
    DEFAULT_PAGE_SIZE,
    DEFAULT_SEGMENT_SIZE,
    MANIFEST_NAME,
    QUARANTINE_DIR,
    STORE_FORMAT,
    PageCacheInfo,
    QuarantinedSegment,
    SegmentIntegrity,
    StoreVerification,
)
from repro.pdb.storage.stats import StatisticsBuilder, StoreStatistics
from repro.pdb.xtuples import TupleAlternative, XTuple

#: Manifest value of the ``layout`` key identifying this format.
COLUMNAR_LAYOUT = "columnar"

#: Pseudo column index of a segment's structure (tuples) file.
_STRUCTURE = -1


def _tuples_name(index: int) -> str:
    return f"seg-{index:05d}.tuples.jsonl"


def _column_name(index: int, column: int) -> str:
    return f"seg-{index:05d}.col{column:02d}.jsonl"


def _write_lines(file_path: str, lines: Sequence[str]) -> tuple[list[int], int]:
    """Write JSONL lines; return their byte offsets and the file CRC32."""
    offsets: list[int] = []
    crc = 0
    position = 0
    # newline="" disables newline translation: recorded offsets must
    # match the bytes on disk exactly (same contract as the row spill).
    with open(file_path, "w", encoding="utf-8", newline="") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")
            encoded = line.encode("utf-8") + b"\n"
            crc = zlib.crc32(encoded, crc)
            offsets.append(position)
            position += len(encoded)
        handle.flush()
        os.fsync(handle.fileno())
    return offsets, crc


def _dump(document) -> str:
    return json.dumps(document, separators=(",", ":"), ensure_ascii=False)


def spill_columnar(
    relation,
    path: str,
    *,
    segment_size: int = DEFAULT_SEGMENT_SIZE,
    page_size: int = DEFAULT_PAGE_SIZE,
    max_pages: int = DEFAULT_MAX_PAGES,
    max_open_segments: int = DEFAULT_MAX_OPEN_SEGMENTS,
) -> "ColumnarXTupleStore":
    """Write *relation* to *path* in the columnar layout.

    Streams tuples in insertion order into ``segment_size``-tuple
    segment families (structure file + one file per schema attribute),
    folding zone maps and key histograms as it goes; the manifest —
    offsets, CRCs, statistics — is written last and atomically, so an
    interrupted spill never produces a directory that opens as a store.
    Returns the directory opened as a :class:`ColumnarXTupleStore`.
    """
    if segment_size < 1:
        raise ValueError("segment_size must be >= 1")
    try:
        os.makedirs(path, exist_ok=True)
    except OSError as error:
        raise StorageError(
            f"cannot create store directory {path!r}: {error}"
        ) from error
    manifest_path = os.path.join(path, MANIFEST_NAME)
    if os.path.exists(manifest_path):
        raise StorageError(
            f"{path!r} already contains a spilled store; refusing to "
            "overwrite it"
        )
    schema_attributes = tuple(relation.schema.attributes)
    schema_set = set(schema_attributes)
    column_of = {
        attribute: column
        for column, attribute in enumerate(schema_attributes)
    }
    overall = StatisticsBuilder(schema_attributes)
    segments: list[dict] = []
    seen: set[str] = set()
    iterator = iter(relation)
    exhausted = False
    index = 0
    written_files: list[str] = []
    try:
        while not exhausted:
            batch: list[XTuple] = []
            for _ in range(segment_size):
                try:
                    xtuple = next(iterator)
                except StopIteration:
                    exhausted = True
                    break
                if xtuple.tuple_id in seen:
                    raise StorageError(
                        f"duplicate tuple id {xtuple.tuple_id!r} "
                        f"while spilling to {path!r}"
                    )
                seen.add(xtuple.tuple_id)
                batch.append(xtuple)
            if not batch:
                continue
            zone = StatisticsBuilder(schema_attributes)
            structure_lines: list[str] = []
            column_lines: list[list[str]] = [
                [] for _ in schema_attributes
            ]
            for xtuple in batch:
                zone.observe(xtuple)
                overall.observe(xtuple)
                alternatives_doc = []
                per_column: list[list] = [[] for _ in schema_attributes]
                for alternative in xtuple.alternatives:
                    names = alternative.attributes
                    for attribute in names:
                        if attribute not in schema_set:
                            raise StorageError(
                                f"tuple {xtuple.tuple_id!r} carries "
                                f"attribute {attribute!r} outside the "
                                f"schema {schema_attributes!r}; the "
                                "columnar layout stores schema "
                                "attributes only"
                            )
                        per_column[column_of[attribute]].append(
                            encode_value_exact(
                                alternative.value(attribute)
                            )
                        )
                    alternatives_doc.append(
                        [
                            alternative.probability,
                            0 if names == schema_attributes else list(names),
                        ]
                    )
                structure_lines.append(
                    _dump(
                        {"id": xtuple.tuple_id, "alts": alternatives_doc}
                    )
                )
                for column, values in enumerate(per_column):
                    column_lines[column].append(_dump(values))
            tuples_file = _tuples_name(index)
            tuples_path = os.path.join(path, tuples_file)
            written_files.append(tuples_path)
            offsets, crc = _write_lines(tuples_path, structure_lines)
            columns_doc = []
            for column, lines in enumerate(column_lines):
                column_file = _column_name(index, column)
                column_path = os.path.join(path, column_file)
                written_files.append(column_path)
                column_offsets, column_crc = _write_lines(
                    column_path, lines
                )
                columns_doc.append(
                    {
                        "file": column_file,
                        "offsets": column_offsets,
                        "crc32": column_crc,
                    }
                )
            segment_statistics = zone.build(relation.name).to_dict()
            segments.append(
                {
                    "tuples": tuples_file,
                    "ids": [xtuple.tuple_id for xtuple in batch],
                    "offsets": offsets,
                    "crc32": crc,
                    "columns": columns_doc,
                    "zones": segment_statistics["zones"],
                }
            )
            index += 1
        manifest = {
            "format": STORE_FORMAT,
            "kind": "repro-xtuple-store",
            "layout": COLUMNAR_LAYOUT,
            "name": relation.name,
            "schema": list(schema_attributes),
            "count": len(seen),
            "segments": segments,
            "statistics": overall.build(relation.name).to_dict(),
        }
        write_text_atomic(manifest_path, _dump(manifest))
    except BaseException:
        # A failed spill must not leave anything behind (same contract
        # as the row backend): orphaned segment families would silently
        # coexist with a later spill into the same path.
        for file_path in written_files + [manifest_path]:
            try:
                os.unlink(file_path)
            except OSError:
                pass
        raise
    return ColumnarXTupleStore(
        path,
        page_size=page_size,
        max_pages=max_pages,
        max_open_segments=max_open_segments,
    )


class ColumnarXTupleStore:
    """Read-only, mmap-backed columnar x-tuple store.

    Satisfies :class:`~repro.pdb.storage.base.XTupleStore` — iteration
    order, decoded values and probabilities are bitwise-identical to
    both the in-memory relation and the row-JSONL backend.  Beyond the
    protocol it offers :meth:`project` (scan a subset of attributes
    without decoding the rest) and :meth:`statistics` (the spill-time
    zone maps and histograms as a
    :class:`~repro.pdb.storage.stats.StoreStatistics`).

    Parameters
    ----------
    path:
        A directory produced by :func:`spill_columnar` /
        ``spill_relation(layout="columnar")``.
    page_size / max_pages:
        LRU cache of fully-decoded tuples for :meth:`get` /
        :meth:`fetch`, exactly as in the row backend.
    max_open_segments:
        Mapped *files* kept per process (LRU).  A full-tuple scan keeps
        ``1 + len(schema)`` files of the current segment mapped, so the
        cap should exceed the attribute count (the default 64 does).
    verify_checksums:
        Verify each file's bytes against its manifest CRC32 the first
        time the mapping is sliced (default on).  Lazy and per-file:
        a projection pass only verifies the files it reads.
    """

    def __init__(
        self,
        path: str,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        max_pages: int = DEFAULT_MAX_PAGES,
        max_open_segments: int = DEFAULT_MAX_OPEN_SEGMENTS,
        verify_checksums: bool = True,
    ) -> None:
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        if max_pages < 1:
            raise ValueError("max_pages must be >= 1")
        if max_open_segments < 1:
            raise ValueError("max_open_segments must be >= 1")
        self._path = os.path.abspath(path)
        self._page_size = page_size
        self._max_pages = max_pages
        self._max_open_segments = max_open_segments
        self._verify_checksums = verify_checksums
        self._load_manifest()
        #: (segment, column) → mmap; column -1 is the structure file.
        self._maps: OrderedDict[tuple[int, int], mmap.mmap] = OrderedDict()
        self._pages: OrderedDict[tuple[int, int], list[XTuple]] = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def _load_manifest(self) -> None:
        """(Re)build the resident metadata from the manifest on disk."""
        path = self._path
        manifest_path = os.path.join(self._path, MANIFEST_NAME)
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise StorageError(
                f"{path!r} is not a spilled store (no {MANIFEST_NAME})"
            ) from None
        except json.JSONDecodeError as error:
            raise StorageError(
                f"corrupt store manifest in {path!r}: {error}"
            ) from error
        if manifest.get("format") != STORE_FORMAT:
            raise StorageError(
                f"unsupported store format {manifest.get('format')!r}"
            )
        layout = manifest.get("layout", "rows")
        if layout != COLUMNAR_LAYOUT:
            raise StorageError(
                f"store at {path!r} uses the {layout!r} layout, not "
                f"{COLUMNAR_LAYOUT!r}; open it with open_store() or "
                "SpillingXTupleStore"
            )
        self._segment_files: list[list[str]] = []  # [structure, col...]
        self._segment_offsets: list[list[list[int]]] = []
        self._segment_ids: list[list[str]] = []
        self._segment_crcs: list[list[int | None]] = []
        self._segment_zones: list[dict] = []
        #: (segment, column) pairs whose bytes already matched their CRC.
        self._verified: set[tuple[int, int]] = set()
        #: tuple id → (segment index, position within segment)
        self._locate: dict[str, tuple[int, int]] = {}
        try:
            self.name: str = manifest["name"]
            self.schema = Schema(manifest["schema"])
            self._statistics_doc = manifest.get("statistics", {})
            expected_columns = len(self.schema.attributes)
            for segment_index, segment in enumerate(manifest["segments"]):
                ids = segment["ids"]
                offsets = segment["offsets"]
                if len(ids) != len(offsets):
                    raise StorageError(
                        f"segment {segment['tuples']!r} ids/offsets "
                        "mismatch"
                    )
                columns = segment["columns"]
                if len(columns) != expected_columns:
                    raise StorageError(
                        f"segment {segment['tuples']!r} stores "
                        f"{len(columns)} columns for a "
                        f"{expected_columns}-attribute schema"
                    )
                files = [os.path.join(self._path, segment["tuples"])]
                per_file_offsets = [list(offsets)]
                crcs: list[int | None] = [segment.get("crc32")]
                for column in columns:
                    if len(column["offsets"]) != len(ids):
                        raise StorageError(
                            f"column {column['file']!r} offsets do not "
                            "cover every tuple of its segment"
                        )
                    files.append(
                        os.path.join(self._path, column["file"])
                    )
                    per_file_offsets.append(list(column["offsets"]))
                    crcs.append(column.get("crc32"))
                self._segment_files.append(files)
                self._segment_offsets.append(per_file_offsets)
                self._segment_ids.append(list(ids))
                self._segment_crcs.append(crcs)
                self._segment_zones.append(segment.get("zones", {}))
                for position, tuple_id in enumerate(ids):
                    if tuple_id in self._locate:
                        raise StorageError(
                            f"duplicate tuple id {tuple_id!r} in manifest"
                        )
                    self._locate[tuple_id] = (segment_index, position)
        except KeyError as missing:
            raise StorageError(
                f"store manifest in {path!r} missing key "
                f"{missing.args[0]!r}"
            ) from None
        if len(self._locate) != manifest.get("count", len(self._locate)):
            raise StorageError(
                f"manifest count {manifest.get('count')} does not match "
                f"{len(self._locate)} indexed tuples"
            )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    @property
    def path(self) -> str:
        """The store directory."""
        return self._path

    @property
    def tuple_ids(self) -> tuple[str, ...]:
        """All tuple ids in insertion (spill) order."""
        return tuple(self._locate.keys())

    def __len__(self) -> int:
        return len(self._locate)

    def __contains__(self, tuple_id: str) -> bool:
        return tuple_id in self._locate

    def __iter__(self) -> Iterator[XTuple]:
        """Stream all x-tuples in insertion order, bypassing the cache."""
        columns = self._all_columns()
        for segment in range(len(self._segment_files)):
            for position in range(len(self._segment_ids[segment])):
                yield self._decode(segment, position, columns)

    # ------------------------------------------------------------------
    # mmap plumbing
    # ------------------------------------------------------------------

    def _file_path(self, segment: int, column: int) -> str:
        return self._segment_files[segment][column + 1]

    def _map(self, segment: int, column: int) -> mmap.mmap:
        """The (lazily created, LRU-bounded) mapping of one file.

        The first slice of a file triggers its CRC verification (when
        enabled); a mapping evicted and re-created later is not
        re-verified — like the row backend, verification happens once
        per file per store instance.
        """
        key = (segment, column)
        maps = self._maps
        mapped = maps.get(key)
        if mapped is not None:
            maps.move_to_end(key)
            return mapped
        file_path = self._file_path(segment, column)
        try:
            with open(file_path, "rb") as handle:
                mapped = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
        except (OSError, ValueError) as error:
            raise StorageError(
                f"unreadable segment file {file_path!r}: {error}"
            ) from error
        expected = self._segment_crcs[segment][column + 1]
        if (
            self._verify_checksums
            and expected is not None
            and key not in self._verified
        ):
            actual = zlib.crc32(mapped)
            if actual != expected:
                mapped.close()
                raise SegmentCorruptionError(
                    f"segment file {file_path!r} failed its integrity "
                    f"check: CRC32 {actual:#010x} on disk, manifest "
                    f"records {expected:#010x} "
                    f"({len(self._segment_ids[segment])} tuples "
                    "affected; quarantine() isolates the segment "
                    "family)",
                    segment_file=file_path,
                    expected_crc=expected,
                    actual_crc=actual,
                    tuple_ids=tuple(self._segment_ids[segment]),
                )
            self._verified.add(key)
        maps[key] = mapped
        if len(maps) > self._max_open_segments:
            maps.popitem(last=False)[1].close()
        return mapped

    def _line(self, segment: int, column: int, position: int) -> bytes:
        mapped = self._map(segment, column)
        offsets = self._segment_offsets[segment][column + 1]
        start = offsets[position]
        end = (
            offsets[position + 1]
            if position + 1 < len(offsets)
            else mapped.size()
        )
        return mapped[start:end]

    def _parse(self, segment: int, column: int, position: int):
        line = self._line(segment, column, position)
        try:
            # Decode before parsing: ``json.loads`` on raw bytes re-sniffs
            # the encoding per call, which dominates thin-column scans.
            return json.loads(line.decode("utf-8"))
        except ValueError as error:
            file_path = self._file_path(segment, column)
            offset = self._segment_offsets[segment][column + 1][position]
            tuple_id = self._segment_ids[segment][position]
            raise StorageError(
                f"corrupt segment line in {file_path!r} at byte offset "
                f"{offset} (tuple {tuple_id!r}): {error}"
            ) from error

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def _all_columns(self) -> dict[str, int]:
        return {
            attribute: column
            for column, attribute in enumerate(self.schema.attributes)
        }

    def _decode(
        self, segment: int, position: int, columns: dict[str, int]
    ) -> XTuple:
        """Reassemble one tuple from the structure line + *columns*.

        *columns* maps attribute name → column index and may cover any
        subset of the schema (projection); unselected attributes are
        skipped without reading their files.  Per-alternative attribute
        order is restored from the structure line, so full decodes are
        bitwise-identical to the row backend.
        """
        structure = self._parse(segment, _STRUCTURE, position)
        column_values = {
            attribute: self._parse(segment, column, position)
            for attribute, column in columns.items()
        }
        cursors = dict.fromkeys(column_values, 0)
        schema_attributes = self.schema.attributes
        alternatives = []
        for probability, names in structure["alts"]:
            if names == 0:
                names = schema_attributes
            values = {}
            for attribute in names:
                selected = column_values.get(attribute)
                if selected is None:
                    continue
                cursor = cursors[attribute]
                cursors[attribute] = cursor + 1
                values[attribute] = decode_value(selected[cursor])
            alternatives.append(TupleAlternative(values, probability))
        return XTuple(structure["id"], alternatives)

    # ------------------------------------------------------------------
    # Random access through the page cache
    # ------------------------------------------------------------------

    def get(self, tuple_id: str) -> XTuple:
        """Decode one x-tuple by id (via the page cache)."""
        segment, position = self._locate[tuple_id]
        page = self._load_page(segment, position // self._page_size)
        return page[position % self._page_size]

    def fetch(self, tuple_ids: Iterable[str]) -> dict[str, XTuple]:
        """Decode a working set, touching each needed page only once."""
        wanted = list(tuple_ids)
        by_page: dict[tuple[int, int], list[str]] = {}
        for tuple_id in wanted:
            segment, position = self._locate[tuple_id]
            by_page.setdefault(
                (segment, position // self._page_size), []
            ).append(tuple_id)
        result: dict[str, XTuple] = {}
        for key in sorted(by_page):
            page = self._load_page(*key)
            for tuple_id in by_page[key]:
                position = self._locate[tuple_id][1]
                result[tuple_id] = page[position % self._page_size]
        return {tuple_id: result[tuple_id] for tuple_id in wanted}

    def _load_page(self, segment: int, page_number: int) -> list[XTuple]:
        key = (segment, page_number)
        pages = self._pages
        page = pages.get(key)
        if page is not None:
            self._hits += 1
            pages.move_to_end(key)
            return page
        self._misses += 1
        columns = self._all_columns()
        start = page_number * self._page_size
        count = min(
            self._page_size, len(self._segment_ids[segment]) - start
        )
        page = [
            self._decode(segment, start + i, columns) for i in range(count)
        ]
        pages[key] = page
        if len(pages) > self._max_pages:
            pages.popitem(last=False)
            self._evictions += 1
        return page

    # ------------------------------------------------------------------
    # Projection and statistics — the planner-facing surface
    # ------------------------------------------------------------------

    def project(self, attributes: Iterable[str]) -> "ColumnarProjection":
        """A scan view over a subset of attributes.

        Iterating the view yields x-tuples whose alternatives carry
        only the selected attributes (probabilities, ids and order are
        untouched), decoded from the structure file plus the selected
        columns — the other columns' bytes are never read.  Key
        strategies evaluate identically on the view because they read
        nothing but the key attributes and the alternative
        probabilities.
        """
        selected = tuple(dict.fromkeys(attributes))
        known = set(self.schema.attributes)
        for attribute in selected:
            if attribute not in known:
                raise KeyError(
                    f"attribute {attribute!r} is not in the schema "
                    f"{self.schema.attributes!r}"
                )
        return ColumnarProjection(self, selected)

    def statistics(self) -> StoreStatistics:
        """The spill-time zone maps and key histograms of this store."""
        return StoreStatistics.from_dict(self.name, self._statistics_doc)

    def segment_zones(self, segment: int) -> dict:
        """Raw per-segment zone-map documents (attribute → zone)."""
        return dict(self._segment_zones[segment])

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def cache_info(self) -> PageCacheInfo:
        """Current page-cache statistics."""
        return PageCacheInfo(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            pages=len(self._pages),
            cached_tuples=sum(len(page) for page in self._pages.values()),
            page_size=self._page_size,
            max_pages=self._max_pages,
        )

    def clear_cache(self) -> None:
        """Drop every cached page (counters are kept)."""
        self._pages.clear()

    def materialize(self, name: str | None = None) -> XRelation:
        """Load the whole store into an in-memory :class:`XRelation`."""
        return XRelation(name or self.name, self.schema, iter(self))

    @property
    def open_segments(self) -> int:
        """Currently mapped files (≤ ``max_open_segments``)."""
        return len(self._maps)

    # ------------------------------------------------------------------
    # Integrity: audit and quarantine
    # ------------------------------------------------------------------

    def verify(self) -> StoreVerification:
        """Audit every file of every segment family without serving tuples.

        Never raises for corruption — all damage is reported in one
        pass (``result.corrupt``), one entry per *file* (structure and
        columns alike), so an operator can quarantine every affected
        segment family before re-serving.
        """
        results: list[SegmentIntegrity] = []
        for segment, files in enumerate(self._segment_files):
            tuples = len(self._segment_ids[segment])
            for column, file_path in enumerate(files):
                expected = self._segment_crcs[segment][column]
                file_name = os.path.basename(file_path)
                try:
                    crc = 0
                    with open(file_path, "rb") as handle:
                        for block in iter(
                            lambda: handle.read(1 << 16), b""
                        ):
                            crc = zlib.crc32(block, crc)
                except OSError:
                    results.append(
                        SegmentIntegrity(
                            file_name, tuples, expected, None, "unreadable"
                        )
                    )
                    continue
                if expected is None:
                    status = "unverifiable"
                elif crc == expected:
                    status = "ok"
                    self._verified.add((segment, column - 1))
                else:
                    status = "corrupt"
                results.append(
                    SegmentIntegrity(
                        file_name, tuples, expected, crc, status
                    )
                )
        return StoreVerification(self._path, tuple(results))

    def quarantine(self, segment: int | str) -> QuarantinedSegment:
        """Isolate one corrupt segment *family*; the rest stays servable.

        *segment* is a manifest index, or the name/path of **any** file
        of the family (structure or column — e.g. the ``segment_file``
        a :class:`~repro.pdb.errors.SegmentCorruptionError` carries).
        The manifest is rewritten atomically without the family first,
        then every file of the family is moved into ``quarantine/`` —
        a crash in between leaves a valid manifest plus orphaned (never
        again served) files, never a manifest pointing at missing data.
        """
        if isinstance(segment, str):
            wanted = os.path.basename(segment)
            index = None
            for candidate, files in enumerate(self._segment_files):
                if wanted in [os.path.basename(f) for f in files]:
                    index = candidate
                    break
            if index is None:
                raise StorageError(
                    f"no segment file {wanted!r} in store {self._path!r}"
                )
            segment = index
        if not 0 <= segment < len(self._segment_files):
            raise StorageError(
                f"no segment index {segment} in store {self._path!r} "
                f"({len(self._segment_files)} segments)"
            )
        family = list(self._segment_files[segment])
        tuples_name = os.path.basename(family[0])
        dropped_ids = tuple(self._segment_ids[segment])
        manifest_path = os.path.join(self._path, MANIFEST_NAME)
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise StorageError(
                f"cannot rewrite store manifest in {self._path!r}: "
                f"{error}"
            ) from error
        kept = [
            doc
            for doc in manifest.get("segments", ())
            if doc.get("tuples") != tuples_name
        ]
        manifest["segments"] = kept
        manifest["count"] = sum(len(doc["ids"]) for doc in kept)
        write_text_atomic(manifest_path, _dump(manifest))
        # Manifest first, move second (same crash contract as the row
        # backend's quarantine).
        quarantine_dir = os.path.join(self._path, QUARANTINE_DIR)
        quarantined_path: str | None = None
        for file_path in family:
            if os.path.exists(file_path):
                os.makedirs(quarantine_dir, exist_ok=True)
                moved = os.path.join(
                    quarantine_dir, os.path.basename(file_path)
                )
                os.replace(file_path, moved)
                if quarantined_path is None:
                    quarantined_path = moved
        self.close()
        self._load_manifest()
        return QuarantinedSegment(
            file=tuples_name,
            quarantined_path=quarantined_path,
            tuple_ids=dropped_ids,
            remaining=len(self._locate),
        )

    def close(self) -> None:
        """Close every mapping and drop cached pages (idempotent)."""
        maps = getattr(self, "_maps", None)
        if maps:
            for mapped in maps.values():
                try:
                    mapped.close()
                except (OSError, ValueError):
                    pass
        self._maps = OrderedDict()
        pages = getattr(self, "_pages", None)
        if pages is not None:
            pages.clear()
        else:
            self._pages = OrderedDict()

    def __enter__(self) -> "ColumnarXTupleStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getstate__(self) -> dict:
        # Mappings are process-local and pages are cheap to refill;
        # pickling (e.g. spawn-based pools) ships metadata only.
        state = self.__dict__.copy()
        state["_maps"] = OrderedDict()
        state["_pages"] = OrderedDict()
        return state

    def __repr__(self) -> str:
        return (
            f"ColumnarXTupleStore({self._path!r}, {len(self)} tuples, "
            f"{len(self._segment_files)} segments, "
            f"{len(self.schema.attributes)} columns)"
        )


class ColumnarProjection:
    """A read-only scan over a subset of a columnar store's attributes.

    Yields x-tuples whose alternatives carry only the selected
    attributes — ids, iteration order, alternative probabilities and
    the selected values are exactly those of the base store, so key
    strategies (which read nothing else) evaluate identically while the
    unselected columns' bytes stay untouched.
    """

    def __init__(
        self, store: ColumnarXTupleStore, attributes: tuple[str, ...]
    ) -> None:
        self._store = store
        self._attributes = attributes
        column_of = store._all_columns()
        self._columns = {
            attribute: column_of[attribute] for attribute in attributes
        }

    @property
    def name(self) -> str:
        return self._store.name

    @property
    def schema(self) -> Schema:
        return Schema(self._attributes)

    @property
    def attributes(self) -> tuple[str, ...]:
        return self._attributes

    @property
    def tuple_ids(self) -> tuple[str, ...]:
        return self._store.tuple_ids

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[XTuple]:
        store = self._store
        for segment in range(len(store._segment_files)):
            for position in range(len(store._segment_ids[segment])):
                yield store._decode(segment, position, self._columns)

    def __repr__(self) -> str:
        return (
            f"ColumnarProjection({self._store.path!r}, "
            f"attributes={self._attributes!r})"
        )


__all__ = [
    "COLUMNAR_LAYOUT",
    "ColumnarProjection",
    "ColumnarXTupleStore",
    "spill_columnar",
]
