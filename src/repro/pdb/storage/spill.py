"""Out-of-core x-relations: append-only segment files + LRU page cache.

A *spilled* x-relation lives in a directory:

.. code-block:: text

    store/
      manifest.json      # schema, tuple ids, per-tuple segment offsets
      seg-00000.jsonl    # one exact-encoded x-tuple document per line
      seg-00001.jsonl
      ...

Segments are written append-only by :func:`spill_relation` and never
touched afterwards; the manifest is written last and atomically
(:func:`repro.pdb.io.write_text_atomic`), so an interrupted spill never
produces a directory that opens as a store.  Lines use the *exact*
value codec (:func:`repro.pdb.io.encode_value_exact`): outcome
iteration order survives the round trip, so floating-point
accumulations over decoded tuples — and therefore detection results —
are bitwise-identical to the in-memory relation's.

:class:`SpillingXTupleStore` keeps only metadata resident: tuple ids
and their ``(segment, offset)`` positions.  Tuples are decoded on
demand through an LRU cache of fixed-size *pages* (runs of consecutive
tuples within one segment), so random access during partitioned
execution costs one page decode per miss while total decoded residency
stays bounded by ``page_size × max_pages``.  Sequential iteration
streams the segment files directly and never populates the cache.

The store is fork-friendly: file handles are reopened lazily per
process (a forked worker never shares seek positions with its parent),
and pickling drops handles and cached pages, so shipping a store to a
worker costs only the metadata.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.pdb.errors import StorageError
from repro.pdb.io import (
    decode_xtuple,
    encode_xtuple,
    write_text_atomic,
)
from repro.pdb.relations import Schema, XRelation
from repro.pdb.xtuples import XTuple

#: Manifest file name inside a store directory.
MANIFEST_NAME = "manifest.json"

#: Format identifier of the store layout.
STORE_FORMAT = 1

#: Tuples per segment file written by :func:`spill_relation`.
DEFAULT_SEGMENT_SIZE = 512

#: Tuples decoded together on a page-cache miss.
DEFAULT_PAGE_SIZE = 64

#: Pages the LRU cache retains (decoded residency ≤ pages × page size).
DEFAULT_MAX_PAGES = 32

#: Segment file handles kept open per process (LRU); large relations
#: have relation_size / segment_size segments, far beyond the default
#: FD ulimit, so handles are evicted-and-closed like pages.
DEFAULT_MAX_OPEN_SEGMENTS = 64


@dataclass(frozen=True)
class PageCacheInfo:
    """A snapshot of one store's page-cache behaviour."""

    hits: int
    misses: int
    evictions: int
    pages: int
    cached_tuples: int
    page_size: int
    max_pages: int

    @property
    def capacity_tuples(self) -> int:
        """Upper bound on decoded tuples the cache can hold."""
        return self.page_size * self.max_pages


def _segment_name(index: int) -> str:
    return f"seg-{index:05d}.jsonl"


def _parse_segment_line(line: bytes, file_path: str) -> dict:
    try:
        return json.loads(line)
    except json.JSONDecodeError as error:
        raise StorageError(
            f"corrupt segment line in {file_path!r}: {error}"
        ) from error


def spill_relation(
    relation,
    path: str,
    *,
    segment_size: int = DEFAULT_SEGMENT_SIZE,
    page_size: int = DEFAULT_PAGE_SIZE,
    max_pages: int = DEFAULT_MAX_PAGES,
    max_open_segments: int = DEFAULT_MAX_OPEN_SEGMENTS,
) -> "SpillingXTupleStore":
    """Write *relation* (any :class:`XTupleStore`) to a store directory.

    Tuples are streamed in insertion order into ``segment_size``-tuple
    JSONL segments; the manifest (ids, offsets, schema) is written last
    and atomically.  Returns the directory opened as a
    :class:`SpillingXTupleStore` with the given cache knobs.
    """
    if segment_size < 1:
        raise ValueError("segment_size must be >= 1")
    try:
        os.makedirs(path, exist_ok=True)
    except OSError as error:
        raise StorageError(
            f"cannot create store directory {path!r}: {error}"
        ) from error
    manifest_path = os.path.join(path, MANIFEST_NAME)
    if os.path.exists(manifest_path):
        raise StorageError(
            f"{path!r} already contains a spilled store; refusing to "
            "overwrite it"
        )
    segments: list[dict] = []
    seen: set[str] = set()
    iterator = iter(relation)
    exhausted = False
    index = 0
    written_files: list[str] = []
    try:
        while not exhausted:
            ids: list[str] = []
            offsets: list[int] = []
            file_name = _segment_name(index)
            file_path = os.path.join(path, file_name)
            written_files.append(file_path)
            # newline="" disables platform newline translation: the
            # recorded offsets must match the bytes on disk exactly.
            with open(
                file_path, "w", encoding="utf-8", newline=""
            ) as handle:
                position = 0
                for _ in range(segment_size):
                    try:
                        xtuple = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    if xtuple.tuple_id in seen:
                        raise StorageError(
                            f"duplicate tuple id {xtuple.tuple_id!r} "
                            f"while spilling to {path!r}"
                        )
                    seen.add(xtuple.tuple_id)
                    line = json.dumps(
                        encode_xtuple(xtuple, exact=True),
                        separators=(",", ":"),
                        ensure_ascii=False,
                    )
                    handle.write(line)
                    handle.write("\n")
                    ids.append(xtuple.tuple_id)
                    offsets.append(position)
                    position += len(line.encode("utf-8")) + 1
                handle.flush()
                os.fsync(handle.fileno())
            if ids:
                segments.append(
                    {"file": file_name, "ids": ids, "offsets": offsets}
                )
                index += 1
            else:
                os.unlink(file_path)
                written_files.pop()
        manifest = {
            "format": STORE_FORMAT,
            "kind": "repro-xtuple-store",
            "name": relation.name,
            "schema": list(relation.schema.attributes),
            "count": len(seen),
            "segments": segments,
        }
        write_text_atomic(
            manifest_path, json.dumps(manifest, separators=(",", ":"))
        )
    except BaseException:
        # A failed spill must not leave anything behind: orphaned
        # segments would silently coexist with a later spill into the
        # same path, and a manifest without its segments is a corrupt
        # store.
        for file_path in written_files + [manifest_path]:
            try:
                os.unlink(file_path)
            except OSError:
                pass
        raise
    return SpillingXTupleStore(
        path,
        page_size=page_size,
        max_pages=max_pages,
        max_open_segments=max_open_segments,
    )


class SpillingXTupleStore:
    """Read-only out-of-core x-tuple store over a spilled directory.

    Satisfies :class:`~repro.pdb.storage.base.XTupleStore`.  Only ids
    and segment offsets stay resident; :meth:`get` and :meth:`fetch`
    decode tuples through the LRU page cache, :meth:`__iter__` streams
    the segment files without caching.

    Parameters
    ----------
    path:
        A directory produced by :func:`spill_relation` /
        :meth:`XRelation.spill <repro.pdb.relations.XRelation.spill>`.
    page_size:
        Consecutive tuples decoded per cache miss.
    max_pages:
        LRU capacity; decoded residency never exceeds
        ``page_size × max_pages`` tuples (plus any working set a caller
        is currently holding).
    max_open_segments:
        Open segment file handles kept per process (also LRU): the
        least-recently-used handle is closed when the cap is reached,
        so random access over thousands of segments never exhausts the
        process FD limit.
    """

    def __init__(
        self,
        path: str,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        max_pages: int = DEFAULT_MAX_PAGES,
        max_open_segments: int = DEFAULT_MAX_OPEN_SEGMENTS,
    ) -> None:
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        if max_pages < 1:
            raise ValueError("max_pages must be >= 1")
        if max_open_segments < 1:
            raise ValueError("max_open_segments must be >= 1")
        self._path = os.path.abspath(path)
        self._page_size = page_size
        self._max_pages = max_pages
        self._max_open_segments = max_open_segments
        manifest_path = os.path.join(self._path, MANIFEST_NAME)
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise StorageError(
                f"{path!r} is not a spilled store (no {MANIFEST_NAME})"
            ) from None
        except json.JSONDecodeError as error:
            raise StorageError(
                f"corrupt store manifest in {path!r}: {error}"
            ) from error
        if manifest.get("format") != STORE_FORMAT:
            raise StorageError(
                f"unsupported store format {manifest.get('format')!r}"
            )
        self._segment_files: list[str] = []
        self._segment_offsets: list[list[int]] = []
        #: tuple id → (segment index, position within segment)
        self._locate: dict[str, tuple[int, int]] = {}
        try:
            self.name: str = manifest["name"]
            self.schema = Schema(manifest["schema"])
            segment_docs = manifest["segments"]
            for segment_index, segment in enumerate(segment_docs):
                ids = segment["ids"]
                offsets = segment["offsets"]
                if len(ids) != len(offsets):
                    raise StorageError(
                        f"segment {segment['file']!r} ids/offsets mismatch"
                    )
                self._segment_files.append(
                    os.path.join(self._path, segment["file"])
                )
                self._segment_offsets.append(list(offsets))
                for position, tuple_id in enumerate(ids):
                    if tuple_id in self._locate:
                        raise StorageError(
                            f"duplicate tuple id {tuple_id!r} in manifest"
                        )
                    self._locate[tuple_id] = (segment_index, position)
        except KeyError as missing:
            raise StorageError(
                f"store manifest in {path!r} missing key "
                f"{missing.args[0]!r}"
            ) from None
        if len(self._locate) != manifest.get("count", len(self._locate)):
            raise StorageError(
                f"manifest count {manifest.get('count')} does not match "
                f"{len(self._locate)} indexed tuples"
            )
        # Per-process file handles and LRU page cache.  Handles belong
        # to the opening process: after a fork the child re-opens its
        # own (shared descriptors would share seek positions).
        self._pid = os.getpid()
        self._handles: OrderedDict[int, object] = OrderedDict()
        self._pages: OrderedDict[tuple[int, int], list[XTuple]] = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    @property
    def path(self) -> str:
        """The store directory."""
        return self._path

    @property
    def tuple_ids(self) -> tuple[str, ...]:
        """All tuple ids in insertion (spill) order."""
        return tuple(self._locate.keys())

    def __len__(self) -> int:
        return len(self._locate)

    def __contains__(self, tuple_id: str) -> bool:
        return tuple_id in self._locate

    def __iter__(self) -> Iterator[XTuple]:
        """Stream all x-tuples in insertion order, bypassing the cache."""
        for file_path in self._segment_files:
            try:
                with open(file_path, "rb") as handle:
                    for line in handle:
                        if line.strip():
                            yield decode_xtuple(
                                _parse_segment_line(line, file_path)
                            )
            except OSError as error:
                raise StorageError(
                    f"unreadable segment file {file_path!r}: {error}"
                ) from error

    # ------------------------------------------------------------------
    # Random access through the page cache
    # ------------------------------------------------------------------

    def get(self, tuple_id: str) -> XTuple:
        """Decode one x-tuple by id (via the page cache)."""
        segment, position = self._locate[tuple_id]
        page = self._load_page(segment, position // self._page_size)
        return page[position % self._page_size]

    def fetch(self, tuple_ids: Iterable[str]) -> dict[str, XTuple]:
        """Decode a working set, touching each needed page only once.

        Ids are grouped by page and pages are visited in file order, so
        a partition whose members are clustered in the spill order costs
        a handful of sequential page decodes.  Only the *requested*
        tuples are retained: pages are processed one at a time (copying
        out the wanted members before the next page loads), so a
        scattered working set never pins more decoded tuples than the
        working set itself plus the LRU page cache — even when every id
        lands on a different page.
        """
        wanted = list(tuple_ids)
        by_page: dict[tuple[int, int], list[str]] = {}
        for tuple_id in wanted:
            segment, position = self._locate[tuple_id]
            by_page.setdefault(
                (segment, position // self._page_size), []
            ).append(tuple_id)
        result: dict[str, XTuple] = {}
        for key in sorted(by_page):
            page = self._load_page(*key)
            for tuple_id in by_page[key]:
                position = self._locate[tuple_id][1]
                result[tuple_id] = page[position % self._page_size]
        # Same objects, re-keyed into the caller's request order.
        return {tuple_id: result[tuple_id] for tuple_id in wanted}

    def _load_page(
        self, segment: int, page_number: int
    ) -> list[XTuple]:
        key = (segment, page_number)
        pages = self._pages
        page = pages.get(key)
        if page is not None:
            self._hits += 1
            pages.move_to_end(key)
            return page
        self._misses += 1
        offsets = self._segment_offsets[segment]
        start = page_number * self._page_size
        count = min(self._page_size, len(offsets) - start)
        file_path = self._segment_files[segment]
        try:
            handle = self._handle(segment)
            handle.seek(offsets[start])
            page = [
                decode_xtuple(
                    _parse_segment_line(handle.readline(), file_path)
                )
                for _ in range(count)
            ]
        except OSError as error:
            raise StorageError(
                f"unreadable segment file {file_path!r}: {error}"
            ) from error
        pages[key] = page
        if len(pages) > self._max_pages:
            pages.popitem(last=False)
            self._evictions += 1
        return page

    def _handle(self, segment: int):
        handles = self._handles
        if os.getpid() != self._pid:
            # Forked child: inherited descriptors share seek positions
            # with the parent.  Close our duplicated references (the
            # parent's descriptors are unaffected) and open our own.
            self._pid = os.getpid()
            for inherited in handles.values():
                try:
                    inherited.close()
                except OSError:
                    pass
            handles.clear()
        handle = handles.get(segment)
        if handle is None:
            # Binary mode: the recorded offsets address raw bytes, and
            # seeking a text-mode wrapper to arbitrary offsets is
            # undefined behaviour per the io docs.
            handle = open(self._segment_files[segment], "rb")
            handles[segment] = handle
            if len(handles) > self._max_open_segments:
                handles.popitem(last=False)[1].close()
        else:
            handles.move_to_end(segment)
        return handle

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def cache_info(self) -> PageCacheInfo:
        """Current page-cache statistics."""
        return PageCacheInfo(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            pages=len(self._pages),
            cached_tuples=sum(len(page) for page in self._pages.values()),
            page_size=self._page_size,
            max_pages=self._max_pages,
        )

    def clear_cache(self) -> None:
        """Drop every cached page (counters are kept)."""
        self._pages.clear()

    def materialize(self, name: str | None = None) -> XRelation:
        """Load the whole store into an in-memory :class:`XRelation`."""
        return XRelation(name or self.name, self.schema, iter(self))

    @property
    def open_segments(self) -> int:
        """Currently open segment file handles (≤ ``max_open_segments``)."""
        return len(self._handles)

    def close(self) -> None:
        """Close segment file handles and drop cached pages."""
        for handle in self._handles.values():
            try:
                handle.close()
            except OSError:
                pass
        self._handles = OrderedDict()
        self._pages.clear()

    def __enter__(self) -> "SpillingXTupleStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getstate__(self) -> dict:
        # Handles are process-local and pages are cheap to refill;
        # pickling (e.g. spawn-based pools) ships metadata only.
        state = self.__dict__.copy()
        state["_handles"] = OrderedDict()
        state["_pages"] = OrderedDict()
        return state

    def __repr__(self) -> str:
        return (
            f"SpillingXTupleStore({self._path!r}, {len(self)} tuples, "
            f"{len(self._segment_files)} segments)"
        )


__all__ = [
    "DEFAULT_MAX_OPEN_SEGMENTS",
    "DEFAULT_MAX_PAGES",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_SEGMENT_SIZE",
    "MANIFEST_NAME",
    "PageCacheInfo",
    "SpillingXTupleStore",
    "StorageError",
    "spill_relation",
]
