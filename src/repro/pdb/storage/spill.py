"""Out-of-core x-relations: append-only segment files + LRU page cache.

A *spilled* x-relation lives in a directory:

.. code-block:: text

    store/
      manifest.json      # schema, tuple ids, per-tuple segment offsets
      seg-00000.jsonl    # one exact-encoded x-tuple document per line
      seg-00001.jsonl
      ...

Segments are written append-only by :func:`spill_relation` and never
touched afterwards; the manifest is written last and atomically
(:func:`repro.pdb.io.write_text_atomic`), so an interrupted spill never
produces a directory that opens as a store.  Lines use the *exact*
value codec (:func:`repro.pdb.io.encode_value_exact`): outcome
iteration order survives the round trip, so floating-point
accumulations over decoded tuples — and therefore detection results —
are bitwise-identical to the in-memory relation's.

:class:`SpillingXTupleStore` keeps only metadata resident: tuple ids
and their ``(segment, offset)`` positions.  Tuples are decoded on
demand through an LRU cache of fixed-size *pages* (runs of consecutive
tuples within one segment), so random access during partitioned
execution costs one page decode per miss while total decoded residency
stays bounded by ``page_size × max_pages``.  Sequential iteration
streams the segment files directly and never populates the cache.

The store is fork-friendly: file handles are reopened lazily per
process (a forked worker never shares seek positions with its parent),
and pickling drops handles and cached pages, so shipping a store to a
worker costs only the metadata.

Integrity: :func:`spill_relation` records a CRC32 checksum per segment
in the manifest.  The store verifies a segment's bytes against its
checksum lazily — on the segment's first page load, and during
streaming iteration as each segment ends — raising
:class:`~repro.pdb.errors.SegmentCorruptionError` (path, expected and
actual CRC, affected tuple ids) on mismatch.  :meth:`verify` audits the
whole directory without serving tuples, and :meth:`quarantine` isolates
a corrupt segment — the manifest is atomically rewritten *without* the
segment first, then the file is moved into ``quarantine/`` — so the
remaining tuples stay servable for partial runs.
"""

from __future__ import annotations

import json
import os
import zlib
from collections import OrderedDict
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.pdb.errors import SegmentCorruptionError, StorageError
from repro.pdb.io import (
    decode_xtuple,
    encode_xtuple,
    write_text_atomic,
)
from repro.pdb.relations import Schema, XRelation
from repro.pdb.xtuples import XTuple

#: Manifest file name inside a store directory.
MANIFEST_NAME = "manifest.json"

#: Format identifier of the store layout.
STORE_FORMAT = 1

#: Tuples per segment file written by :func:`spill_relation`.
DEFAULT_SEGMENT_SIZE = 512

#: Tuples decoded together on a page-cache miss.
DEFAULT_PAGE_SIZE = 64

#: Pages the LRU cache retains (decoded residency ≤ pages × page size).
DEFAULT_MAX_PAGES = 32

#: Segment file handles kept open per process (LRU); large relations
#: have relation_size / segment_size segments, far beyond the default
#: FD ulimit, so handles are evicted-and-closed like pages.
DEFAULT_MAX_OPEN_SEGMENTS = 64


@dataclass(frozen=True)
class PageCacheInfo:
    """A snapshot of one store's page-cache behaviour."""

    hits: int
    misses: int
    evictions: int
    pages: int
    cached_tuples: int
    page_size: int
    max_pages: int

    @property
    def capacity_tuples(self) -> int:
        """Upper bound on decoded tuples the cache can hold."""
        return self.page_size * self.max_pages


@dataclass(frozen=True)
class SegmentIntegrity:
    """Audit result for one segment of a store."""

    #: Segment file name (relative to the store directory).
    file: str
    #: Tuples the manifest locates in the segment.
    tuples: int
    #: Manifest CRC32 (``None`` = pre-checksum spill, unverifiable).
    expected_crc: int | None
    #: CRC32 of the bytes on disk (``None`` when the file is unreadable).
    actual_crc: int | None
    #: Human-readable status: ``"ok"``, ``"corrupt"``, ``"unreadable"``
    #: or ``"unverifiable"``.
    status: str

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class StoreVerification:
    """Whole-store audit produced by :meth:`SpillingXTupleStore.verify`."""

    #: Store directory audited.
    path: str
    #: Per-segment results, in manifest order.
    segments: tuple[SegmentIntegrity, ...]

    @property
    def ok(self) -> bool:
        """Whether every segment verified clean."""
        return all(segment.ok for segment in self.segments)

    @property
    def corrupt(self) -> tuple[SegmentIntegrity, ...]:
        """Segments that failed the audit (corrupt or unreadable)."""
        return tuple(
            segment
            for segment in self.segments
            if segment.status in ("corrupt", "unreadable")
        )


@dataclass(frozen=True)
class QuarantinedSegment:
    """Receipt of one :meth:`SpillingXTupleStore.quarantine` call."""

    #: Segment file name that was isolated.
    file: str
    #: Where the corrupt bytes were moved (inside ``quarantine/``), or
    #: ``None`` if the file had already vanished.
    quarantined_path: str | None
    #: Ids of the tuples that became unavailable.
    tuple_ids: tuple[str, ...]
    #: Tuples still servable from the store afterwards.
    remaining: int


#: Directory (inside a store) quarantined segment files are moved to.
QUARANTINE_DIR = "quarantine"


def _segment_name(index: int) -> str:
    return f"seg-{index:05d}.jsonl"


def _parse_segment_line(
    line: bytes,
    file_path: str,
    *,
    offset: int | None = None,
    tuple_id: str | None = None,
) -> dict:
    try:
        return json.loads(line)
    # ValueError covers both JSONDecodeError and the UnicodeDecodeError
    # a non-UTF-8 byte flip produces.
    except ValueError as error:
        context = ""
        if offset is not None:
            context += f" at byte offset {offset}"
        if tuple_id is not None:
            context += f" (tuple {tuple_id!r})"
        raise StorageError(
            f"corrupt segment line in {file_path!r}{context}: {error}"
        ) from error


def spill_relation(
    relation,
    path: str,
    *,
    segment_size: int = DEFAULT_SEGMENT_SIZE,
    page_size: int = DEFAULT_PAGE_SIZE,
    max_pages: int = DEFAULT_MAX_PAGES,
    max_open_segments: int = DEFAULT_MAX_OPEN_SEGMENTS,
    layout: str = "rows",
):
    """Write *relation* (any :class:`XTupleStore`) to a store directory.

    Tuples are streamed in insertion order into ``segment_size``-tuple
    segments; the manifest (ids, offsets, schema) is written last and
    atomically.  ``layout`` selects the on-disk format: ``"rows"`` (the
    default) writes one JSONL document per tuple and returns a
    :class:`SpillingXTupleStore`; ``"columnar"`` decomposes segments
    into per-attribute column files with spill-time zone maps and key
    histograms and returns a
    :class:`~repro.pdb.storage.columnar.ColumnarXTupleStore`.  Both
    backends decode bitwise-identically; ``open_store`` re-opens either
    from the manifest's layout marker.
    """
    if layout == "columnar":
        from repro.pdb.storage.columnar import spill_columnar

        return spill_columnar(
            relation,
            path,
            segment_size=segment_size,
            page_size=page_size,
            max_pages=max_pages,
            max_open_segments=max_open_segments,
        )
    if layout != "rows":
        raise ValueError(
            f"unknown spill layout {layout!r} (use 'rows' or 'columnar')"
        )
    if segment_size < 1:
        raise ValueError("segment_size must be >= 1")
    try:
        os.makedirs(path, exist_ok=True)
    except OSError as error:
        raise StorageError(
            f"cannot create store directory {path!r}: {error}"
        ) from error
    manifest_path = os.path.join(path, MANIFEST_NAME)
    if os.path.exists(manifest_path):
        raise StorageError(
            f"{path!r} already contains a spilled store; refusing to "
            "overwrite it"
        )
    segments: list[dict] = []
    seen: set[str] = set()
    iterator = iter(relation)
    exhausted = False
    index = 0
    written_files: list[str] = []
    try:
        while not exhausted:
            ids: list[str] = []
            offsets: list[int] = []
            file_name = _segment_name(index)
            file_path = os.path.join(path, file_name)
            written_files.append(file_path)
            # newline="" disables platform newline translation: the
            # recorded offsets must match the bytes on disk exactly.
            with open(
                file_path, "w", encoding="utf-8", newline=""
            ) as handle:
                position = 0
                crc = 0
                for _ in range(segment_size):
                    try:
                        xtuple = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    if xtuple.tuple_id in seen:
                        raise StorageError(
                            f"duplicate tuple id {xtuple.tuple_id!r} "
                            f"while spilling to {path!r}"
                        )
                    seen.add(xtuple.tuple_id)
                    line = json.dumps(
                        encode_xtuple(xtuple, exact=True),
                        separators=(",", ":"),
                        ensure_ascii=False,
                    )
                    handle.write(line)
                    handle.write("\n")
                    encoded = line.encode("utf-8") + b"\n"
                    crc = zlib.crc32(encoded, crc)
                    ids.append(xtuple.tuple_id)
                    offsets.append(position)
                    position += len(encoded)
                handle.flush()
                os.fsync(handle.fileno())
            if ids:
                segments.append(
                    {
                        "file": file_name,
                        "ids": ids,
                        "offsets": offsets,
                        # Whole-file CRC32: cheap to compute while
                        # writing, cheap to re-check on read.  An
                        # optional key, so pre-checksum stores (and
                        # their readers) keep working — STORE_FORMAT
                        # stays 1.
                        "crc32": crc,
                    }
                )
                index += 1
            else:
                os.unlink(file_path)
                written_files.pop()
        manifest = {
            "format": STORE_FORMAT,
            "kind": "repro-xtuple-store",
            "name": relation.name,
            "schema": list(relation.schema.attributes),
            "count": len(seen),
            "segments": segments,
        }
        write_text_atomic(
            manifest_path, json.dumps(manifest, separators=(",", ":"))
        )
    except BaseException:
        # A failed spill must not leave anything behind: orphaned
        # segments would silently coexist with a later spill into the
        # same path, and a manifest without its segments is a corrupt
        # store.
        for file_path in written_files + [manifest_path]:
            try:
                os.unlink(file_path)
            except OSError:
                pass
        raise
    return SpillingXTupleStore(
        path,
        page_size=page_size,
        max_pages=max_pages,
        max_open_segments=max_open_segments,
    )


class SpillingXTupleStore:
    """Read-only out-of-core x-tuple store over a spilled directory.

    Satisfies :class:`~repro.pdb.storage.base.XTupleStore`.  Only ids
    and segment offsets stay resident; :meth:`get` and :meth:`fetch`
    decode tuples through the LRU page cache, :meth:`__iter__` streams
    the segment files without caching.

    Parameters
    ----------
    path:
        A directory produced by :func:`spill_relation` /
        :meth:`XRelation.spill <repro.pdb.relations.XRelation.spill>`.
    page_size:
        Consecutive tuples decoded per cache miss.
    max_pages:
        LRU capacity; decoded residency never exceeds
        ``page_size × max_pages`` tuples (plus any working set a caller
        is currently holding).
    max_open_segments:
        Open segment file handles kept per process (also LRU): the
        least-recently-used handle is closed when the cap is reached,
        so random access over thousands of segments never exhausts the
        process FD limit.
    verify_checksums:
        Verify each segment's bytes against its manifest CRC32 lazily —
        on the segment's first page load, and at each segment boundary
        of a streaming iteration (default on; segments without a
        recorded checksum, i.e. pre-checksum spills, are served
        unverified either way).
    """

    def __init__(
        self,
        path: str,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        max_pages: int = DEFAULT_MAX_PAGES,
        max_open_segments: int = DEFAULT_MAX_OPEN_SEGMENTS,
        verify_checksums: bool = True,
    ) -> None:
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        if max_pages < 1:
            raise ValueError("max_pages must be >= 1")
        if max_open_segments < 1:
            raise ValueError("max_open_segments must be >= 1")
        self._path = os.path.abspath(path)
        self._page_size = page_size
        self._max_pages = max_pages
        self._max_open_segments = max_open_segments
        self._verify_checksums = verify_checksums
        self._load_manifest()
        # Per-process file handles and LRU page cache.  Handles belong
        # to the opening process: after a fork the child re-opens its
        # own (shared descriptors would share seek positions).
        self._pid = os.getpid()
        self._handles: OrderedDict[int, object] = OrderedDict()
        self._pages: OrderedDict[tuple[int, int], list[XTuple]] = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def _load_manifest(self) -> None:
        """(Re)build the resident metadata from the manifest on disk."""
        path = self._path
        manifest_path = os.path.join(self._path, MANIFEST_NAME)
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise StorageError(
                f"{path!r} is not a spilled store (no {MANIFEST_NAME})"
            ) from None
        except json.JSONDecodeError as error:
            raise StorageError(
                f"corrupt store manifest in {path!r}: {error}"
            ) from error
        if manifest.get("format") != STORE_FORMAT:
            raise StorageError(
                f"unsupported store format {manifest.get('format')!r}"
            )
        layout = manifest.get("layout", "rows")
        if layout != "rows":
            raise StorageError(
                f"store at {path!r} uses the {layout!r} layout, not "
                "'rows'; open it with open_store() or the matching "
                "store class"
            )
        self._segment_files: list[str] = []
        self._segment_offsets: list[list[int]] = []
        self._segment_ids: list[list[str]] = []
        #: Manifest CRC32 per segment (``None`` for pre-checksum spills).
        self._segment_crcs: list[int | None] = []
        #: Segments whose bytes already matched their checksum (lazy
        #: verification happens once per segment per store instance).
        self._verified_segments: set[int] = set()
        #: tuple id → (segment index, position within segment)
        self._locate: dict[str, tuple[int, int]] = {}
        try:
            self.name: str = manifest["name"]
            self.schema = Schema(manifest["schema"])
            segment_docs = manifest["segments"]
            for segment_index, segment in enumerate(segment_docs):
                ids = segment["ids"]
                offsets = segment["offsets"]
                if len(ids) != len(offsets):
                    raise StorageError(
                        f"segment {segment['file']!r} ids/offsets mismatch"
                    )
                self._segment_files.append(
                    os.path.join(self._path, segment["file"])
                )
                self._segment_offsets.append(list(offsets))
                self._segment_ids.append(list(ids))
                self._segment_crcs.append(segment.get("crc32"))
                for position, tuple_id in enumerate(ids):
                    if tuple_id in self._locate:
                        raise StorageError(
                            f"duplicate tuple id {tuple_id!r} in manifest"
                        )
                    self._locate[tuple_id] = (segment_index, position)
        except KeyError as missing:
            raise StorageError(
                f"store manifest in {path!r} missing key "
                f"{missing.args[0]!r}"
            ) from None
        if len(self._locate) != manifest.get("count", len(self._locate)):
            raise StorageError(
                f"manifest count {manifest.get('count')} does not match "
                f"{len(self._locate)} indexed tuples"
            )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    @property
    def path(self) -> str:
        """The store directory."""
        return self._path

    @property
    def tuple_ids(self) -> tuple[str, ...]:
        """All tuple ids in insertion (spill) order."""
        return tuple(self._locate.keys())

    def __len__(self) -> int:
        return len(self._locate)

    def __contains__(self, tuple_id: str) -> bool:
        return tuple_id in self._locate

    def __iter__(self) -> Iterator[XTuple]:
        """Stream all x-tuples in insertion order, bypassing the cache.

        A running CRC32 is folded over each segment's bytes and checked
        against the manifest at the segment boundary (when checksum
        verification is on), so corruption is detected before any tuple
        of the *next* segment is served — without a separate read pass.
        A line that fails to parse inside a checksummed segment is
        re-diagnosed with a full checksum first, so bit rot surfaces as
        :class:`~repro.pdb.errors.SegmentCorruptionError` (with the
        segment's full blast radius) rather than a single-line decode
        error.
        """
        for segment, file_path in enumerate(self._segment_files):
            ids = self._segment_ids[segment]
            verify = (
                self._verify_checksums
                and self._segment_crcs[segment] is not None
                and segment not in self._verified_segments
            )
            crc = 0
            offset = 0
            position = 0
            try:
                with open(file_path, "rb") as handle:
                    for line in handle:
                        if verify:
                            crc = zlib.crc32(line, crc)
                        if line.strip():
                            try:
                                doc = _parse_segment_line(
                                    line,
                                    file_path,
                                    offset=offset,
                                    tuple_id=(
                                        ids[position]
                                        if position < len(ids)
                                        else None
                                    ),
                                )
                            except StorageError:
                                if verify:
                                    self.verify_segment(segment)
                                raise
                            yield decode_xtuple(doc)
                            position += 1
                        offset += len(line)
            except OSError as error:
                raise StorageError(
                    f"unreadable segment file {file_path!r}: {error}"
                ) from error
            if verify:
                self._check_crc(segment, crc)
                self._verified_segments.add(segment)

    # ------------------------------------------------------------------
    # Random access through the page cache
    # ------------------------------------------------------------------

    def get(self, tuple_id: str) -> XTuple:
        """Decode one x-tuple by id (via the page cache)."""
        segment, position = self._locate[tuple_id]
        page = self._load_page(segment, position // self._page_size)
        return page[position % self._page_size]

    def fetch(self, tuple_ids: Iterable[str]) -> dict[str, XTuple]:
        """Decode a working set, touching each needed page only once.

        Ids are grouped by page and pages are visited in file order, so
        a partition whose members are clustered in the spill order costs
        a handful of sequential page decodes.  Only the *requested*
        tuples are retained: pages are processed one at a time (copying
        out the wanted members before the next page loads), so a
        scattered working set never pins more decoded tuples than the
        working set itself plus the LRU page cache — even when every id
        lands on a different page.
        """
        wanted = list(tuple_ids)
        by_page: dict[tuple[int, int], list[str]] = {}
        for tuple_id in wanted:
            segment, position = self._locate[tuple_id]
            by_page.setdefault(
                (segment, position // self._page_size), []
            ).append(tuple_id)
        result: dict[str, XTuple] = {}
        for key in sorted(by_page):
            page = self._load_page(*key)
            for tuple_id in by_page[key]:
                position = self._locate[tuple_id][1]
                result[tuple_id] = page[position % self._page_size]
        # Same objects, re-keyed into the caller's request order.
        return {tuple_id: result[tuple_id] for tuple_id in wanted}

    def _load_page(
        self, segment: int, page_number: int
    ) -> list[XTuple]:
        key = (segment, page_number)
        pages = self._pages
        page = pages.get(key)
        if page is not None:
            self._hits += 1
            pages.move_to_end(key)
            return page
        self._misses += 1
        if (
            self._verify_checksums
            and self._segment_crcs[segment] is not None
            and segment not in self._verified_segments
        ):
            # Lazy integrity check: the first page load of a segment
            # verifies the whole file's bytes against the manifest CRC,
            # so a corrupt segment is caught before any of its tuples
            # is decoded (and only segments a run actually touches pay
            # the read).
            self.verify_segment(segment)
        offsets = self._segment_offsets[segment]
        ids = self._segment_ids[segment]
        start = page_number * self._page_size
        count = min(self._page_size, len(offsets) - start)
        file_path = self._segment_files[segment]
        try:
            handle = self._handle(segment)
            handle.seek(offsets[start])
            page = [
                decode_xtuple(
                    _parse_segment_line(
                        handle.readline(),
                        file_path,
                        offset=offsets[start + i],
                        tuple_id=ids[start + i],
                    )
                )
                for i in range(count)
            ]
        except OSError as error:
            raise StorageError(
                f"unreadable segment file {file_path!r}: {error}"
            ) from error
        pages[key] = page
        if len(pages) > self._max_pages:
            pages.popitem(last=False)
            self._evictions += 1
        return page

    def _handle(self, segment: int):
        handles = self._handles
        if os.getpid() != self._pid:
            # Forked child: inherited descriptors share seek positions
            # with the parent.  Close our duplicated references (the
            # parent's descriptors are unaffected) and open our own.
            self._pid = os.getpid()
            for inherited in handles.values():
                try:
                    inherited.close()
                except OSError:
                    pass
            handles.clear()
        handle = handles.get(segment)
        if handle is None:
            # Binary mode: the recorded offsets address raw bytes, and
            # seeking a text-mode wrapper to arbitrary offsets is
            # undefined behaviour per the io docs.
            handle = open(self._segment_files[segment], "rb")
            handles[segment] = handle
            if len(handles) > self._max_open_segments:
                handles.popitem(last=False)[1].close()
        else:
            handles.move_to_end(segment)
        return handle

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def cache_info(self) -> PageCacheInfo:
        """Current page-cache statistics."""
        return PageCacheInfo(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            pages=len(self._pages),
            cached_tuples=sum(len(page) for page in self._pages.values()),
            page_size=self._page_size,
            max_pages=self._max_pages,
        )

    def clear_cache(self) -> None:
        """Drop every cached page (counters are kept)."""
        self._pages.clear()

    def materialize(self, name: str | None = None) -> XRelation:
        """Load the whole store into an in-memory :class:`XRelation`."""
        return XRelation(name or self.name, self.schema, iter(self))

    @property
    def open_segments(self) -> int:
        """Currently open segment file handles (≤ ``max_open_segments``)."""
        return len(self._handles)

    # ------------------------------------------------------------------
    # Integrity: checksums, audit, quarantine
    # ------------------------------------------------------------------

    def _segment_crc(self, segment: int) -> int:
        """CRC32 of a segment file's bytes as they are on disk now."""
        crc = 0
        with open(self._segment_files[segment], "rb") as handle:
            for block in iter(lambda: handle.read(1 << 16), b""):
                crc = zlib.crc32(block, crc)
        return crc

    def _check_crc(self, segment: int, actual: int) -> None:
        expected = self._segment_crcs[segment]
        if expected is not None and actual != expected:
            file_path = self._segment_files[segment]
            raise SegmentCorruptionError(
                f"segment file {file_path!r} failed its integrity "
                f"check: CRC32 {actual:#010x} on disk, manifest "
                f"records {expected:#010x} "
                f"({len(self._segment_ids[segment])} tuples affected; "
                "quarantine() isolates the segment)",
                segment_file=file_path,
                expected_crc=expected,
                actual_crc=actual,
                tuple_ids=tuple(self._segment_ids[segment]),
            )

    def verify_segment(self, segment: int) -> None:
        """Check one segment's bytes against its manifest checksum.

        Raises :class:`~repro.pdb.errors.SegmentCorruptionError` on
        mismatch and :class:`StorageError` when the file is unreadable;
        a clean (or checksum-less) segment is remembered as verified
        for this store instance.
        """
        try:
            actual = self._segment_crc(segment)
        except OSError as error:
            raise StorageError(
                "unreadable segment file "
                f"{self._segment_files[segment]!r}: {error}"
            ) from error
        self._check_crc(segment, actual)
        self._verified_segments.add(segment)

    def verify(self) -> StoreVerification:
        """Audit every segment against the manifest without serving tuples.

        Never raises for corruption — the audit reports *all* damage in
        one pass (``result.corrupt``), so an operator can quarantine
        every bad segment before re-serving.
        """
        results: list[SegmentIntegrity] = []
        for segment, file_path in enumerate(self._segment_files):
            expected = self._segment_crcs[segment]
            tuples = len(self._segment_ids[segment])
            file_name = os.path.basename(file_path)
            try:
                actual = self._segment_crc(segment)
            except OSError:
                results.append(
                    SegmentIntegrity(
                        file_name, tuples, expected, None, "unreadable"
                    )
                )
                continue
            if expected is None:
                status = "unverifiable"
            elif actual == expected:
                status = "ok"
                self._verified_segments.add(segment)
            else:
                status = "corrupt"
            results.append(
                SegmentIntegrity(
                    file_name, tuples, expected, actual, status
                )
            )
        return StoreVerification(self._path, tuple(results))

    def quarantine(self, segment: int | str) -> QuarantinedSegment:
        """Isolate one corrupt segment; the rest stays servable.

        *segment* is a manifest index, a segment file name, or the
        absolute path a :class:`~repro.pdb.errors.SegmentCorruptionError`
        carries in ``segment_file``.  The manifest is rewritten
        atomically *without* the segment first, then the file is moved
        into the store's ``quarantine/`` directory — a crash in between
        leaves a valid manifest plus one orphaned (never again served)
        segment file, never a manifest pointing at missing data.  The
        open store reloads itself from the new manifest, so subsequent
        reads serve exactly the surviving tuples.
        """
        if isinstance(segment, str):
            wanted = os.path.basename(segment)
            names = [
                os.path.basename(file_path)
                for file_path in self._segment_files
            ]
            if wanted not in names:
                raise StorageError(
                    f"no segment {wanted!r} in store {self._path!r} "
                    f"(segments: {names})"
                )
            segment = names.index(wanted)
        if not 0 <= segment < len(self._segment_files):
            raise StorageError(
                f"no segment index {segment} in store {self._path!r} "
                f"({len(self._segment_files)} segments)"
            )
        file_path = self._segment_files[segment]
        file_name = os.path.basename(file_path)
        dropped_ids = tuple(self._segment_ids[segment])
        manifest_path = os.path.join(self._path, MANIFEST_NAME)
        try:
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise StorageError(
                f"cannot rewrite store manifest in {self._path!r}: "
                f"{error}"
            ) from error
        kept = [
            doc
            for doc in manifest.get("segments", ())
            if doc.get("file") != file_name
        ]
        manifest["segments"] = kept
        manifest["count"] = sum(len(doc["ids"]) for doc in kept)
        write_text_atomic(
            manifest_path, json.dumps(manifest, separators=(",", ":"))
        )
        # Manifest first, move second: after the atomic rewrite the
        # store no longer references the segment, so a crash before the
        # move merely leaves an orphaned file behind.
        quarantine_dir = os.path.join(self._path, QUARANTINE_DIR)
        quarantined_path: str | None = None
        if os.path.exists(file_path):
            os.makedirs(quarantine_dir, exist_ok=True)
            quarantined_path = os.path.join(quarantine_dir, file_name)
            os.replace(file_path, quarantined_path)
        self.close()
        self._load_manifest()
        return QuarantinedSegment(
            file=file_name,
            quarantined_path=quarantined_path,
            tuple_ids=dropped_ids,
            remaining=len(self._locate),
        )

    def close(self) -> None:
        """Close segment file handles and drop cached pages.

        Idempotent, and safe on *any* store object — including one a
        forked child inherited, or an unpickled copy whose handles were
        never opened: already-closed (or never-opened) lazy handles are
        skipped, never raised on.
        """
        handles = getattr(self, "_handles", None)
        if handles:
            for handle in handles.values():
                try:
                    handle.close()
                except (OSError, ValueError):
                    pass
        self._handles = OrderedDict()
        pages = getattr(self, "_pages", None)
        if pages is not None:
            pages.clear()
        else:
            self._pages = OrderedDict()

    def __enter__(self) -> "SpillingXTupleStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getstate__(self) -> dict:
        # Handles are process-local and pages are cheap to refill;
        # pickling (e.g. spawn-based pools) ships metadata only.
        state = self.__dict__.copy()
        state["_handles"] = OrderedDict()
        state["_pages"] = OrderedDict()
        return state

    def __repr__(self) -> str:
        return (
            f"SpillingXTupleStore({self._path!r}, {len(self)} tuples, "
            f"{len(self._segment_files)} segments)"
        )


__all__ = [
    "DEFAULT_MAX_OPEN_SEGMENTS",
    "DEFAULT_MAX_PAGES",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_SEGMENT_SIZE",
    "MANIFEST_NAME",
    "QUARANTINE_DIR",
    "PageCacheInfo",
    "QuarantinedSegment",
    "SegmentCorruptionError",
    "SegmentIntegrity",
    "SpillingXTupleStore",
    "StorageError",
    "StoreVerification",
    "spill_relation",
]
