"""Storage backends for x-relations.

Two interchangeable implementations of the :class:`XTupleStore`
protocol feed the detection pipeline:

* :class:`~repro.pdb.relations.XRelation` — the in-memory backend
  (every tuple resident, ``fetch`` hands out the existing objects);
* :class:`SpillingXTupleStore` — the out-of-core backend over a
  directory of append-only JSONL segments with an LRU page cache
  (only ids and segment offsets resident).

Conversions: :func:`spill_relation` /
:meth:`XRelation.spill <repro.pdb.relations.XRelation.spill>` write a
store directory; :func:`repro.pdb.io.open_store` opens either form;
:meth:`SpillingXTupleStore.materialize` loads a store back into memory.
"""

from repro.pdb.storage.base import XTupleStore, fetch_tuples
from repro.pdb.storage.multi import MultiSourceStore, combine_sources
from repro.pdb.storage.session import (
    DELTA_SOURCE,
    SessionJournal,
    SessionStore,
)
from repro.pdb.storage.spill import (
    DEFAULT_MAX_OPEN_SEGMENTS,
    DEFAULT_MAX_PAGES,
    DEFAULT_PAGE_SIZE,
    DEFAULT_SEGMENT_SIZE,
    MANIFEST_NAME,
    QUARANTINE_DIR,
    PageCacheInfo,
    QuarantinedSegment,
    SegmentCorruptionError,
    SegmentIntegrity,
    SpillingXTupleStore,
    StorageError,
    StoreVerification,
    spill_relation,
)

__all__ = [
    "DEFAULT_MAX_OPEN_SEGMENTS",
    "DEFAULT_MAX_PAGES",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_SEGMENT_SIZE",
    "DELTA_SOURCE",
    "MANIFEST_NAME",
    "MultiSourceStore",
    "PageCacheInfo",
    "QUARANTINE_DIR",
    "QuarantinedSegment",
    "SegmentCorruptionError",
    "SegmentIntegrity",
    "SessionJournal",
    "SessionStore",
    "SpillingXTupleStore",
    "StorageError",
    "StoreVerification",
    "XTupleStore",
    "combine_sources",
    "fetch_tuples",
    "spill_relation",
]
